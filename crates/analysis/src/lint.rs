//! Per-IR well-formedness lints.
//!
//! Each lint family checks the *structural* discipline a pass's output must
//! obey — the invariants later passes rely on without rechecking:
//!
//! | family | certifies |
//! |--------|-----------|
//! | `wf-rtl` | entry and successors exist; no read of a possibly-undefined pseudo-register (forward maybe-uninit, not dominance); known callees |
//! | `wf-ltl` | successors exist; non-move operands in registers (the `Stacking` precondition); stack-slot bounds and 8-alignment; no write to `Incoming`; callee-save writes declared |
//! | `wf-linear` | label uniqueness and resolution; control cannot fall off the end; the same operand/slot discipline as LTL |
//! | `wf-mach` | label discipline; frame-slot accesses inside `[16, frame_size)` and 8-aligned; frame-layout ordering |
//! | `wf-asm` | label discipline; prologue is `AllocFrame; SaveRa(8)`; every `Ret` is preceded by `RestoreRa(8); FreeFrame` |
//!
//! All families also check that every call targets a defined function or a
//! declared external.

use std::collections::BTreeSet;

use backend::asm::AsmInst;
use backend::linear::{LinFunction, LinInst, LinProgram};
use backend::ltl::{LtlFunction, LtlInst, LtlProgram};
use backend::mach::{MachInst, MachProgram};
use backend::{AsmProgram, LOp};
use compcerto_core::iface::{abi, Signature};
use compcerto_core::regs::Loc;
use rtl::{Inst, RtlProgram};

use crate::cfg::{reachable, CfgView};
use crate::dataflow::maybe_uninit;
use crate::diag::Diagnostic;

/// Names a program may call: its own functions plus declared externals.
fn known_callees<'a>(
    functions: impl Iterator<Item = &'a str>,
    externs: impl Iterator<Item = &'a str>,
) -> BTreeSet<String> {
    functions
        .map(str::to_string)
        .chain(externs.map(str::to_string))
        .collect()
}

// ---------------------------------------------------------------------------
// RTL
// ---------------------------------------------------------------------------

/// Well-formedness of an RTL program (usually the post-optimization
/// `rtl_opt`).
pub fn lint_rtl(prog: &RtlProgram) -> Vec<Diagnostic> {
    const PASS: &str = "wf-rtl";
    let mut diags = Vec::new();
    let callees = known_callees(
        prog.functions.iter().map(|f| f.name.as_str()),
        prog.externs.iter().map(|(n, _)| n.as_str()),
    );
    for f in &prog.functions {
        if !f.code.contains_key(&f.entry) {
            diags.push(Diagnostic::new(
                PASS,
                &f.name,
                Some(f.entry),
                "rtl.entry-missing",
                format!("entry node {} has no instruction", f.entry),
            ));
            continue;
        }
        for (n, inst) in &f.code {
            for s in inst.successors() {
                if !f.code.contains_key(&s) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(*n),
                        "rtl.successor-missing",
                        format!("successor {s} has no instruction"),
                    ));
                }
            }
            if let Inst::Call(_, callee, _, _, _) | Inst::Tailcall(_, callee, _) = inst {
                if !callees.contains(callee) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(*n),
                        "rtl.unknown-callee",
                        format!("call to undeclared `{callee}`"),
                    ));
                }
            }
        }
        // Def-before-use on every path (reachable nodes only): a use of `v`
        // is flagged iff some entry-to-use path misses every def of `v`.
        let entry_defs: BTreeSet<u32> = f.params.iter().copied().collect();
        let mu = maybe_uninit(f, &entry_defs);
        for n in reachable(f) {
            let Some(state) = mu.get(&n) else { continue };
            for u in CfgView::uses(f, n) {
                if state.0.contains(&u) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(n),
                        "rtl.use-undefined",
                        format!("x{u} may be read before any definition"),
                    ));
                }
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Shared location discipline (LTL and Linear carry the same operand sort)
// ---------------------------------------------------------------------------

struct SlotBounds<'a> {
    sig: &'a Signature,
    locals_size: i64,
    outgoing_size: i64,
}

fn check_slot(
    b: &SlotBounds<'_>,
    l: Loc,
    pass: &'static str,
    rule: &'static str,
    fname: &str,
    node: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let (ofs, limit, kind) = match l {
        Loc::Local(o) => (o, b.locals_size, "local"),
        Loc::Outgoing(o) => (o, b.outgoing_size, "outgoing"),
        Loc::Incoming(o) => (o, abi::size_arguments(b.sig), "incoming"),
        Loc::Reg(_) => return,
    };
    if ofs < 0 || ofs % 8 != 0 || ofs + 8 > limit {
        diags.push(Diagnostic::new(
            pass,
            fname,
            Some(node),
            rule,
            format!("{kind} slot at byte {ofs} outside [0, {limit}) or misaligned"),
        ));
    }
}

fn lop_operands(op: &LOp) -> Vec<Loc> {
    match op {
        LOp::Move(l) | LOp::Unop(_, l) | LOp::BinopImm(_, l, _) => vec![*l],
        LOp::Binop(_, a, b) => vec![*a, *b],
        _ => vec![],
    }
}

fn is_reg(l: Loc) -> bool {
    matches!(l, Loc::Reg(_))
}

/// Operand-class discipline for an `Op`: non-move operations must compute
/// register-to-register (the `Stacking` precondition); moves may touch
/// slots but must never write `Incoming` (the caller's frame).
#[allow(clippy::too_many_arguments)]
fn check_op_discipline(
    op: &LOp,
    dst: Loc,
    pass: &'static str,
    class_rule: &'static str,
    incoming_rule: &'static str,
    fname: &str,
    node: u32,
    diags: &mut Vec<Diagnostic>,
) {
    if matches!(dst, Loc::Incoming(_)) {
        diags.push(Diagnostic::new(
            pass,
            fname,
            Some(node),
            incoming_rule,
            "write to an Incoming slot (the caller's frame)".to_string(),
        ));
    }
    if !matches!(op, LOp::Move(_)) {
        let mut bad: Vec<Loc> = lop_operands(op).into_iter().filter(|l| !is_reg(*l)).collect();
        if !is_reg(dst) {
            bad.push(dst);
        }
        if !bad.is_empty() {
            diags.push(Diagnostic::new(
                pass,
                fname,
                Some(node),
                class_rule,
                format!("non-move operation touches stack slot {}", bad[0]),
            ));
        }
    }
}

fn check_callee_save_decl(
    dst: Loc,
    declared: &[compcerto_core::regs::Mreg],
    pass: &'static str,
    rule: &'static str,
    fname: &str,
    node: u32,
    diags: &mut Vec<Diagnostic>,
) {
    if let Loc::Reg(r) = dst {
        if abi::is_callee_save(r) && !declared.contains(&r) {
            diags.push(Diagnostic::new(
                pass,
                fname,
                Some(node),
                rule,
                format!("write to callee-save {r} not declared in used_callee_save"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// LTL
// ---------------------------------------------------------------------------

fn lint_ltl_function(f: &LtlFunction, callees: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    const PASS: &str = "wf-ltl";
    if !f.code.contains_key(&f.entry) {
        diags.push(Diagnostic::new(
            PASS,
            &f.name,
            Some(f.entry),
            "ltl.entry-missing",
            format!("entry node {} has no instruction", f.entry),
        ));
        return;
    }
    let bounds = SlotBounds {
        sig: &f.sig,
        locals_size: f.locals_size,
        outgoing_size: f.outgoing_size,
    };
    for (n, inst) in &f.code {
        for s in inst.successors() {
            if !f.code.contains_key(&s) {
                diags.push(Diagnostic::new(
                    PASS,
                    &f.name,
                    Some(*n),
                    "ltl.successor-missing",
                    format!("successor {s} has no instruction"),
                ));
            }
        }
        let mut slots: Vec<Loc> = Vec::new();
        match inst {
            LtlInst::Op(op, dst, _) => {
                slots.extend(lop_operands(op));
                slots.push(*dst);
                check_op_discipline(
                    op,
                    *dst,
                    PASS,
                    "ltl.operand-class",
                    "ltl.write-incoming",
                    &f.name,
                    *n,
                    diags,
                );
                check_callee_save_decl(
                    *dst,
                    &f.used_callee_save,
                    PASS,
                    "ltl.callee-save-undeclared",
                    &f.name,
                    *n,
                    diags,
                );
            }
            LtlInst::Load(_, base, _, dst, _) => {
                slots.extend([*base, *dst]);
                for l in [*base, *dst] {
                    if !is_reg(l) {
                        diags.push(Diagnostic::new(
                            PASS,
                            &f.name,
                            Some(*n),
                            "ltl.operand-class",
                            format!("memory access through stack slot {l}"),
                        ));
                    }
                }
                check_callee_save_decl(
                    *dst,
                    &f.used_callee_save,
                    PASS,
                    "ltl.callee-save-undeclared",
                    &f.name,
                    *n,
                    diags,
                );
            }
            LtlInst::Store(_, base, _, src, _) => {
                slots.extend([*base, *src]);
                for l in [*base, *src] {
                    if !is_reg(l) {
                        diags.push(Diagnostic::new(
                            PASS,
                            &f.name,
                            Some(*n),
                            "ltl.operand-class",
                            format!("memory access through stack slot {l}"),
                        ));
                    }
                }
            }
            LtlInst::Cond(l, _, _) => {
                slots.push(*l);
                if !is_reg(*l) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(*n),
                        "ltl.operand-class",
                        format!("branch condition in stack slot {l}"),
                    ));
                }
            }
            LtlInst::Call(callee, _, _) => {
                if !callees.contains(callee) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(*n),
                        "ltl.unknown-callee",
                        format!("call to undeclared `{callee}`"),
                    ));
                }
            }
            LtlInst::Nop(_) | LtlInst::Return => {}
        }
        for l in slots {
            check_slot(&bounds, l, PASS, "ltl.slot-bounds", &f.name, *n, diags);
        }
    }
}

/// Well-formedness of an LTL program.
pub fn lint_ltl(prog: &LtlProgram) -> Vec<Diagnostic> {
    let callees = known_callees(
        prog.functions.iter().map(|f| f.name.as_str()),
        prog.externs.iter().map(|(n, _)| n.as_str()),
    );
    let mut diags = Vec::new();
    for f in &prog.functions {
        lint_ltl_function(f, &callees, &mut diags);
    }
    diags
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

fn lint_linear_function(f: &LinFunction, callees: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    const PASS: &str = "wf-linear";
    if f.code.is_empty() {
        diags.push(Diagnostic::new(
            PASS,
            &f.name,
            None,
            "linear.empty-code",
            "function has no instructions".to_string(),
        ));
        return;
    }
    // Label table: duplicates are ambiguous branch targets.
    let mut seen_labels: BTreeSet<u32> = BTreeSet::new();
    for (i, inst) in f.code.iter().enumerate() {
        if let LinInst::Label(l) = inst {
            if !seen_labels.insert(*l) {
                diags.push(Diagnostic::new(
                    PASS,
                    &f.name,
                    Some(i as u32),
                    "linear.label-duplicate",
                    format!("label {l} defined more than once"),
                ));
            }
        }
    }
    let bounds = SlotBounds {
        sig: &f.sig,
        locals_size: f.locals_size,
        outgoing_size: f.outgoing_size,
    };
    for (i, inst) in f.code.iter().enumerate() {
        let n = i as u32;
        let mut slots: Vec<Loc> = Vec::new();
        match inst {
            LinInst::Op(op, dst) => {
                slots.extend(lop_operands(op));
                slots.push(*dst);
                check_op_discipline(
                    op,
                    *dst,
                    PASS,
                    "linear.operand-class",
                    "linear.write-incoming",
                    &f.name,
                    n,
                    diags,
                );
                check_callee_save_decl(
                    *dst,
                    &f.used_callee_save,
                    PASS,
                    "linear.callee-save-undeclared",
                    &f.name,
                    n,
                    diags,
                );
            }
            LinInst::Load(_, base, _, dst) => {
                slots.extend([*base, *dst]);
                check_callee_save_decl(
                    *dst,
                    &f.used_callee_save,
                    PASS,
                    "linear.callee-save-undeclared",
                    &f.name,
                    n,
                    diags,
                );
            }
            LinInst::Store(_, base, _, src) => slots.extend([*base, *src]),
            LinInst::CondGoto(l, target) => {
                slots.push(*l);
                if !seen_labels.contains(target) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(n),
                        "linear.label-missing",
                        format!("branch target label {target} not defined"),
                    ));
                }
            }
            LinInst::Goto(target) => {
                if !seen_labels.contains(target) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(n),
                        "linear.label-missing",
                        format!("branch target label {target} not defined"),
                    ));
                }
            }
            LinInst::Call(callee, _) => {
                if !callees.contains(callee) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(n),
                        "linear.unknown-callee",
                        format!("call to undeclared `{callee}`"),
                    ));
                }
            }
            LinInst::Label(_) | LinInst::Return => {}
        }
        for l in slots {
            check_slot(&bounds, l, PASS, "linear.slot-bounds", &f.name, n, diags);
        }
    }
    // Control must not run past the last instruction.
    if !matches!(f.code.last(), Some(LinInst::Return) | Some(LinInst::Goto(_))) {
        diags.push(Diagnostic::new(
            PASS,
            &f.name,
            Some((f.code.len() - 1) as u32),
            "linear.fall-off-end",
            "last instruction is neither Return nor Goto".to_string(),
        ));
    }
}

/// Well-formedness of a Linear program.
pub fn lint_linear(prog: &LinProgram) -> Vec<Diagnostic> {
    let callees = known_callees(
        prog.functions.iter().map(|f| f.name.as_str()),
        prog.externs.iter().map(|(n, _)| n.as_str()),
    );
    let mut diags = Vec::new();
    for f in &prog.functions {
        lint_linear_function(f, &callees, &mut diags);
    }
    diags
}

// ---------------------------------------------------------------------------
// Mach
// ---------------------------------------------------------------------------

/// Well-formedness of a Mach program (frame-slot bounds per `Stacking`'s
/// layout: the first 16 bytes are the link and return-address slots, which
/// generated code must not address as data).
pub fn lint_mach(prog: &MachProgram) -> Vec<Diagnostic> {
    const PASS: &str = "wf-mach";
    let callees = known_callees(
        prog.functions.iter().map(|f| f.name.as_str()),
        prog.externs.iter().map(|(n, _)| n.as_str()),
    );
    let mut diags = Vec::new();
    for f in &prog.functions {
        if f.code.is_empty() {
            diags.push(Diagnostic::new(
                PASS,
                &f.name,
                None,
                "mach.empty-code",
                "function has no instructions".to_string(),
            ));
            continue;
        }
        if !(16 <= f.stackdata_ofs
            && f.stackdata_ofs <= f.outgoing_ofs
            && f.outgoing_ofs <= f.frame_size
            && f.frame_size % 8 == 0)
        {
            diags.push(Diagnostic::new(
                PASS,
                &f.name,
                None,
                "mach.frame-layout",
                format!(
                    "inconsistent layout: stackdata={} outgoing={} size={}",
                    f.stackdata_ofs, f.outgoing_ofs, f.frame_size
                ),
            ));
        }
        let mut seen_labels: BTreeSet<u32> = BTreeSet::new();
        for (i, inst) in f.code.iter().enumerate() {
            if let MachInst::Label(l) = inst {
                if !seen_labels.insert(*l) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "mach.label-duplicate",
                        format!("label {l} defined more than once"),
                    ));
                }
            }
        }
        let check_frame_slot = |o: i64, i: usize, diags: &mut Vec<Diagnostic>| {
            if o < 16 || o % 8 != 0 || o + 8 > f.frame_size {
                diags.push(Diagnostic::new(
                    PASS,
                    &f.name,
                    Some(i as u32),
                    "mach.slot-bounds",
                    format!(
                        "frame slot at byte {o} outside [16, {}) or misaligned",
                        f.frame_size
                    ),
                ));
            }
        };
        for (i, inst) in f.code.iter().enumerate() {
            match inst {
                MachInst::GetStack(o, _) | MachInst::SetStack(_, o) => {
                    check_frame_slot(*o, i, &mut diags);
                }
                MachInst::GetParam(o, _) if *o < 0 || *o % 8 != 0 => {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "mach.slot-bounds",
                        format!("incoming parameter slot at byte {o} negative or misaligned"),
                    ));
                }
                MachInst::Goto(l) | MachInst::CondGoto(_, l) if !seen_labels.contains(l) => {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "mach.label-missing",
                        format!("branch target label {l} not defined"),
                    ));
                }
                MachInst::Call(callee, _) if !callees.contains(callee) => {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "mach.unknown-callee",
                        format!("call to undeclared `{callee}`"),
                    ));
                }
                _ => {}
            }
        }
        if !matches!(
            f.code.last(),
            Some(MachInst::Return) | Some(MachInst::Goto(_))
        ) {
            diags.push(Diagnostic::new(
                PASS,
                &f.name,
                Some((f.code.len() - 1) as u32),
                "mach.fall-off-end",
                "last instruction is neither Return nor Goto".to_string(),
            ));
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Asm
// ---------------------------------------------------------------------------

/// Well-formedness of an Asm program: label discipline plus the prologue and
/// epilogue shapes the `MA` convention's frame discipline relies on.
pub fn lint_asm(prog: &AsmProgram) -> Vec<Diagnostic> {
    const PASS: &str = "wf-asm";
    let callees = known_callees(
        prog.functions.iter().map(|f| f.name.as_str()),
        prog.externs.iter().map(|(n, _)| n.as_str()),
    );
    let mut diags = Vec::new();
    for f in &prog.functions {
        let mut seen_labels: BTreeSet<u32> = BTreeSet::new();
        for (i, inst) in f.code.iter().enumerate() {
            if let AsmInst::Label(l) = inst {
                if !seen_labels.insert(*l) {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "asm.label-duplicate",
                        format!("label {l} defined more than once"),
                    ));
                }
            }
        }
        // Prologue shape.
        let frame_size = match (f.code.first(), f.code.get(1)) {
            (Some(AsmInst::AllocFrame(sz)), Some(AsmInst::SaveRa(8))) if *sz >= 16 => Some(*sz),
            _ => {
                diags.push(Diagnostic::new(
                    PASS,
                    &f.name,
                    Some(0),
                    "asm.prologue-shape",
                    "function must begin with AllocFrame(>=16); SaveRa(8)".to_string(),
                ));
                None
            }
        };
        for (i, inst) in f.code.iter().enumerate() {
            match inst {
                AsmInst::Jmp(l) | AsmInst::Jcc(_, l) if !seen_labels.contains(l) => {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "asm.label-missing",
                        format!("branch target label {l} not defined"),
                    ));
                }
                AsmInst::Call(callee) if !callees.contains(callee) => {
                    diags.push(Diagnostic::new(
                        PASS,
                        &f.name,
                        Some(i as u32),
                        "asm.unknown-callee",
                        format!("call to undeclared `{callee}`"),
                    ));
                }
                AsmInst::Ret => {
                    let ok = i >= 2
                        && matches!(f.code.get(i - 2), Some(AsmInst::RestoreRa(8)))
                        && match (f.code.get(i - 1), frame_size) {
                            (Some(AsmInst::FreeFrame(sz)), Some(alloc)) => *sz == alloc,
                            (Some(AsmInst::FreeFrame(_)), None) => true,
                            _ => false,
                        };
                    if !ok {
                        diags.push(Diagnostic::new(
                            PASS,
                            &f.name,
                            Some(i as u32),
                            "asm.epilogue-shape",
                            "Ret must be preceded by RestoreRa(8); FreeFrame(prologue size)"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    diags
}
