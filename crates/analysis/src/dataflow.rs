//! Generic worklist dataflow over any [`CfgView`], on the same
//! [`JoinSemiLattice`] interface as `rtl::analysis` — one fixpoint engine
//! for RTL, LTL, Linear and Mach.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{predecessors, CfgView};

pub use rtl::JoinSemiLattice;

/// The set-union lattice over an IR's variables — the domain of liveness
/// and of the maybe-uninitialized analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarSet<V: Ord + Copy>(pub BTreeSet<V>);

impl<V: Ord + Copy> Default for VarSet<V> {
    fn default() -> Self {
        VarSet(BTreeSet::new())
    }
}

impl<V: Ord + Copy> JoinSemiLattice for VarSet<V> {
    fn join(&self, other: &Self) -> Self {
        VarSet(self.0.union(&other.0).copied().collect())
    }

    fn join_in_place(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

/// Solve a forward dataflow problem: `state[n]` is the abstract state
/// *before* node `n`; `transfer(n, before)` computes the state after it.
/// Only nodes reachable from the entry get a state.
pub fn forward_solve<G, S, T>(g: &G, entry: S, transfer: T) -> BTreeMap<u32, S>
where
    G: CfgView + ?Sized,
    S: JoinSemiLattice,
    T: Fn(u32, &S) -> S,
{
    let mut state: BTreeMap<u32, S> = BTreeMap::new();
    if !g.has_node(g.entry()) {
        return state;
    }
    state.insert(g.entry(), entry);
    let mut work: BTreeSet<u32> = BTreeSet::from([g.entry()]);
    while let Some(n) = work.pop_first() {
        let Some(before) = state.get(&n) else { continue };
        let after = transfer(n, before);
        for s in g.successors(n) {
            if !g.has_node(s) {
                continue;
            }
            let changed = match state.get_mut(&s) {
                Some(cur) => cur.join_in_place(&after),
                None => {
                    state.insert(s, after.clone());
                    true
                }
            };
            if changed {
                work.insert(s);
            }
        }
    }
    state
}

/// Solve a backward dataflow problem: `state[n]` is the abstract state
/// *before* node `n` (its "in" set); `transfer(n, out)` computes it from the
/// join of the successors' in-states.
pub fn backward_solve<G, S, T>(g: &G, bot: S, transfer: T) -> BTreeMap<u32, S>
where
    G: CfgView + ?Sized,
    S: JoinSemiLattice,
    T: Fn(u32, &S) -> S,
{
    let preds = predecessors(g);
    let mut state: BTreeMap<u32, S> = BTreeMap::new();
    let mut work: BTreeSet<u32> = g.node_ids().into_iter().collect();
    while let Some(n) = work.pop_last() {
        let mut out = bot.clone();
        for s in g.successors(n) {
            if let Some(si) = state.get(&s) {
                out.join_in_place(si);
            }
        }
        let inn = transfer(n, &out);
        let changed = match state.get_mut(&n) {
            Some(cur) => cur.join_in_place(&inn),
            None => {
                state.insert(n, inn);
                true
            }
        };
        if changed {
            if let Some(ps) = preds.get(&n) {
                work.extend(ps.iter().copied());
            }
        }
    }
    state
}

/// Backward liveness: the set of variables live *after* each node.
///
/// Generalizes `rtl::analysis::liveness` to any [`CfgView`] (the RTL
/// instantiation agrees with it node-for-node; see the cross-check test).
pub fn live_out<G: CfgView + ?Sized>(g: &G) -> BTreeMap<u32, VarSet<G::Var>> {
    let live_in = backward_solve(g, VarSet::default(), |n, out: &VarSet<G::Var>| {
        let mut inn = out.clone();
        for d in g.defs(n) {
            inn.0.remove(&d);
        }
        inn.0.extend(g.uses(n));
        inn
    });
    g.node_ids()
        .into_iter()
        .map(|n| {
            let mut out = VarSet::default();
            for s in g.successors(n) {
                if let Some(li) = live_in.get(&s) {
                    out.0.extend(li.0.iter().copied());
                }
            }
            (n, out)
        })
        .collect()
}

/// Forward "maybe uninitialized" analysis: the set of variables that are
/// possibly not yet defined *before* each reachable node.
///
/// This is the sound def-before-use check for non-SSA IRs: a use of `v` at
/// `n` is safe iff `v` is defined on **every** path from the entry to `n` —
/// i.e. `v ∉ maybe_uninit(n)`. A dominance check is *not* equivalent: after
/// a diamond that defines `v` on both arms, no single def dominates the
/// join, yet the use is safe.
pub fn maybe_uninit<G: CfgView + ?Sized>(
    g: &G,
    defined_at_entry: &BTreeSet<G::Var>,
) -> BTreeMap<u32, VarSet<G::Var>> {
    // The variable universe: everything read or written anywhere.
    let mut universe: BTreeSet<G::Var> = BTreeSet::new();
    for n in g.node_ids() {
        universe.extend(g.uses(n));
        universe.extend(g.defs(n));
    }
    let entry_state = VarSet(
        universe
            .iter()
            .filter(|v| !defined_at_entry.contains(v))
            .copied()
            .collect(),
    );
    forward_solve(g, entry_state, |n, before: &VarSet<G::Var>| {
        let mut after = before.clone();
        for d in g.defs(n) {
            after.0.remove(&d);
        }
        after
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use rtl::{Inst, RtlFunction, RtlOp};
    use std::collections::BTreeMap as Map;

    fn diamond_both_arms_define() -> RtlFunction {
        // 0: cond x1 -> {1,2}; both arms define x2; 3 uses x2.
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Op(RtlOp::Int(2), 2, 3));
        code.insert(3, Inst::Return(Some(2)));
        RtlFunction {
            name: "d".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        }
    }

    #[test]
    fn generic_liveness_matches_rtl_liveness() {
        let f = diamond_both_arms_define();
        let generic = live_out(&f);
        let specific = rtl::liveness(&f);
        for (n, s) in &specific {
            assert_eq!(&generic[n].0, s, "live-out mismatch at node {n}");
        }
    }

    #[test]
    fn maybe_uninit_handles_diamonds() {
        let f = diamond_both_arms_define();
        let entry_defs: BTreeSet<u32> = f.params.iter().copied().collect();
        let mu = maybe_uninit(&f, &entry_defs);
        // Before the join, x2 is defined on every path.
        assert!(!mu[&3].0.contains(&2));
        // Before the branch, x2 is still maybe-uninit.
        assert!(mu[&0].0.contains(&2));
    }

    #[test]
    fn maybe_uninit_flags_one_armed_defs() {
        // Only one arm defines x2 -> maybe-uninit at the join.
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Nop(3));
        code.insert(3, Inst::Return(Some(2)));
        let f = RtlFunction {
            name: "bad".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        };
        let entry_defs: BTreeSet<u32> = f.params.iter().copied().collect();
        let mu = maybe_uninit(&f, &entry_defs);
        assert!(mu[&3].0.contains(&2));
    }
}
