//! Generic worklist dataflow over any [`CfgView`], on the same
//! [`JoinSemiLattice`] interface as `rtl::analysis` — one fixpoint engine
//! for RTL, LTL, Linear and Mach.
//!
//! The solvers keep their abstract states in a dense `Vec` indexed by a
//! reverse-postorder numbering of the graph (see [`reverse_postorder`]),
//! and drive an index-ordered worklist: ascending pops visit pending nodes
//! in exact RPO for forward problems, descending pops in exact postorder
//! for backward ones. The set-union clients ([`live_out`], [`maybe_uninit`])
//! additionally run on the dense [`BitSet`] lattice via a variable
//! numbering, so the per-edge join is a word-wise `OR` instead of a
//! `BTreeSet` merge. Public signatures are unchanged: node-keyed `BTreeMap`s
//! of [`VarSet`]s come out, the dense representation never escapes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cfg::{reverse_postorder, CfgView};

pub use rtl::{BitSet, JoinSemiLattice};

/// The set-union lattice over an IR's variables — the domain of liveness
/// and of the maybe-uninitialized analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarSet<V: Ord + Copy>(pub BTreeSet<V>);

impl<V: Ord + Copy> Default for VarSet<V> {
    fn default() -> Self {
        VarSet(BTreeSet::new())
    }
}

impl<V: Ord + Copy> JoinSemiLattice for VarSet<V> {
    fn join(&self, other: &Self) -> Self {
        VarSet(self.0.union(&other.0).copied().collect())
    }

    fn join_in_place(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

/// Dense node numbering shared by the solvers: reverse postorder of the
/// reachable subgraph, then the remaining nodes in ascending id order
/// (backward clients — the allocation validator's liveness — solve dead
/// code too). The dense index doubles as the worklist priority.
fn dense_order<G: CfgView + ?Sized>(g: &G) -> (Vec<u32>, HashMap<u32, usize>) {
    let mut order = reverse_postorder(g);
    let mut seen: BTreeSet<u32> = order.iter().copied().collect();
    for n in g.node_ids() {
        if seen.insert(n) {
            order.push(n);
        }
    }
    let idx = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    (order, idx)
}

thread_local! {
    static SOLVER_ITERATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Cumulative worklist-solver iterations (node pops across
/// [`forward_solve`] and [`backward_solve`]) on *this thread*.
///
/// Deterministic effort counter for the observability layer (DESIGN.md
/// §10): the ordered worklists pop in exact RPO / postorder, so for a
/// fixed CFG the delta between two reads is byte-reproducible and
/// independent of `--jobs`. Kept separate from the sibling counter in
/// `rtl::analysis` so metrics can attribute iterations to the trusted
/// pipeline vs. the untrusted validator.
#[must_use]
pub fn solver_iterations() -> u64 {
    SOLVER_ITERATIONS.with(std::cell::Cell::get)
}

fn tick_solver() {
    SOLVER_ITERATIONS.with(|c| c.set(c.get() + 1));
}

/// Assemble the dense solver state back into the public node-keyed map.
fn undense<S>(order: &[u32], state: Vec<Option<S>>) -> BTreeMap<u32, S> {
    order
        .iter()
        .zip(state)
        .filter_map(|(n, s)| s.map(|s| (*n, s)))
        .collect()
}

/// Solve a forward dataflow problem: `state[n]` is the abstract state
/// *before* node `n`; `transfer(n, before)` computes the state after it.
/// Only nodes reachable from the entry get a state.
///
/// Internally the states live in a dense reverse-postorder-indexed `Vec`
/// and the worklist pops the smallest dense index first — exact RPO
/// visiting, the fast direction for forward problems.
pub fn forward_solve<G, S, T>(g: &G, entry: S, transfer: T) -> BTreeMap<u32, S>
where
    G: CfgView + ?Sized,
    S: JoinSemiLattice,
    T: Fn(u32, &S) -> S,
{
    if !g.has_node(g.entry()) {
        return BTreeMap::new();
    }
    let (order, idx) = dense_order(g);
    let mut state: Vec<Option<S>> = order.iter().map(|_| None).collect();
    let Some(&ei) = idx.get(&g.entry()) else {
        return BTreeMap::new();
    };
    state[ei] = Some(entry);
    let mut work: BTreeSet<usize> = BTreeSet::from([ei]);
    while let Some(i) = work.pop_first() {
        tick_solver();
        let n = order[i];
        let Some(before) = state[i].as_ref() else { continue };
        let after = transfer(n, before);
        for s in g.successors(n) {
            if !g.has_node(s) {
                continue;
            }
            let Some(&si) = idx.get(&s) else { continue };
            let changed = match state[si].as_mut() {
                Some(cur) => cur.join_in_place(&after),
                None => {
                    state[si] = Some(after.clone());
                    true
                }
            };
            if changed {
                work.insert(si);
            }
        }
    }
    undense(&order, state)
}

/// Solve a backward dataflow problem: `state[n]` is the abstract state
/// *before* node `n` (its "in" set); `transfer(n, out)` computes it from the
/// join of the successors' in-states.
///
/// Mirror image of [`forward_solve`] over the same dense numbering: the
/// worklist pops the *largest* dense index first — exact postorder, the
/// fast direction for backward problems.
pub fn backward_solve<G, S, T>(g: &G, bot: S, transfer: T) -> BTreeMap<u32, S>
where
    G: CfgView + ?Sized,
    S: JoinSemiLattice,
    T: Fn(u32, &S) -> S,
{
    let (order, idx) = dense_order(g);
    // Dense predecessor lists (each CFG edge once).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    for (i, n) in order.iter().enumerate() {
        let mut succs = g.successors(*n);
        succs.sort_unstable();
        succs.dedup();
        for s in succs {
            if let Some(&si) = idx.get(&s) {
                preds[si].push(i);
            }
        }
    }
    let mut state: Vec<Option<S>> = order.iter().map(|_| None).collect();
    let mut work: BTreeSet<usize> = (0..order.len()).collect();
    while let Some(i) = work.pop_last() {
        tick_solver();
        let n = order[i];
        let mut out = bot.clone();
        for s in g.successors(n) {
            if let Some(&si) = idx.get(&s) {
                if let Some(ss) = state[si].as_ref() {
                    out.join_in_place(ss);
                }
            }
        }
        let inn = transfer(n, &out);
        let changed = match state[i].as_mut() {
            Some(cur) => cur.join_in_place(&inn),
            None => {
                state[i] = Some(inn);
                true
            }
        };
        if changed {
            work.extend(preds[i].iter().copied());
        }
    }
    undense(&order, state)
}

/// A dense numbering of an IR's variable universe (everything read or
/// written anywhere in the graph), mapping variables to [`BitSet`] bit
/// indices and back. Variables are numbered in ascending `Ord` order, so
/// the numbering — and everything derived from it — is deterministic.
struct VarNumbering<V> {
    vars: Vec<V>,
}

impl<V: Ord + Copy> VarNumbering<V> {
    fn new<G: CfgView<Var = V> + ?Sized>(g: &G) -> VarNumbering<V> {
        let mut universe: BTreeSet<V> = BTreeSet::new();
        for n in g.node_ids() {
            universe.extend(g.uses(n));
            universe.extend(g.defs(n));
        }
        VarNumbering {
            vars: universe.into_iter().collect(),
        }
    }

    /// Bit index of `v` (`None` for variables outside the universe).
    fn index(&self, v: V) -> Option<u32> {
        self.vars.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Decode a bitset back into the public variable-set representation.
    fn decode(&self, bits: &BitSet) -> VarSet<V> {
        VarSet(bits.iter().map(|i| self.vars[i as usize]).collect())
    }
}

/// Backward liveness: the set of variables live *after* each node.
///
/// Generalizes `rtl::analysis::liveness` to any [`CfgView`] (the RTL
/// instantiation agrees with it node-for-node; see the cross-check test).
/// Runs on the dense [`BitSet`] lattice through a [`VarNumbering`]; the
/// returned sets are decoded back to plain [`VarSet`]s.
pub fn live_out<G: CfgView + ?Sized>(g: &G) -> BTreeMap<u32, VarSet<G::Var>> {
    let nums = VarNumbering::new(g);
    let live_in = backward_solve(g, BitSet::new(), |n, out: &BitSet| {
        let mut inn = out.clone();
        for d in g.defs(n) {
            if let Some(i) = nums.index(d) {
                inn.remove(i);
            }
        }
        for u in g.uses(n) {
            if let Some(i) = nums.index(u) {
                inn.insert(i);
            }
        }
        inn
    });
    g.node_ids()
        .into_iter()
        .map(|n| {
            let mut out = BitSet::new();
            for s in g.successors(n) {
                if let Some(li) = live_in.get(&s) {
                    out.union_with(li);
                }
            }
            (n, nums.decode(&out))
        })
        .collect()
}

/// Forward "maybe uninitialized" analysis: the set of variables that are
/// possibly not yet defined *before* each reachable node.
///
/// This is the sound def-before-use check for non-SSA IRs: a use of `v` at
/// `n` is safe iff `v` is defined on **every** path from the entry to `n` —
/// i.e. `v ∉ maybe_uninit(n)`. A dominance check is *not* equivalent: after
/// a diamond that defines `v` on both arms, no single def dominates the
/// join, yet the use is safe.
pub fn maybe_uninit<G: CfgView + ?Sized>(
    g: &G,
    defined_at_entry: &BTreeSet<G::Var>,
) -> BTreeMap<u32, VarSet<G::Var>> {
    let nums = VarNumbering::new(g);
    let entry_state: BitSet = nums
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| !defined_at_entry.contains(v))
        .map(|(i, _)| i as u32)
        .collect();
    let dense = forward_solve(g, entry_state, |n, before: &BitSet| {
        let mut after = before.clone();
        for d in g.defs(n) {
            if let Some(i) = nums.index(d) {
                after.remove(i);
            }
        }
        after
    });
    dense
        .into_iter()
        .map(|(n, bits)| (n, nums.decode(&bits)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use rtl::{Inst, RtlFunction, RtlOp};
    use std::collections::BTreeMap as Map;

    fn diamond_both_arms_define() -> RtlFunction {
        // 0: cond x1 -> {1,2}; both arms define x2; 3 uses x2.
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Op(RtlOp::Int(2), 2, 3));
        code.insert(3, Inst::Return(Some(2)));
        RtlFunction {
            name: "d".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        }
    }

    #[test]
    fn generic_liveness_matches_rtl_liveness() {
        let f = diamond_both_arms_define();
        let generic = live_out(&f);
        let specific = rtl::liveness(&f);
        for (n, s) in &specific {
            assert_eq!(&generic[n].0, s, "live-out mismatch at node {n}");
        }
    }

    #[test]
    fn maybe_uninit_handles_diamonds() {
        let f = diamond_both_arms_define();
        let entry_defs: BTreeSet<u32> = f.params.iter().copied().collect();
        let mu = maybe_uninit(&f, &entry_defs);
        // Before the join, x2 is defined on every path.
        assert!(!mu[&3].0.contains(&2));
        // Before the branch, x2 is still maybe-uninit.
        assert!(mu[&0].0.contains(&2));
    }

    #[test]
    fn maybe_uninit_flags_one_armed_defs() {
        // Only one arm defines x2 -> maybe-uninit at the join.
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Nop(3));
        code.insert(3, Inst::Return(Some(2)));
        let f = RtlFunction {
            name: "bad".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        };
        let entry_defs: BTreeSet<u32> = f.params.iter().copied().collect();
        let mu = maybe_uninit(&f, &entry_defs);
        assert!(mu[&3].0.contains(&2));
    }
}
