//! Structured findings from lints and validators.

use std::fmt;

/// One static finding: which pass's output (or which translation) is
/// suspect, where, and which rule fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint family or translation validator that produced the finding
    /// (e.g. `"wf-ltl"`, `"alloc"`, `"linearize"`, `"asmgen"`).
    pub pass: &'static str,
    /// Function the finding is about.
    pub function: String,
    /// CFG node / instruction index, when the finding is localized.
    pub node: Option<u32>,
    /// Stable rule identifier (e.g. `"ltl.successor-missing"`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        pass: &'static str,
        function: impl Into<String>,
        node: Option<u32>,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            pass,
            function: function.into(),
            node,
            rule,
            message: message.into(),
        }
    }

    /// Render as a single JSON object (hand-rolled: the workspace is
    /// offline-first and carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let node = match self.node {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        format!(
            "{{\"pass\":\"{}\",\"function\":\"{}\",\"node\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape(self.pass),
            escape(&self.function),
            node,
            escape(self.rule),
            escape(&self.message),
        )
    }
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validate[{}] {}", self.pass, self.function)?;
        if let Some(n) = self.node {
            write!(f, "@{n}")?;
        }
        write!(f, ": {}: {}", self.rule, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json() {
        let d = Diagnostic::new("wf-ltl", "f", Some(3), "ltl.successor-missing", "no node 7");
        assert_eq!(
            d.to_string(),
            "validate[wf-ltl] f@3: ltl.successor-missing: no node 7"
        );
        assert_eq!(
            d.to_json(),
            "{\"pass\":\"wf-ltl\",\"function\":\"f\",\"node\":3,\
             \"rule\":\"ltl.successor-missing\",\"message\":\"no node 7\"}"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new("wf-asm", "g\"h\\", None, "r", "line\nbreak");
        let j = d.to_json();
        assert!(j.contains("g\\\"h\\\\"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"node\":null"));
    }
}
