//! A generic view of CFG-shaped IRs.
//!
//! Every IR between RTL and Mach is a graph of instructions over some notion
//! of "variable" (pseudo-registers, abstract locations, machine registers).
//! [`CfgView`] abstracts just enough structure — entry, node set, successor
//! edges, uses and defs — for one toolkit (reachability, reverse postorder,
//! dominators, dataflow) to serve them all.
//!
//! Graph-shaped IRs (RTL, LTL) implement the trait directly; list-shaped IRs
//! (Linear, Mach) get wrapper views ([`LinearCfg`], [`MachCfg`]) whose nodes
//! are instruction indices and whose edges decode labels and fallthrough.

use std::collections::{BTreeMap, BTreeSet};

use backend::linear::LinFunction;
use backend::ltl::{LtlFunction, LtlInst};
use backend::mach::{MachFunction, MachInst};
use backend::{LinInst, LOp};
use compcerto_core::iface::abi;
use compcerto_core::regs::{Loc, Mreg};
use rtl::RtlFunction;

/// A control-flow graph over variables of type [`CfgView::Var`].
///
/// Implementations must be *total* on arbitrary (possibly ill-formed) input:
/// `successors` of a missing node is empty, dangling successor ids are
/// returned as-is (the traversals below skip ids without a node, and the
/// well-formedness lints report them).
pub trait CfgView {
    /// The variable sort this IR reads and writes.
    type Var: Ord + Copy;

    /// The entry node.
    fn entry(&self) -> u32;

    /// All node identifiers, ascending.
    fn node_ids(&self) -> Vec<u32>;

    /// Whether `n` names an instruction.
    fn has_node(&self, n: u32) -> bool;

    /// Successor edges of `n` (empty if `n` is missing).
    fn successors(&self, n: u32) -> Vec<u32>;

    /// Variables read at `n`.
    fn uses(&self, n: u32) -> Vec<Self::Var>;

    /// Variables written at `n`.
    fn defs(&self, n: u32) -> Vec<Self::Var>;
}

/// The set of nodes reachable from the entry.
pub fn reachable<G: CfgView + ?Sized>(g: &G) -> BTreeSet<u32> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut stack = vec![g.entry()];
    while let Some(n) = stack.pop() {
        if !g.has_node(n) || !seen.insert(n) {
            continue;
        }
        for s in g.successors(n) {
            stack.push(s);
        }
    }
    seen
}

/// Reverse postorder of the reachable nodes (iterative DFS with an explicit
/// frame stack; dangling successors are skipped).
pub fn reverse_postorder<G: CfgView + ?Sized>(g: &G) -> Vec<u32> {
    let mut post: Vec<u32> = Vec::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    if !g.has_node(g.entry()) {
        return post;
    }
    // Frame: (node, next successor index to explore).
    let mut stack: Vec<(u32, usize)> = vec![(g.entry(), 0)];
    seen.insert(g.entry());
    while let Some((n, i)) = stack.pop() {
        let succs = g.successors(n);
        let mut advanced = false;
        for (j, s) in succs.iter().enumerate().skip(i) {
            if g.has_node(*s) && seen.insert(*s) {
                stack.push((n, j + 1));
                stack.push((*s, 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            post.push(n);
        }
    }
    post.reverse();
    post
}

/// Deduplicated predecessor map: each CFG edge appears once even when an
/// instruction lists the same successor twice.
pub fn predecessors<G: CfgView + ?Sized>(g: &G) -> BTreeMap<u32, Vec<u32>> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for n in g.node_ids() {
        let mut succs = g.successors(n);
        succs.sort_unstable();
        succs.dedup();
        for s in succs {
            preds.entry(s).or_default().push(n);
        }
    }
    preds
}

// ---------------------------------------------------------------------------
// RTL
// ---------------------------------------------------------------------------

impl CfgView for RtlFunction {
    type Var = rtl::PReg;

    fn entry(&self) -> u32 {
        self.entry
    }

    fn node_ids(&self) -> Vec<u32> {
        self.code.keys().copied().collect()
    }

    fn has_node(&self, n: u32) -> bool {
        self.code.contains_key(&n)
    }

    fn successors(&self, n: u32) -> Vec<u32> {
        self.code.get(&n).map(|i| i.successors()).unwrap_or_default()
    }

    fn uses(&self, n: u32) -> Vec<rtl::PReg> {
        self.code.get(&n).map(|i| i.uses()).unwrap_or_default()
    }

    fn defs(&self, n: u32) -> Vec<rtl::PReg> {
        self.code
            .get(&n)
            .and_then(|i| i.def())
            .into_iter()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// LTL
// ---------------------------------------------------------------------------

fn lop_uses(op: &LOp) -> Vec<Loc> {
    match op {
        LOp::Move(l) | LOp::Unop(_, l) | LOp::BinopImm(_, l, _) => vec![*l],
        LOp::Binop(_, a, b) => vec![*a, *b],
        _ => vec![],
    }
}

impl CfgView for LtlFunction {
    type Var = Loc;

    fn entry(&self) -> u32 {
        self.entry
    }

    fn node_ids(&self) -> Vec<u32> {
        self.code.keys().copied().collect()
    }

    fn has_node(&self, n: u32) -> bool {
        self.code.contains_key(&n)
    }

    fn successors(&self, n: u32) -> Vec<u32> {
        self.code.get(&n).map(|i| i.successors()).unwrap_or_default()
    }

    fn uses(&self, n: u32) -> Vec<Loc> {
        match self.code.get(&n) {
            Some(LtlInst::Op(op, _, _)) => lop_uses(op),
            Some(LtlInst::Load(_, base, _, _, _)) => vec![*base],
            Some(LtlInst::Store(_, base, _, src, _)) => vec![*base, *src],
            Some(LtlInst::Call(_, sig, _)) => abi::loc_arguments(sig),
            Some(LtlInst::Cond(l, _, _)) => vec![*l],
            Some(LtlInst::Return) => match self.sig.ret {
                Some(_) => vec![Loc::Reg(abi::RESULT_REG)],
                None => vec![],
            },
            _ => vec![],
        }
    }

    fn defs(&self, n: u32) -> Vec<Loc> {
        match self.code.get(&n) {
            Some(LtlInst::Op(_, dst, _)) | Some(LtlInst::Load(_, _, _, dst, _)) => vec![*dst],
            // A call clobbers the result register (and, semantically, every
            // caller-save register — the allocation validator accounts for
            // that separately via `crosses_call` liveness).
            Some(LtlInst::Call(_, _, _)) => vec![Loc::Reg(abi::RESULT_REG)],
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Linear (list-shaped; nodes are instruction indices)
// ---------------------------------------------------------------------------

/// A CFG view of a [`LinFunction`]: node `i` is instruction `code[i]`,
/// branches resolve labels, non-control instructions fall through to `i+1`.
pub struct LinearCfg<'a> {
    f: &'a LinFunction,
    labels: BTreeMap<u32, usize>,
}

impl<'a> LinearCfg<'a> {
    /// Build the view (resolves each label to its *first* occurrence, as the
    /// Linear semantics does).
    pub fn new(f: &'a LinFunction) -> LinearCfg<'a> {
        let mut labels = BTreeMap::new();
        for (i, inst) in f.code.iter().enumerate() {
            if let LinInst::Label(l) = inst {
                labels.entry(*l).or_insert(i);
            }
        }
        LinearCfg { f, labels }
    }

    /// The underlying function.
    pub fn function(&self) -> &LinFunction {
        self.f
    }
}

impl CfgView for LinearCfg<'_> {
    type Var = Loc;

    fn entry(&self) -> u32 {
        0
    }

    fn node_ids(&self) -> Vec<u32> {
        (0..self.f.code.len() as u32).collect()
    }

    fn has_node(&self, n: u32) -> bool {
        (n as usize) < self.f.code.len()
    }

    fn successors(&self, n: u32) -> Vec<u32> {
        let next = n + 1;
        match self.f.code.get(n as usize) {
            Some(LinInst::Return) => vec![],
            Some(LinInst::Goto(l)) => self.labels.get(l).map(|i| *i as u32).into_iter().collect(),
            Some(LinInst::CondGoto(_, l)) => {
                let mut out: Vec<u32> = self.labels.get(l).map(|i| *i as u32).into_iter().collect();
                out.push(next);
                out
            }
            Some(_) => vec![next],
            None => vec![],
        }
    }

    fn uses(&self, n: u32) -> Vec<Loc> {
        match self.f.code.get(n as usize) {
            Some(LinInst::Op(op, _)) => lop_uses(op),
            Some(LinInst::Load(_, base, _, _)) => vec![*base],
            Some(LinInst::Store(_, base, _, src)) => vec![*base, *src],
            Some(LinInst::Call(_, sig)) => abi::loc_arguments(sig),
            Some(LinInst::CondGoto(l, _)) => vec![*l],
            Some(LinInst::Return) => match self.f.sig.ret {
                Some(_) => vec![Loc::Reg(abi::RESULT_REG)],
                None => vec![],
            },
            _ => vec![],
        }
    }

    fn defs(&self, n: u32) -> Vec<Loc> {
        match self.f.code.get(n as usize) {
            Some(LinInst::Op(_, dst)) | Some(LinInst::Load(_, _, _, dst)) => vec![*dst],
            Some(LinInst::Call(_, _)) => vec![Loc::Reg(abi::RESULT_REG)],
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Mach (list-shaped)
// ---------------------------------------------------------------------------

/// A CFG view of a [`MachFunction`], mirroring [`LinearCfg`] over machine
/// registers.
pub struct MachCfg<'a> {
    f: &'a MachFunction,
    labels: BTreeMap<u32, usize>,
}

impl<'a> MachCfg<'a> {
    /// Build the view.
    pub fn new(f: &'a MachFunction) -> MachCfg<'a> {
        let mut labels = BTreeMap::new();
        for (i, inst) in f.code.iter().enumerate() {
            if let MachInst::Label(l) = inst {
                labels.entry(*l).or_insert(i);
            }
        }
        MachCfg { f, labels }
    }

    /// The underlying function.
    pub fn function(&self) -> &MachFunction {
        self.f
    }
}

impl CfgView for MachCfg<'_> {
    type Var = Mreg;

    fn entry(&self) -> u32 {
        0
    }

    fn node_ids(&self) -> Vec<u32> {
        (0..self.f.code.len() as u32).collect()
    }

    fn has_node(&self, n: u32) -> bool {
        (n as usize) < self.f.code.len()
    }

    fn successors(&self, n: u32) -> Vec<u32> {
        let next = n + 1;
        match self.f.code.get(n as usize) {
            Some(MachInst::Return) => vec![],
            Some(MachInst::Goto(l)) => self.labels.get(l).map(|i| *i as u32).into_iter().collect(),
            Some(MachInst::CondGoto(_, l)) => {
                let mut out: Vec<u32> = self.labels.get(l).map(|i| *i as u32).into_iter().collect();
                out.push(next);
                out
            }
            Some(_) => vec![next],
            None => vec![],
        }
    }

    fn uses(&self, n: u32) -> Vec<Mreg> {
        use backend::mach::MOp;
        match self.f.code.get(n as usize) {
            Some(MachInst::Op(op, _)) => match op {
                MOp::Move(s) | MOp::Unop(_, s) | MOp::BinopImm(_, s, _) => vec![*s],
                MOp::Binop(_, a, b) => vec![*a, *b],
                _ => vec![],
            },
            Some(MachInst::Load(_, base, _, _)) => vec![*base],
            Some(MachInst::Store(_, base, _, src)) => vec![*base, *src],
            Some(MachInst::SetStack(src, _)) => vec![*src],
            Some(MachInst::CondGoto(r, _)) => vec![*r],
            Some(MachInst::Call(_, sig)) => abi::loc_arguments(sig)
                .into_iter()
                .filter_map(|l| match l {
                    Loc::Reg(r) => Some(r),
                    _ => None,
                })
                .collect(),
            Some(MachInst::Return) => match self.f.sig.ret {
                Some(_) => vec![abi::RESULT_REG],
                None => vec![],
            },
            _ => vec![],
        }
    }

    fn defs(&self, n: u32) -> Vec<Mreg> {
        match self.f.code.get(n as usize) {
            Some(MachInst::Op(_, dst))
            | Some(MachInst::Load(_, _, _, dst))
            | Some(MachInst::GetStack(_, dst))
            | Some(MachInst::GetParam(_, dst)) => vec![*dst],
            Some(MachInst::Call(_, _)) => vec![abi::RESULT_REG],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use rtl::{Inst, RtlOp};
    use std::collections::BTreeMap as Map;

    fn diamond() -> RtlFunction {
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Int(1), 2, 3));
        code.insert(2, Inst::Op(RtlOp::Int(2), 2, 3));
        code.insert(3, Inst::Return(Some(2)));
        RtlFunction {
            name: "d".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.first(), Some(&0));
        assert_eq!(rpo.len(), 4);
        // The join node comes after both arms.
        let pos = |n: u32| rpo.iter().position(|x| *x == n).unwrap_or(usize::MAX);
        assert!(pos(3) > pos(1) && pos(3) > pos(2));
        assert_eq!(reachable(&f).len(), 4);
    }

    #[test]
    fn dangling_successors_are_skipped() {
        let mut f = diamond();
        f.code.insert(1, Inst::Op(RtlOp::Int(1), 2, 99)); // 99 missing
        let rpo = reverse_postorder(&f);
        assert!(!rpo.contains(&99));
        assert!(reachable(&f).contains(&1));
    }

    #[test]
    fn predecessors_deduplicate_parallel_edges() {
        let mut code = Map::new();
        code.insert(0, Inst::Cond(1, 1, 1));
        code.insert(1, Inst::Return(None));
        let f = RtlFunction {
            name: "p".into(),
            sig: Signature::int_fn(1),
            params: vec![1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 2,
        };
        assert_eq!(predecessors(&f)[&1], vec![0]);
    }
}
