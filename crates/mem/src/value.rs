//! Runtime values and the operations CompCertO languages share on them.

use std::fmt;

use crate::mem::BlockId;

/// Machine-level types of runtime values (CompCert's `AST.typ`).
///
/// Pointers are 64-bit in this model, so they have type [`Typ::I64`]-like
/// width but keep their own tag for the `wt` invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Typ {
    /// 32-bit integer.
    I32,
    /// 64-bit integer; also the type of pointers.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl Typ {
    /// Size of a value of this type, in bytes.
    pub fn size(self) -> i64 {
        match self {
            Typ::I32 | Typ::F32 => 4,
            Typ::I64 | Typ::F64 => 8,
        }
    }
}

impl fmt::Display for Typ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Typ::I32 => "i32",
            Typ::I64 => "i64",
            Typ::F32 => "f32",
            Typ::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A runtime value (paper Fig. 4).
///
/// `Undef` is the undefined value; simulation relations allow it to be
/// *refined* into any concrete value (see [`Val::lessdef`]). Pointers pair a
/// memory block identifier with a byte offset.
#[derive(Debug, Clone, Copy)]
pub enum Val {
    /// The undefined value.
    Undef,
    /// 32-bit machine integer.
    Int(i32),
    /// 64-bit machine integer.
    Long(i64),
    /// 32-bit float (`single` in the paper).
    Single(f32),
    /// 64-bit float.
    Float(f64),
    /// Pointer into block `.0` at byte offset `.1`.
    Ptr(BlockId, i64),
}

impl PartialEq for Val {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Val::Undef, Val::Undef) => true,
            (Val::Int(a), Val::Int(b)) => a == b,
            (Val::Long(a), Val::Long(b)) => a == b,
            (Val::Single(a), Val::Single(b)) => a.to_bits() == b.to_bits(),
            (Val::Float(a), Val::Float(b)) => a.to_bits() == b.to_bits(),
            (Val::Ptr(a, x), Val::Ptr(b, y)) => a == b && x == y,
            _ => false,
        }
    }
}

impl Eq for Val {}

impl std::hash::Hash for Val {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Val::Undef => {}
            Val::Int(n) => n.hash(state),
            Val::Long(n) => n.hash(state),
            Val::Single(x) => x.to_bits().hash(state),
            Val::Float(x) => x.to_bits().hash(state),
            Val::Ptr(b, o) => {
                b.hash(state);
                o.hash(state);
            }
        }
    }
}

impl Default for Val {
    fn default() -> Self {
        Val::Undef
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Undef => write!(f, "undef"),
            Val::Int(n) => write!(f, "{n}"),
            Val::Long(n) => write!(f, "{n}L"),
            Val::Single(x) => write!(f, "{x}f"),
            Val::Float(x) => write!(f, "{x}"),
            Val::Ptr(b, o) => write!(f, "&b{b}+{o}"),
        }
    }
}

impl Val {
    /// The canonical "true" value.
    pub const TRUE: Val = Val::Int(1);
    /// The canonical "false" value.
    pub const FALSE: Val = Val::Int(0);

    /// Build a boolean value.
    pub fn of_bool(b: bool) -> Val {
        if b {
            Val::TRUE
        } else {
            Val::FALSE
        }
    }

    /// Value refinement `v1 ≤v v2` (paper §3.1): `undef` may be refined into
    /// any value; otherwise values must be equal.
    pub fn lessdef(&self, other: &Val) -> bool {
        matches!(self, Val::Undef) || self == other
    }

    /// Does this value have machine type `t`? `Undef` has every type,
    /// pointers have type [`Typ::I64`] (64-bit model).
    pub fn has_type(&self, t: Typ) -> bool {
        match (self, t) {
            (Val::Undef, _) => true,
            (Val::Int(_), Typ::I32) => true,
            (Val::Long(_), Typ::I64) => true,
            (Val::Ptr(_, _), Typ::I64) => true,
            (Val::Single(_), Typ::F32) => true,
            (Val::Float(_), Typ::F64) => true,
            _ => false,
        }
    }

    /// Coerce the value to type `t`, replacing ill-typed values by `Undef`
    /// (used by the `wt` invariant to normalize interface data).
    pub fn ensure_type(self, t: Typ) -> Val {
        if self.has_type(t) {
            self
        } else {
            Val::Undef
        }
    }

    /// Truth value of this value as a branch condition, if defined.
    pub fn truth(&self) -> Option<bool> {
        match self {
            Val::Int(n) => Some(*n != 0),
            Val::Long(n) => Some(*n != 0),
            Val::Ptr(_, _) => Some(true),
            _ => None,
        }
    }

    /// Is this a defined (non-`Undef`) value?
    pub fn is_defined(&self) -> bool {
        !matches!(self, Val::Undef)
    }

    // ---- 32-bit integer arithmetic -------------------------------------

    /// Addition. Supports `int+int`, `long+long` and pointer arithmetic
    /// `ptr+int`/`ptr+long`/`int+ptr`/`long+ptr`; anything else is `Undef`.
    pub fn add(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a.wrapping_add(b)),
            (Val::Long(a), Val::Long(b)) => Val::Long(a.wrapping_add(b)),
            (Val::Ptr(b, o), Val::Int(n)) | (Val::Int(n), Val::Ptr(b, o)) => {
                Val::Ptr(b, o.wrapping_add(n as i64))
            }
            (Val::Ptr(b, o), Val::Long(n)) | (Val::Long(n), Val::Ptr(b, o)) => {
                Val::Ptr(b, o.wrapping_add(n))
            }
            (Val::Float(a), Val::Float(b)) => Val::Float(a + b),
            (Val::Single(a), Val::Single(b)) => Val::Single(a + b),
            _ => Val::Undef,
        }
    }

    /// Subtraction; `ptr - int` and same-block `ptr - ptr` are defined.
    pub fn sub(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a.wrapping_sub(b)),
            (Val::Long(a), Val::Long(b)) => Val::Long(a.wrapping_sub(b)),
            (Val::Ptr(b, o), Val::Int(n)) => Val::Ptr(b, o.wrapping_sub(n as i64)),
            (Val::Ptr(b, o), Val::Long(n)) => Val::Ptr(b, o.wrapping_sub(n)),
            (Val::Ptr(b1, o1), Val::Ptr(b2, o2)) if b1 == b2 => Val::Long(o1.wrapping_sub(o2)),
            (Val::Float(a), Val::Float(b)) => Val::Float(a - b),
            (Val::Single(a), Val::Single(b)) => Val::Single(a - b),
            _ => Val::Undef,
        }
    }

    /// Multiplication.
    pub fn mul(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a.wrapping_mul(b)),
            (Val::Long(a), Val::Long(b)) => Val::Long(a.wrapping_mul(b)),
            (Val::Float(a), Val::Float(b)) => Val::Float(a * b),
            (Val::Single(a), Val::Single(b)) => Val::Single(a * b),
            _ => Val::Undef,
        }
    }

    /// Signed division; division by zero or overflow is `Undef`.
    pub fn divs(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => match a.checked_div(b) {
                Some(q) => Val::Int(q),
                None => Val::Undef,
            },
            (Val::Long(a), Val::Long(b)) => match a.checked_div(b) {
                Some(q) => Val::Long(q),
                None => Val::Undef,
            },
            (Val::Float(a), Val::Float(b)) => Val::Float(a / b),
            (Val::Single(a), Val::Single(b)) => Val::Single(a / b),
            _ => Val::Undef,
        }
    }

    /// Signed remainder; remainder by zero or overflow is `Undef`.
    pub fn mods(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => match a.checked_rem(b) {
                Some(r) => Val::Int(r),
                None => Val::Undef,
            },
            (Val::Long(a), Val::Long(b)) => match a.checked_rem(b) {
                Some(r) => Val::Long(r),
                None => Val::Undef,
            },
            _ => Val::Undef,
        }
    }

    /// Bitwise and.
    pub fn and(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a & b),
            (Val::Long(a), Val::Long(b)) => Val::Long(a & b),
            _ => Val::Undef,
        }
    }

    /// Bitwise or.
    pub fn or(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a | b),
            (Val::Long(a), Val::Long(b)) => Val::Long(a | b),
            _ => Val::Undef,
        }
    }

    /// Bitwise xor.
    pub fn xor(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::Int(a ^ b),
            (Val::Long(a), Val::Long(b)) => Val::Long(a ^ b),
            _ => Val::Undef,
        }
    }

    /// Shift left; shift amounts ≥ bit width are `Undef` (as in CompCert).
    pub fn shl(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) if (0..32).contains(&b) => {
                Val::Int(a.wrapping_shl(b as u32))
            }
            (Val::Long(a), Val::Int(b)) if (0..64).contains(&b) => {
                Val::Long(a.wrapping_shl(b as u32))
            }
            _ => Val::Undef,
        }
    }

    /// Arithmetic shift right.
    pub fn shr(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) if (0..32).contains(&b) => {
                Val::Int(a.wrapping_shr(b as u32))
            }
            (Val::Long(a), Val::Int(b)) if (0..64).contains(&b) => {
                Val::Long(a.wrapping_shr(b as u32))
            }
            _ => Val::Undef,
        }
    }

    /// Logical shift right.
    pub fn shru(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) if (0..32).contains(&b) => {
                Val::Int(((a as u32).wrapping_shr(b as u32)) as i32)
            }
            (Val::Long(a), Val::Int(b)) if (0..64).contains(&b) => {
                Val::Long(((a as u64).wrapping_shr(b as u32)) as i64)
            }
            _ => Val::Undef,
        }
    }

    /// Two's-complement negation.
    pub fn neg(self) -> Val {
        match self {
            Val::Int(a) => Val::Int(a.wrapping_neg()),
            Val::Long(a) => Val::Long(a.wrapping_neg()),
            Val::Float(a) => Val::Float(-a),
            Val::Single(a) => Val::Single(-a),
            _ => Val::Undef,
        }
    }

    /// Bitwise complement.
    pub fn not(self) -> Val {
        match self {
            Val::Int(a) => Val::Int(!a),
            Val::Long(a) => Val::Long(!a),
            _ => Val::Undef,
        }
    }

    /// Boolean negation (`!x` in C): defined on ints, longs and pointers.
    pub fn bool_not(self) -> Val {
        match self.truth() {
            Some(b) => Val::of_bool(!b),
            None => Val::Undef,
        }
    }

    /// Signed comparison producing a boolean [`Val`]. Pointer comparisons are
    /// defined within a single block (offsets compared); equality/inequality
    /// across distinct blocks is defined and false/true respectively, as a
    /// deliberate simplification of CompCert's weak-validity side conditions
    /// (documented in DESIGN.md).
    pub fn cmp(self, op: Cmp, other: Val) -> Val {
        use std::cmp::Ordering;
        let ord: Option<Ordering> = match (self, other) {
            (Val::Int(a), Val::Int(b)) => Some(a.cmp(&b)),
            (Val::Long(a), Val::Long(b)) => Some(a.cmp(&b)),
            (Val::Float(a), Val::Float(b)) => a.partial_cmp(&b),
            (Val::Single(a), Val::Single(b)) => a.partial_cmp(&b),
            (Val::Ptr(b1, o1), Val::Ptr(b2, o2)) => {
                if b1 == b2 {
                    Some(o1.cmp(&o2))
                } else {
                    return match op {
                        Cmp::Eq => Val::FALSE,
                        Cmp::Ne => Val::TRUE,
                        _ => Val::Undef,
                    };
                }
            }
            (Val::Ptr(_, _), Val::Long(0)) => {
                return match op {
                    Cmp::Eq => Val::FALSE,
                    Cmp::Ne => Val::TRUE,
                    _ => Val::Undef,
                }
            }
            (Val::Long(0), Val::Ptr(_, _)) => {
                return match op {
                    Cmp::Eq => Val::FALSE,
                    Cmp::Ne => Val::TRUE,
                    _ => Val::Undef,
                }
            }
            _ => None,
        };
        match ord {
            Some(o) => Val::of_bool(op.holds(o)),
            None => Val::Undef,
        }
    }

    /// Unsigned 32/64-bit comparison.
    pub fn cmpu(self, op: Cmp, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => Val::of_bool(op.holds((a as u32).cmp(&(b as u32)))),
            (Val::Long(a), Val::Long(b)) => Val::of_bool(op.holds((a as u64).cmp(&(b as u64)))),
            _ => self.cmp(op, other),
        }
    }

    // ---- conversions ----------------------------------------------------

    /// Sign-extend a 32-bit int to 64 bits.
    pub fn longofint(self) -> Val {
        match self {
            Val::Int(n) => Val::Long(n as i64),
            _ => Val::Undef,
        }
    }

    /// Zero-extend a 32-bit int to 64 bits.
    pub fn longofintu(self) -> Val {
        match self {
            Val::Int(n) => Val::Long((n as u32) as i64),
            _ => Val::Undef,
        }
    }

    /// Truncate a 64-bit value to 32 bits.
    pub fn intoflong(self) -> Val {
        match self {
            Val::Long(n) => Val::Int(n as i32),
            _ => Val::Undef,
        }
    }
}

/// Comparison operators shared by all languages in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cmp {
    /// Does an `Ordering` satisfy this comparison?
    pub fn holds(self, o: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Cmp::Eq => o == Equal,
            Cmp::Ne => o != Equal,
            Cmp::Lt => o == Less,
            Cmp::Le => o != Greater,
            Cmp::Gt => o == Greater,
            Cmp::Ge => o != Less,
        }
    }

    /// The negated comparison (`!(a < b)` is `a >= b`).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    /// The comparison with its arguments swapped (`a < b` is `b > a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lessdef_undef_below_everything() {
        assert!(Val::Undef.lessdef(&Val::Int(5)));
        assert!(Val::Undef.lessdef(&Val::Undef));
        assert!(!Val::Int(5).lessdef(&Val::Int(6)));
        assert!(Val::Int(5).lessdef(&Val::Int(5)));
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Val::Ptr(3, 8);
        assert_eq!(p.add(Val::Int(4)), Val::Ptr(3, 12));
        assert_eq!(p.sub(Val::Ptr(3, 2)), Val::Long(6));
        assert_eq!(p.sub(Val::Ptr(4, 2)), Val::Undef);
    }

    #[test]
    fn undef_propagates() {
        assert_eq!(Val::Undef.add(Val::Int(1)), Val::Undef);
        assert_eq!(Val::Int(1).mul(Val::Float(2.0)), Val::Undef);
    }

    #[test]
    fn division_by_zero_is_undef() {
        assert_eq!(Val::Int(1).divs(Val::Int(0)), Val::Undef);
        assert_eq!(Val::Int(i32::MIN).divs(Val::Int(-1)), Val::Undef);
        assert_eq!(Val::Long(10).mods(Val::Long(0)), Val::Undef);
    }

    #[test]
    fn comparisons() {
        assert_eq!(Val::Int(1).cmp(Cmp::Lt, Val::Int(2)), Val::TRUE);
        assert_eq!(Val::Int(-1).cmpu(Cmp::Lt, Val::Int(1)), Val::FALSE);
        assert_eq!(Val::Ptr(1, 4).cmp(Cmp::Lt, Val::Ptr(1, 8)), Val::TRUE);
        assert_eq!(Val::Ptr(1, 4).cmp(Cmp::Eq, Val::Ptr(2, 4)), Val::FALSE);
        assert_eq!(Val::Ptr(1, 4).cmp(Cmp::Lt, Val::Ptr(2, 4)), Val::Undef);
    }

    #[test]
    fn typing() {
        assert!(Val::Int(3).has_type(Typ::I32));
        assert!(Val::Ptr(0, 0).has_type(Typ::I64));
        assert!(Val::Undef.has_type(Typ::F32));
        assert!(!Val::Int(3).has_type(Typ::I64));
        assert_eq!(Val::Int(3).ensure_type(Typ::I64), Val::Undef);
    }

    #[test]
    fn shifts_out_of_range_undef() {
        assert_eq!(Val::Int(1).shl(Val::Int(32)), Val::Undef);
        assert_eq!(Val::Int(1).shl(Val::Int(31)), Val::Int(i32::MIN));
        assert_eq!(Val::Int(-2).shru(Val::Int(1)), Val::Int(0x7FFF_FFFF));
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Val::Int(-1).longofint(), Val::Long(-1));
        assert_eq!(Val::Int(-1).longofintu(), Val::Long(0xFFFF_FFFF));
        assert_eq!(Val::Long(0x1_0000_0005).intoflong(), Val::Int(5));
    }
}
