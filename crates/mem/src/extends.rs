//! The memory-extension relation `m1 ≤m m2` (paper §4.1).

use crate::mem::Mem;
use crate::memval::MemVal;
use crate::perm::Perm;

/// Byte-level refinement `mv1 ≤ mv2`: undefined contents may be refined, and
/// fragments are related pointwise by value refinement.
pub fn memval_lessdef(mv1: &MemVal, mv2: &MemVal) -> bool {
    match (mv1, mv2) {
        (MemVal::Undef, _) => true,
        (MemVal::Byte(a), MemVal::Byte(b)) => a == b,
        (MemVal::Fragment(v1, i), MemVal::Fragment(v2, j)) => i == j && v1.lessdef(v2),
        _ => false,
    }
}

/// Decide the memory extension relation `m1 ≤m m2` on concrete states.
///
/// The target `m2` must have the same allocation support, at least the
/// permissions of `m1` everywhere, and contents that refine those of `m1`
/// (undefined source bytes may become defined in the target). The target may
/// have *larger* block bounds — extension passes grow stack blocks.
pub fn extends(m1: &Mem, m2: &Mem) -> bool {
    if m1.next_block() != m2.next_block() {
        return false;
    }
    for b in m1.blocks() {
        let Ok((lo, hi)) = m1.bounds(b) else {
            return false;
        };
        if !m2.valid_block(b) {
            return false;
        }
        for ofs in lo..hi {
            let p1 = m1.perm(b, ofs);
            if p1 == Perm::None {
                continue;
            }
            if !m2.perm(b, ofs).allows(p1) {
                return false;
            }
            if p1.allows(Perm::Readable) {
                let c1 = m1.content(b, ofs);
                let c2 = m2.content(b, ofs);
                match (c1, c2) {
                    (Some(a), Some(b)) => {
                        if !memval_lessdef(&a, &b) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::value::Val;

    #[test]
    fn extension_is_reflexive() {
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        m.store(Chunk::I32, b, 0, Val::Int(1)).unwrap();
        assert!(extends(&m, &m));
    }

    #[test]
    fn target_may_define_undef_bytes() {
        let mut m1 = Mem::new();
        let b = m1.alloc(0, 8);
        let mut m2 = m1.clone();
        m2.store(Chunk::I32, b, 0, Val::Int(99)).unwrap();
        assert!(extends(&m1, &m2));
        assert!(!extends(&m2, &m1));
    }

    #[test]
    fn target_may_have_larger_blocks() {
        let mut m1 = Mem::new();
        m1.alloc(0, 4);
        let mut m2 = Mem::new();
        m2.alloc(0, 16);
        assert!(extends(&m1, &m2));
        assert!(!extends(&m2, &m1));
    }

    #[test]
    fn support_must_match() {
        let mut m1 = Mem::new();
        m1.alloc(0, 4);
        let m2 = Mem::new();
        assert!(!extends(&m1, &m2));
    }

    #[test]
    fn differing_defined_bytes_not_extension() {
        let mut m1 = Mem::new();
        let b = m1.alloc(0, 8);
        m1.store(Chunk::I32, b, 0, Val::Int(1)).unwrap();
        let mut m2 = m1.clone();
        m2.store(Chunk::I32, b, 0, Val::Int(2)).unwrap();
        assert!(!extends(&m1, &m2));
    }
}
