//! Byte-level memory contents (CompCert's `memval`).

use crate::chunk::Chunk;
use crate::value::Val;

/// One byte of memory content.
///
/// Pointers (and any value whose representation must stay abstract) are
/// stored as a sequence of [`MemVal::Fragment`]s — the `i`-th fragment of the
/// value `v`. Loading reconstitutes the value only if all fragments are
/// present, in order, and agree on `v`; otherwise the load yields
/// [`Val::Undef`]. Numeric values are stored as concrete little-endian bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemVal {
    /// Uninitialized contents.
    Undef,
    /// A concrete byte.
    Byte(u8),
    /// The `usize`-th byte of the abstract value.
    Fragment(Val, u8),
}

impl Default for MemVal {
    fn default() -> Self {
        MemVal::Undef
    }
}

/// Encode a value for storage through `chunk` as `chunk.size()` memvals.
pub(crate) fn encode(chunk: Chunk, v: Val) -> Vec<MemVal> {
    let n = chunk.size() as usize;
    let v = chunk.normalize(v);
    // Any64 stores every defined value abstractly, as fragments.
    if chunk == Chunk::Any64 {
        return match v {
            Val::Undef => vec![MemVal::Undef; n],
            _ => (0..n as u8).map(|i| MemVal::Fragment(v, i)).collect(),
        };
    }
    match v {
        Val::Undef => vec![MemVal::Undef; n],
        Val::Ptr(_, _) => (0..n as u8).map(|i| MemVal::Fragment(v, i)).collect(),
        Val::Int(x) => bytes_of(&(x as u32 as u64).to_le_bytes()[..n]),
        Val::Long(x) => bytes_of(&(x as u64).to_le_bytes()[..n]),
        Val::Single(x) => bytes_of(&x.to_bits().to_le_bytes()[..n]),
        Val::Float(x) => bytes_of(&x.to_bits().to_le_bytes()[..n]),
    }
}

fn bytes_of(bs: &[u8]) -> Vec<MemVal> {
    bs.iter().copied().map(MemVal::Byte).collect()
}

/// Encode a value for storage through `chunk` as raw little-endian bytes —
/// the concrete-block fast path of [`crate::mem::Mem::store`]. Returns the
/// full 8-byte buffer plus the number of significant bytes (`chunk.size()`),
/// or `None` when the encoding must stay abstract (`Any64`, pointers,
/// `Undef`), in which case the caller falls back to [`encode`].
///
/// Invariant: when this returns `Some((raw, n))`, `encode(chunk, v)` is
/// exactly `raw[..n]` wrapped in [`MemVal::Byte`]s.
pub(crate) fn encode_scalar_bytes(chunk: Chunk, v: Val) -> Option<([u8; 8], usize)> {
    if chunk == Chunk::Any64 {
        return None;
    }
    let raw = match chunk.normalize(v) {
        Val::Undef | Val::Ptr(_, _) => return None,
        Val::Int(x) => x as u32 as u64,
        Val::Long(x) => x as u64,
        Val::Single(x) => x.to_bits() as u64,
        Val::Float(x) => x.to_bits(),
    };
    Some((raw.to_le_bytes(), chunk.size() as usize))
}

/// Decode raw bytes loaded through `chunk` — the concrete-block fast path
/// of [`crate::mem::Mem::load`]. Mirror of [`decode`]'s concrete branch:
/// agrees with `decode(chunk, bytes_of(bs))` for every chunk (including
/// `Any64`, which only reconstitutes fragments and thus yields `Undef`).
pub(crate) fn decode_scalar_bytes(chunk: Chunk, bs: &[u8]) -> Val {
    debug_assert_eq!(bs.len(), chunk.size() as usize);
    let mut buf = [0u8; 8];
    buf[..bs.len().min(8)].copy_from_slice(&bs[..bs.len().min(8)]);
    let raw = u64::from_le_bytes(buf);
    match chunk {
        Chunk::I8S => Val::Int((raw as u8 as i8) as i32),
        Chunk::I8U => Val::Int(raw as u8 as i32),
        Chunk::I16S => Val::Int((raw as u16 as i16) as i32),
        Chunk::I16U => Val::Int(raw as u16 as i32),
        Chunk::I32 => Val::Int(raw as u32 as i32),
        Chunk::I64 | Chunk::Ptr => Val::Long(raw as i64),
        Chunk::Any64 => Val::Undef, // Many64 only reconstitutes fragments
        Chunk::F32 => Val::Single(f32::from_bits(raw as u32)),
        Chunk::F64 => Val::Float(f64::from_bits(raw)),
    }
}

/// Decode `chunk.size()` memvals loaded through `chunk` back into a value.
pub(crate) fn decode(chunk: Chunk, mvs: &[MemVal]) -> Val {
    debug_assert_eq!(mvs.len(), chunk.size() as usize);
    // Pointer reconstruction: all fragments of the same value, in order.
    if let MemVal::Fragment(v, 0) = &mvs[0] {
        let ok = mvs
            .iter()
            .enumerate()
            .all(|(i, mv)| matches!(mv, MemVal::Fragment(w, j) if w == v && *j == i as u8));
        if ok && mvs.len() == 8 {
            return match chunk {
                Chunk::Any64 => *v,
                Chunk::I64 | Chunk::Ptr if matches!(v, Val::Ptr(_, _)) => *v,
                _ => Val::Undef,
            };
        }
        return Val::Undef;
    }
    // Concrete bytes.
    let mut bs = [0u8; 8];
    for (i, mv) in mvs.iter().enumerate() {
        match mv {
            MemVal::Byte(b) => bs[i] = *b,
            _ => return Val::Undef,
        }
    }
    let raw = u64::from_le_bytes(bs);
    match chunk {
        Chunk::I8S => Val::Int((raw as u8 as i8) as i32),
        Chunk::I8U => Val::Int(raw as u8 as i32),
        Chunk::I16S => Val::Int((raw as u16 as i16) as i32),
        Chunk::I16U => Val::Int(raw as u16 as i32),
        Chunk::I32 => Val::Int(raw as u32 as i32),
        Chunk::I64 | Chunk::Ptr => Val::Long(raw as i64),
        Chunk::Any64 => Val::Undef, // Many64 only reconstitutes fragments
        Chunk::F32 => Val::Single(f32::from_bits(raw as u32)),
        Chunk::F64 => Val::Float(f64::from_bits(raw)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_int() {
        for v in [Val::Int(0), Val::Int(-1), Val::Int(123456)] {
            assert_eq!(decode(Chunk::I32, &encode(Chunk::I32, v)), v);
        }
    }

    #[test]
    fn roundtrip_long_and_ptr() {
        assert_eq!(
            decode(Chunk::I64, &encode(Chunk::I64, Val::Long(-42))),
            Val::Long(-42)
        );
        assert_eq!(
            decode(Chunk::Ptr, &encode(Chunk::Ptr, Val::Ptr(7, 16))),
            Val::Ptr(7, 16)
        );
        // A pointer read back through I64 is still the pointer (Mptr = I64).
        assert_eq!(
            decode(Chunk::I64, &encode(Chunk::Ptr, Val::Ptr(7, 16))),
            Val::Ptr(7, 16)
        );
    }

    #[test]
    fn narrow_roundtrips_truncate() {
        assert_eq!(
            decode(Chunk::I8U, &encode(Chunk::I8U, Val::Int(0x1FF))),
            Val::Int(0xFF)
        );
        assert_eq!(
            decode(Chunk::I16S, &encode(Chunk::I16S, Val::Int(0xFFFF))),
            Val::Int(-1)
        );
    }

    #[test]
    fn partial_pointer_is_undef() {
        let mut enc = encode(Chunk::Ptr, Val::Ptr(1, 0));
        enc[3] = MemVal::Byte(0);
        assert_eq!(decode(Chunk::Ptr, &enc), Val::Undef);
    }

    #[test]
    fn undef_bytes_decode_to_undef() {
        assert_eq!(decode(Chunk::I32, &vec![MemVal::Undef; 4]), Val::Undef);
        let mixed = [
            MemVal::Byte(1),
            MemVal::Undef,
            MemVal::Byte(0),
            MemVal::Byte(0),
        ];
        assert_eq!(decode(Chunk::I32, &mixed), Val::Undef);
    }

    #[test]
    fn scalar_byte_fast_path_agrees_with_memvals() {
        let chunks = [
            Chunk::I8S,
            Chunk::I8U,
            Chunk::I16S,
            Chunk::I16U,
            Chunk::I32,
            Chunk::I64,
            Chunk::Ptr,
            Chunk::F32,
            Chunk::F64,
            Chunk::Any64,
        ];
        let vals = [
            Val::Undef,
            Val::Int(-1),
            Val::Int(0x1234_5678),
            Val::Long(i64::MIN),
            Val::Single(2.5),
            Val::Float(-0.125),
            Val::Ptr(3, 8),
        ];
        for chunk in chunks {
            for v in vals {
                match encode_scalar_bytes(chunk, v) {
                    Some((raw, n)) => {
                        assert_eq!(n, chunk.size() as usize);
                        // Byte-for-byte agreement with the memval encoding…
                        assert_eq!(encode(chunk, v), bytes_of(&raw[..n]), "{chunk:?} {v:?}");
                        // …and with its decoding.
                        assert_eq!(
                            decode_scalar_bytes(chunk, &raw[..n]),
                            decode(chunk, &encode(chunk, v)),
                            "{chunk:?} {v:?}"
                        );
                    }
                    None => {
                        // The abstract cases: Any64, pointers, Undef.
                        assert!(
                            chunk == Chunk::Any64
                                || matches!(
                                    chunk.normalize(v),
                                    Val::Undef | Val::Ptr(_, _)
                                ),
                            "{chunk:?} {v:?} refused the fast path unexpectedly"
                        );
                    }
                }
            }
        }
        // decode_scalar_bytes agrees with decode on arbitrary raw bytes too.
        let bs = [0x80, 0xff, 0x01, 0x7f, 0x00, 0xaa, 0x55, 0x80];
        for chunk in chunks {
            let n = chunk.size() as usize;
            assert_eq!(
                decode_scalar_bytes(chunk, &bs[..n]),
                decode(chunk, &bytes_of(&bs[..n])),
                "{chunk:?}"
            );
        }
    }

    #[test]
    fn floats_roundtrip() {
        assert_eq!(
            decode(Chunk::F64, &encode(Chunk::F64, Val::Float(1.5))),
            Val::Float(1.5)
        );
        assert_eq!(
            decode(Chunk::F32, &encode(Chunk::F32, Val::Single(-2.25))),
            Val::Single(-2.25)
        );
    }
}
