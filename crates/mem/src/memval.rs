//! Byte-level memory contents (CompCert's `memval`).

use crate::chunk::Chunk;
use crate::value::Val;

/// One byte of memory content.
///
/// Pointers (and any value whose representation must stay abstract) are
/// stored as a sequence of [`MemVal::Fragment`]s — the `i`-th fragment of the
/// value `v`. Loading reconstitutes the value only if all fragments are
/// present, in order, and agree on `v`; otherwise the load yields
/// [`Val::Undef`]. Numeric values are stored as concrete little-endian bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemVal {
    /// Uninitialized contents.
    Undef,
    /// A concrete byte.
    Byte(u8),
    /// The `usize`-th byte of the abstract value.
    Fragment(Val, u8),
}

impl Default for MemVal {
    fn default() -> Self {
        MemVal::Undef
    }
}

/// Encode a value for storage through `chunk` as `chunk.size()` memvals.
pub(crate) fn encode(chunk: Chunk, v: Val) -> Vec<MemVal> {
    let n = chunk.size() as usize;
    let v = chunk.normalize(v);
    // Any64 stores every defined value abstractly, as fragments.
    if chunk == Chunk::Any64 {
        return match v {
            Val::Undef => vec![MemVal::Undef; n],
            _ => (0..n as u8).map(|i| MemVal::Fragment(v, i)).collect(),
        };
    }
    match v {
        Val::Undef => vec![MemVal::Undef; n],
        Val::Ptr(_, _) => (0..n as u8).map(|i| MemVal::Fragment(v, i)).collect(),
        Val::Int(x) => bytes_of(&(x as u32 as u64).to_le_bytes()[..n]),
        Val::Long(x) => bytes_of(&(x as u64).to_le_bytes()[..n]),
        Val::Single(x) => bytes_of(&x.to_bits().to_le_bytes()[..n]),
        Val::Float(x) => bytes_of(&x.to_bits().to_le_bytes()[..n]),
    }
}

fn bytes_of(bs: &[u8]) -> Vec<MemVal> {
    bs.iter().copied().map(MemVal::Byte).collect()
}

/// Decode `chunk.size()` memvals loaded through `chunk` back into a value.
pub(crate) fn decode(chunk: Chunk, mvs: &[MemVal]) -> Val {
    debug_assert_eq!(mvs.len(), chunk.size() as usize);
    // Pointer reconstruction: all fragments of the same value, in order.
    if let MemVal::Fragment(v, 0) = &mvs[0] {
        let ok = mvs
            .iter()
            .enumerate()
            .all(|(i, mv)| matches!(mv, MemVal::Fragment(w, j) if w == v && *j == i as u8));
        if ok && mvs.len() == 8 {
            return match chunk {
                Chunk::Any64 => *v,
                Chunk::I64 | Chunk::Ptr if matches!(v, Val::Ptr(_, _)) => *v,
                _ => Val::Undef,
            };
        }
        return Val::Undef;
    }
    // Concrete bytes.
    let mut bs = [0u8; 8];
    for (i, mv) in mvs.iter().enumerate() {
        match mv {
            MemVal::Byte(b) => bs[i] = *b,
            _ => return Val::Undef,
        }
    }
    let raw = u64::from_le_bytes(bs);
    match chunk {
        Chunk::I8S => Val::Int((raw as u8 as i8) as i32),
        Chunk::I8U => Val::Int(raw as u8 as i32),
        Chunk::I16S => Val::Int((raw as u16 as i16) as i32),
        Chunk::I16U => Val::Int(raw as u16 as i32),
        Chunk::I32 => Val::Int(raw as u32 as i32),
        Chunk::I64 | Chunk::Ptr => Val::Long(raw as i64),
        Chunk::Any64 => Val::Undef, // Many64 only reconstitutes fragments
        Chunk::F32 => Val::Single(f32::from_bits(raw as u32)),
        Chunk::F64 => Val::Float(f64::from_bits(raw)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_int() {
        for v in [Val::Int(0), Val::Int(-1), Val::Int(123456)] {
            assert_eq!(decode(Chunk::I32, &encode(Chunk::I32, v)), v);
        }
    }

    #[test]
    fn roundtrip_long_and_ptr() {
        assert_eq!(
            decode(Chunk::I64, &encode(Chunk::I64, Val::Long(-42))),
            Val::Long(-42)
        );
        assert_eq!(
            decode(Chunk::Ptr, &encode(Chunk::Ptr, Val::Ptr(7, 16))),
            Val::Ptr(7, 16)
        );
        // A pointer read back through I64 is still the pointer (Mptr = I64).
        assert_eq!(
            decode(Chunk::I64, &encode(Chunk::Ptr, Val::Ptr(7, 16))),
            Val::Ptr(7, 16)
        );
    }

    #[test]
    fn narrow_roundtrips_truncate() {
        assert_eq!(
            decode(Chunk::I8U, &encode(Chunk::I8U, Val::Int(0x1FF))),
            Val::Int(0xFF)
        );
        assert_eq!(
            decode(Chunk::I16S, &encode(Chunk::I16S, Val::Int(0xFFFF))),
            Val::Int(-1)
        );
    }

    #[test]
    fn partial_pointer_is_undef() {
        let mut enc = encode(Chunk::Ptr, Val::Ptr(1, 0));
        enc[3] = MemVal::Byte(0);
        assert_eq!(decode(Chunk::Ptr, &enc), Val::Undef);
    }

    #[test]
    fn undef_bytes_decode_to_undef() {
        assert_eq!(decode(Chunk::I32, &vec![MemVal::Undef; 4]), Val::Undef);
        let mixed = [
            MemVal::Byte(1),
            MemVal::Undef,
            MemVal::Byte(0),
            MemVal::Byte(0),
        ];
        assert_eq!(decode(Chunk::I32, &mixed), Val::Undef);
    }

    #[test]
    fn floats_roundtrip() {
        assert_eq!(
            decode(Chunk::F64, &encode(Chunk::F64, Val::Float(1.5))),
            Val::Float(1.5)
        );
        assert_eq!(
            decode(Chunk::F32, &encode(Chunk::F32, Val::Single(-2.25))),
            Val::Single(-2.25)
        );
    }
}
