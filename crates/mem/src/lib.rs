//! Executable CompCert-style memory model.
//!
//! This crate implements the algebraic structure that underlies the semantics
//! of every language in CompCertO (paper §3.1, Fig. 4): runtime values
//! ([`Val`]), a block-structured memory ([`Mem`]) with `alloc`/`free`/`load`/
//! `store` primitives, and the relational machinery used by simulation
//! conventions — value refinement ([`Val::lessdef`]), memory extensions
//! ([`extends`]), memory injections ([`MemInj`], [`mem_inject`]) and the
//! `injp` protection discipline on external calls ([`InjpWorld`], paper
//! Fig. 9).
//!
//! In the Coq development these relations come with proofs; here they are
//! *decidable checkers* over concrete memory states, exercised by the
//! property-based tests in `tests/` which validate the CKLR laws of paper
//! Fig. 8 (e.g. "loads from injection-related memories yield injection-related
//! values").
//!
//! # Example
//!
//! ```
//! use mem::{Chunk, Mem, Val};
//!
//! # fn main() -> Result<(), mem::MemError> {
//! let mut m = Mem::new();
//! let b = m.alloc(0, 16);
//! m.store(Chunk::I32, b, 8, Val::Int(42))?;
//! assert_eq!(m.load(Chunk::I32, b, 8)?, Val::Int(42));
//! # Ok(())
//! # }
//! ```

mod chunk;
pub mod envfault;
mod error;
mod extends;
mod inject;
mod injp;
#[allow(clippy::module_inception)]
mod mem;
mod memval;
pub mod obs;
mod perm;
mod value;

pub use chunk::Chunk;
pub use error::MemError;
pub use extends::{extends, memval_lessdef};
pub use inject::{mem_inject, memval_inject, val_inject, val_list_inject, InjectError, MemInj};
pub use injp::{InjpViolation, InjpWorld};
pub use mem::{BlockId, Mem};
pub use memval::MemVal;
pub use obs::MemCounters;
pub use perm::Perm;
pub use value::{Cmp, Typ, Val};
