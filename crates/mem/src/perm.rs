//! Per-byte access permissions (CompCert's `permission`).

use std::fmt;

/// Access permission attached to a single byte of a memory block.
///
/// Permissions are totally ordered: `Freeable > Writable > Readable > None`.
/// An operation requiring permission `p` succeeds on a byte with permission
/// `q` iff `q >= p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Perm {
    /// No access allowed.
    None,
    /// Loads allowed.
    Readable,
    /// Loads and stores allowed.
    Writable,
    /// Loads, stores and `free` allowed.
    Freeable,
}

impl Perm {
    /// Does a byte with permission `self` allow an access requiring `req`?
    pub fn allows(self, req: Perm) -> bool {
        self >= req
    }
}

impl Default for Perm {
    fn default() -> Self {
        Perm::None
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Perm::None => "none",
            Perm::Readable => "r",
            Perm::Writable => "rw",
            Perm::Freeable => "rwf",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(Perm::Freeable.allows(Perm::Writable));
        assert!(Perm::Writable.allows(Perm::Readable));
        assert!(!Perm::Readable.allows(Perm::Writable));
        assert!(!Perm::None.allows(Perm::Readable));
        assert!(Perm::Readable.allows(Perm::Readable));
    }
}
