//! The `injp` protection discipline on external calls (paper §4.5, Fig. 9).
//!
//! Injection passes expect external calls to leave regions outside the
//! injection's footprint untouched: *unmapped* source blocks (those with no
//! counterpart in the target) and *out-of-reach* target locations (those no
//! source location maps onto) must not be modified. `injp` packages an
//! injection together with snapshots of both memories so that this condition
//! can be *checked* when the call returns.

use std::fmt;

use crate::inject::{mem_inject, InjectError, MemInj};
use crate::mem::{BlockId, Mem};
use crate::perm::Perm;

/// A world of the `injp` CKLR: an injection and the memory states at the time
/// the world was created (`W_injp := meminj × mem × mem`, paper §4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct InjpWorld {
    /// The injection mapping in force.
    pub inj: MemInj,
    /// Snapshot of the source memory.
    pub src: Mem,
    /// Snapshot of the target memory.
    pub tgt: Mem,
}

/// A violation of the `injp` accessibility relation `w {injp w'`.
#[derive(Debug, Clone, PartialEq)]
pub enum InjpViolation {
    /// The injection shrank (`f ⊆ f'` fails).
    InjectionShrank,
    /// The new memories are not related by the new injection.
    NotInjected(InjectError),
    /// An unmapped source location was modified by the call.
    UnmappedModified {
        /// The source block.
        block: BlockId,
        /// The modified offset.
        offset: i64,
    },
    /// An out-of-reach target location was modified by the call.
    OutOfReachModified {
        /// The target block.
        block: BlockId,
        /// The modified offset.
        offset: i64,
    },
    /// A block valid at call time was freed by the callee in a protected
    /// region.
    ProtectedFreed(BlockId),
}

impl fmt::Display for InjpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjpViolation::InjectionShrank => write!(f, "injection mapping shrank"),
            InjpViolation::NotInjected(e) => write!(f, "memories not injection-related: {e}"),
            InjpViolation::UnmappedModified { block, offset } => {
                write!(f, "unmapped source location b{block}+{offset} was modified")
            }
            InjpViolation::OutOfReachModified { block, offset } => {
                write!(
                    f,
                    "out-of-reach target location b{block}+{offset} was modified"
                )
            }
            InjpViolation::ProtectedFreed(b) => write!(f, "protected block b{b} was freed"),
        }
    }
}

impl std::error::Error for InjpViolation {}

impl InjpWorld {
    /// Create a world, checking that the memories are actually related by the
    /// injection.
    ///
    /// # Errors
    /// Fails if `inj ⊩ src ↩→m tgt` does not hold.
    pub fn new(inj: MemInj, src: Mem, tgt: Mem) -> Result<InjpWorld, InjectError> {
        mem_inject(&inj, &src, &tgt)?;
        Ok(InjpWorld { inj, src, tgt })
    }

    /// Decide the accessibility relation
    /// `(f, m1, m2) {injp (f', m1', m2')` (paper §4.5 and Fig. 9):
    ///
    /// * `f ⊆ f'`;
    /// * `f' ⊩ m1' ↩→m m2'`;
    /// * source locations that were valid and **unmapped** under `f` are
    ///   unchanged in `m1'` (contents and permissions);
    /// * target locations that were valid and **out of reach** of `f` (no
    ///   readable source byte maps there) are unchanged in `m2'`.
    ///
    /// # Errors
    /// Reports the first violated clause.
    pub fn accessible_to(&self, next: &InjpWorld) -> Result<(), InjpViolation> {
        if !self.inj.included_in(&next.inj) {
            return Err(InjpViolation::InjectionShrank);
        }
        mem_inject(&next.inj, &next.src, &next.tgt).map_err(InjpViolation::NotInjected)?;

        // loc_unmapped: unmapped valid source blocks unchanged.
        for b in self.src.blocks() {
            if self.inj.get(b).is_some() {
                continue;
            }
            // `b` comes from `self.src.blocks()`, so bounds cannot fail;
            // degrade to an empty range rather than panic if it ever does.
            let (lo, hi) = self.src.bounds(b).unwrap_or((0, 0));
            if !next.src.valid_block(b) {
                return Err(InjpViolation::ProtectedFreed(b));
            }
            for ofs in lo..hi {
                if !unchanged_at(&self.src, &next.src, b, ofs) {
                    return Err(InjpViolation::UnmappedModified {
                        block: b,
                        offset: ofs,
                    });
                }
            }
        }

        // loc_out_of_reach: target bytes no source byte maps onto, unchanged.
        for b in self.tgt.blocks() {
            // Same invariant as above: `b` is a valid target block.
            let (lo, hi) = self.tgt.bounds(b).unwrap_or((0, 0));
            for ofs in lo..hi {
                if self.tgt.perm(b, ofs) == Perm::None {
                    continue;
                }
                if self.inj.reaches(&self.src, b, ofs) {
                    continue;
                }
                if !next.tgt.valid_block(b) {
                    return Err(InjpViolation::ProtectedFreed(b));
                }
                if !unchanged_at(&self.tgt, &next.tgt, b, ofs) {
                    return Err(InjpViolation::OutOfReachModified {
                        block: b,
                        offset: ofs,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Is byte `(b, ofs)` unchanged (same permission and contents) between `old`
/// and `new`?
fn unchanged_at(old: &Mem, new: &Mem, b: BlockId, ofs: i64) -> bool {
    if old.perm(b, ofs) != new.perm(b, ofs) {
        return false;
    }
    match (old.content(b, ofs), new.content(b, ofs)) {
        (Some(a), Some(c)) => a == c,
        (None, None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::value::Val;

    /// Source has a private (unmapped) block and a shared (mapped) block.
    fn setup() -> (Mem, Mem, MemInj, BlockId, BlockId, BlockId) {
        let mut m1 = Mem::new();
        let private = m1.alloc(0, 8);
        let shared = m1.alloc(0, 8);
        m1.store(Chunk::I32, private, 0, Val::Int(1)).unwrap();
        m1.store(Chunk::I32, shared, 0, Val::Int(2)).unwrap();

        let mut m2 = Mem::new();
        let tgt = m2.alloc(0, 16); // offset 8..16 is out of reach
        m2.store(Chunk::I32, tgt, 0, Val::Int(2)).unwrap();
        m2.store(Chunk::I32, tgt, 8, Val::Int(3)).unwrap();

        let mut f = MemInj::new();
        f.insert(shared, tgt, 0);
        (m1, m2, f, private, shared, tgt)
    }

    #[test]
    fn benign_call_is_accessible() {
        let (m1, m2, f, _, shared, tgt) = setup();
        let w0 = InjpWorld::new(f.clone(), m1.clone(), m2.clone()).unwrap();
        // Callee writes to the *mapped* region on both sides consistently and
        // allocates a fresh pair of blocks.
        let mut m1b = m1.clone();
        let mut m2b = m2.clone();
        m1b.store(Chunk::I32, shared, 4, Val::Int(7)).unwrap();
        m2b.store(Chunk::I32, tgt, 4, Val::Int(7)).unwrap();
        let nb1 = m1b.alloc(0, 4);
        let nb2 = m2b.alloc(0, 4);
        let mut f2 = f.clone();
        f2.insert(nb1, nb2, 0);
        let w1 = InjpWorld::new(f2, m1b, m2b).unwrap();
        assert_eq!(w0.accessible_to(&w1), Ok(()));
    }

    #[test]
    fn writing_unmapped_source_block_violates() {
        let (m1, m2, f, private, _, _) = setup();
        let w0 = InjpWorld::new(f.clone(), m1.clone(), m2.clone()).unwrap();
        let mut m1b = m1.clone();
        m1b.store(Chunk::I32, private, 0, Val::Int(99)).unwrap();
        let w1 = InjpWorld::new(f, m1b, m2).unwrap();
        assert!(matches!(
            w0.accessible_to(&w1),
            Err(InjpViolation::UnmappedModified { .. })
        ));
    }

    #[test]
    fn writing_out_of_reach_target_violates() {
        let (m1, m2, f, _, _, tgt) = setup();
        let w0 = InjpWorld::new(f.clone(), m1.clone(), m2.clone()).unwrap();
        let mut m2b = m2.clone();
        m2b.store(Chunk::I32, tgt, 8, Val::Int(99)).unwrap();
        let w1 = InjpWorld::new(f, m1, m2b).unwrap();
        assert!(matches!(
            w0.accessible_to(&w1),
            Err(InjpViolation::OutOfReachModified { .. })
        ));
    }

    #[test]
    fn shrinking_injection_violates() {
        let (m1, m2, f, _, _, _) = setup();
        let w0 = InjpWorld::new(f, m1.clone(), m2.clone()).unwrap();
        let w1 = InjpWorld::new(MemInj::new(), m1, m2).unwrap();
        assert_eq!(w0.accessible_to(&w1), Err(InjpViolation::InjectionShrank));
    }

    #[test]
    fn writes_inside_footprint_allowed_in_target() {
        // The mapped region of the target may change (the callee owns it as
        // long as the source side changes consistently).
        let (m1, m2, f, _, shared, tgt) = setup();
        let w0 = InjpWorld::new(f.clone(), m1.clone(), m2.clone()).unwrap();
        let mut m1b = m1.clone();
        let mut m2b = m2.clone();
        m1b.store(Chunk::I32, shared, 0, Val::Int(42)).unwrap();
        m2b.store(Chunk::I32, tgt, 0, Val::Int(42)).unwrap();
        let w1 = InjpWorld::new(f, m1b, m2b).unwrap();
        assert_eq!(w0.accessible_to(&w1), Ok(()));
    }
}
