//! Deterministic allocation-fault injection for the memory model
//! (resilience layer, DESIGN.md §11).
//!
//! The CompCert memory model's `alloc` is infallible by construction — the
//! formal development never models allocator exhaustion. The *infrastructure*
//! around a verified compiler does run out of memory, though, and a
//! long-lived compile service has to survive that without aborting the whole
//! batch. This module provides the injection point: a per-thread countdown
//! that, when armed, makes the *n*-th subsequent [`crate::Mem::alloc`] panic
//! with an `envfault:`-tagged message. The panic simulates an allocator
//! abort; the resilience layer in `compiler` contains it with
//! `catch_unwind` and reports the unit as poisoned instead of killing the
//! process.
//!
//! Determinism contract: the arming state is thread-local and the fault
//! fires as a pure function of (arm site, number of allocations performed on
//! this thread since arming). Because the parallel pool runs each work item
//! entirely on one worker thread, arming inside a work item gives
//! byte-identical outcomes regardless of `--jobs`.

use std::cell::Cell;

thread_local! {
    /// Remaining allocations before the fault fires; `None` = disarmed.
    static ARMED: Cell<Option<u64>> = const { Cell::new(None) };
    /// Whether the last armed fault actually fired (consumed by `take_fired`).
    static FIRED: Cell<bool> = const { Cell::new(false) };
}

/// Arm the allocation fault on this thread: the `nth` next call to
/// [`crate::Mem::alloc`] (1-based) panics. Re-arming overwrites any
/// previously armed countdown.
pub fn arm_alloc_fault(nth: u64) {
    ARMED.with(|a| a.set(Some(nth.max(1))));
    FIRED.with(|f| f.set(false));
}

/// Disarm any pending allocation fault on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// True when an allocation fault is still pending on this thread.
#[must_use]
pub fn pending() -> bool {
    ARMED.with(Cell::get).is_some()
}

/// Whether the most recently armed fault fired; clears the flag.
pub fn take_fired() -> bool {
    FIRED.with(|f| f.replace(false))
}

/// Hook called by [`crate::Mem::alloc`]. Decrements the countdown and, when
/// it reaches zero, disarms and panics with a stable `envfault:` message.
pub(crate) fn on_alloc() {
    let fire = ARMED.with(|a| match a.get() {
        None => false,
        Some(1) => {
            a.set(None);
            true
        }
        Some(n) => {
            a.set(Some(n - 1));
            false
        }
    });
    if fire {
        FIRED.with(|f| f.set(true));
        panic!("envfault: injected allocator exhaustion");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mem;

    #[test]
    fn third_alloc_fires_and_disarms() {
        arm_alloc_fault(3);
        let mut m = Mem::new();
        let _ = m.alloc(0, 8);
        let _ = m.alloc(0, 8);
        assert!(pending());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = m.alloc(0, 8);
        }));
        assert!(r.is_err());
        assert!(!pending());
        assert!(take_fired());
        // Disarmed: further allocations succeed.
        let _ = m.alloc(0, 8);
    }

    #[test]
    fn disarm_prevents_firing() {
        arm_alloc_fault(1);
        disarm();
        let mut m = Mem::new();
        let _ = m.alloc(0, 8);
        assert!(!take_fired());
    }
}
