//! Deterministic memory-model counters (observability layer, DESIGN.md §10).
//!
//! Every counter here is a pure function of the *operations performed on this
//! thread*: `alloc`/`free`/`load`/`store` calls and the representation
//! transitions of [`crate::Mem`] blocks (concrete→abstract *demotions* when a
//! non-byte memval lands in a byte block, abstract→concrete *promotions* when
//! the last non-byte entry is overwritten). No clocks, no addresses, no
//! allocator state — so for a fixed workload executed on one thread the
//! counter delta is byte-reproducible, and summing per-item deltas in input
//! order makes campaign totals independent of `--jobs` (the parallel pool
//! runs each item entirely on one worker thread).
//!
//! Counters are thread-local [`Cell`]s: bumping them is a handful of
//! register-width adds, cheap enough to keep unconditionally on. The
//! `force_abstract` test hook deliberately does **not** count — it is not a
//! semantic transition.

use std::cell::Cell;

/// Snapshot of the per-thread memory counters (cumulative since thread
/// start). Take two snapshots and [`MemCounters::since`] for a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Calls to [`crate::Mem::alloc`].
    pub allocs: u64,
    /// Total bytes requested across those allocations.
    pub alloc_bytes: u64,
    /// Calls to [`crate::Mem::free`] (whole-block or partial).
    pub frees: u64,
    /// Calls to [`crate::Mem::load`] that passed the permission checks.
    pub loads: u64,
    /// Calls to [`crate::Mem::store`] that passed the permission checks.
    pub stores: u64,
    /// Concrete→abstract representation transitions (a non-byte memval
    /// written into a byte-vector block).
    pub demotes: u64,
    /// Abstract→concrete representation transitions (last non-byte entry
    /// overwritten; the block re-enters the raw-byte fast path).
    pub promotes: u64,
}

impl MemCounters {
    /// Field-wise saturating difference `self - earlier`; use with two
    /// [`counters`] snapshots to attribute work to a region of code.
    #[must_use]
    pub fn since(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            frees: self.frees.saturating_sub(earlier.frees),
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            demotes: self.demotes.saturating_sub(earlier.demotes),
            promotes: self.promotes.saturating_sub(earlier.promotes),
        }
    }
}

thread_local! {
    static COUNTERS: Cell<MemCounters> = const { Cell::new(MemCounters {
        allocs: 0,
        alloc_bytes: 0,
        frees: 0,
        loads: 0,
        stores: 0,
        demotes: 0,
        promotes: 0,
    }) };
}

/// Current cumulative counters for *this thread*.
#[must_use]
pub fn counters() -> MemCounters {
    COUNTERS.with(Cell::get)
}

/// Bump helper shared by the hooks in `mem.rs`.
pub(crate) fn bump(f: impl FnOnce(&mut MemCounters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chunk, Mem, Val};

    #[test]
    fn alloc_load_store_free_tick_once_each() {
        let before = counters();
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::I32, b, 0, Val::Int(7)).expect("store");
        assert_eq!(m.load(Chunk::I32, b, 0).expect("load"), Val::Int(7));
        m.free(b, 0, 16).expect("free");
        let d = counters().since(&before);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.alloc_bytes, 16);
        assert_eq!(d.stores, 1);
        assert_eq!(d.loads, 1);
        assert_eq!(d.frees, 1);
    }

    #[test]
    fn promote_and_demote_transitions_count() {
        let before = counters();
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        // Fresh block is Abstract (all Undef). Filling it with scalars
        // promotes it to Concrete exactly once.
        m.store(Chunk::I64, b, 0, Val::Long(1)).expect("store");
        let mid = counters().since(&before);
        assert_eq!(mid.promotes, 1);
        assert_eq!(mid.demotes, 0);
        // Storing a pointer fragment demotes the concrete block.
        m.store(Chunk::Ptr, b, 0, Val::Ptr(b, 0)).expect("store ptr");
        let d = counters().since(&before);
        assert_eq!(d.demotes, 1);
    }
}
