//! Memory access chunks (CompCert's `memory_chunk`).

use std::fmt;

use crate::value::{Typ, Val};

/// The granularity and interpretation of a memory access.
///
/// A chunk determines how many bytes a [`crate::Mem::load`]/[`crate::Mem::store`]
/// touches, the required alignment, and how the raw bytes are (de)coded into a
/// [`Val`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Chunk {
    /// 1 byte, sign-extended to `Int` on load.
    I8S,
    /// 1 byte, zero-extended to `Int` on load.
    I8U,
    /// 2 bytes, sign-extended to `Int` on load.
    I16S,
    /// 2 bytes, zero-extended to `Int` on load.
    I16U,
    /// 4 bytes, a 32-bit integer.
    I32,
    /// 8 bytes, a 64-bit integer.
    I64,
    /// 4 bytes, a single-precision float.
    F32,
    /// 8 bytes, a double-precision float.
    F64,
    /// 8 bytes, a pointer (or 64-bit integer); `Mptr` in CompCert's 64-bit
    /// configuration.
    Ptr,
    /// 8 bytes holding *any* value losslessly (CompCert's `Many64`); used for
    /// untyped stack slots (spills, register saves).
    Any64,
}

impl Chunk {
    /// Number of bytes accessed.
    pub fn size(self) -> i64 {
        match self {
            Chunk::I8S | Chunk::I8U => 1,
            Chunk::I16S | Chunk::I16U => 2,
            Chunk::I32 | Chunk::F32 => 4,
            Chunk::I64 | Chunk::F64 | Chunk::Ptr | Chunk::Any64 => 8,
        }
    }

    /// Required alignment of the access offset.
    pub fn align(self) -> i64 {
        self.size()
    }

    /// The machine type of values loaded through this chunk.
    pub fn typ(self) -> Typ {
        match self {
            Chunk::I8S | Chunk::I8U | Chunk::I16S | Chunk::I16U | Chunk::I32 => Typ::I32,
            Chunk::I64 | Chunk::Ptr | Chunk::Any64 => Typ::I64,
            Chunk::F32 => Typ::F32,
            Chunk::F64 => Typ::F64,
        }
    }

    /// The chunk used to access a value of machine type `t` at full width.
    pub fn of_typ(t: Typ) -> Chunk {
        match t {
            Typ::I32 => Chunk::I32,
            Typ::I64 => Chunk::I64,
            Typ::F32 => Chunk::F32,
            Typ::F64 => Chunk::F64,
        }
    }

    /// Normalization applied by `store`: narrow chunks truncate the stored
    /// value the way a subsequent load would observe it (CompCert's
    /// `Val.load_result` composed with the store).
    pub fn normalize(self, v: Val) -> Val {
        match (self, v) {
            (Chunk::I8S, Val::Int(n)) => Val::Int((n as i8) as i32),
            (Chunk::I8U, Val::Int(n)) => Val::Int((n as u8) as i32),
            (Chunk::I16S, Val::Int(n)) => Val::Int((n as i16) as i32),
            (Chunk::I16U, Val::Int(n)) => Val::Int((n as u16) as i32),
            (Chunk::I32, Val::Int(n)) => Val::Int(n),
            (Chunk::I64, Val::Long(n)) => Val::Long(n),
            (Chunk::I64, Val::Ptr(b, o)) => Val::Ptr(b, o),
            (Chunk::Ptr, Val::Ptr(b, o)) => Val::Ptr(b, o),
            (Chunk::Ptr, Val::Long(n)) => Val::Long(n),
            (Chunk::F32, Val::Single(x)) => Val::Single(x),
            (Chunk::F64, Val::Float(x)) => Val::Float(x),
            // Any64 preserves every value unchanged.
            (Chunk::Any64, v) => v,
            _ => Val::Undef,
        }
    }
}

impl fmt::Display for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Chunk::I8S => "i8s",
            Chunk::I8U => "i8u",
            Chunk::I16S => "i16s",
            Chunk::I16U => "i16u",
            Chunk::I32 => "i32",
            Chunk::I64 => "i64",
            Chunk::F32 => "f32",
            Chunk::F64 => "f64",
            Chunk::Ptr => "ptr",
            Chunk::Any64 => "any64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_types() {
        assert_eq!(Chunk::I8S.size(), 1);
        assert_eq!(Chunk::Ptr.size(), 8);
        assert_eq!(Chunk::I16U.typ(), Typ::I32);
        assert_eq!(Chunk::Ptr.typ(), Typ::I64);
    }

    #[test]
    fn normalize_narrows() {
        assert_eq!(Chunk::I8S.normalize(Val::Int(0x1FF)), Val::Int(-1));
        assert_eq!(Chunk::I8U.normalize(Val::Int(0x1FF)), Val::Int(0xFF));
        assert_eq!(Chunk::I16S.normalize(Val::Int(0x18000)), Val::Int(-32768));
        assert_eq!(Chunk::I32.normalize(Val::Long(1)), Val::Undef);
        assert_eq!(Chunk::Ptr.normalize(Val::Ptr(1, 2)), Val::Ptr(1, 2));
    }
}
