//! Error type for memory operations.

use std::fmt;

use crate::mem::BlockId;
use crate::perm::Perm;

/// Reasons a memory operation can fail.
///
/// These correspond to the `None` results of CompCert's partial memory
/// operations (paper Fig. 4); a failing memory operation makes the enclosing
/// language semantics "go wrong" (undefined behaviour).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The block identifier does not denote a currently-valid block.
    InvalidBlock(BlockId),
    /// The accessed range `[lo, hi)` is outside the block's bounds.
    OutOfBounds {
        /// Block accessed.
        block: BlockId,
        /// Start of the accessed range.
        lo: i64,
        /// End of the accessed range (exclusive).
        hi: i64,
    },
    /// Insufficient permission for the access.
    Permission {
        /// Block accessed.
        block: BlockId,
        /// Offset at which the permission check failed.
        offset: i64,
        /// Permission the access required.
        required: Perm,
    },
    /// The access offset violates the chunk's alignment constraint.
    Misaligned {
        /// Offset of the access.
        offset: i64,
        /// Required alignment in bytes.
        align: i64,
    },
    /// A `loadv`/`storev` was attempted at a non-pointer address value.
    NotAPointer,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidBlock(b) => write!(f, "invalid block b{b}"),
            MemError::OutOfBounds { block, lo, hi } => {
                write!(f, "access [{lo},{hi}) out of bounds of block b{block}")
            }
            MemError::Permission {
                block,
                offset,
                required,
            } => write!(
                f,
                "insufficient permission at b{block}+{offset} (need {required})"
            ),
            MemError::Misaligned { offset, align } => {
                write!(f, "offset {offset} not aligned to {align}")
            }
            MemError::NotAPointer => write!(f, "address value is not a pointer"),
        }
    }
}

impl std::error::Error for MemError {}
