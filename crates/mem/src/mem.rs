//! The block-structured memory state (CompCert's `Mem.mem`).

use std::fmt;
use std::sync::Arc;

use crate::chunk::Chunk;
use crate::error::MemError;
use crate::memval::{decode, decode_scalar_bytes, encode, encode_scalar_bytes, MemVal};
use crate::perm::Perm;
use crate::value::Val;

/// Identifier of a memory block.
///
/// Block identifiers are allocated sequentially and never reused; a freed
/// block's identifier stays invalid forever, as in CompCert.
pub type BlockId = u32;

/// The byte contents of one block, in one of two representations.
///
/// Most blocks only ever hold numeric data, whose [`MemVal`] encoding is a
/// sequence of [`MemVal::Byte`]s — an enum per byte, with enum-sized storage
/// and encode/decode traffic on every access. The `Concrete` variant stores
/// such blocks as raw `Vec<u8>`: scalar loads and stores move machine bytes
/// directly (see [`decode_scalar_bytes`]/[`encode_scalar_bytes`]) and skip
/// the `MemVal` round-trip entirely. As soon as a non-byte memval (an
/// `Undef` or a pointer `Fragment`) lands in the block it *demotes* to the
/// general `Abstract` form; when the last non-byte entry is overwritten it
/// promotes back (the `non_concrete` counter makes that check O(1)).
///
/// The two representations are observationally identical — equality is
/// semantic (a `Concrete` block equals the `Abstract` block holding the same
/// bytes), and `tests/block_repr_props.rs` checks the equivalence under
/// random interleavings.
#[derive(Debug, Clone)]
pub(crate) enum BlockContents {
    /// Every byte is a concrete [`MemVal::Byte`], stored raw.
    Concrete(Vec<u8>),
    /// General representation; `non_concrete` counts the entries that are
    /// *not* [`MemVal::Byte`] (invariant: consistent with `mvs`, and > 0 —
    /// an all-byte block is promoted eagerly).
    Abstract {
        mvs: Vec<MemVal>,
        non_concrete: usize,
    },
}

impl BlockContents {
    /// The memval at index `i` (by value; a byte in a concrete block reads
    /// back as [`MemVal::Byte`]).
    fn get(&self, i: usize) -> MemVal {
        match self {
            BlockContents::Concrete(bs) => MemVal::Byte(bs[i]),
            BlockContents::Abstract { mvs, .. } => mvs[i].clone(),
        }
    }

    /// Write the memval at index `i`, demoting to `Abstract` when a
    /// non-byte value lands in a concrete block. Callers doing bulk writes
    /// follow up with [`BlockContents::maybe_promote`].
    fn set(&mut self, i: usize, mv: MemVal) {
        match self {
            BlockContents::Concrete(bs) => match mv {
                MemVal::Byte(b) => bs[i] = b,
                other => {
                    let mut mvs: Vec<MemVal> = bs.iter().map(|b| MemVal::Byte(*b)).collect();
                    mvs[i] = other;
                    *self = BlockContents::Abstract {
                        mvs,
                        non_concrete: 1,
                    };
                    crate::obs::bump(|c| c.demotes += 1);
                }
            },
            BlockContents::Abstract { mvs, non_concrete } => {
                let was = !matches!(mvs[i], MemVal::Byte(_));
                let now = !matches!(mv, MemVal::Byte(_));
                *non_concrete = *non_concrete + usize::from(now) - usize::from(was);
                mvs[i] = mv;
            }
        }
    }

    /// Promote an `Abstract` block whose last non-byte entry was just
    /// overwritten back to the `Concrete` fast path.
    fn maybe_promote(&mut self) {
        if let BlockContents::Abstract {
            mvs,
            non_concrete: 0,
        } = self
        {
            let mut bs = Vec::with_capacity(mvs.len());
            for mv in mvs.iter() {
                match mv {
                    MemVal::Byte(b) => bs.push(*b),
                    // Counter out of sync (cannot happen): stay abstract.
                    _ => return,
                }
            }
            *self = BlockContents::Concrete(bs);
            crate::obs::bump(|c| c.promotes += 1);
        }
    }

    /// Force the general representation (test hook: lets the equivalence
    /// property drive both representations through the same script).
    fn force_abstract(&mut self) {
        if let BlockContents::Concrete(bs) = self {
            *self = BlockContents::Abstract {
                mvs: bs.iter().map(|b| MemVal::Byte(*b)).collect(),
                non_concrete: 0,
            };
        }
    }
}

impl PartialEq for BlockContents {
    /// Semantic equality: the representation of a block never distinguishes
    /// two memory states (`Concrete([1]) == Abstract([Byte(1)])`).
    fn eq(&self, other: &BlockContents) -> bool {
        use BlockContents::{Abstract, Concrete};
        match (self, other) {
            (Concrete(a), Concrete(b)) => a == b,
            (Abstract { mvs: a, .. }, Abstract { mvs: b, .. }) => a == b,
            (Concrete(bs), Abstract { mvs, .. }) | (Abstract { mvs, .. }, Concrete(bs)) => {
                bs.len() == mvs.len()
                    && bs
                        .iter()
                        .zip(mvs)
                        .all(|(b, mv)| matches!(mv, MemVal::Byte(x) if x == b))
            }
        }
    }
}

impl Eq for BlockContents {}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BlockData {
    pub(crate) lo: i64,
    pub(crate) hi: i64,
    pub(crate) contents: BlockContents,
    pub(crate) perms: Vec<Perm>,
}

impl BlockData {
    fn index(&self, ofs: i64) -> Option<usize> {
        if ofs >= self.lo && ofs < self.hi {
            Some((ofs - self.lo) as usize)
        } else {
            None
        }
    }
}

/// A memory state: a finite collection of blocks, each with its own linear
/// address space, byte contents and per-byte permissions (paper §3.1).
///
/// `Mem` is a value type: it implements `Clone` and `PartialEq`, which is what
/// lets simulation conventions relate *snapshots* of memory across calls (the
/// `injp` world of paper Fig. 9 stores two of them).
///
/// # Example
///
/// ```
/// use mem::{Chunk, Mem, Val};
/// # fn main() -> Result<(), mem::MemError> {
/// let mut m = Mem::new();
/// let b = m.alloc(0, 8);
/// m.store(Chunk::Ptr, b, 0, Val::Ptr(b, 4))?;
/// assert_eq!(m.load(Chunk::Ptr, b, 0)?, Val::Ptr(b, 4));
/// m.free(b, 0, 8)?;
/// assert!(m.load(Chunk::I32, b, 0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mem {
    // Copy-on-write: cloning a memory state is O(#blocks) pointer copies;
    // mutation clones only the touched block (`Arc::make_mut`). Interpreters
    // clone memory on every step, so this is the hot path of the whole
    // system.
    blocks: Vec<Option<Arc<BlockData>>>,
    // Total bytes of currently-valid blocks, maintained by `alloc`/`free`.
    // Invariant: `live_bytes == Σ (hi - lo)` over valid blocks, so the
    // derived `Eq` stays consistent. Kept O(1) because the budgeted runner
    // (`compcerto_core::lts::run_budgeted`) polls it every step when a
    // memory quota is set.
    live_bytes: u64,
}

impl Mem {
    /// The empty memory state.
    pub fn new() -> Mem {
        Mem::default()
    }

    /// The identifier the *next* allocation will receive. All identifiers
    /// below this value have been allocated at some point ("support").
    pub fn next_block(&self) -> BlockId {
        self.blocks.len() as BlockId
    }

    /// Is `b` a currently-valid (allocated and not freed) block?
    pub fn valid_block(&self, b: BlockId) -> bool {
        self.block(b).is_some()
    }

    /// Iterator over the identifiers of all currently-valid blocks.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|_| i as BlockId))
    }

    /// Bounds `[lo, hi)` of block `b`.
    ///
    /// # Errors
    /// Fails with [`MemError::InvalidBlock`] if `b` is not valid.
    pub fn bounds(&self, b: BlockId) -> Result<(i64, i64), MemError> {
        let bd = self.block(b).ok_or(MemError::InvalidBlock(b))?;
        Ok((bd.lo, bd.hi))
    }

    /// Allocate a fresh block with bounds `[lo, hi)`, fully `Freeable`.
    ///
    /// Allocation never fails (memory is unbounded in the model); an empty or
    /// negative range yields a zero-sized block that admits no accesses.
    /// The only exception is a deliberately armed [`crate::envfault`]
    /// allocation fault, which simulates allocator exhaustion by panicking —
    /// the resilience layer above contains that panic per work item.
    pub fn alloc(&mut self, lo: i64, hi: i64) -> BlockId {
        crate::envfault::on_alloc();
        let size = (hi - lo).max(0) as usize;
        let id = self.blocks.len() as BlockId;
        // Fresh memory is all-Undef, which has no concrete byte form; a
        // zero-sized block is vacuously concrete.
        let contents = if size == 0 {
            BlockContents::Concrete(Vec::new())
        } else {
            BlockContents::Abstract {
                mvs: vec![MemVal::Undef; size],
                non_concrete: size,
            }
        };
        self.blocks.push(Some(Arc::new(BlockData {
            lo,
            hi: lo + size as i64,
            contents,
            perms: vec![Perm::Freeable; size],
        })));
        self.live_bytes += size as u64;
        crate::obs::bump(|c| {
            c.allocs += 1;
            c.alloc_bytes += size as u64;
        });
        id
    }

    /// Total bytes of all currently-valid blocks, in O(1).
    ///
    /// This is the figure the budgeted runner compares against
    /// `RunBudget::max_mem_bytes`; a fully freed block stops counting, a
    /// partially freed one still counts in full (its footprint remains).
    pub fn allocated_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Free the range `[lo, hi)` of block `b`; if the range covers the whole
    /// block, the block becomes invalid.
    ///
    /// # Errors
    /// Requires `Freeable` permission on the whole range.
    pub fn free(&mut self, b: BlockId, lo: i64, hi: i64) -> Result<(), MemError> {
        self.range_perm(b, lo, hi, Perm::Freeable)?;
        crate::obs::bump(|c| c.frees += 1);
        let (blo, bhi) = self.bounds(b)?;
        if lo <= blo && hi >= bhi {
            self.blocks[b as usize] = None;
            self.live_bytes = self.live_bytes.saturating_sub((bhi - blo).max(0) as u64);
        } else {
            let bd = self.block_mut(b).ok_or(MemError::InvalidBlock(b))?;
            for ofs in lo..hi {
                if let Some(i) = bd.index(ofs) {
                    bd.perms[i] = Perm::None;
                    bd.contents.set(i, MemVal::Undef);
                }
            }
        }
        Ok(())
    }

    /// Lower the permission of the range `[lo, hi)` of `b` to exactly `p`.
    ///
    /// This is the primitive behind the calling convention's protection of the
    /// argument region (paper App. C.2, `free_args`).
    ///
    /// # Errors
    /// The range must currently have at least permission `p` everywhere and be
    /// within bounds.
    pub fn drop_perm(&mut self, b: BlockId, lo: i64, hi: i64, p: Perm) -> Result<(), MemError> {
        self.range_perm(b, lo, hi, p)?;
        let bd = self.block_mut(b).ok_or(MemError::InvalidBlock(b))?;
        for ofs in lo..hi {
            if let Some(i) = bd.index(ofs) {
                bd.perms[i] = p;
            }
        }
        Ok(())
    }

    /// Raise the permission of the range `[lo, hi)` of `b` to at least `p`
    /// (used to restore the argument region after an outgoing call returns,
    /// paper App. C.2 `mix`).
    ///
    /// # Errors
    /// The range must be within the block's bounds.
    pub fn raise_perm(&mut self, b: BlockId, lo: i64, hi: i64, p: Perm) -> Result<(), MemError> {
        let bd = self.block_mut(b).ok_or(MemError::InvalidBlock(b))?;
        if lo < bd.lo || hi > bd.hi {
            return Err(MemError::OutOfBounds { block: b, lo, hi });
        }
        for ofs in lo..hi {
            if let Some(i) = bd.index(ofs) {
                if bd.perms[i] < p {
                    bd.perms[i] = p;
                }
            }
        }
        Ok(())
    }

    /// Permission of byte `(b, ofs)`; `Perm::None` outside any valid block.
    pub fn perm(&self, b: BlockId, ofs: i64) -> Perm {
        match self.block(b) {
            Some(bd) => bd.index(ofs).map(|i| bd.perms[i]).unwrap_or(Perm::None),
            None => Perm::None,
        }
    }

    /// Check that every byte in `[lo, hi)` of `b` has permission `p`.
    ///
    /// # Errors
    /// Reports the first failing offset.
    pub fn range_perm(&self, b: BlockId, lo: i64, hi: i64, p: Perm) -> Result<(), MemError> {
        let bd = self.block(b).ok_or(MemError::InvalidBlock(b))?;
        if lo < bd.lo || hi > bd.hi {
            return Err(MemError::OutOfBounds { block: b, lo, hi });
        }
        for ofs in lo..hi {
            let i = (ofs - bd.lo) as usize;
            if !bd.perms[i].allows(p) {
                return Err(MemError::Permission {
                    block: b,
                    offset: ofs,
                    required: p,
                });
            }
        }
        Ok(())
    }

    /// Load a value of shape `chunk` from `(b, ofs)`.
    ///
    /// # Errors
    /// Requires `Readable` permission over the accessed range and correct
    /// alignment.
    pub fn load(&self, chunk: Chunk, b: BlockId, ofs: i64) -> Result<Val, MemError> {
        self.check_align(chunk, ofs)?;
        self.range_perm(b, ofs, ofs + chunk.size(), Perm::Readable)?;
        crate::obs::bump(|c| c.loads += 1);
        let bd = self.block(b).ok_or(MemError::InvalidBlock(b))?;
        let i = (ofs - bd.lo) as usize;
        let n = chunk.size() as usize;
        Ok(match &bd.contents {
            // Fast path: raw bytes straight to the value, no MemVal traffic.
            BlockContents::Concrete(bs) => decode_scalar_bytes(chunk, &bs[i..i + n]),
            BlockContents::Abstract { mvs, .. } => decode(chunk, &mvs[i..i + n]),
        })
    }

    /// Store `v` with shape `chunk` at `(b, ofs)`.
    ///
    /// # Errors
    /// Requires `Writable` permission over the accessed range and correct
    /// alignment.
    pub fn store(&mut self, chunk: Chunk, b: BlockId, ofs: i64, v: Val) -> Result<(), MemError> {
        self.check_align(chunk, ofs)?;
        self.range_perm(b, ofs, ofs + chunk.size(), Perm::Writable)?;
        crate::obs::bump(|c| c.stores += 1);
        let fast = encode_scalar_bytes(chunk, v);
        let bd = self.block_mut(b).ok_or(MemError::InvalidBlock(b))?;
        let i = (ofs - bd.lo) as usize;
        match (&mut bd.contents, fast) {
            // Fast path: value to raw bytes in place, no MemVal traffic.
            (BlockContents::Concrete(bs), Some((raw, n))) => {
                bs[i..i + n].copy_from_slice(&raw[..n]);
            }
            (contents, _) => {
                let enc = encode(chunk, v);
                for (k, mv) in enc.into_iter().enumerate() {
                    contents.set(i + k, mv);
                }
                // Overwriting the block's last Undef/Fragment with bytes
                // re-enables the fast path for subsequent accesses.
                contents.maybe_promote();
            }
        }
        Ok(())
    }

    /// Load through a pointer *value*.
    ///
    /// # Errors
    /// Fails with [`MemError::NotAPointer`] if `addr` is not a [`Val::Ptr`].
    pub fn loadv(&self, chunk: Chunk, addr: Val) -> Result<Val, MemError> {
        match addr {
            Val::Ptr(b, ofs) => self.load(chunk, b, ofs),
            _ => Err(MemError::NotAPointer),
        }
    }

    /// Store through a pointer *value*.
    ///
    /// # Errors
    /// Fails with [`MemError::NotAPointer`] if `addr` is not a [`Val::Ptr`].
    pub fn storev(&mut self, chunk: Chunk, addr: Val, v: Val) -> Result<(), MemError> {
        match addr {
            Val::Ptr(b, ofs) => self.store(chunk, b, ofs, v),
            _ => Err(MemError::NotAPointer),
        }
    }

    /// Copy the raw contents *and permissions* of the byte range `[lo, hi)`
    /// of block `b` from `src` into `self` (used by the calling convention's
    /// `mix` operation to restore the argument region, paper App. C.2).
    ///
    /// # Errors
    /// The range must be within `b`'s bounds in both memories.
    pub fn copy_range_from(
        &mut self,
        src: &Mem,
        b: BlockId,
        lo: i64,
        hi: i64,
    ) -> Result<(), MemError> {
        let sbd = src.block(b).ok_or(MemError::InvalidBlock(b))?;
        if lo < sbd.lo || hi > sbd.hi {
            return Err(MemError::OutOfBounds { block: b, lo, hi });
        }
        let src_lo = sbd.lo;
        let copied: Vec<(MemVal, Perm)> = (lo..hi)
            .map(|ofs| {
                let i = (ofs - src_lo) as usize;
                (sbd.contents.get(i), sbd.perms[i])
            })
            .collect();
        let dbd = self.block_mut(b).ok_or(MemError::InvalidBlock(b))?;
        if lo < dbd.lo || hi > dbd.hi {
            return Err(MemError::OutOfBounds { block: b, lo, hi });
        }
        for (ofs, (mv, p)) in (lo..hi).zip(copied) {
            let i = (ofs - dbd.lo) as usize;
            dbd.contents.set(i, mv);
            dbd.perms[i] = p;
        }
        dbd.contents.maybe_promote();
        Ok(())
    }

    /// Raw content of byte `(b, ofs)`, if within a valid block's bounds.
    ///
    /// Returned by value: concrete-representation blocks materialize the
    /// [`MemVal::Byte`] on demand, so there is no stored memval to borrow.
    pub fn content(&self, b: BlockId, ofs: i64) -> Option<MemVal> {
        let bd = self.block(b)?;
        bd.index(ofs).map(|i| bd.contents.get(i))
    }

    /// Force block `b` into the general `Abstract` representation (test
    /// hook for the representation-equivalence property; not part of the
    /// memory model).
    #[doc(hidden)]
    pub fn force_block_abstract(&mut self, b: BlockId) {
        if let Some(bd) = self.block_mut(b) {
            bd.contents.force_abstract();
        }
    }

    /// Whether block `b` currently uses the concrete byte representation
    /// (test hook; `None` for invalid blocks).
    #[doc(hidden)]
    pub fn block_is_concrete(&self, b: BlockId) -> Option<bool> {
        self.block(b)
            .map(|bd| matches!(bd.contents, BlockContents::Concrete(_)))
    }

    fn check_align(&self, chunk: Chunk, ofs: i64) -> Result<(), MemError> {
        if ofs % chunk.align() != 0 {
            Err(MemError::Misaligned {
                offset: ofs,
                align: chunk.align(),
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn block(&self, b: BlockId) -> Option<&BlockData> {
        self.blocks
            .get(b as usize)
            .and_then(|x| x.as_ref())
            .map(Arc::as_ref)
    }

    fn block_mut(&mut self, b: BlockId) -> Option<&mut BlockData> {
        self.blocks
            .get_mut(b as usize)
            .and_then(|x| x.as_mut())
            .map(Arc::make_mut)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem<{} blocks>", self.blocks().count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_bytes_track_alloc_and_free() {
        let mut m = Mem::new();
        assert_eq!(m.allocated_bytes(), 0);
        let a = m.alloc(0, 16);
        let b = m.alloc(-8, 8);
        assert_eq!(m.allocated_bytes(), 32);
        // Partial free keeps the footprint.
        m.free(b, -8, 0).unwrap();
        assert_eq!(m.allocated_bytes(), 32);
        // Full free releases it.
        m.free(a, 0, 16).unwrap();
        assert_eq!(m.allocated_bytes(), 16);
        // Zero-sized allocations do not count.
        m.alloc(4, 4);
        m.alloc(8, 0);
        assert_eq!(m.allocated_bytes(), 16);
    }

    #[test]
    fn alloc_gives_fresh_ids() {
        let mut m = Mem::new();
        let a = m.alloc(0, 4);
        let b = m.alloc(0, 4);
        assert_ne!(a, b);
        assert!(m.valid_block(a));
        assert_eq!(m.next_block(), 2);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::I32, b, 0, Val::Int(7)).unwrap();
        m.store(Chunk::I64, b, 8, Val::Long(-9)).unwrap();
        assert_eq!(m.load(Chunk::I32, b, 0).unwrap(), Val::Int(7));
        assert_eq!(m.load(Chunk::I64, b, 8).unwrap(), Val::Long(-9));
    }

    #[test]
    fn fresh_memory_is_undef() {
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        assert_eq!(m.load(Chunk::I32, b, 0).unwrap(), Val::Undef);
    }

    #[test]
    fn free_invalidates() {
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        m.free(b, 0, 8).unwrap();
        assert!(!m.valid_block(b));
        assert!(matches!(
            m.load(Chunk::I32, b, 0),
            Err(MemError::InvalidBlock(_))
        ));
        // Identifier is not reused.
        let c = m.alloc(0, 8);
        assert_ne!(b, c);
    }

    #[test]
    fn partial_free_removes_permissions() {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.free(b, 0, 8).unwrap();
        assert!(m.valid_block(b));
        assert!(m.load(Chunk::I32, b, 0).is_err());
        assert!(m.load(Chunk::I32, b, 8).is_ok());
    }

    #[test]
    fn misaligned_access_fails() {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        assert!(matches!(
            m.load(Chunk::I32, b, 2),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            m.store(Chunk::I64, b, 4, Val::Long(0)),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_bounds_fails() {
        let mut m = Mem::new();
        let b = m.alloc(0, 4);
        assert!(m.load(Chunk::I64, b, 0).is_err());
        assert!(m.load(Chunk::I32, b, 4).is_err());
    }

    #[test]
    fn drop_perm_blocks_writes() {
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        m.drop_perm(b, 0, 8, Perm::Readable).unwrap();
        assert!(m.store(Chunk::I32, b, 0, Val::Int(1)).is_err());
        assert!(m.load(Chunk::I32, b, 0).is_ok());
        m.raise_perm(b, 0, 8, Perm::Writable).unwrap();
        assert!(m.store(Chunk::I32, b, 0, Val::Int(1)).is_ok());
    }

    #[test]
    fn drop_perm_to_none_protects_region() {
        let mut m = Mem::new();
        let b = m.alloc(0, 8);
        m.drop_perm(b, 0, 4, Perm::None).unwrap();
        assert!(m.load(Chunk::I32, b, 0).is_err());
        assert!(m.store(Chunk::I32, b, 4, Val::Int(2)).is_ok());
    }

    #[test]
    fn storev_requires_pointer() {
        let mut m = Mem::new();
        assert_eq!(
            m.storev(Chunk::I32, Val::Int(0), Val::Int(1)),
            Err(MemError::NotAPointer)
        );
    }

    #[test]
    fn nonzero_lo_bounds() {
        let mut m = Mem::new();
        let b = m.alloc(-8, 8);
        m.store(Chunk::I32, b, -8, Val::Int(3)).unwrap();
        assert_eq!(m.load(Chunk::I32, b, -8).unwrap(), Val::Int(3));
        assert!(m.load(Chunk::I32, b, -12).is_err());
    }

    #[test]
    fn overlapping_store_scrambles() {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::Ptr, b, 0, Val::Ptr(b, 0)).unwrap();
        // Overwrite part of the pointer's fragments with an int.
        m.store(Chunk::I32, b, 4, Val::Int(0)).unwrap();
        assert_eq!(m.load(Chunk::Ptr, b, 0).unwrap(), Val::Undef);
    }
}
