//! Memory injections (paper §4.2).
//!
//! An *injection mapping* `f : block ⇀ block × Z` rearranges the block
//! structure of memory: source blocks may be dropped (unmapped) or relocated
//! into a target block at an offset. The mapping induces a relation on values
//! ([`val_inject`]) and on memory states ([`mem_inject`]), which together form
//! a logical relation for the memory model.

use std::collections::BTreeMap;
use std::fmt;

use crate::mem::{BlockId, Mem};
use crate::memval::MemVal;
use crate::perm::Perm;
use crate::value::Val;

/// An injection mapping `f ∈ meminj` (paper §4.2).
///
/// The partial order on injections is inclusion: `f ⊆ f'` means every entry
/// of `f` is preserved in `f'`. This is the Kripke frame of the `inj` CKLR
/// (paper Example 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemInj {
    map: BTreeMap<BlockId, (BlockId, i64)>,
}

impl MemInj {
    /// The empty injection (maps no block).
    pub fn new() -> MemInj {
        MemInj::default()
    }

    /// The identity injection on all blocks below `next` (maps `b ↦ (b, 0)`).
    pub fn identity_below(next: BlockId) -> MemInj {
        let mut inj = MemInj::new();
        for b in 0..next {
            inj.map.insert(b, (b, 0));
        }
        inj
    }

    /// Look up the image of block `b`.
    pub fn get(&self, b: BlockId) -> Option<(BlockId, i64)> {
        self.map.get(&b).copied()
    }

    /// Add the entry `b ↦ (b', delta)`.
    ///
    /// # Panics
    /// Panics if `b` is already mapped to a *different* image — injections
    /// only ever grow monotonically (`f ⊆ f'`).
    pub fn insert(&mut self, b: BlockId, target: BlockId, delta: i64) {
        if let Some(prev) = self.map.get(&b) {
            assert_eq!(
                *prev,
                (target, delta),
                "injection entry for block {b} changed"
            );
        }
        self.map.insert(b, (target, delta));
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the mapping empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over entries `(b, (b', delta))`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, (BlockId, i64))> + '_ {
        self.map.iter().map(|(b, t)| (*b, *t))
    }

    /// Inclusion `self ⊆ other`: every entry preserved (the accessibility
    /// relation of the `inj` Kripke frame).
    pub fn included_in(&self, other: &MemInj) -> bool {
        self.iter().all(|(b, t)| other.get(b) == Some(t))
    }

    /// Composition of injections: `(f ∘then∘ g)(b) = g(f(b))` with offsets
    /// added. Used to validate vertical composition of `inj`-based
    /// conventions (paper Lemma 5.3, `inj · inj ≡ inj`).
    pub fn compose(&self, other: &MemInj) -> MemInj {
        let mut out = MemInj::new();
        for (b, (b1, d1)) in self.iter() {
            if let Some((b2, d2)) = other.get(b1) {
                out.map.insert(b, (b2, d1 + d2));
            }
        }
        out
    }

    /// Apply the injection to a value (partial: unmapped pointers give
    /// `None`). The functional direction used to *construct* target-level
    /// questions from source-level ones.
    pub fn apply(&self, v: Val) -> Option<Val> {
        match v {
            Val::Ptr(b, o) => self.get(b).map(|(b2, d)| Val::Ptr(b2, o + d)),
            other => Some(other),
        }
    }

    /// Is some source location `(b1, ofs - delta)` with at least `Readable`
    /// max-permission mapped onto target location `(b2, ofs)`? The negation
    /// is CompCert's `loc_out_of_reach`, the region protected by `injp`
    /// (paper Fig. 9).
    pub fn reaches(&self, m1: &Mem, b2: BlockId, ofs: i64) -> bool {
        self.iter()
            .any(|(b1, (tb, delta))| tb == b2 && m1.perm(b1, ofs - delta) >= Perm::Readable)
    }
}

impl fmt::Display for MemInj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (b, (b2, d))) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "b{b}↦(b{b2},{d})")?;
        }
        write!(f, "}}")
    }
}

/// Value injection `f ⊩ v1 ↩→v v2` (paper §4.2): `v2` refines `v1`, with
/// pointers transformed according to `f`.
pub fn val_inject(f: &MemInj, v1: &Val, v2: &Val) -> bool {
    match (v1, v2) {
        (Val::Undef, _) => true,
        (Val::Ptr(b1, o1), Val::Ptr(b2, o2)) => {
            matches!(f.get(*b1), Some((tb, d)) if tb == *b2 && o1 + d == *o2)
        }
        _ => v1 == v2,
    }
}

/// Pointwise value injection on argument lists.
pub fn val_list_inject(f: &MemInj, vs1: &[Val], vs2: &[Val]) -> bool {
    vs1.len() == vs2.len() && vs1.iter().zip(vs2).all(|(a, b)| val_inject(f, a, b))
}

/// Byte-level injection.
pub fn memval_inject(f: &MemInj, mv1: &MemVal, mv2: &MemVal) -> bool {
    match (mv1, mv2) {
        (MemVal::Undef, _) => true,
        (MemVal::Byte(a), MemVal::Byte(b)) => a == b,
        (MemVal::Fragment(v1, i), MemVal::Fragment(v2, j)) => i == j && val_inject(f, v1, v2),
        _ => false,
    }
}

/// Reasons a pair of memories fails to be related by an injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// A mapped source block is not valid.
    InvalidSource(BlockId),
    /// The image of a mapped block is not valid in the target.
    InvalidTarget(BlockId),
    /// Source permission not preserved at the mapped target location.
    PermNotPreserved {
        /// Source block.
        block: BlockId,
        /// Source offset.
        offset: i64,
    },
    /// Source contents not related to target contents at a mapped location.
    ContentMismatch {
        /// Source block.
        block: BlockId,
        /// Source offset.
        offset: i64,
    },
    /// Two distinct source blocks overlap in the target (`meminj_no_overlap`).
    Overlap(BlockId, BlockId),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::InvalidSource(b) => write!(f, "mapped source block b{b} is invalid"),
            InjectError::InvalidTarget(b) => write!(f, "target image of b{b} is invalid"),
            InjectError::PermNotPreserved { block, offset } => {
                write!(f, "permission at b{block}+{offset} not preserved")
            }
            InjectError::ContentMismatch { block, offset } => {
                write!(f, "contents at b{block}+{offset} not injection-related")
            }
            InjectError::Overlap(a, b) => write!(f, "blocks b{a} and b{b} overlap in target"),
        }
    }
}

impl std::error::Error for InjectError {}

/// Decide the memory injection relation `f ⊩ m1 ↩→m m2` on concrete states.
///
/// Checks, for every entry `f(b1) = (b2, δ)`:
/// * `b1` valid in `m1` and `b2` valid in `m2`;
/// * permissions preserved: `perm m1 b1 o ≥ p ⇒ perm m2 b2 (o+δ) ≥ p`;
/// * contents related by [`memval_inject`] at readable offsets;
/// * no two distinct mapped blocks overlap in the target.
///
/// # Errors
/// Returns the first violation found, for diagnostics in the simulation
/// checker.
pub fn mem_inject(f: &MemInj, m1: &Mem, m2: &Mem) -> Result<(), InjectError> {
    for (b1, (b2, delta)) in f.iter() {
        if !m1.valid_block(b1) {
            return Err(InjectError::InvalidSource(b1));
        }
        if !m2.valid_block(b2) {
            return Err(InjectError::InvalidTarget(b1));
        }
        let (lo, hi) = m1.bounds(b1).map_err(|_| InjectError::InvalidSource(b1))?;
        for ofs in lo..hi {
            let p1 = m1.perm(b1, ofs);
            if p1 == Perm::None {
                continue;
            }
            if !m2.perm(b2, ofs + delta).allows(p1) {
                return Err(InjectError::PermNotPreserved {
                    block: b1,
                    offset: ofs,
                });
            }
            if p1.allows(Perm::Readable) {
                let c1 = m1.content(b1, ofs);
                let c2 = m2.content(b2, ofs + delta);
                let ok = match (c1, c2) {
                    (Some(a), Some(b)) => memval_inject(f, &a, &b),
                    _ => false,
                };
                if !ok {
                    return Err(InjectError::ContentMismatch {
                        block: b1,
                        offset: ofs,
                    });
                }
            }
        }
    }
    // No-overlap: ranges with any permission must be disjoint in the target.
    let entries: Vec<_> = f.iter().collect();
    for (i, &(a, (ta, da))) in entries.iter().enumerate() {
        for &(b, (tb, db)) in entries.iter().skip(i + 1) {
            if ta != tb {
                continue;
            }
            let (alo, ahi) = match m1.bounds(a) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let (blo, bhi) = match m1.bounds(b) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let (alo, ahi) = (alo + da, ahi + da);
            let (blo, bhi) = (blo + db, bhi + db);
            if alo < bhi && blo < ahi {
                return Err(InjectError::Overlap(a, b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;

    #[test]
    fn identity_injection_relates_memory_to_itself() {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::I32, b, 0, Val::Int(5)).unwrap();
        m.store(Chunk::Ptr, b, 8, Val::Ptr(b, 0)).unwrap();
        let f = MemInj::identity_below(m.next_block());
        assert_eq!(mem_inject(&f, &m, &m), Ok(()));
    }

    #[test]
    fn dropping_a_block_is_an_injection() {
        let mut m1 = Mem::new();
        let kept = m1.alloc(0, 8);
        let dropped = m1.alloc(0, 8);
        m1.store(Chunk::I32, kept, 0, Val::Int(1)).unwrap();
        m1.store(Chunk::I32, dropped, 0, Val::Int(2)).unwrap();

        let mut m2 = Mem::new();
        let tgt = m2.alloc(0, 8);
        m2.store(Chunk::I32, tgt, 0, Val::Int(1)).unwrap();

        let mut f = MemInj::new();
        f.insert(kept, tgt, 0);
        assert_eq!(mem_inject(&f, &m1, &m2), Ok(()));
    }

    #[test]
    fn mapping_at_offset_into_larger_block() {
        let mut m1 = Mem::new();
        let a = m1.alloc(0, 8);
        let b = m1.alloc(0, 8);
        m1.store(Chunk::I32, a, 0, Val::Int(10)).unwrap();
        m1.store(Chunk::I32, b, 0, Val::Int(20)).unwrap();

        let mut m2 = Mem::new();
        let big = m2.alloc(0, 32);
        m2.store(Chunk::I32, big, 0, Val::Int(10)).unwrap();
        m2.store(Chunk::I32, big, 16, Val::Int(20)).unwrap();

        let mut f = MemInj::new();
        f.insert(a, big, 0);
        f.insert(b, big, 16);
        assert_eq!(mem_inject(&f, &m1, &m2), Ok(()));

        // Pointers must be shifted by the injection.
        assert!(val_inject(&f, &Val::Ptr(b, 4), &Val::Ptr(big, 20)));
        assert!(!val_inject(&f, &Val::Ptr(b, 4), &Val::Ptr(big, 4)));
    }

    #[test]
    fn overlap_detected() {
        let mut m1 = Mem::new();
        let a = m1.alloc(0, 8);
        let b = m1.alloc(0, 8);
        let mut m2 = Mem::new();
        let big = m2.alloc(0, 12);
        let mut f = MemInj::new();
        f.insert(a, big, 0);
        f.insert(b, big, 4);
        assert_eq!(mem_inject(&f, &m1, &m2), Err(InjectError::Overlap(a, b)));
    }

    #[test]
    fn content_mismatch_detected() {
        let mut m1 = Mem::new();
        let a = m1.alloc(0, 4);
        m1.store(Chunk::I32, a, 0, Val::Int(1)).unwrap();
        let mut m2 = Mem::new();
        let t = m2.alloc(0, 4);
        m2.store(Chunk::I32, t, 0, Val::Int(2)).unwrap();
        let mut f = MemInj::new();
        f.insert(a, t, 0);
        assert!(matches!(
            mem_inject(&f, &m1, &m2),
            Err(InjectError::ContentMismatch { .. })
        ));
    }

    #[test]
    fn composition_adds_offsets() {
        let mut f = MemInj::new();
        f.insert(0, 1, 8);
        let mut g = MemInj::new();
        g.insert(1, 2, 16);
        let h = f.compose(&g);
        assert_eq!(h.get(0), Some((2, 24)));
    }

    #[test]
    fn inclusion() {
        let mut f = MemInj::new();
        f.insert(0, 1, 0);
        let mut g = f.clone();
        g.insert(2, 3, 4);
        assert!(f.included_in(&g));
        assert!(!g.included_in(&f));
    }
}
