//! The semantic content of paper Lemma 5.3's `inj · inj ≡ inj`: composing
//! memory injections yields a memory injection, checked on randomized
//! three-level memory stacks (source locals → merged frame → relocated
//! frame — the shape `Cminorgen` then `Stacking` produce).

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use mem::{mem_inject, val_inject, Chunk, Mem, MemInj, Val};
use proptest::prelude::*;

/// Build a three-level injection scenario:
/// * `m1` has `n` small blocks (source locals);
/// * `m2` merges them into one block at 8-byte-aligned offsets (`f`);
/// * `m3` is `m2` with the merged block relocated after `pad` fresh blocks
///   (`g`).
fn stack(n: usize, vals: Vec<i32>, pad: usize) -> (Mem, Mem, Mem, MemInj, MemInj) {
    let n = n.max(1);
    let mut m1 = Mem::new();
    let blocks: Vec<_> = (0..n).map(|_| m1.alloc(0, 8)).collect();
    for (i, b) in blocks.iter().enumerate() {
        let v = vals.get(i).copied().unwrap_or(7);
        m1.store(Chunk::I32, *b, 0, Val::Int(v)).unwrap();
    }

    let mut m2 = Mem::new();
    let merged = m2.alloc(0, (8 * n) as i64);
    let mut f = MemInj::new();
    for (i, b) in blocks.iter().enumerate() {
        let delta = (8 * i) as i64;
        let v = vals.get(i).copied().unwrap_or(7);
        m2.store(Chunk::I32, merged, delta, Val::Int(v)).unwrap();
        f.insert(*b, merged, delta);
    }

    let mut m3 = Mem::new();
    for _ in 0..pad {
        m3.alloc(0, 4);
    }
    let relocated = m3.alloc(0, (8 * n) as i64);
    for (i, _) in blocks.iter().enumerate() {
        let v = vals.get(i).copied().unwrap_or(7);
        m3.store(Chunk::I32, relocated, (8 * i) as i64, Val::Int(v))
            .unwrap();
    }
    let mut g = MemInj::new();
    g.insert(merged, relocated, 0);

    (m1, m2, m3, f, g)
}

proptest! {
    /// `f ⊩ m1 ↩→ m2` and `g ⊩ m2 ↩→ m3` imply `f·g ⊩ m1 ↩→ m3`.
    #[test]
    fn injections_compose(
        n in 1usize..6,
        vals in prop::collection::vec(any::<i32>(), 0..6),
        pad in 0usize..4,
    ) {
        let (m1, m2, m3, f, g) = stack(n, vals, pad);
        prop_assert_eq!(mem_inject(&f, &m1, &m2), Ok(()));
        prop_assert_eq!(mem_inject(&g, &m2, &m3), Ok(()));
        let fg = f.compose(&g);
        prop_assert_eq!(mem_inject(&fg, &m1, &m3), Ok(()));
    }

    /// Value injection composes the same way: `f ⊩ v1 ↩→ v2` and
    /// `g ⊩ v2 ↩→ v3` imply `f·g ⊩ v1 ↩→ v3`.
    #[test]
    fn val_injections_compose(
        n in 1usize..6,
        vals in prop::collection::vec(any::<i32>(), 0..6),
        pad in 0usize..4,
        block_idx in 0usize..6,
        ofs in 0i64..8,
    ) {
        let (m1, _, _, f, g) = stack(n, vals, pad);
        let b = (block_idx % m1.blocks().count().max(1)) as u32;
        let v1 = Val::Ptr(b, ofs);
        if let Some(v2) = f.apply(v1) {
            if let Some(v3) = g.apply(v2) {
                prop_assert!(val_inject(&f, &v1, &v2));
                prop_assert!(val_inject(&g, &v2, &v3));
                let fg = f.compose(&g);
                prop_assert!(val_inject(&fg, &v1, &v3));
            }
        }
    }

    /// Composition preserves inclusion (the Kripke frame of `inj` is
    /// compatible with `·`): `f ⊆ f'` implies `f·g ⊆ f'·g`.
    #[test]
    fn composition_monotone(
        n in 2usize..6,
        vals in prop::collection::vec(any::<i32>(), 0..6),
        pad in 0usize..4,
    ) {
        let (_, _, _, f_full, g) = stack(n, vals, pad);
        // f = f_full minus its last entry.
        let entries: Vec<_> = f_full.iter().collect();
        let mut f = MemInj::new();
        for (b, (tb, d)) in entries.iter().take(entries.len() - 1) {
            f.insert(*b, *tb, *d);
        }
        prop_assert!(f.included_in(&f_full));
        prop_assert!(f.compose(&g).included_in(&f_full.compose(&g)));
    }
}
