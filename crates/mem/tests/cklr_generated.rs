//! CKLR laws (paper Fig. 8) on *generated* memory states: seeded scripts of
//! allocations and stores are instantiated at several injection offsets at
//! once, giving nontrivially-related `(m1, f, m2)` triples on which the
//! compose / store / alloc commutation laws of `mem::inject` and
//! `mem::extends` are checked directly.
//!
//! Unlike `cklr_laws.rs` (which needs the unvendored `proptest` crate and is
//! therefore skipped offline), this file always runs: the fixed-seed driver
//! sweeps a deterministic block of seeds through every law, so the offline
//! build still exercises the Fig. 8 obligations on hundreds of distinct
//! states. When the `proptest` feature *is* enabled (see the note in
//! `Cargo.toml`), the same law-checkers are additionally driven by
//! arbitrary seeds.
//!
//! The script/instantiate design mirrors the difftest generator: a law
//! violation reports its seed, and re-running that seed reproduces the exact
//! memory states.

use mem::{extends, mem_inject, val_inject, BlockId, Chunk, Mem, MemInj, Val};

// ---------------------------------------------------------------------------
// Seeded randomness
// ---------------------------------------------------------------------------

/// SplitMix64, inlined: `mem` sits below `compcerto-core` in the crate DAG,
/// so it cannot use `compcerto_core::rng` without a cycle. Same constants,
/// same stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

// ---------------------------------------------------------------------------
// Memory-state scripts
// ---------------------------------------------------------------------------

/// A stored value, symbolically: pointers name the *script* block they point
/// into, so instantiation at different injection offsets produces
/// correctly-shifted pointers on each side of the relation.
#[derive(Clone, Copy, Debug)]
enum SVal {
    Int(i32),
    Long(i64),
    PtrTo(usize, i64),
}

/// A seeded script of allocations and stores. Instantiating the same script
/// at different per-block deltas yields memories related by the injection
/// `{ b ↦ (b, delta2[b] - delta1[b]) }` — by construction, which the first
/// law below re-checks through `mem_inject` itself.
struct Script {
    sizes: Vec<i64>,
    stores: Vec<(Chunk, usize, i64, SVal)>,
}

fn gen_script(seed: u64) -> Script {
    let mut rng = Rng::new(seed);
    let nblocks = 1 + rng.below(5) as usize;
    let sizes: Vec<i64> = (0..nblocks).map(|_| 8 * (1 + rng.below(8) as i64)).collect();
    let nstores = rng.below(16) as usize;
    let stores = (0..nstores)
        .map(|_| {
            let b = rng.below(nblocks as u64) as usize;
            let ofs = 8 * rng.below((sizes[b] / 8) as u64) as i64;
            match rng.below(4) {
                0 => (Chunk::I32, b, ofs, SVal::Int(rng.next_u64() as i32)),
                1 => (Chunk::I64, b, ofs, SVal::Long(rng.next_u64() as i64)),
                2 => {
                    let tb = rng.below(nblocks as u64) as usize;
                    let tofs = 8 * rng.below((sizes[tb] / 8) as u64) as i64;
                    (Chunk::Ptr, b, ofs, SVal::PtrTo(tb, tofs))
                }
                _ => (Chunk::Any64, b, ofs, SVal::Long(rng.next_u64() as i64)),
            }
        })
        .collect();
    Script { sizes, stores }
}

/// Instantiate a script with a per-block injection delta: block `i` becomes
/// `[0, size_i + delta_i)` and every access shifts by `delta_i`. Deltas are
/// multiples of 8, so alignment is preserved.
fn instantiate(script: &Script, deltas: &[i64]) -> Mem {
    let mut m = Mem::new();
    for (i, &sz) in script.sizes.iter().enumerate() {
        m.alloc(0, sz + deltas[i]);
    }
    for &(c, b, ofs, sv) in &script.stores {
        let v = match sv {
            SVal::Int(k) => Val::Int(k),
            SVal::Long(k) => Val::Long(k),
            SVal::PtrTo(j, o) => Val::Ptr(j as BlockId, o + deltas[j]),
        };
        m.store(c, b as BlockId, ofs + deltas[b], v)
            .expect("script stores are in-bounds and aligned by construction");
    }
    m
}

/// The injection between two instantiations of the same script.
fn inj_between(script: &Script, from: &[i64], to: &[i64]) -> MemInj {
    let mut f = MemInj::new();
    for i in 0..script.sizes.len() {
        f.insert(i as BlockId, i as BlockId, to[i] - from[i]);
    }
    f
}

/// Per-block deltas for the "middle" and "far" instantiations of a seed.
fn deltas(rng: &mut Rng, n: usize) -> Vec<i64> {
    (0..n).map(|_| 8 * rng.below(4) as i64).collect()
}

// ---------------------------------------------------------------------------
// The law checkers (pure functions of the seed, shared by the fixed-seed
// driver and the proptest harness)
// ---------------------------------------------------------------------------

/// Fig. 8 / Lemma 5.3 vertical composition: if `f ⊩ m1 ↩→ m2` and
/// `g ⊩ m2 ↩→ m3` then `f∘g ⊩ m1 ↩→ m3` — on states where all three
/// relations are nontrivial (distinct offsets, shifted pointers).
fn compose_law(seed: u64) {
    let script = gen_script(seed);
    let mut rng = Rng::new(seed ^ 0x636f_6d70_6f73_65);
    let d1 = vec![0i64; script.sizes.len()];
    let d2 = deltas(&mut rng, script.sizes.len());
    let d3: Vec<i64> = d2
        .iter()
        .zip(deltas(&mut rng, script.sizes.len()))
        .map(|(a, b)| a + b)
        .collect();
    let (m1, m2, m3) = (
        instantiate(&script, &d1),
        instantiate(&script, &d2),
        instantiate(&script, &d3),
    );
    let f = inj_between(&script, &d1, &d2);
    let g = inj_between(&script, &d2, &d3);
    assert_eq!(mem_inject(&f, &m1, &m2), Ok(()), "seed {seed}: f");
    assert_eq!(mem_inject(&g, &m2, &m3), Ok(()), "seed {seed}: g");
    assert_eq!(
        mem_inject(&f.compose(&g), &m1, &m3),
        Ok(()),
        "seed {seed}: f∘g"
    );
    // The mapping algebra composes associatively and absorbs the identity.
    let id = MemInj::identity_below(m1.next_block());
    assert_eq!(id.compose(&f), f, "seed {seed}: id∘f");
    assert_eq!(f.compose(&g).compose(&id), f.compose(&g), "seed {seed}");
}

/// Fig. 8 `store` commutation for `inj`: storing `v` in `m1` and `f(v)` at
/// the image location in `m2` preserves the relation.
fn store_law(seed: u64) {
    let script = gen_script(seed);
    let mut rng = Rng::new(seed ^ 0x7374_6f72_65);
    let d1 = vec![0i64; script.sizes.len()];
    let d2 = deltas(&mut rng, script.sizes.len());
    let mut m1 = instantiate(&script, &d1);
    let mut m2 = instantiate(&script, &d2);
    let f = inj_between(&script, &d1, &d2);
    assert_eq!(mem_inject(&f, &m1, &m2), Ok(()), "seed {seed}: pre");

    for _ in 0..4 {
        let b = rng.below(script.sizes.len() as u64) as usize;
        let ofs = 8 * rng.below((script.sizes[b] / 8) as u64) as i64;
        let (chunk, v1) = match rng.below(3) {
            0 => (Chunk::I64, Val::Long(rng.next_u64() as i64)),
            1 => (Chunk::I32, Val::Int(rng.next_u64() as i32)),
            _ => {
                let tb = rng.below(script.sizes.len() as u64) as usize;
                let tofs = 8 * rng.below((script.sizes[tb] / 8) as u64) as i64;
                (Chunk::Ptr, Val::Ptr(tb as BlockId, tofs))
            }
        };
        let (tb, delta) = f.get(b as BlockId).expect("block is mapped");
        let v2 = f.apply(v1).expect("stored pointers target mapped blocks");
        assert!(val_inject(&f, &v1, &v2), "seed {seed}: values related");
        m1.store(chunk, b as BlockId, ofs, v1)
            .expect("in-bounds aligned store on the source");
        m2.store(chunk, tb, ofs + delta, v2)
            .expect("in-bounds aligned store on the target");
        assert_eq!(
            mem_inject(&f, &m1, &m2),
            Ok(()),
            "seed {seed}: store at b{b}+{ofs} broke the injection"
        );
    }
}

/// Fig. 8 `alloc` commutation for `inj`: parallel allocation extends the
/// world monotonically (`f ⊆ f'`) and preserves the relation — including
/// when the target block is strictly larger and the new entry has a
/// nontrivial delta.
fn alloc_law(seed: u64) {
    let script = gen_script(seed);
    let mut rng = Rng::new(seed ^ 0x616c_6c6f_63);
    let d1 = vec![0i64; script.sizes.len()];
    let d2 = deltas(&mut rng, script.sizes.len());
    let mut m1 = instantiate(&script, &d1);
    let mut m2 = instantiate(&script, &d2);
    let f = inj_between(&script, &d1, &d2);
    assert_eq!(mem_inject(&f, &m1, &m2), Ok(()), "seed {seed}: pre");

    let size = 8 * (1 + rng.below(8) as i64);
    let pad = 8 * rng.below(4) as i64;
    let b1 = m1.alloc(0, size);
    let b2 = m2.alloc(0, size + pad);
    let mut f2 = f.clone();
    f2.insert(b1, b2, pad);
    assert!(f.included_in(&f2), "seed {seed}: world must grow");
    assert_eq!(mem_inject(&f2, &m1, &m2), Ok(()), "seed {seed}: post-alloc");

    // A fresh source block can also be *dropped* (left unmapped): still an
    // injection (paper: unmapped blocks are private to the source).
    let b3 = m1.alloc(0, 16);
    assert_eq!(mem_inject(&f2, &m1, &m2), Ok(()), "seed {seed}: b{b3} private");
}

/// Fig. 8 laws for `ext` on generated states: reflexivity, refinement of
/// `Undef` contents, and store commutation (Undef on the left refined on
/// the right).
fn extends_law(seed: u64) {
    let script = gen_script(seed);
    let d0 = vec![0i64; script.sizes.len()];
    let m1 = instantiate(&script, &d0);
    assert!(extends(&m1, &m1), "seed {seed}: ext must be reflexive");

    // m2 = m1 with some never-written (hence Undef) slots made defined:
    // refinement in the lessdef order, so m1 ≤m m2 must hold.
    let mut rng = Rng::new(seed ^ 0x6578_74);
    let mut m2 = m1.clone();
    let written: Vec<(usize, i64)> = script
        .stores
        .iter()
        .flat_map(|&(c, b, ofs, _)| (0..c.size()).map(move |k| (b, ofs + k)))
        .collect();
    for b in 0..script.sizes.len() {
        for slot in 0..(script.sizes[b] / 8) {
            let ofs = slot * 8;
            let untouched = (0..8).all(|k| !written.contains(&(b, ofs + k)));
            if untouched && rng.below(2) == 0 {
                m2.store(Chunk::I64, b as BlockId, ofs, Val::Long(rng.next_u64() as i64))
                    .expect("refining store is in-bounds");
            }
        }
    }
    assert!(extends(&m1, &m2), "seed {seed}: refinement must extend");

    // Store commutation: Undef into m1, any refinement into m2, same spot.
    let mut m1b = m1.clone();
    let mut m2b = m2.clone();
    let b = rng.below(script.sizes.len() as u64) as usize;
    let ofs = 8 * rng.below((script.sizes[b] / 8) as u64) as i64;
    m1b.store(Chunk::I64, b as BlockId, ofs, Val::Undef).unwrap();
    m2b.store(Chunk::I64, b as BlockId, ofs, Val::Long(7)).unwrap();
    assert!(extends(&m1b, &m2b), "seed {seed}: store must commute with ext");
}

// ---------------------------------------------------------------------------
// Fixed-seed driver: always runs, fully offline
// ---------------------------------------------------------------------------

const SEED_BLOCK: std::ops::Range<u64> = 0..64;

#[test]
fn inj_compose_law_on_generated_states() {
    for seed in SEED_BLOCK {
        compose_law(seed);
    }
}

#[test]
fn inj_store_law_on_generated_states() {
    for seed in SEED_BLOCK {
        store_law(seed);
    }
}

#[test]
fn inj_alloc_law_on_generated_states() {
    for seed in SEED_BLOCK {
        alloc_law(seed);
    }
}

#[test]
fn ext_laws_on_generated_states() {
    for seed in SEED_BLOCK {
        extends_law(seed);
    }
}

// ---------------------------------------------------------------------------
// Proptest harness: the same checkers over arbitrary seeds (requires the
// unvendored `proptest` crate — see the feature note in Cargo.toml)
// ---------------------------------------------------------------------------

#[cfg(feature = "proptest")]
mod prop {
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn compose_law_any_seed(seed in any::<u64>()) {
            super::compose_law(seed);
        }

        #[test]
        fn store_law_any_seed(seed in any::<u64>()) {
            super::store_law(seed);
        }

        #[test]
        fn alloc_law_any_seed(seed in any::<u64>()) {
            super::alloc_law(seed);
        }

        #[test]
        fn extends_law_any_seed(seed in any::<u64>()) {
            super::extends_law(seed);
        }
    }
}
