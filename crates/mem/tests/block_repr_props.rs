//! Observational equivalence of the two block representations.
//!
//! `Mem` stores a block's bytes either as raw `Vec<u8>` (the `Concrete`
//! fast path: scalar loads and stores skip the `MemVal` encode/decode
//! round-trip entirely) or as `Vec<MemVal>` (the general `Abstract` form,
//! required once an `Undef` or a pointer `Fragment` lands in the block).
//! The representation is an implementation detail: this suite drives the
//! same operation script through a memory left free to pick its
//! representation and through a twin that is demoted to `Abstract` after
//! every step (via the `force_block_abstract` test hook), and requires
//! that every observation — load results, raw contents, store errors, and
//! whole-state equality — agrees.
//!
//! The always-on `randomized_script_equivalence` test runs offline on a
//! seeded in-file SplitMix64; the proptest properties additionally
//! shrink counterexamples when the optional `proptest` feature (and
//! crate) are available.

use mem::{Chunk, Mem, Val};

/// Operations the scripts are built from.
#[derive(Debug, Clone)]
enum Op {
    Store(Chunk, i64, Val),
    Load(Chunk, i64),
    /// Partial free of `[lo, hi)` — writes `Undef` into the freed range,
    /// demoting a concrete block.
    FreePartial(i64, i64),
    /// Snapshot-and-copy-back of `[lo, hi)` (the calling convention's
    /// `mix` path).
    CopyRange(i64, i64),
}

const BLOCK_SIZE: i64 = 32;

/// Apply one op to `m` (block `b`), returning the observation it makes.
fn apply(m: &mut Mem, b: u32, op: &Op) -> String {
    match op {
        Op::Store(chunk, ofs, v) => format!("store:{:?}", m.store(*chunk, b, *ofs, *v)),
        Op::Load(chunk, ofs) => format!("load:{:?}", m.load(*chunk, b, *ofs)),
        Op::FreePartial(lo, hi) => format!("free:{:?}", m.free(b, *lo, *hi)),
        Op::CopyRange(lo, hi) => {
            let snap = m.clone();
            format!("copy:{:?}", m.copy_range_from(&snap, b, *lo, *hi))
        }
    }
}

/// Run `ops` through a free-representation memory and an always-abstract
/// twin; panic on the first observational difference.
fn check_script(ops: &[Op]) {
    let mut fast = Mem::new();
    let mut slow = Mem::new();
    let bf = fast.alloc(0, BLOCK_SIZE);
    let bs = slow.alloc(0, BLOCK_SIZE);
    assert_eq!(bf, bs);
    for (step, op) in ops.iter().enumerate() {
        let of = apply(&mut fast, bf, op);
        let os = apply(&mut slow, bs, op);
        slow.force_block_abstract(bs);
        assert_eq!(of, os, "observation diverged at step {step}: {op:?}");
        // Whole-state equality is semantic: Concrete([1]) == Abstract([Byte(1)]).
        assert_eq!(fast, slow, "states diverged at step {step}: {op:?}");
        for ofs in 0..BLOCK_SIZE {
            assert_eq!(
                fast.content(bf, ofs),
                slow.content(bs, ofs),
                "contents diverged at (step {step}, ofs {ofs}): {op:?}"
            );
        }
    }
    // The twin was forced abstract every step; the free memory must be
    // *allowed* to differ in representation while agreeing in content.
    assert_eq!(fast, slow);
}

/// SplitMix64 — in-file so the test runs offline with zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const CHUNKS: [Chunk; 10] = [
    Chunk::I8S,
    Chunk::I8U,
    Chunk::I16S,
    Chunk::I16U,
    Chunk::I32,
    Chunk::I64,
    Chunk::F32,
    Chunk::F64,
    Chunk::Ptr,
    Chunk::Any64,
];

/// A random op; offsets are aligned for the drawn chunk, values include
/// the abstract cases (`Undef`, pointers) that force demotion and the
/// byte overwrites that drive promotion.
fn random_op(rng: &mut Rng) -> Op {
    let chunk = CHUNKS[rng.below(CHUNKS.len() as u64) as usize];
    let slots = (BLOCK_SIZE - chunk.size()).max(0) / chunk.align() + 1;
    let ofs = rng.below(slots as u64) as i64 * chunk.align();
    match rng.below(10) {
        0..=4 => {
            let v = match rng.below(6) {
                0 => Val::Undef,
                1 => Val::Int(rng.next() as i32),
                2 => Val::Long(rng.next() as i64),
                3 => Val::Single(f32::from_bits(rng.next() as u32 & 0x7f7f_ffff)),
                4 => Val::Float(f64::from_bits(rng.next() & 0x7fef_ffff_ffff_ffff)),
                _ => Val::Ptr(rng.below(4) as u32, rng.below(32) as i64),
            };
            Op::Store(chunk, ofs, v)
        }
        5..=7 => Op::Load(chunk, ofs),
        8 => {
            let lo = rng.below(BLOCK_SIZE as u64) as i64;
            let hi = (lo + 1 + rng.below(8) as i64).min(BLOCK_SIZE);
            Op::FreePartial(lo, hi)
        }
        _ => {
            let lo = rng.below(BLOCK_SIZE as u64) as i64;
            let hi = (lo + 1 + rng.below(16) as i64).min(BLOCK_SIZE);
            Op::CopyRange(lo, hi)
        }
    }
}

/// Always-on randomized equivalence: 64 scripts of 60 ops, fixed seed.
#[test]
fn randomized_script_equivalence() {
    for seed in 0..64u64 {
        let mut rng = Rng(0xc0ff_ee00 + seed);
        let ops: Vec<Op> = (0..60).map(|_| random_op(&mut rng)).collect();
        check_script(&ops);
    }
}

/// Promotion/demotion lifecycle on a directed script: fresh block is
/// abstract (all-Undef), filling it with scalars promotes it, a pointer
/// store demotes it, overwriting the pointer promotes it again.
#[test]
fn promotion_demotion_lifecycle() {
    let mut m = Mem::new();
    let b = m.alloc(0, 32);
    assert_eq!(m.block_is_concrete(b), Some(false), "fresh block is all-Undef");
    for slot in 0..4 {
        m.store(Chunk::I64, b, slot * 8, Val::Long(slot)).unwrap();
    }
    assert_eq!(m.block_is_concrete(b), Some(true), "all-scalar block promotes");
    m.store(Chunk::Ptr, b, 8, Val::Ptr(b, 0)).unwrap();
    assert_eq!(m.block_is_concrete(b), Some(false), "fragments demote");
    assert_eq!(m.load(Chunk::Ptr, b, 8).unwrap(), Val::Ptr(b, 0));
    m.store(Chunk::I64, b, 8, Val::Long(-1)).unwrap();
    assert_eq!(
        m.block_is_concrete(b),
        Some(true),
        "overwriting the last fragment re-promotes"
    );
    // The round trip observed nothing representation-specific.
    for slot in 0..4 {
        let want = if slot == 1 { -1 } else { slot };
        assert_eq!(m.load(Chunk::I64, b, slot * 8).unwrap(), Val::Long(want));
    }
}

/// Fragment spill: a narrow store overlapping a pointer's fragments
/// scrambles the pointer identically in both representations.
#[test]
fn fragment_spill_matches_across_reprs() {
    let script = [
        Op::Store(Chunk::I64, 0, Val::Long(7)),
        Op::Store(Chunk::I64, 8, Val::Long(8)),
        Op::Store(Chunk::Ptr, 8, Val::Ptr(0, 4)),
        Op::Store(Chunk::I32, 12, Val::Int(9)), // clobbers fragments 4..8
        Op::Load(Chunk::Ptr, 8),                // must be Undef in both
        Op::Store(Chunk::I64, 8, Val::Long(1)),
        Op::Load(Chunk::I64, 8),
    ];
    check_script(&script);
}

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = Op> {
        (any::<u64>()).prop_map(|seed| {
            let mut rng = Rng(seed);
            random_op(&mut rng)
        })
    }

    proptest! {
        /// The two representations are observationally equivalent under
        /// arbitrary scripts (shrinking finds a minimal diverging script).
        #[test]
        fn repr_equivalence(ops in proptest::collection::vec(arb_op(), 1..80)) {
            check_script(&ops);
        }
    }
}
