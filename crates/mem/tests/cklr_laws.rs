//! Property-based validation of the CKLR laws (paper Fig. 8) for the
//! memory-model relations: loads from related memories yield related values,
//! stores of related values preserve the relations, and allocation/free
//! evolve worlds monotonically.
//!
//! These are the proof obligations of the Coq development, checked here on
//! randomized memory states (DESIGN.md §1: property testing replaces proof).

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use mem::{extends, mem_inject, val_inject, Chunk, Mem, MemInj, Val};
use proptest::prelude::*;

/// A generator of scalar values (no pointers; pointer cases are exercised by
/// the structured scenarios below).
fn scalar_val() -> impl Strategy<Value = Val> {
    prop_oneof![
        Just(Val::Undef),
        any::<i32>().prop_map(Val::Int),
        any::<i64>().prop_map(Val::Long),
    ]
}

fn chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        Just(Chunk::I8S),
        Just(Chunk::I8U),
        Just(Chunk::I16S),
        Just(Chunk::I16U),
        Just(Chunk::I32),
        Just(Chunk::I64),
        Just(Chunk::Any64),
    ]
}

/// A script of memory operations, replayed to build random memory states.
#[derive(Debug, Clone)]
enum MemOp {
    Alloc(i64),
    Store(Chunk, usize, i64, Val),
    Free(usize),
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (8i64..64).prop_map(MemOp::Alloc),
        (chunk(), any::<usize>(), 0i64..8, scalar_val()).prop_map(|(c, b, o, v)| MemOp::Store(
            c,
            b,
            o * 8,
            v
        )),
        any::<usize>().prop_map(MemOp::Free),
    ]
}

/// Replay a script, ignoring failing operations (they model UB the program
/// would avoid).
fn replay(ops: &[MemOp]) -> Mem {
    let mut m = Mem::new();
    let mut blocks: Vec<mem::BlockId> = Vec::new();
    for op in ops {
        match op {
            MemOp::Alloc(size) => blocks.push(m.alloc(0, *size)),
            MemOp::Store(c, bi, o, v) => {
                if let Some(b) = blocks.get(bi % blocks.len().max(1)) {
                    let _ = m.store(*c, *b, *o, *v);
                }
            }
            MemOp::Free(bi) => {
                if !blocks.is_empty() {
                    let b = blocks[bi % blocks.len()];
                    if let Ok((lo, hi)) = m.bounds(b) {
                        let _ = m.free(b, lo, hi);
                    }
                }
            }
        }
    }
    m
}

proptest! {
    /// Extension is reflexive on every reachable memory state.
    #[test]
    fn ext_reflexive(ops in prop::collection::vec(mem_op(), 0..20)) {
        let m = replay(&ops);
        prop_assert!(extends(&m, &m));
    }

    /// The identity injection relates every reachable state to itself
    /// (`inj` law: reflexivity at the identity world).
    #[test]
    fn inj_identity_reflexive(ops in prop::collection::vec(mem_op(), 0..20)) {
        let m = replay(&ops);
        let f = MemInj::identity_below(m.next_block());
        // Freed blocks must be dropped from the injection first.
        let mut g = MemInj::new();
        for (b, t) in f.iter() {
            if m.valid_block(b) {
                g.insert(b, t.0, t.1);
            }
        }
        prop_assert_eq!(mem_inject(&g, &m, &m), Ok(()));
    }

    /// Fig. 8 `load` law for `ext`: if `m1 ≤m m2`, a successful load from
    /// `m1` is refined by the same load from `m2`.
    #[test]
    fn ext_load_law(
        ops in prop::collection::vec(mem_op(), 1..20),
        extra in prop::collection::vec((chunk(), any::<usize>(), 0i64..8, scalar_val()), 0..6),
        c in chunk(),
        o in 0i64..8,
    ) {
        let m1 = replay(&ops);
        // m2 = m1 plus extra stores into *undefined* bytes only would be the
        // precise construction; instead make m2 = m1 (reflexive case) plus
        // defined-over-undef refinements via fresh stores on a copy that we
        // then check: simpler sound construction: m2 identical.
        let mut m2 = m1.clone();
        for (c, bi, o, v) in extra {
            // Only allow stores that refine Undef contents (keeps m1 ≤m m2).
            let blocks: Vec<_> = m1.blocks().collect();
            if blocks.is_empty() { continue; }
            let b = blocks[bi % blocks.len()];
            let region_undef = (0..c.size()).all(|k| {
                matches!(m1.content(b, o * 8 + k), Some(mem::MemVal::Undef))
            });
            if region_undef {
                let _ = m2.store(c, b, o * 8, v);
            }
        }
        prop_assume!(extends(&m1, &m2));
        for b in m1.blocks() {
            if let Ok(v1) = m1.load(c, b, o * 8) {
                let v2 = m2.load(c, b, o * 8).expect("m2 has at least m1's permissions");
                prop_assert!(v1.lessdef(&v2), "load {v1} not refined by {v2}");
            }
        }
    }

    /// Fig. 8 `store` law for `ext`: storing related values into related
    /// memories preserves the extension.
    #[test]
    fn ext_store_law(
        ops in prop::collection::vec(mem_op(), 1..20),
        c in chunk(),
        o in 0i64..8,
        v in scalar_val(),
    ) {
        let m1 = replay(&ops);
        let m2 = m1.clone();
        prop_assume!(extends(&m1, &m2));
        for b in m1.blocks() {
            let mut m1b = m1.clone();
            let mut m2b = m2.clone();
            // Undef stored on the left, a refinement stored on the right.
            let refined = if matches!(v, Val::Undef) { Val::Int(7) } else { v };
            let r1 = m1b.store(c, b, o * 8, Val::Undef);
            let r2 = m2b.store(c, b, o * 8, refined);
            prop_assume!(r1.is_ok() && r2.is_ok());
            prop_assert!(extends(&m1b, &m2b));
        }
    }

    /// Fig. 8 `alloc` law: parallel allocation extends the injection world
    /// monotonically (`f ⊆ f'`) and preserves the relation.
    #[test]
    fn inj_alloc_law(
        ops in prop::collection::vec(mem_op(), 0..16),
        size in 1i64..64,
    ) {
        let m = replay(&ops);
        let mut f = MemInj::new();
        for b in m.blocks() {
            f.insert(b, b, 0);
        }
        prop_assume!(mem_inject(&f, &m, &m).is_ok());
        let mut m1 = m.clone();
        let mut m2 = m.clone();
        let b1 = m1.alloc(0, size);
        let b2 = m2.alloc(0, size);
        let mut f2 = f.clone();
        f2.insert(b1, b2, 0);
        prop_assert!(f.included_in(&f2));
        prop_assert_eq!(mem_inject(&f2, &m1, &m2), Ok(()));
    }

    /// Fig. 8 `free` law: freeing corresponding regions preserves the
    /// injection.
    #[test]
    fn inj_free_law(ops in prop::collection::vec(mem_op(), 1..16)) {
        let m = replay(&ops);
        let mut f = MemInj::new();
        for b in m.blocks() {
            f.insert(b, b, 0);
        }
        prop_assume!(mem_inject(&f, &m, &m).is_ok());
        let Some(victim) = m.blocks().next() else { return Ok(()); };
        let (lo, hi) = m.bounds(victim).unwrap();
        let mut m1 = m.clone();
        let mut m2 = m.clone();
        prop_assume!(m1.free(victim, lo, hi).is_ok());
        prop_assume!(m2.free(victim, lo, hi).is_ok());
        // Drop the freed block from the mapping (the relation only
        // constrains mapped blocks).
        let mut f2 = MemInj::new();
        for (b, t) in f.iter() {
            if b != victim {
                f2.insert(b, t.0, t.1);
            }
        }
        prop_assert_eq!(mem_inject(&f2, &m1, &m2), Ok(()));
    }

    /// `val_inject` transports through value operations: related operands
    /// give related results for arithmetic (the parametricity that paper
    /// Thm 4.3 builds on).
    #[test]
    fn val_ops_parametric(a in scalar_val(), b in scalar_val()) {
        let f = MemInj::new();
        // Scalars are related to themselves.
        prop_assert!(val_inject(&f, &a, &a));
        for (x, y) in [
            (a.add(b), a.add(b)),
            (a.sub(b), a.sub(b)),
            (a.mul(b), a.mul(b)),
            (a.divs(b), a.divs(b)),
        ] {
            prop_assert!(val_inject(&f, &x, &y));
        }
        // Undef operands produce Undef-or-equal results (refinable).
        let undef_side = Val::Undef.add(b);
        prop_assert!(undef_side.lessdef(&a.add(b)) || !matches!(a, Val::Int(_) | Val::Long(_)) || undef_side == Val::Undef);
    }

    /// Chunk round-trips: storing then loading through the same chunk yields
    /// the normalized value.
    #[test]
    fn store_load_roundtrip(c in chunk(), v in scalar_val(), o in 0i64..4) {
        let mut m = Mem::new();
        let b = m.alloc(0, 64);
        let ofs = o * 8;
        m.store(c, b, ofs, v).unwrap();
        let loaded = m.load(c, b, ofs).unwrap();
        // Loading yields the chunk-normalized image of the stored value.
        let expect = match (c, c.normalize(v)) {
            // Numeric chunks lose Undef-ness only if normalize said so.
            (_, nv) => nv,
        };
        prop_assert_eq!(loaded, expect);
    }
}
