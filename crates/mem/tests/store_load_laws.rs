//! The "good variables" laws of the CompCert memory model (`Mem.load_store_same`,
//! `Mem.load_store_other`, and friends), checked on randomized states.
//!
//! These are exactly the axioms the CKLRs of paper §4 rely on when they
//! transport loads and stores across a relation; the vertical-composition
//! story breaks down if any of them fails.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use mem::{Chunk, Mem, MemVal, Val};
use proptest::prelude::*;

/// A value that can be stored at `chunk` and reloaded without change
/// (CompCert: `v = Val.load_result chunk v`).
fn val_for(chunk: Chunk) -> BoxedStrategy<Val> {
    match chunk {
        Chunk::I8S => (-128i32..128).prop_map(Val::Int).boxed(),
        Chunk::I8U => (0i32..256).prop_map(Val::Int).boxed(),
        Chunk::I16S => (-32768i32..32768).prop_map(Val::Int).boxed(),
        Chunk::I16U => (0i32..65536).prop_map(Val::Int).boxed(),
        Chunk::I32 => any::<i32>().prop_map(Val::Int).boxed(),
        Chunk::I64 => any::<i64>().prop_map(Val::Long).boxed(),
        Chunk::F32 => any::<f32>().prop_map(Val::Single).boxed(),
        Chunk::F64 => any::<f64>().prop_map(Val::Float).boxed(),
        Chunk::Ptr => (0u32..4, 0i64..64)
            .prop_map(|(b, o)| Val::Ptr(b, o))
            .boxed(),
        Chunk::Any64 => prop_oneof![
            Just(Val::Undef),
            any::<i32>().prop_map(Val::Int),
            any::<i64>().prop_map(Val::Long),
            any::<f64>().prop_map(Val::Float),
            (0u32..4, 0i64..64).prop_map(|(b, o)| Val::Ptr(b, o)),
        ]
        .boxed(),
    }
}

fn chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        Just(Chunk::I8S),
        Just(Chunk::I8U),
        Just(Chunk::I16S),
        Just(Chunk::I16U),
        Just(Chunk::I32),
        Just(Chunk::I64),
        Just(Chunk::F32),
        Just(Chunk::F64),
        Just(Chunk::Ptr),
        Just(Chunk::Any64),
    ]
}

/// chunk together with an offset aligned for it inside a 64-byte block.
fn chunk_ofs() -> impl Strategy<Value = (Chunk, i64)> {
    chunk().prop_flat_map(|c| {
        let slots = 64 / c.align();
        (
            Just(c),
            (0..slots - (c.size() - 1) / c.align()).prop_map(move |i| i * c.align()),
        )
    })
}

/// chunk, aligned offset, and a value storable at that chunk.
fn chunk_ofs_val() -> impl Strategy<Value = (Chunk, i64, Val)> {
    chunk_ofs().prop_flat_map(|(c, o)| (Just(c), Just(o), val_for(c)))
}

proptest! {
    /// `load_store_same`: a load at the stored chunk and offset gives the
    /// value back (for values representable at that chunk).
    #[test]
    fn load_after_store_roundtrips((c, ofs, v) in chunk_ofs_val()) {
        let mut m = Mem::new();
        let b = m.alloc(0, 64);
        m.store(c, b, ofs, v).unwrap();
        prop_assert_eq!(m.load(c, b, ofs).unwrap(), c.normalize(v));
    }

    /// `Any64` is lossless on *every* value, pointers and floats included —
    /// the property the untyped stack slots of App. C depend on.
    #[test]
    fn any64_is_lossless(v in val_for(Chunk::Any64), slot in 0i64..8) {
        let mut m = Mem::new();
        let b = m.alloc(0, 64);
        m.store(Chunk::Any64, b, slot * 8, v).unwrap();
        prop_assert_eq!(m.load(Chunk::Any64, b, slot * 8).unwrap(), v);
    }

    /// `load_store_other`: a store leaves loads at disjoint ranges unchanged.
    #[test]
    fn store_does_not_disturb_disjoint_ranges(
        (c1, o1) in chunk_ofs(),
        (c2, o2) in chunk_ofs(),
    ) {
        prop_assume!(o1 + c1.size() <= o2 || o2 + c2.size() <= o1);
        let mut m = Mem::new();
        let b = m.alloc(0, 64);
        m.store(c2, b, o2, Val::Long(0x5a5a_5a5a_5a5a_5a5a)).ok();
        let before = m.load(c2, b, o2).unwrap();
        m.store(c1, b, o1, Val::Long(-1)).ok();
        prop_assert_eq!(m.load(c2, b, o2).unwrap(), before);
    }

    /// Integers are stored as genuine little-endian bytes (CompCert's
    /// `encode_val`), so overwriting one byte of a stored `I64` bit-mixes
    /// exactly as on hardware.
    #[test]
    fn byte_overwrite_mixes_integer_bytes(v in any::<i64>(), hit in 0i64..8) {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::I64, b, 0, Val::Long(v)).unwrap();
        m.store(Chunk::I8U, b, hit, Val::Int(0xAB)).unwrap();
        let expect = (v as u64 & !(0xFFu64 << (8 * hit))) | (0xABu64 << (8 * hit));
        prop_assert_eq!(m.load(Chunk::I64, b, 0).unwrap(), Val::Long(expect as i64));
    }

    /// Pointers are stored as *fragments*, not bytes: overwriting any byte of
    /// a stored pointer destroys it — the full-width load is `Undef`, never a
    /// forged pointer (the property memory injections rely on).
    #[test]
    fn partial_overwrite_of_pointer_yields_undef(hit in 0i64..8) {
        let mut m = Mem::new();
        let b = m.alloc(0, 16);
        m.store(Chunk::Ptr, b, 0, Val::Ptr(b, 4)).unwrap();
        m.store(Chunk::I8U, b, hit, Val::Int(0xAB)).unwrap();
        prop_assert_eq!(m.load(Chunk::Ptr, b, 0).unwrap(), Val::Undef);
    }

    /// `copy_range_from` makes the copied range agree byte-for-byte and
    /// leaves everything outside it untouched.
    #[test]
    fn copy_range_is_exact_and_local(
        lo in 0i64..32, len in 0i64..32,
        src_val in any::<i64>(), dst_val in any::<i64>(),
    ) {
        let hi = (lo + len).min(64);
        let mut src = Mem::new();
        let bs = src.alloc(0, 64);
        let mut dst = src.clone();
        for slot in 0..8 {
            src.store(Chunk::I64, bs, slot * 8, Val::Long(src_val ^ slot)).unwrap();
            dst.store(Chunk::I64, bs, slot * 8, Val::Long(dst_val ^ slot)).unwrap();
        }
        let snapshot = dst.clone();
        dst.copy_range_from(&src, bs, lo, hi).unwrap();
        for ofs in 0..64 {
            let expect = if (lo..hi).contains(&ofs) {
                src.content(bs, ofs)
            } else {
                snapshot.content(bs, ofs)
            };
            prop_assert_eq!(dst.content(bs, ofs), expect);
        }
    }

    /// Copy-on-write isolation: mutating a clone never changes the original
    /// (the property every interpreter snapshot depends on).
    #[test]
    fn clone_then_mutate_is_isolated(
        v1 in any::<i64>(), v2 in any::<i64>(), slot in 0i64..4,
    ) {
        prop_assume!(v1 != v2);
        let mut m = Mem::new();
        let b = m.alloc(0, 32);
        m.store(Chunk::I64, b, slot * 8, Val::Long(v1)).unwrap();
        let snapshot = m.clone();
        m.store(Chunk::I64, b, slot * 8, Val::Long(v2)).unwrap();
        prop_assert_eq!(snapshot.load(Chunk::I64, b, slot * 8).unwrap(), Val::Long(v1));
        prop_assert_eq!(m.load(Chunk::I64, b, slot * 8).unwrap(), Val::Long(v2));
        prop_assert_ne!(snapshot, m);
    }

    /// Freeing a whole block invalidates it for every subsequent access, and
    /// never resurrects its identifier.
    #[test]
    fn free_invalidates_forever(n_alloc in 1u32..6) {
        let mut m = Mem::new();
        let mut ids = Vec::new();
        for _ in 0..n_alloc {
            ids.push(m.alloc(0, 8));
        }
        let victim = ids[0];
        m.free(victim, 0, 8).unwrap();
        prop_assert!(!m.valid_block(victim));
        prop_assert!(m.load(Chunk::I64, victim, 0).is_err());
        prop_assert!(m.store(Chunk::I64, victim, 0, Val::Long(1)).is_err());
        let fresh = m.alloc(0, 8);
        prop_assert_ne!(fresh, victim);
        prop_assert_eq!(fresh, n_alloc);
    }
}

#[test]
fn any64_stores_fragments_not_bytes() {
    // Fragment representation: an `Any64` slot holds `Fragment(v, i)` cells,
    // so a *typed* narrow load from it cannot reconstitute bytes.
    let mut m = Mem::new();
    let b = m.alloc(0, 8);
    m.store(Chunk::Any64, b, 0, Val::Long(0x0102_0304_0506_0708))
        .unwrap();
    assert!(matches!(
        m.content(b, 0),
        Some(MemVal::Fragment(Val::Long(_), 0))
    ));
    assert_eq!(m.load(Chunk::I8U, b, 0).unwrap(), Val::Undef);
}
