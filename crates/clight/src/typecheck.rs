//! Type checker and elaborator for Clight-mini.
//!
//! Turns the parser's untyped AST into a fully-typed program:
//! * every expression node is annotated with its type;
//! * array indexing desugars into pointer arithmetic + dereference;
//! * arrays decay to pointers in rvalue position;
//! * `int`/`long` mixes get implicit widening casts (C-style);
//! * statements are checked (assignment compatibility, call signatures,
//!   return types, scalar conditions).

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Binop, CallDest, Expr, Program, Stmt, Unop};
use crate::ty::Ty;

/// A type error with context.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Function in which the error occurred, if any.
    pub function: Option<String>,
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "type error in `{name}`: {}", self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

struct Ctx<'p> {
    prog: &'p Program,
    fname: String,
    locals: BTreeMap<String, Ty>,
    ret: Ty,
}

impl Ctx<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TypeError> {
        Err(TypeError {
            function: Some(self.fname.clone()),
            message: message.into(),
        })
    }

    fn var_ty(&self, name: &str) -> Option<Ty> {
        if let Some(t) = self.locals.get(name) {
            return Some(t.clone());
        }
        self.prog
            .globals
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.ty.clone())
    }
}

/// Type-check and elaborate a parsed program.
///
/// # Errors
/// Reports the first type error found, naming the enclosing function.
///
/// # Example
///
/// ```
/// let p = clight::parse("int id(int x) { return x; }")?;
/// let typed = clight::typecheck(&p)?;
/// assert_eq!(typed.functions[0].ret, clight::Ty::Int);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn typecheck(prog: &Program) -> Result<Program, TypeError> {
    let mut out = prog.clone();
    for g in &prog.globals {
        if g.ty == Ty::Void {
            return Err(TypeError {
                function: None,
                message: format!("global `{}` has type void", g.name),
            });
        }
        if g.init.is_some() && !g.ty.is_scalar() {
            return Err(TypeError {
                function: None,
                message: format!("global `{}`: initializer on non-scalar", g.name),
            });
        }
    }
    for f in &mut out.functions {
        let mut locals = BTreeMap::new();
        for (name, t) in &f.vars {
            if !t.is_scalar() && !matches!(t, Ty::Array(_, _)) {
                return Err(TypeError {
                    function: Some(f.name.clone()),
                    message: format!("local `{name}` has invalid type {t}"),
                });
            }
            if locals.insert(name.clone(), t.clone()).is_some() {
                return Err(TypeError {
                    function: Some(f.name.clone()),
                    message: format!("duplicate local `{name}`"),
                });
            }
        }
        let ctx = Ctx {
            prog,
            fname: f.name.clone(),
            locals,
            ret: f.ret.clone(),
        };
        f.body = check_stmt(&ctx, &f.body)?;
    }
    Ok(out)
}

fn check_stmt(ctx: &Ctx<'_>, s: &Stmt) -> Result<Stmt, TypeError> {
    match s {
        Stmt::Skip | Stmt::Break | Stmt::Continue => Ok(s.clone()),
        Stmt::Assign(lv, rhs) => {
            let lv = lvalue(ctx, lv)?;
            let lty = lv.ty();
            if !lty.is_scalar() {
                return ctx.err(format!("cannot assign to value of type {lty}"));
            }
            let rhs = rvalue(ctx, rhs)?;
            let rhs = coerce(ctx, rhs, &lty)?;
            Ok(Stmt::Assign(lv, rhs))
        }
        Stmt::Set(_, _) => ctx.err("temporaries cannot appear before SimplLocals"),
        Stmt::Call(dest, fname, args) => {
            let Some(sig_tys) = call_param_types(ctx.prog, fname) else {
                return ctx.err(format!("call to unknown function `{fname}`"));
            };
            let (param_tys, ret_ty) = sig_tys;
            if args.len() != param_tys.len() {
                return ctx.err(format!(
                    "`{fname}` expects {} arguments, got {}",
                    param_tys.len(),
                    args.len()
                ));
            }
            let mut checked_args = Vec::with_capacity(args.len());
            for (a, t) in args.iter().zip(&param_tys) {
                let a = rvalue(ctx, a)?;
                checked_args.push(coerce(ctx, a, t)?);
            }
            let dest = match dest {
                CallDest::None => CallDest::None,
                CallDest::Lvalue(lv) => {
                    let lv = lvalue(ctx, lv)?;
                    if ret_ty == Ty::Void {
                        return ctx.err(format!("`{fname}` returns void"));
                    }
                    if lv.ty() != ret_ty {
                        return ctx.err(format!(
                            "result of `{fname}` has type {ret_ty}, destination has {}",
                            lv.ty()
                        ));
                    }
                    CallDest::Lvalue(lv)
                }
                CallDest::Temp(t, ty) => CallDest::Temp(*t, ty.clone()),
            };
            Ok(Stmt::Call(dest, fname.clone(), checked_args))
        }
        Stmt::Seq(a, b) => Ok(Stmt::Seq(
            Box::new(check_stmt(ctx, a)?),
            Box::new(check_stmt(ctx, b)?),
        )),
        Stmt::If(c, a, b) => {
            let c = rvalue(ctx, c)?;
            if !c.ty().is_scalar() {
                return ctx.err("condition is not scalar");
            }
            Ok(Stmt::If(
                c,
                Box::new(check_stmt(ctx, a)?),
                Box::new(check_stmt(ctx, b)?),
            ))
        }
        Stmt::While(c, body) => {
            let c = rvalue(ctx, c)?;
            if !c.ty().is_scalar() {
                return ctx.err("condition is not scalar");
            }
            Ok(Stmt::While(c, Box::new(check_stmt(ctx, body)?)))
        }
        Stmt::Return(e) => match (e, &ctx.ret) {
            (None, Ty::Void) => Ok(Stmt::Return(None)),
            (None, t) => ctx.err(format!("missing return value of type {t}")),
            (Some(_), Ty::Void) => ctx.err("void function returns a value"),
            (Some(e), t) => {
                let e = rvalue(ctx, e)?;
                let e = coerce(ctx, e, &t.clone())?;
                Ok(Stmt::Return(Some(e)))
            }
        },
    }
}

fn call_param_types(prog: &Program, name: &str) -> Option<(Vec<Ty>, Ty)> {
    if let Some(f) = prog.function(name) {
        return Some((
            f.params.iter().map(|(_, t)| t.clone()).collect(),
            f.ret.clone(),
        ));
    }
    prog.extern_decl(name)
        .map(|e| (e.params.clone(), e.ret.clone()))
}

/// Elaborate an expression in lvalue position.
fn lvalue(ctx: &Ctx<'_>, e: &Expr) -> Result<Expr, TypeError> {
    match e {
        Expr::Var(name, _) => match ctx.var_ty(name) {
            Some(t) => Ok(Expr::Var(name.clone(), t)),
            None => ctx.err(format!("unknown variable `{name}`")),
        },
        Expr::Deref(inner, _) => {
            let inner = rvalue(ctx, inner)?;
            match inner.ty().element() {
                Some(elem) => {
                    let elem = elem.clone();
                    Ok(Expr::Deref(Box::new(inner), elem))
                }
                None => ctx.err(format!("cannot dereference value of type {}", inner.ty())),
            }
        }
        Expr::Index(base, idx, _) => {
            let desugared = desugar_index(ctx, base, idx)?;
            Ok(desugared)
        }
        other => ctx.err(format!("`{other}` is not an lvalue")),
    }
}

/// Elaborate an expression in rvalue position (loads from lvalues are
/// implicit in the semantics; arrays decay to pointers).
fn rvalue(ctx: &Ctx<'_>, e: &Expr) -> Result<Expr, TypeError> {
    match e {
        Expr::ConstInt(n) => Ok(Expr::ConstInt(*n)),
        Expr::ConstLong(n) => Ok(Expr::ConstLong(*n)),
        Expr::SizeOf(t) => Ok(Expr::SizeOf(t.clone())),
        Expr::Var(_, _) | Expr::Deref(_, _) | Expr::Index(_, _, _) => {
            let lv = lvalue(ctx, e)?;
            // Array-to-pointer decay.
            if let Ty::Array(elem, _) = lv.ty() {
                let pt = Ty::Ptr(elem);
                return Ok(Expr::Addr(Box::new(lv), pt));
            }
            Ok(lv)
        }
        Expr::Temp(t, ty) => Ok(Expr::Temp(*t, ty.clone())),
        Expr::Addr(inner, _) => {
            let lv = lvalue(ctx, inner)?;
            let pt = Ty::Ptr(Box::new(lv.ty()));
            Ok(Expr::Addr(Box::new(lv), pt))
        }
        Expr::Unop(op, a, _) => {
            let a = rvalue(ctx, a)?;
            let ty = match (op, a.ty()) {
                (Unop::Neg | Unop::Not, Ty::Int) => Ty::Int,
                (Unop::Neg | Unop::Not, Ty::Long) => Ty::Long,
                (Unop::LogicalNot, t) if t.is_scalar() => Ty::Int,
                (_, t) => return ctx.err(format!("unary {op} on {t}")),
            };
            Ok(Expr::Unop(*op, Box::new(a), ty))
        }
        Expr::Binop(op, a, b, _) => {
            let a = rvalue(ctx, a)?;
            let b = rvalue(ctx, b)?;
            elaborate_binop(ctx, *op, a, b)
        }
        Expr::Cast(a, target) => {
            let a = rvalue(ctx, a)?;
            let ok = matches!(
                (&a.ty(), target),
                (Ty::Int, Ty::Int | Ty::Long)
                    | (Ty::Long, Ty::Int | Ty::Long | Ty::Ptr(_))
                    | (Ty::Ptr(_), Ty::Long | Ty::Ptr(_))
            );
            if !ok {
                return ctx.err(format!("invalid cast from {} to {target}", a.ty()));
            }
            Ok(Expr::Cast(Box::new(a), target.clone()))
        }
    }
}

fn desugar_index(ctx: &Ctx<'_>, base: &Expr, idx: &Expr) -> Result<Expr, TypeError> {
    let base = rvalue(ctx, base)?; // decay already applied
    let Some(elem) = base.ty().element().cloned() else {
        return ctx.err(format!("cannot index value of type {}", base.ty()));
    };
    if !elem.is_scalar() {
        return ctx.err("only arrays of scalars are supported");
    }
    let idx = rvalue(ctx, idx)?;
    let idx = coerce(ctx, idx, &Ty::Long)?;
    let offset = Expr::Binop(
        Binop::Mul,
        Box::new(idx),
        Box::new(Expr::ConstLong(elem.size())),
        Ty::Long,
    );
    let addr = Expr::Binop(
        Binop::Add,
        Box::new(base),
        Box::new(offset),
        Ty::Ptr(Box::new(elem.clone())),
    );
    Ok(Expr::Deref(Box::new(addr), elem))
}

fn elaborate_binop(ctx: &Ctx<'_>, op: Binop, a: Expr, b: Expr) -> Result<Expr, TypeError> {
    use Binop::*;
    let (ta, tb) = (a.ty(), b.ty());
    // Pointer arithmetic.
    if matches!(op, Add | Sub) {
        if let (Ty::Ptr(elem), Ty::Int | Ty::Long) = (&ta, &tb) {
            let scaled = Expr::Binop(
                Mul,
                Box::new(coerce(ctx, b, &Ty::Long)?),
                Box::new(Expr::ConstLong(elem.size())),
                Ty::Long,
            );
            return Ok(Expr::Binop(op, Box::new(a.clone()), Box::new(scaled), ta));
        }
        if op == Sub {
            if let (Ty::Ptr(e1), Ty::Ptr(e2)) = (&ta, &tb) {
                if e1 != e2 {
                    return ctx.err("pointer subtraction on different element types");
                }
                // (p - q) / sizeof(elem), in longs.
                let diff = Expr::Binop(Sub, Box::new(a), Box::new(b), Ty::Long);
                return Ok(Expr::Binop(
                    Div,
                    Box::new(diff),
                    Box::new(Expr::ConstLong(e1.size())),
                    Ty::Long,
                ));
            }
        }
        if op == Add {
            if let (Ty::Int | Ty::Long, Ty::Ptr(_)) = (&ta, &tb) {
                return elaborate_binop(ctx, op, b, a);
            }
        }
    }
    // Pointer comparisons.
    if let Binop::Cmp(_) = op {
        if matches!((&ta, &tb), (Ty::Ptr(_), Ty::Ptr(_))) {
            return Ok(Expr::Binop(op, Box::new(a), Box::new(b), Ty::Int));
        }
    }
    // Shifts: the amount is an `int`; the result has the left operand's type.
    if matches!(op, Shl | Shr) {
        if !matches!(ta, Ty::Int | Ty::Long) {
            return ctx.err(format!("shift on {ta}"));
        }
        let b = coerce(ctx, b, &Ty::Int)?;
        return Ok(Expr::Binop(op, Box::new(a), Box::new(b), ta));
    }
    // Integer operations with implicit widening.
    let common = match (&ta, &tb) {
        (Ty::Int, Ty::Int) => Ty::Int,
        (Ty::Long, Ty::Long) | (Ty::Int, Ty::Long) | (Ty::Long, Ty::Int) => Ty::Long,
        _ => return ctx.err(format!("binary {op} on {ta} and {tb}")),
    };
    let a = coerce(ctx, a, &common)?;
    let b = coerce(ctx, b, &common)?;
    let result = match op {
        Binop::Cmp(_) => Ty::Int,
        // Shifts take an int shift amount; the result has the left type.
        Shl | Shr => common.clone(),
        _ => common.clone(),
    };
    Ok(Expr::Binop(op, Box::new(a), Box::new(b), result))
}

/// Insert an implicit cast from the expression's type to `target` where C
/// would (int↔long); reject anything else.
fn coerce(ctx: &Ctx<'_>, e: Expr, target: &Ty) -> Result<Expr, TypeError> {
    let t = e.ty();
    if &t == target {
        return Ok(e);
    }
    match (&t, target) {
        (Ty::Int, Ty::Long) | (Ty::Long, Ty::Int) => Ok(Expr::Cast(Box::new(e), target.clone())),
        _ => ctx.err(format!("expected {target}, found {t}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<Program, TypeError> {
        typecheck(&parse(src).unwrap())
    }

    #[test]
    fn annotates_types() {
        let p = check("int add(int a, int b) { return a + b; }").unwrap();
        match &p.functions[0].body {
            Stmt::Return(Some(e)) => assert_eq!(e.ty(), Ty::Int),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(check("int f(void) { return zz; }").is_err());
    }

    #[test]
    fn rejects_bad_call_arity() {
        let src = "extern int g(int); int f(void) { int x; x = g(1, 2); return x; }";
        assert!(check(src).is_err());
    }

    #[test]
    fn implicit_widening() {
        let p = check("long f(int a) { return a + 1L; }").unwrap();
        match &p.functions[0].body {
            Stmt::Return(Some(e)) => assert_eq!(e.ty(), Ty::Long),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn index_desugars_to_deref() {
        let p = check("long buf[4]; long get(int i) { return buf[i]; }").unwrap();
        match &p.functions[0].body {
            Stmt::Return(Some(Expr::Deref(addr, t))) => {
                assert_eq!(*t, Ty::Long);
                assert!(matches!(&**addr, Expr::Binop(Binop::Add, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let p = check("long f(long* p) { return *(p + 2); }").unwrap();
        // p + 2 should become p + (2 * 8).
        let s = format!("{:?}", p.functions[0].body);
        assert!(s.contains("ConstLong(8)"), "{s}");
    }

    #[test]
    fn rejects_assign_to_non_scalar() {
        // Assigning to a whole array is rejected by the type checker.
        assert!(check("int f(void) { int a[3]; int b[3]; a = b; return 0; }").is_err());
    }

    #[test]
    fn parser_rejects_assign_to_rvalue() {
        assert!(crate::parser::parse("int f(int a) { a + 1 = 2; return a; }").is_err());
    }

    #[test]
    fn rejects_void_misuse() {
        assert!(check("extern void g(); int f(void) { int x; x = g(); return x; }").is_err());
        assert!(check("int f(void) { return; }").is_err());
    }

    #[test]
    fn address_of_gives_pointer() {
        let p = check("int f(void) { int x; int* p; x = 1; p = &x; return *p; }").unwrap();
        assert!(p.functions.len() == 1);
    }
}
