//! Open semantics of Clight-mini: an LTS over the game `C ↠ C`
//! (paper §3.2).
//!
//! The component is activated by a [`CQuery`] naming one of its defined
//! functions; calls to functions it does not define suspend on an external
//! question (`X`), to be resumed by the environment's [`CReply`] (`Y`).
//! Locals live in memory blocks allocated at function entry and freed at
//! return, so the `SimplLocals` pass is observable in the memory footprint.

use std::collections::BTreeMap;
use std::rc::Rc;

use compcerto_core::iface::{CQuery, CReply, C};
use compcerto_core::lts::{Batch, Event, Lts, Step, Stuck};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Mem, Val};

use crate::ast::{Binop, CallDest, Expr, Function, Program, Stmt, TempId, Unop};
use crate::fast;
use crate::ty::Ty;

/// The open semantics `Clight(p) : C ↠ C` of a translation unit.
///
/// All components of a linked program share a [`SymbolTable`] assigning
/// global blocks (paper App. A.3); the incoming memory is expected to contain
/// those blocks (build it with
/// [`SymbolTable::build_init_mem`]).
#[derive(Debug, Clone)]
pub struct ClightSem {
    prog: Program,
    symtab: SymbolTable,
    label: String,
    /// Prepared arenas driving the batched fast path (DESIGN.md §13).
    fast: fast::PProg,
}

impl ClightSem {
    /// Wrap a typed program as an open transition system.
    pub fn new(prog: Program, symtab: SymbolTable) -> ClightSem {
        let fast = fast::prepare(&prog, &symtab);
        ClightSem {
            prog,
            symtab,
            label: "Clight".into(),
            fast,
        }
    }

    /// The prepared program (fast-path internals).
    pub(crate) fn fast(&self) -> &fast::PProg {
        &self.fast
    }

    /// The display label (fast-path stuck-message prefix).
    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    /// Override the display name (useful when several units coexist).
    pub fn with_label(mut self, label: impl Into<String>) -> ClightSem {
        self.label = label.into();
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// The shared symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn function_of_val(&self, vf: &Val) -> Option<&Function> {
        match vf {
            Val::Ptr(b, 0) => {
                let name = self.symtab.ident_of(*b)?;
                self.prog.function(name)
            }
            _ => None,
        }
    }
}

/// A function activation's local environment.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Name of the running function.
    fname: Ident,
    /// Memory-resident locals: name → (block, type).
    env: BTreeMap<Ident, (BlockId, Ty)>,
    /// Temporaries.
    temps: BTreeMap<TempId, Val>,
}

/// Continuations (what to do after the current statement).
#[derive(Debug, Clone)]
pub enum Kont {
    /// Return to the incoming caller (the environment).
    Stop,
    /// Execute a statement next.
    Seq(Stmt, Rc<Kont>),
    /// Re-test a `while` loop.
    Loop(Expr, Stmt, Rc<Kont>),
    /// Return into a suspended internal caller.
    Call {
        dest: CallDest,
        frame: Frame,
        kont: Rc<Kont>,
    },
}

/// States of the Clight LTS.
#[derive(Debug, Clone)]
pub enum State {
    /// About to enter a (locally-defined) function.
    Entry {
        /// Callee address.
        vf: Val,
        /// Argument values.
        args: Vec<Val>,
        /// Memory.
        mem: Mem,
        /// Pending continuation.
        kont: Kont,
    },
    /// Executing a statement.
    Stmt {
        /// Current statement.
        s: Stmt,
        /// Activation frame.
        frame: Frame,
        /// Continuation.
        kont: Kont,
        /// Memory.
        mem: Mem,
    },
    /// Unwinding a return value toward the caller (locals already freed).
    Returning {
        /// Value being returned.
        v: Val,
        /// Memory.
        mem: Mem,
        /// Continuation (always `Stop` or `Call`).
        kont: Kont,
    },
    /// Suspended on an external call.
    External {
        /// The outgoing question.
        q: CQuery,
        /// Where the result goes.
        dest: CallDest,
        /// Suspended frame.
        frame: Frame,
        /// Continuation.
        kont: Kont,
    },

    // The remaining variants are the fast interpreter's mid-batch states
    // (crate::fast, DESIGN.md §13). They arise only inside batched runs
    // (`step_batch`), never from `initial` or traced single-stepping, and
    // behave identically to their legacy counterparts under `step`,
    // `resume`, and `measure`.
    /// (internal) Fast-path `Entry` with the callee pre-resolved.
    #[doc(hidden)]
    FEntry {
        /// Callee function index.
        fidx: u32,
        /// Argument values.
        args: Vec<Val>,
        /// Memory.
        mem: Mem,
        /// Pending continuation.
        kont: fast::PKont,
    },
    /// (internal) Fast-path `Stmt` at an arena statement id.
    #[doc(hidden)]
    FStmt {
        /// Current statement id (into the frame's function arena).
        sid: u32,
        /// Activation frame.
        frame: fast::PFrame,
        /// Continuation.
        kont: fast::PKont,
        /// Memory.
        mem: Mem,
    },
    /// (internal) Fast-path `Returning`.
    #[doc(hidden)]
    FReturning {
        /// Value being returned.
        v: Val,
        /// Memory.
        mem: Mem,
        /// Continuation (always `Stop` or `Call`).
        kont: fast::PKont,
    },
    /// (internal) Fast-path `External`.
    #[doc(hidden)]
    FExternal {
        /// The outgoing question.
        q: CQuery,
        /// Where the result goes.
        dest: fast::PDest,
        /// Suspended frame.
        frame: fast::PFrame,
        /// Continuation.
        kont: fast::PKont,
    },
}

// The `Kont` type is private; states embed it, so `State` exposes no public
// fields of type `Kont` directly (fields are doc(hidden) by privacy of Kont).

impl Kont {
    /// Number of suspended internal activations below this continuation
    /// (the `Call` links). This is the call depth the budgeted runner
    /// compares against `RunBudget::max_call_depth`.
    fn call_depth(&self) -> u64 {
        let mut depth = 0u64;
        let mut k = self;
        loop {
            match k {
                Kont::Stop => return depth,
                Kont::Seq(_, next) | Kont::Loop(_, _, next) => k = next,
                Kont::Call { kont, .. } => {
                    depth += 1;
                    k = kont;
                }
            }
        }
    }
}

impl State {
    /// The memory component of the state.
    fn mem_ref(&self) -> &Mem {
        match self {
            State::Entry { mem, .. }
            | State::Stmt { mem, .. }
            | State::Returning { mem, .. }
            | State::FEntry { mem, .. }
            | State::FStmt { mem, .. }
            | State::FReturning { mem, .. } => mem,
            State::External { q, .. } | State::FExternal { q, .. } => &q.mem,
        }
    }

    /// The call depth of the continuation component (both representations
    /// count their `Call` links the same way).
    fn call_depth(&self) -> u64 {
        match self {
            State::Entry { kont, .. }
            | State::Stmt { kont, .. }
            | State::Returning { kont, .. }
            | State::External { kont, .. } => kont.call_depth(),
            State::FEntry { kont, .. }
            | State::FStmt { kont, .. }
            | State::FReturning { kont, .. }
            | State::FExternal { kont, .. } => kont.call_depth(),
        }
    }
}

impl ClightSem {
    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    /// Evaluate an expression to a value.
    fn eval(&self, frame: &Frame, mem: &Mem, e: &Expr) -> Result<Val, Stuck> {
        match e {
            Expr::ConstInt(n) => Ok(Val::Int(*n)),
            Expr::ConstLong(n) => Ok(Val::Long(*n)),
            Expr::SizeOf(t) => Ok(Val::Long(t.size())),
            Expr::Temp(t, _) => match frame.temps.get(t) {
                Some(v) => Ok(*v),
                None => self.stuck(format!("unbound temporary $t{t} in `{}`", frame.fname)),
            },
            Expr::Var(_, _) | Expr::Deref(_, _) => {
                let (b, ofs, ty) = self.eval_lvalue(frame, mem, e)?;
                match ty.chunk() {
                    Some(chunk) => match mem.load(chunk, b, ofs) {
                        Ok(v) => Ok(v),
                        Err(err) => self.stuck(format!("load failed: {err}")),
                    },
                    // Arrays in rvalue position decay (handled by the type
                    // checker); reaching here means an untypechecked AST.
                    None => self.stuck(format!("load at non-scalar type {ty}")),
                }
            }
            Expr::Addr(inner, _) => {
                let (b, ofs, _) = self.eval_lvalue(frame, mem, inner)?;
                Ok(Val::Ptr(b, ofs))
            }
            Expr::Unop(op, a, _) => {
                let v = self.eval(frame, mem, a)?;
                Ok(match op {
                    Unop::Neg => v.neg(),
                    Unop::Not => v.not(),
                    Unop::LogicalNot => v.bool_not(),
                })
            }
            Expr::Binop(op, a, b, _) => {
                let va = self.eval(frame, mem, a)?;
                let vb = self.eval(frame, mem, b)?;
                Ok(eval_binop(*op, va, vb))
            }
            Expr::Cast(a, target) => {
                let v = self.eval(frame, mem, a)?;
                Ok(eval_cast(v, &a.ty(), target))
            }
            Expr::Index(_, _, _) => self.stuck("surface Index reached the semantics"),
        }
    }

    /// Evaluate an lvalue to a memory location.
    fn eval_lvalue(&self, frame: &Frame, mem: &Mem, e: &Expr) -> Result<(BlockId, i64, Ty), Stuck> {
        match e {
            Expr::Var(name, ty) => {
                if let Some((b, t)) = frame.env.get(name) {
                    return Ok((*b, 0, t.clone()));
                }
                match self.symtab.block_of(name) {
                    Some(b) => Ok((b, 0, ty.clone())),
                    None => self.stuck(format!("unknown variable `{name}`")),
                }
            }
            Expr::Deref(inner, ty) => {
                let v = self.eval(frame, mem, inner)?;
                match v {
                    Val::Ptr(b, ofs) => Ok((b, ofs, ty.clone())),
                    other => self.stuck(format!("dereference of non-pointer {other}")),
                }
            }
            other => self.stuck(format!("not an lvalue: {other}")),
        }
    }

    /// Enter function `f` with `args` in `mem`: allocate locals, bind
    /// parameters.
    fn enter(&self, f: &Function, args: &[Val], mem: &Mem, kont: Kont) -> Result<State, Stuck> {
        if args.len() != f.params.len() {
            return self.stuck(format!(
                "`{}` expects {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            ));
        }
        let mut mem = mem.clone();
        let mut env = BTreeMap::new();
        for (name, ty) in &f.vars {
            let b = mem.alloc(0, ty.size());
            env.insert(name.clone(), (b, ty.clone()));
        }
        let mut temps: BTreeMap<TempId, Val> = BTreeMap::new();
        for (tid, _, _) in &f.temps {
            temps.insert(*tid, Val::Undef);
        }
        // Bind parameters: into memory if the name is a var, into the
        // matching temp otherwise.
        for ((pname, pty), v) in f.params.iter().zip(args) {
            if let Some((b, _)) = env.get(pname) {
                let chunk = match pty.chunk() {
                    Some(c) => c,
                    None => return self.stuck(format!("parameter `{pname}` not scalar")),
                };
                if let Err(e) = mem.store(chunk, *b, 0, *v) {
                    return self.stuck(format!("storing parameter `{pname}`: {e}"));
                }
            } else if let Some((tid, _, _)) = f
                .temps
                .iter()
                .find(|(_, _, n)| n.as_deref() == Some(pname.as_str()))
            {
                temps.insert(*tid, *v);
            } else {
                return self.stuck(format!("parameter `{pname}` has no storage"));
            }
        }
        Ok(State::Stmt {
            s: f.body.clone(),
            frame: Frame {
                fname: f.name.clone(),
                env,
                temps,
            },
            kont,
            mem,
        })
    }

    /// Free a frame's locals on return.
    fn free_locals(&self, frame: &Frame, mem: &Mem) -> Result<Mem, Stuck> {
        let mut mem = mem.clone();
        for (name, (b, ty)) in &frame.env {
            if let Err(e) = mem.free(*b, 0, ty.size()) {
                return self.stuck(format!("freeing local `{name}`: {e}"));
            }
        }
        Ok(mem)
    }

    /// Write a call result into its destination.
    fn write_dest(
        &self,
        dest: &CallDest,
        v: Val,
        frame: &mut Frame,
        mem: &mut Mem,
    ) -> Result<(), Stuck> {
        match dest {
            CallDest::None => Ok(()),
            CallDest::Temp(t, _) => {
                frame.temps.insert(*t, v);
                Ok(())
            }
            CallDest::Lvalue(lv) => {
                let (b, ofs, ty) = self.eval_lvalue(frame, mem, lv)?;
                let chunk = match ty.chunk() {
                    Some(c) => c,
                    None => return self.stuck("call destination not scalar"),
                };
                match mem.store(chunk, b, ofs, v) {
                    Ok(()) => Ok(()),
                    Err(e) => self.stuck(format!("storing call result: {e}")),
                }
            }
        }
    }

    fn step_stmt(&self, s: &Stmt, frame: &Frame, kont: &Kont, mem: &Mem) -> Result<State, Stuck> {
        match s {
            Stmt::Skip => match kont {
                Kont::Seq(next, k) => Ok(State::Stmt {
                    s: next.clone(),
                    frame: frame.clone(),
                    kont: (**k).clone(),
                    mem: mem.clone(),
                }),
                Kont::Loop(cond, body, k) => Ok(State::Stmt {
                    s: Stmt::While(cond.clone(), Box::new(body.clone())),
                    frame: frame.clone(),
                    kont: (**k).clone(),
                    mem: mem.clone(),
                }),
                // Fell off the end of the function: implicit `return;`.
                Kont::Stop | Kont::Call { .. } => {
                    let mem = self.free_locals(frame, mem)?;
                    Ok(State::Returning {
                        v: Val::Undef,
                        mem,
                        kont: kont.clone(),
                    })
                }
            },
            Stmt::Assign(lv, rhs) => {
                let (b, ofs, ty) = self.eval_lvalue(frame, mem, lv)?;
                let v = self.eval(frame, mem, rhs)?;
                let chunk = match ty.chunk() {
                    Some(c) => c,
                    None => return self.stuck("assignment at non-scalar type"),
                };
                let mut mem = mem.clone();
                if let Err(e) = mem.store(chunk, b, ofs, v) {
                    return self.stuck(format!("store failed: {e}"));
                }
                Ok(State::Stmt {
                    s: Stmt::Skip,
                    frame: frame.clone(),
                    kont: kont.clone(),
                    mem,
                })
            }
            Stmt::Set(t, rhs) => {
                let v = self.eval(frame, mem, rhs)?;
                let mut frame = frame.clone();
                frame.temps.insert(*t, v);
                Ok(State::Stmt {
                    s: Stmt::Skip,
                    frame,
                    kont: kont.clone(),
                    mem: mem.clone(),
                })
            }
            Stmt::Call(dest, fname, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(frame, mem, a)?);
                }
                let Some(vf) = self.symtab.func_ptr(fname) else {
                    return self.stuck(format!("call to unknown symbol `{fname}`"));
                };
                let kont = Kont::Call {
                    dest: dest.clone(),
                    frame: frame.clone(),
                    kont: Rc::new(kont.clone()),
                };
                if self.prog.function(fname).is_some() {
                    Ok(State::Entry {
                        vf,
                        args: vals,
                        mem: mem.clone(),
                        kont,
                    })
                } else {
                    let Some(sig) = self.prog.sig_of(fname) else {
                        return self.stuck(format!("no signature for `{fname}`"));
                    };
                    let Kont::Call { dest, frame, kont } = kont else {
                        unreachable!()
                    };
                    Ok(State::External {
                        q: CQuery {
                            vf,
                            sig,
                            args: vals,
                            mem: mem.clone(),
                        },
                        dest,
                        frame,
                        kont: (*kont).clone(),
                    })
                }
            }
            Stmt::Seq(a, b) => Ok(State::Stmt {
                s: (**a).clone(),
                frame: frame.clone(),
                kont: Kont::Seq((**b).clone(), Rc::new(kont.clone())),
                mem: mem.clone(),
            }),
            Stmt::If(c, a, b) => {
                let v = self.eval(frame, mem, c)?;
                match v.truth() {
                    Some(t) => Ok(State::Stmt {
                        s: if t { (**a).clone() } else { (**b).clone() },
                        frame: frame.clone(),
                        kont: kont.clone(),
                        mem: mem.clone(),
                    }),
                    None => self.stuck(format!("undefined condition: {c} = {v}")),
                }
            }
            Stmt::While(c, body) => {
                let v = self.eval(frame, mem, c)?;
                match v.truth() {
                    Some(true) => Ok(State::Stmt {
                        s: (**body).clone(),
                        frame: frame.clone(),
                        kont: Kont::Loop(c.clone(), (**body).clone(), Rc::new(kont.clone())),
                        mem: mem.clone(),
                    }),
                    Some(false) => Ok(State::Stmt {
                        s: Stmt::Skip,
                        frame: frame.clone(),
                        kont: kont.clone(),
                        mem: mem.clone(),
                    }),
                    None => self.stuck(format!("undefined loop condition: {c} = {v}")),
                }
            }
            Stmt::Break => {
                let mut k = kont.clone();
                loop {
                    match k {
                        Kont::Seq(_, next) => k = (*next).clone(),
                        Kont::Loop(_, _, next) => {
                            return Ok(State::Stmt {
                                s: Stmt::Skip,
                                frame: frame.clone(),
                                kont: (*next).clone(),
                                mem: mem.clone(),
                            })
                        }
                        Kont::Stop | Kont::Call { .. } => {
                            return self.stuck("break outside a loop")
                        }
                    }
                }
            }
            Stmt::Continue => {
                let mut k = kont.clone();
                loop {
                    match k {
                        Kont::Seq(_, next) => k = (*next).clone(),
                        Kont::Loop(c, body, next) => {
                            return Ok(State::Stmt {
                                s: Stmt::While(c, Box::new(body)),
                                frame: frame.clone(),
                                kont: (*next).clone(),
                                mem: mem.clone(),
                            })
                        }
                        Kont::Stop | Kont::Call { .. } => {
                            return self.stuck("continue outside a loop")
                        }
                    }
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(frame, mem, e)?,
                    None => Val::Undef,
                };
                let mem = self.free_locals(frame, mem)?;
                // Unwind to the enclosing Call/Stop.
                let mut k = kont.clone();
                loop {
                    match k {
                        Kont::Seq(_, next) | Kont::Loop(_, _, next) => k = (*next).clone(),
                        Kont::Stop | Kont::Call { .. } => break,
                    }
                }
                Ok(State::Returning { v, mem, kont: k })
            }
        }
    }
}

pub(crate) fn eval_binop(op: Binop, a: Val, b: Val) -> Val {
    match op {
        Binop::Add => a.add(b),
        Binop::Sub => a.sub(b),
        Binop::Mul => a.mul(b),
        Binop::Div => a.divs(b),
        Binop::Mod => a.mods(b),
        Binop::And => a.and(b),
        Binop::Or => a.or(b),
        Binop::Xor => a.xor(b),
        Binop::Shl => a.shl(b),
        Binop::Shr => a.shr(b),
        Binop::Cmp(c) => a.cmp(c, b),
    }
}

fn eval_cast(v: Val, from: &Ty, to: &Ty) -> Val {
    match (from, to) {
        (Ty::Int, Ty::Int) | (Ty::Long, Ty::Long) => v,
        (Ty::Int, Ty::Long) => v.longofint(),
        (Ty::Long, Ty::Int) => v.intoflong(),
        // Pointer values are preserved across pointer/long casts
        // (64-bit model).
        (Ty::Ptr(_), Ty::Ptr(_)) | (Ty::Ptr(_), Ty::Long) | (Ty::Long, Ty::Ptr(_)) => v,
        _ => Val::Undef,
    }
}

impl Lts for ClightSem {
    type I = C;
    type O = C;
    type State = State;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &CQuery) -> bool {
        match self.function_of_val(&q.vf) {
            Some(f) => f.signature() == q.sig && q.args.len() == f.params.len(),
            None => false,
        }
    }

    fn initial(&self, q: &CQuery) -> Result<State, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        Ok(State::Entry {
            vf: q.vf,
            args: q.args.clone(),
            mem: q.mem.clone(),
            kont: Kont::Stop,
        })
    }

    fn step(&self, s: &State) -> Step<State, CQuery, CReply> {
        match s {
            State::Entry {
                vf,
                args,
                mem,
                kont,
            } => {
                let Some(f) = self.function_of_val(vf) else {
                    return Step::Stuck(Stuck::new(format!(
                        "{}: entry into unknown function",
                        self.label
                    )));
                };
                match self.enter(f, args, mem, kont.clone()) {
                    Ok(next) => Step::Internal(next, vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            State::Stmt {
                s,
                frame,
                kont,
                mem,
            } => match self.step_stmt(s, frame, kont, mem) {
                Ok(next) => Step::Internal(next, vec![]),
                Err(stuck) => Step::Stuck(stuck),
            },
            State::Returning { v, mem, kont } => match kont {
                Kont::Stop => Step::Final(CReply {
                    retval: *v,
                    mem: mem.clone(),
                }),
                Kont::Call { dest, frame, kont } => {
                    let mut frame = frame.clone();
                    let mut mem = mem.clone();
                    match self.write_dest(dest, *v, &mut frame, &mut mem) {
                        Ok(()) => Step::Internal(
                            State::Stmt {
                                s: Stmt::Skip,
                                frame,
                                kont: (**kont).clone(),
                                mem,
                            },
                            vec![],
                        ),
                        Err(stuck) => Step::Stuck(stuck),
                    }
                }
                _ => Step::Stuck(Stuck::new("return into a non-call continuation")),
            },
            State::External { q, .. } | State::FExternal { q, .. } => Step::External(q.clone()),
            // Fast-path states single-step through a batch of size one, so
            // `step` stays total (and bit-identical) on them too.
            State::FEntry { .. } | State::FStmt { .. } | State::FReturning { .. } => {
                fast::step_one(self, s)
            }
        }
    }

    fn step_batch(
        &self,
        s: &mut State,
        fuel_left: u64,
        _events: &mut Vec<Event>,
    ) -> Batch<CQuery, CReply> {
        // Clight emits no events; the prepared arena loop replicates the
        // legacy stepper's observables exactly (tests/fast_equiv.rs).
        fast::step_batch(self, s, fuel_left)
    }

    fn resume(&self, s: &State, a: CReply) -> Result<State, Stuck> {
        match s {
            State::External {
                dest, frame, kont, ..
            } => {
                let mut frame = frame.clone();
                let mut mem = a.mem;
                self.write_dest(dest, a.retval, &mut frame, &mut mem)?;
                Ok(State::Stmt {
                    s: Stmt::Skip,
                    frame,
                    kont: kont.clone(),
                    mem,
                })
            }
            State::FExternal {
                dest, frame, kont, ..
            } => {
                let mut frame = frame.clone();
                let mut mem = a.mem;
                fast::write_dest(&self.fast, &self.label, dest, a.retval, &mut frame, &mut mem)?;
                let sid = self.fast.funcs[frame.fidx as usize].skip_sid;
                Ok(State::FStmt {
                    sid,
                    frame,
                    kont: kont.clone(),
                    mem,
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }

    fn measure(&self, s: &State) -> compcerto_core::lts::StateMeasure {
        compcerto_core::lts::StateMeasure {
            mem_bytes: s.mem_ref().allocated_bytes(),
            call_depth: s.call_depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_symtab;
    use crate::parser::parse;
    use crate::typecheck::typecheck;
    use compcerto_core::lts::{run, RunOutcome};

    /// Compile source to a semantics plus symbol table and initial memory.
    pub(crate) fn load(src: &str) -> (ClightSem, Mem) {
        let prog = typecheck(&parse(src).unwrap()).unwrap();
        let symtab = build_symtab(&[&prog]).unwrap();
        let mem = symtab.build_init_mem().unwrap();
        (ClightSem::new(prog, symtab), mem)
    }

    fn call(sem: &ClightSem, mem: &Mem, fname: &str, args: Vec<Val>) -> RunOutcome<CReply> {
        let vf = sem.symtab().func_ptr(fname).unwrap();
        let sig = sem.program().sig_of(fname).unwrap();
        let q = CQuery {
            vf,
            sig,
            args,
            mem: mem.clone(),
        };
        run(sem, &q, &mut |_q: &CQuery| None, 100_000)
    }

    #[test]
    fn arithmetic_and_return() {
        let (sem, mem) = load("int add(int a, int b) { return a + b * 2; }");
        let r = call(&sem, &mem, "add", vec![Val::Int(3), Val::Int(4)]).expect_complete();
        assert_eq!(r.retval, Val::Int(11));
    }

    #[test]
    fn locals_and_loops() {
        let src = "
            int sum(int n) {
                int i; int s;
                s = 0;
                for (i = 1; i <= n; i = i + 1) { s = s + i; }
                return s;
            }";
        let (sem, mem) = load(src);
        let r = call(&sem, &mem, "sum", vec![Val::Int(10)]).expect_complete();
        assert_eq!(r.retval, Val::Int(55));
    }

    #[test]
    fn internal_recursion() {
        let src = "
            int fact(int n) {
                int r;
                if (n <= 1) { return 1; }
                r = fact(n - 1);
                return n * r;
            }";
        let (sem, mem) = load(src);
        let r = call(&sem, &mem, "fact", vec![Val::Int(6)]).expect_complete();
        assert_eq!(r.retval, Val::Int(720));
    }

    #[test]
    fn pointers_and_addressof() {
        let src = "
            int deref_roundtrip(int x) {
                int y; int* p;
                p = &y;
                *p = x + 1;
                return y;
            }";
        let (sem, mem) = load(src);
        let r = call(&sem, &mem, "deref_roundtrip", vec![Val::Int(9)]).expect_complete();
        assert_eq!(r.retval, Val::Int(10));
    }

    #[test]
    fn arrays_and_globals() {
        let src = "
            long buf[4];
            int fill(void) {
                int i;
                for (i = 0; i < 4; i = i + 1) { buf[i] = (long) (i * i); }
                return (int) buf[3];
            }";
        let (sem, mem) = load(src);
        let r = call(&sem, &mem, "fill", vec![]).expect_complete();
        assert_eq!(r.retval, Val::Int(9));
    }

    #[test]
    fn external_calls_suspend() {
        let src = "
            extern int twice(int);
            int f(int x) { int r; r = twice(x); return r + 1; }";
        let (sem, mem) = load(src);
        let vf = sem.symtab().func_ptr("f").unwrap();
        let q = CQuery {
            vf,
            sig: sem.program().sig_of("f").unwrap(),
            args: vec![Val::Int(5)],
            mem,
        };
        let out = run(
            &sem,
            &q,
            &mut |eq: &CQuery| {
                Some(CReply {
                    retval: eq.args[0].mul(Val::Int(2)),
                    mem: eq.mem.clone(),
                })
            },
            100_000,
        );
        assert_eq!(out.expect_complete().retval, Val::Int(11));
    }

    #[test]
    fn division_by_zero_goes_wrong() {
        let (sem, mem) = load("int f(int x) { if (x / 0) { return 1; } return 0; }");
        let out = call(&sem, &mem, "f", vec![Val::Int(1)]);
        assert!(matches!(out, RunOutcome::Wrong { .. }));
    }

    #[test]
    fn out_of_bounds_access_goes_wrong() {
        let src = "long buf[2]; long f(int i) { return buf[i]; }";
        let (sem, mem) = load(src);
        let out = call(&sem, &mem, "f", vec![Val::Int(7)]);
        assert!(matches!(out, RunOutcome::Wrong { .. }));
    }

    #[test]
    fn locals_are_freed_on_return() {
        let (sem, mem) = load("int f(void) { int x; x = 1; return x; }");
        let before = mem.next_block();
        let r = call(&sem, &mem, "f", vec![]).expect_complete();
        // The local block was allocated and freed; support grew but the
        // block is invalid.
        assert_eq!(r.mem.next_block(), before + 1);
        assert!(!r.mem.valid_block(before));
    }

    #[test]
    fn query_with_wrong_signature_rejected() {
        let (sem, mem) = load("int f(int x) { return x; }");
        let q = CQuery {
            vf: sem.symtab().func_ptr("f").unwrap(),
            sig: compcerto_core::iface::Signature::int_fn(2),
            args: vec![Val::Int(1), Val::Int(2)],
            mem,
        };
        assert!(!sem.accepts(&q));
    }
}
