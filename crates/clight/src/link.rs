//! Syntactic linking of Clight-mini translation units and construction of
//! the shared symbol table.
//!
//! CompCert's `+` operator merges programs as sets of global definitions
//! (paper §3.1); CompCertO additionally fixes a single global symbol table
//! shared by every module (paper App. A.3). [`build_symtab`] computes that
//! table from all units participating in a link, and [`link`] merges two
//! units into one.

use std::fmt;

use compcerto_core::iface::Signature;
use compcerto_core::symtab::{GlobKind, InitDatum, SymbolTable};

use crate::ast::Program;
use crate::ty::Ty;

/// An error produced by linking.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// The same symbol is defined twice with incompatible kinds.
    Clash(String),
    /// A function is defined in both units.
    DuplicateFunction(String),
    /// A global variable is defined in both units.
    DuplicateGlobal(String),
    /// An extern declaration disagrees with the definition's signature.
    SignatureMismatch(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Clash(s) => write!(f, "symbol `{s}` defined with incompatible kinds"),
            LinkError::DuplicateFunction(s) => write!(f, "function `{s}` defined twice"),
            LinkError::DuplicateGlobal(s) => write!(f, "global `{s}` defined twice"),
            LinkError::SignatureMismatch(s) => {
                write!(f, "declaration of `{s}` does not match its definition")
            }
        }
    }
}

impl std::error::Error for LinkError {}

fn init_data(ty: &Ty, init: Option<i64>) -> Vec<InitDatum> {
    match (ty, init) {
        (Ty::Int, Some(v)) => vec![InitDatum::Int32(v as i32)],
        (Ty::Long, Some(v)) | (Ty::Ptr(_), Some(v)) => vec![InitDatum::Int64(v)],
        _ => vec![InitDatum::Space(ty.size())],
    }
}

/// Build the global symbol table shared by a collection of translation units
/// (paper App. A.3). Definitions claim blocks in unit order; extern
/// declarations resolve to the definition's entry or claim a fresh entry when
/// no unit defines them (truly-external functions).
///
/// # Errors
/// Reports clashes between incompatible definitions and mismatched
/// declaration signatures.
pub fn build_symtab(units: &[&Program]) -> Result<SymbolTable, LinkError> {
    let mut tbl = SymbolTable::new();
    // Pass 1: definitions.
    for unit in units {
        for g in &unit.globals {
            let kind = GlobKind::Var {
                init: init_data(&g.ty, g.init),
                readonly: g.readonly,
            };
            tbl.try_define(g.name.clone(), kind)
                .map_err(|e| LinkError::DuplicateGlobal(e.0))?;
        }
        for f in &unit.functions {
            tbl.try_define(f.name.clone(), GlobKind::Func(f.signature()))
                .map_err(|e| LinkError::Clash(e.0))?;
        }
    }
    // Pass 2: declarations (resolve or claim fresh entries).
    for unit in units {
        for e in &unit.externs {
            let sig: Signature = e.signature();
            match tbl.block_of(&e.name) {
                Some(b) => match tbl.kind_of(b) {
                    Some(GlobKind::Func(def_sig)) if *def_sig == sig => {}
                    _ => return Err(LinkError::SignatureMismatch(e.name.clone())),
                },
                None => {
                    tbl.define(e.name.clone(), GlobKind::Func(sig));
                }
            }
        }
    }
    Ok(tbl)
}

/// Link two translation units (CompCert's `+`, paper §3.1): the union of
/// their definitions, with extern declarations resolved against the other
/// unit's definitions.
///
/// # Errors
/// Duplicate definitions and signature mismatches are rejected.
pub fn link(p1: &Program, p2: &Program) -> Result<Program, LinkError> {
    let mut out = p1.clone();
    for g in &p2.globals {
        if out.globals.iter().any(|x| x.name == g.name) {
            return Err(LinkError::DuplicateGlobal(g.name.clone()));
        }
        out.globals.push(g.clone());
    }
    for f in &p2.functions {
        if out.functions.iter().any(|x| x.name == f.name) {
            return Err(LinkError::DuplicateFunction(f.name.clone()));
        }
        out.functions.push(f.clone());
    }
    for e in &p2.externs {
        if let Some(f) = out.function(&e.name) {
            if f.signature() != e.signature() {
                return Err(LinkError::SignatureMismatch(e.name.clone()));
            }
            continue; // resolved by p1's definition
        }
        if !out.externs.iter().any(|x| x.name == e.name) {
            out.externs.push(e.clone());
        }
    }
    // Declarations of p1 resolved by definitions of p2 are dropped.
    out.externs.retain(|e| {
        if let Some(f) = p2.function(&e.name) {
            f.signature() == e.signature() // keep only if mismatched (caught below)
        } else {
            true
        }
    });
    for e in &p1.externs {
        if let Some(f) = p2.function(&e.name) {
            if f.signature() != e.signature() {
                return Err(LinkError::SignatureMismatch(e.name.clone()));
            }
        }
    }
    out.externs
        .retain(|e| out.functions.iter().all(|f| f.name != e.name));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typecheck::typecheck;

    fn unit(src: &str) -> Program {
        typecheck(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn symtab_assigns_blocks_in_order() {
        let a = unit("int f(void) { return 1; }");
        let b = unit("extern int f(void); int g(void) { int x; x = f(); return x; }");
        let tbl = build_symtab(&[&a, &b]).unwrap();
        assert_eq!(tbl.block_of("f"), Some(0));
        assert_eq!(tbl.block_of("g"), Some(1));
    }

    #[test]
    fn undefined_externs_claim_entries() {
        let a = unit("extern int mystery(int); int f(int x) { int r; r = mystery(x); return r; }");
        let tbl = build_symtab(&[&a]).unwrap();
        assert!(tbl.block_of("mystery").is_some());
    }

    #[test]
    fn mismatched_declaration_rejected() {
        let a = unit("int f(int x) { return x; }");
        let b = unit("extern int f(int, int); int g(void) { int r; r = f(1, 2); return r; }");
        assert_eq!(
            build_symtab(&[&a, &b]),
            Err(LinkError::SignatureMismatch("f".into()))
        );
    }

    #[test]
    fn link_merges_and_resolves() {
        let a =
            unit("extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }");
        let b = unit("int mult(int n, int p) { return n * p; }");
        let merged = link(&a, &b).unwrap();
        assert_eq!(merged.functions.len(), 2);
        assert!(merged.externs.is_empty());
    }

    #[test]
    fn link_rejects_duplicates() {
        let a = unit("int f(void) { return 1; }");
        let b = unit("int f(void) { return 2; }");
        assert_eq!(link(&a, &b), Err(LinkError::DuplicateFunction("f".into())));
    }
}
