//! Source-level types of Clight-mini.

use std::fmt;

use mem::{Chunk, Typ};

/// A Clight-mini type.
///
/// The language is deliberately small (see DESIGN.md §2): 32/64-bit integers,
/// pointers, one-dimensional arrays of scalars, and `void` for function
/// results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer (`int`).
    Int,
    /// 64-bit signed integer (`long`).
    Long,
    /// Pointer to `T`.
    Ptr(Box<Ty>),
    /// Array of `n` elements of a scalar type.
    Array(Box<Ty>, i64),
    /// No value (function results only).
    Void,
}

impl Ty {
    /// Size of a value of this type in bytes (`sizeof`).
    pub fn size(&self) -> i64 {
        match self {
            Ty::Int => 4,
            Ty::Long => 8,
            Ty::Ptr(_) => 8,
            Ty::Array(t, n) => t.size() * n.max(&0),
            Ty::Void => 0,
        }
    }

    /// Natural alignment in bytes.
    pub fn align(&self) -> i64 {
        match self {
            Ty::Int => 4,
            Ty::Long | Ty::Ptr(_) => 8,
            Ty::Array(t, _) => t.align(),
            Ty::Void => 1,
        }
    }

    /// Is this a scalar (register-representable) type?
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Ptr(_))
    }

    /// The machine type used to pass values of this type
    /// (arrays decay to pointers).
    pub fn machine_typ(&self) -> Option<Typ> {
        match self {
            Ty::Int => Some(Typ::I32),
            Ty::Long | Ty::Ptr(_) | Ty::Array(_, _) => Some(Typ::I64),
            Ty::Void => None,
        }
    }

    /// The memory chunk used to load/store values of this type, if scalar.
    pub fn chunk(&self) -> Option<Chunk> {
        match self {
            Ty::Int => Some(Chunk::I32),
            Ty::Long => Some(Chunk::I64),
            Ty::Ptr(_) => Some(Chunk::Ptr),
            _ => None,
        }
    }

    /// The element type of a pointer or array, if any.
    pub fn element(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) | Ty::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Ptr(t) => write!(f, "{t}*"),
            Ty::Array(t, n) => write!(f, "{t}[{n}]"),
            Ty::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Ptr(Box::new(Ty::Int)).size(), 8);
        assert_eq!(Ty::Array(Box::new(Ty::Long), 5).size(), 40);
        assert_eq!(Ty::Array(Box::new(Ty::Int), 3).align(), 4);
    }

    #[test]
    fn machine_types() {
        assert_eq!(Ty::Int.machine_typ(), Some(Typ::I32));
        assert_eq!(
            Ty::Array(Box::new(Ty::Int), 3).machine_typ(),
            Some(Typ::I64)
        );
        assert_eq!(Ty::Void.machine_typ(), None);
    }
}
