//! The `SimplLocals` pass (paper Table 3, Example 4.4).
//!
//! Scalar local variables whose address is never taken are pulled out of
//! memory and turned into temporaries. This is the first pass whose
//! simulation convention is non-trivial: the target allocates fewer blocks,
//! so source and target memories are related by an *injection* that drops
//! the lifted locals' blocks — and because the lifted values now live only in
//! the simulation relation, external calls must respect the `injp`
//! protection of unmapped source blocks (paper §4.5). Its convention is
//! `injp ↠ inj`.

use std::collections::{BTreeMap, BTreeSet};

use compcerto_core::symtab::Ident;

use crate::ast::{CallDest, Expr, Function, Program, Stmt, TempId};

/// Run `SimplLocals` on a typed program.
///
/// # Example
///
/// ```
/// let p = clight::parse("int f(int x) { return x + 1; }")?;
/// let p = clight::typecheck(&p).unwrap();
/// let p = clight::simpl_locals(&p);
/// // `x` is now a temporary, not a memory-resident variable.
/// assert!(p.functions[0].vars.is_empty());
/// assert_eq!(p.functions[0].temps.len(), 1);
/// # Ok::<(), clight::ParseError>(())
/// ```
pub fn simpl_locals(prog: &Program) -> Program {
    let mut out = prog.clone();
    for f in &mut out.functions {
        simplify_function(f);
    }
    out
}

fn simplify_function(f: &mut Function) {
    let addressed = addressed_vars(&f.body);
    let mut next_temp: TempId = f.temps.iter().map(|(t, _, _)| t + 1).max().unwrap_or(0);
    let mut lifted: BTreeMap<Ident, (TempId, crate::ty::Ty)> = BTreeMap::new();
    let mut kept = Vec::new();
    for (name, ty) in &f.vars {
        if ty.is_scalar() && !addressed.contains(name) {
            lifted.insert(name.clone(), (next_temp, ty.clone()));
            next_temp += 1;
        } else {
            kept.push((name.clone(), ty.clone()));
        }
    }
    f.vars = kept;
    for (name, (tid, ty)) in &lifted {
        f.temps.push((*tid, ty.clone(), Some(name.clone())));
    }
    f.body = rewrite_stmt(&f.body, &lifted);
}

/// Variables whose address is taken anywhere in the statement.
fn addressed_vars(s: &Stmt) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    collect_stmt(s, &mut out);
    out
}

fn collect_stmt(s: &Stmt, out: &mut BTreeSet<Ident>) {
    match s {
        Stmt::Skip | Stmt::Break | Stmt::Continue | Stmt::Return(None) => {}
        Stmt::Assign(a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        Stmt::Set(_, e) | Stmt::Return(Some(e)) => collect_expr(e, out),
        Stmt::Call(dest, _, args) => {
            if let CallDest::Lvalue(lv) = dest {
                collect_expr(lv, out);
            }
            for a in args {
                collect_expr(a, out);
            }
        }
        Stmt::Seq(a, b) => {
            collect_stmt(a, out);
            collect_stmt(b, out);
        }
        Stmt::If(c, a, b) => {
            collect_expr(c, out);
            collect_stmt(a, out);
            collect_stmt(b, out);
        }
        Stmt::While(c, body) => {
            collect_expr(c, out);
            collect_stmt(body, out);
        }
    }
}

fn collect_expr(e: &Expr, out: &mut BTreeSet<Ident>) {
    match e {
        Expr::Addr(inner, _) => {
            if let Some(root) = lvalue_root(inner) {
                out.insert(root.to_string());
            }
            collect_expr(inner, out);
        }
        Expr::Deref(inner, _) => collect_expr(inner, out),
        Expr::Unop(_, a, _) | Expr::Cast(a, _) => collect_expr(a, out),
        Expr::Binop(_, a, b, _) | Expr::Index(a, b, _) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        _ => {}
    }
}

/// The root variable of an lvalue expression, if it is a named variable.
fn lvalue_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(name, _) => Some(name),
        _ => None,
    }
}

fn rewrite_stmt(s: &Stmt, lifted: &BTreeMap<Ident, (TempId, crate::ty::Ty)>) -> Stmt {
    match s {
        Stmt::Skip | Stmt::Break | Stmt::Continue | Stmt::Return(None) => s.clone(),
        Stmt::Assign(lv, rhs) => {
            let rhs = rewrite_expr(rhs, lifted);
            if let Expr::Var(name, _) = lv {
                if let Some((tid, _)) = lifted.get(name) {
                    return Stmt::Set(*tid, rhs);
                }
            }
            Stmt::Assign(rewrite_expr(lv, lifted), rhs)
        }
        Stmt::Set(t, e) => Stmt::Set(*t, rewrite_expr(e, lifted)),
        Stmt::Return(Some(e)) => Stmt::Return(Some(rewrite_expr(e, lifted))),
        Stmt::Call(dest, fname, args) => {
            let dest = match dest {
                CallDest::Lvalue(Expr::Var(name, ty)) => match lifted.get(name) {
                    Some((tid, _)) => CallDest::Temp(*tid, ty.clone()),
                    None => CallDest::Lvalue(Expr::Var(name.clone(), ty.clone())),
                },
                CallDest::Lvalue(lv) => CallDest::Lvalue(rewrite_expr(lv, lifted)),
                other => other.clone(),
            };
            Stmt::Call(
                dest,
                fname.clone(),
                args.iter().map(|a| rewrite_expr(a, lifted)).collect(),
            )
        }
        Stmt::Seq(a, b) => Stmt::Seq(
            Box::new(rewrite_stmt(a, lifted)),
            Box::new(rewrite_stmt(b, lifted)),
        ),
        Stmt::If(c, a, b) => Stmt::If(
            rewrite_expr(c, lifted),
            Box::new(rewrite_stmt(a, lifted)),
            Box::new(rewrite_stmt(b, lifted)),
        ),
        Stmt::While(c, body) => Stmt::While(
            rewrite_expr(c, lifted),
            Box::new(rewrite_stmt(body, lifted)),
        ),
    }
}

fn rewrite_expr(e: &Expr, lifted: &BTreeMap<Ident, (TempId, crate::ty::Ty)>) -> Expr {
    match e {
        Expr::Var(name, ty) => match lifted.get(name) {
            Some((tid, _)) => Expr::Temp(*tid, ty.clone()),
            None => e.clone(),
        },
        Expr::Deref(a, t) => Expr::Deref(Box::new(rewrite_expr(a, lifted)), t.clone()),
        Expr::Addr(a, t) => Expr::Addr(Box::new(rewrite_expr(a, lifted)), t.clone()),
        Expr::Unop(op, a, t) => Expr::Unop(*op, Box::new(rewrite_expr(a, lifted)), t.clone()),
        Expr::Binop(op, a, b, t) => Expr::Binop(
            *op,
            Box::new(rewrite_expr(a, lifted)),
            Box::new(rewrite_expr(b, lifted)),
            t.clone(),
        ),
        Expr::Cast(a, t) => Expr::Cast(Box::new(rewrite_expr(a, lifted)), t.clone()),
        Expr::Index(a, i, t) => Expr::Index(
            Box::new(rewrite_expr(a, lifted)),
            Box::new(rewrite_expr(i, lifted)),
            t.clone(),
        ),
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_symtab;
    use crate::parser::parse;
    use crate::sem::ClightSem;
    use crate::typecheck::typecheck;
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use mem::Val;

    fn pass(src: &str) -> (Program, Program) {
        let p = typecheck(&parse(src).unwrap()).unwrap();
        let q = simpl_locals(&p);
        (p, q)
    }

    #[test]
    fn lifts_unaddressed_scalars() {
        let (_, q) = pass("int f(int a, int b) { int c; c = a + b; return c; }");
        let f = &q.functions[0];
        assert!(f.vars.is_empty());
        assert_eq!(f.temps.len(), 3);
        // Parameters keep their names for binding.
        assert!(f.temps.iter().any(|(_, _, n)| n.as_deref() == Some("a")));
    }

    #[test]
    fn keeps_addressed_and_arrays() {
        let (_, q) = pass(
            "int f(void) { int x; int arr[3]; int* p; p = &x; *p = 1; arr[0] = x; return arr[0]; }",
        );
        let f = &q.functions[0];
        let var_names: Vec<_> = f.vars.iter().map(|(n, _)| n.as_str()).collect();
        assert!(var_names.contains(&"x"), "addressed x stays: {var_names:?}");
        assert!(var_names.contains(&"arr"), "array stays: {var_names:?}");
        assert!(!var_names.contains(&"p"), "p is lifted: {var_names:?}");
    }

    #[test]
    fn behaviour_preserved() {
        let src = "
            int fact(int n) {
                int r;
                if (n <= 1) { return 1; }
                r = fact(n - 1);
                return n * r;
            }";
        let (p, q) = pass(src);
        let tbl = build_symtab(&[&p]).unwrap();
        let mem = tbl.build_init_mem().unwrap();
        let s1 = ClightSem::new(p, tbl.clone());
        let s2 = ClightSem::new(q, tbl.clone());
        let query = CQuery {
            vf: tbl.func_ptr("fact").unwrap(),
            sig: s1.program().sig_of("fact").unwrap(),
            args: vec![Val::Int(5)],
            mem,
        };
        let r1 = run(&s1, &query, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &query, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, r2.retval);
        assert_eq!(r1.retval, Val::Int(120));
    }

    #[test]
    fn target_allocates_fewer_blocks() {
        let src = "int f(void) { int a; int b; int c; a = 1; b = 2; c = 3; return a + b + c; }";
        let (p, q) = pass(src);
        let tbl = build_symtab(&[&p]).unwrap();
        let mem = tbl.build_init_mem().unwrap();
        let s1 = ClightSem::new(p, tbl.clone());
        let s2 = ClightSem::new(q, tbl.clone());
        let query = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: s1.program().sig_of("f").unwrap(),
            args: vec![],
            mem,
        };
        let r1 = run(&s1, &query, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &query, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, r2.retval);
        // The simplified program allocated 3 fewer blocks.
        assert_eq!(r1.mem.next_block(), r2.mem.next_block() + 3);
    }

    #[test]
    fn idempotent_on_already_simplified() {
        let (_, q) = pass("int f(int x) { return x; }");
        let q2 = simpl_locals(&q);
        assert_eq!(q, q2);
    }
}
