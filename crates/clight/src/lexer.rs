//! Hand-written lexer for Clight-mini surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier.
    Ident(String),
    /// Integer literal (`42`); type determined by suffix/context.
    Int(i64),
    /// Integer literal with `L` suffix (`42L`).
    Long(i64),
    /// A keyword (`int`, `while`, …).
    Kw(Kw),
    /// Punctuation or operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `int`
    Int,
    /// `long`
    Long,
    /// `void`
    Void,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `extern`
    Extern,
    /// `const`
    Const,
    /// `sizeof`
    Sizeof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(n) => write!(f, "literal `{n}`"),
            Token::Long(n) => write!(f, "literal `{n}L`"),
            Token::Kw(k) => write!(f, "keyword `{k:?}`"),
            Token::Punct(p) => write!(f, "`{p}`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token with its source line (for parse diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line it starts on.
    pub line: usize,
}

/// Tokenize `src`.
///
/// # Errors
/// Reports unknown characters and malformed literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            offset: i,
                            line: start_line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let token = match word {
                    "int" => Token::Kw(Kw::Int),
                    "long" => Token::Kw(Kw::Long),
                    "void" => Token::Kw(Kw::Void),
                    "if" => Token::Kw(Kw::If),
                    "else" => Token::Kw(Kw::Else),
                    "while" => Token::Kw(Kw::While),
                    "for" => Token::Kw(Kw::For),
                    "return" => Token::Kw(Kw::Return),
                    "break" => Token::Kw(Kw::Break),
                    "continue" => Token::Kw(Kw::Continue),
                    "extern" => Token::Kw(Kw::Extern),
                    "const" => Token::Kw(Kw::Const),
                    "sizeof" => Token::Kw(Kw::Sizeof),
                    _ => Token::Ident(word.to_string()),
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                if i < bytes.len() && (bytes[i] == b'L' || bytes[i] == b'l') {
                    i += 1;
                    out.push(Spanned {
                        token: Token::Long(value),
                        line,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Int(value),
                        line,
                    });
                }
            }
            _ => {
                // Multi-character punctuation first.
                const PUNCTS: [&str; 31] = [
                    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]",
                    ";", ",", "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "?",
                    ":",
                ];
                let rest = &src[i..];
                let hit = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match hit {
                    Some(p) => {
                        out.push(Spanned {
                            token: Token::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(LexError {
                            offset: i,
                            line,
                            message: format!("unexpected character `{c}`"),
                        })
                    }
                }
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo"),
            vec![Token::Kw(Kw::Int), Token::Ident("foo".into()), Token::Eof]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("42 7L"),
            vec![Token::Int(42), Token::Long(7), Token::Eof]
        );
    }

    #[test]
    fn multi_char_puncts() {
        assert_eq!(
            toks("a<<b <= == !="),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<"),
                Token::Ident("b".into()),
                Token::Punct("<="),
                Token::Punct("=="),
                Token::Punct("!="),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n/* block\nstill */ b"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_lines() {
        let err = lex("a\n@").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("/* unterminated").is_err());
    }
}
