//! Recursive-descent parser for Clight-mini.
//!
//! The parser produces *untyped* AST (expression type slots hold
//! [`Ty::Void`]); [`crate::typecheck`] fills them in and desugars surface
//! forms ([`Expr::Index`]).
//!
//! Grammar highlights (see DESIGN.md §2):
//! * declarations appear at the top of a function body (C89 style) and may
//!   carry scalar initializers;
//! * function calls occur only at statement level, `x = f(a);` or `f(a);`
//!   (as in Clight);
//! * `for (init; cond; step) body` desugars to a `while` loop; `continue`
//!   inside a `for` is rejected because the desugaring would skip the step.

use std::fmt;

use mem::Cmp;

use crate::ast::{Binop, CallDest, Expr, ExternDecl, Function, GlobalVar, Program, Stmt, Unop};
use crate::lexer::{lex, Kw, LexError, Spanned, Token};
use crate::ty::Ty;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a Clight-mini translation unit.
///
/// # Errors
/// Lexical and syntactic errors are reported with line numbers.
///
/// # Example
///
/// ```
/// let unit = clight::parse("int sqr(int n) { return n * n; }")?;
/// assert_eq!(unit.functions.len(), 1);
/// # Ok::<(), clight::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        in_for: 0,
    };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Depth of enclosing desugared `for` loops (to reject `continue`).
    in_for: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Token::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == &Token::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Token::Kw(Kw::Int | Kw::Long | Kw::Void))
    }

    /// `type := ("int" | "long" | "void") "*"*`
    fn parse_type(&mut self) -> Result<Ty, ParseError> {
        let base = match self.bump() {
            Token::Kw(Kw::Int) => Ty::Int,
            Token::Kw(Kw::Long) => Ty::Long,
            Token::Kw(Kw::Void) => Ty::Void,
            other => return self.err(format!("expected type, found {other}")),
        };
        let mut t = base;
        while self.eat_punct("*") {
            t = Ty::Ptr(Box::new(t));
        }
        Ok(t)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek() != &Token::Eof {
            if self.peek() == &Token::Kw(Kw::Extern) {
                self.bump();
                let ret = self.parse_type()?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let mut params = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        // `(void)` means "no parameters".
                        if self.peek() == &Token::Kw(Kw::Void) && self.peek2() == &Token::Punct(")")
                        {
                            self.bump();
                            break;
                        }
                        let t = self.parse_type()?;
                        // Optional parameter name in declarations.
                        if matches!(self.peek(), Token::Ident(_)) {
                            self.bump();
                        }
                        params.push(t);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                self.expect_punct(";")?;
                prog.externs.push(ExternDecl { name, ret, params });
                continue;
            }
            let readonly = if self.peek() == &Token::Kw(Kw::Const) {
                self.bump();
                true
            } else {
                false
            };
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.peek() == &Token::Punct("(") {
                if readonly {
                    return self.err("`const` is not valid on functions");
                }
                let f = self.function_rest(ty, name)?;
                prog.functions.push(f);
            } else {
                let g = self.global_rest(ty, name, readonly)?;
                prog.globals.push(g);
            }
        }
        Ok(prog)
    }

    fn global_rest(
        &mut self,
        mut ty: Ty,
        name: String,
        readonly: bool,
    ) -> Result<GlobalVar, ParseError> {
        if self.eat_punct("[") {
            let n = match self.bump() {
                Token::Int(n) | Token::Long(n) => n,
                other => return self.err(format!("expected array size, found {other}")),
            };
            self.expect_punct("]")?;
            ty = Ty::Array(Box::new(ty), n);
        }
        let init = if self.eat_punct("=") {
            let neg = self.eat_punct("-");
            match self.bump() {
                Token::Int(n) | Token::Long(n) => Some(if neg { -n } else { n }),
                other => return self.err(format!("expected literal initializer, found {other}")),
            }
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(GlobalVar {
            name,
            ty,
            init,
            readonly,
        })
    }

    fn function_rest(&mut self, ret: Ty, name: String) -> Result<Function, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if self.peek() == &Token::Kw(Kw::Void) && self.peek2() == &Token::Punct(")") {
                    self.bump();
                    break;
                }
                let t = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push((pname, t));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct("{")?;
        let mut vars: Vec<(String, Ty)> = params.clone();
        // C89-style declarations first.
        let mut inits = Stmt::Skip;
        while self.is_type_start() || self.peek() == &Token::Kw(Kw::Const) {
            if self.peek() == &Token::Kw(Kw::Const) {
                self.bump();
            }
            let mut t = self.parse_type()?;
            let vname = self.expect_ident()?;
            if self.eat_punct("[") {
                let n = match self.bump() {
                    Token::Int(n) | Token::Long(n) => n,
                    other => return self.err(format!("expected array size, found {other}")),
                };
                self.expect_punct("]")?;
                t = Ty::Array(Box::new(t), n);
            }
            if self.eat_punct("=") {
                let e = self.expr()?;
                inits = Stmt::seq(inits, Stmt::Assign(Expr::Var(vname.clone(), Ty::Void), e));
            }
            self.expect_punct(";")?;
            vars.push((vname, t));
        }
        let mut body = inits;
        while !self.eat_punct("}") {
            let s = self.stmt()?;
            body = Stmt::seq(body, s);
        }
        Ok(Function {
            name,
            ret,
            params,
            vars,
            temps: vec![],
            body,
        })
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect_punct("{")?;
        let mut body = Stmt::Skip;
        while !self.eat_punct("}") {
            let s = self.stmt()?;
            body = Stmt::seq(body, s);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Punct(";") => {
                self.bump();
                Ok(Stmt::Skip)
            }
            Token::Punct("{") => self.block(),
            Token::Kw(Kw::If) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then = self.stmt()?;
                let els = if self.peek() == &Token::Kw(Kw::Else) {
                    self.bump();
                    self.stmt()?
                } else {
                    Stmt::Skip
                };
                Ok(Stmt::If(cond, Box::new(then), Box::new(els)))
            }
            Token::Kw(Kw::While) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.stmt()?;
                Ok(Stmt::While(cond, Box::new(body)))
            }
            Token::Kw(Kw::For) => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.peek() == &Token::Punct(";") {
                    Stmt::Skip
                } else {
                    self.simple_stmt()?
                };
                self.expect_punct(";")?;
                let cond = if self.peek() == &Token::Punct(";") {
                    Expr::ConstInt(1)
                } else {
                    self.expr()?
                };
                self.expect_punct(";")?;
                let step = if self.peek() == &Token::Punct(")") {
                    Stmt::Skip
                } else {
                    self.simple_stmt()?
                };
                self.expect_punct(")")?;
                self.in_for += 1;
                let body = self.stmt()?;
                self.in_for -= 1;
                // for(i; c; s) b  ==>  i; while (c) { b; s }
                Ok(Stmt::seq(
                    init,
                    Stmt::While(cond, Box::new(Stmt::seq(body, step))),
                ))
            }
            Token::Kw(Kw::Return) => {
                self.bump();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Token::Kw(Kw::Continue) => {
                if self.in_for > 0 {
                    return self.err(
                        "`continue` inside `for` is not supported (the desugaring would skip the step)",
                    );
                }
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(";")?;
                Ok(s)
            }
        }
    }

    /// Assignment or call (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Call statement: `ident ( … )`.
        if let (Token::Ident(name), Token::Punct("(")) = (self.peek().clone(), self.peek2().clone())
        {
            self.bump();
            let args = self.call_args()?;
            return Ok(Stmt::Call(CallDest::None, name, args));
        }
        let lhs = self.expr()?;
        if !lhs.is_lvalue() {
            return self.err("expected an assignable expression or a call");
        }
        self.expect_punct("=")?;
        // `lv = f(args)` — call with destination.
        if let (Token::Ident(name), Token::Punct("(")) = (self.peek().clone(), self.peek2().clone())
        {
            self.bump();
            let args = self.call_args()?;
            return Ok(Stmt::Call(CallDest::Lvalue(lhs), name, args));
        }
        let rhs = self.expr()?;
        Ok(Stmt::Assign(lhs, rhs))
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(args)
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Token::Punct("||") => (None, 1),
                Token::Punct("&&") => (None, 2),
                Token::Punct("|") => (Some(Binop::Or), 3),
                Token::Punct("^") => (Some(Binop::Xor), 4),
                Token::Punct("&") => (Some(Binop::And), 5),
                Token::Punct("==") => (Some(Binop::Cmp(Cmp::Eq)), 6),
                Token::Punct("!=") => (Some(Binop::Cmp(Cmp::Ne)), 6),
                Token::Punct("<") => (Some(Binop::Cmp(Cmp::Lt)), 7),
                Token::Punct("<=") => (Some(Binop::Cmp(Cmp::Le)), 7),
                Token::Punct(">") => (Some(Binop::Cmp(Cmp::Gt)), 7),
                Token::Punct(">=") => (Some(Binop::Cmp(Cmp::Ge)), 7),
                Token::Punct("<<") => (Some(Binop::Shl), 8),
                Token::Punct(">>") => (Some(Binop::Shr), 8),
                Token::Punct("+") => (Some(Binop::Add), 9),
                Token::Punct("-") => (Some(Binop::Sub), 9),
                Token::Punct("*") => (Some(Binop::Mul), 10),
                Token::Punct("/") => (Some(Binop::Div), 10),
                Token::Punct("%") => (Some(Binop::Mod), 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let tok = self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = match op {
                Some(op) => Expr::Binop(op, Box::new(lhs), Box::new(rhs), Ty::Void),
                None => {
                    // `a && b` ==> (a != 0) & (b != 0); `a || b` dually.
                    // (Both operands are evaluated: Clight-mini expressions
                    // are effect-free, so short-circuiting is unobservable
                    // except for undefined behaviour, which we accept; see
                    // DESIGN.md.)
                    let bit = if tok == Token::Punct("&&") {
                        Binop::And
                    } else {
                        Binop::Or
                    };
                    let norm = |e: Expr| {
                        Expr::Binop(
                            Binop::Cmp(Cmp::Ne),
                            Box::new(e),
                            Box::new(Expr::ConstInt(0)),
                            Ty::Void,
                        )
                    };
                    Expr::Binop(bit, Box::new(norm(lhs)), Box::new(norm(rhs)), Ty::Void)
                }
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Punct("-") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unop(Unop::Neg, Box::new(e), Ty::Void))
            }
            Token::Punct("~") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unop(Unop::Not, Box::new(e), Ty::Void))
            }
            Token::Punct("!") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unop(Unop::LogicalNot, Box::new(e), Ty::Void))
            }
            Token::Punct("*") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Deref(Box::new(e), Ty::Void))
            }
            Token::Punct("&") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Addr(Box::new(e), Ty::Void))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx), Ty::Void);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.bump();
                if n > i32::MAX as i64 || n < i32::MIN as i64 {
                    return self.err(format!("int literal {n} out of 32-bit range (use `L`)"));
                }
                Ok(Expr::ConstInt(n as i32))
            }
            Token::Long(n) => {
                self.bump();
                Ok(Expr::ConstLong(n))
            }
            Token::Ident(name) => {
                self.bump();
                // `f(…)` in expression position: calls are statements in
                // this dialect, never subexpressions. Without this check
                // the stray `(` surfaces later as a baffling generic error
                // far from the call.
                if matches!(self.peek(), Token::Punct("(")) {
                    return self.err(format!(
                        "call to `{name}` in expression position: calls are statements \
                         in this dialect — bind the result first (`tmp = {name}(...);`) \
                         and use `tmp` in the expression"
                    ));
                }
                Ok(Expr::Var(name, Ty::Void))
            }
            Token::Kw(Kw::Sizeof) => {
                self.bump();
                self.expect_punct("(")?;
                let t = self.parse_type()?;
                self.expect_punct(")")?;
                Ok(Expr::SizeOf(t))
            }
            Token::Punct("(") => {
                self.bump();
                if self.is_type_start() {
                    let t = self.parse_type()?;
                    self.expect_punct(")")?;
                    let e = self.unary()?;
                    Ok(Expr::Cast(Box::new(e), t))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(e)
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1() {
        let src = "
            int mult(int n, int p) { return n * p; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params.len(), 2);
    }

    #[test]
    fn parses_calls_and_externs() {
        let src = "
            extern int mult(int, int);
            int sqr(int n) { int r; r = mult(n, n); return r; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.externs.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.vars.len(), 2); // n, r
    }

    #[test]
    fn parses_globals_and_arrays() {
        let src = "
            const int limit = 10;
            long buf[8];
            int get(int i) { return (int) buf[i]; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 2);
        assert!(p.globals[0].readonly);
        assert_eq!(p.globals[1].ty, Ty::Array(Box::new(Ty::Long), 8));
    }

    #[test]
    fn for_desugars_to_while() {
        let src = "int f(void) { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }";
        let p = parse(src).unwrap();
        // The body contains a While somewhere.
        fn has_while(s: &Stmt) -> bool {
            match s {
                Stmt::While(_, _) => true,
                Stmt::Seq(a, b) => has_while(a) || has_while(b),
                Stmt::If(_, a, b) => has_while(a) || has_while(b),
                _ => false,
            }
        }
        assert!(has_while(&p.functions[0].body));
    }

    #[test]
    fn continue_in_for_rejected() {
        let src = "int f(void) { int i; for (i = 0; i < 3; i = i + 1) { continue; } return 0; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn precedence() {
        let p = parse("int f(int a, int b) { return a + b * 2 == a; }").unwrap();
        let body = &p.functions[0].body;
        // return ((a + (b*2)) == a)
        match body {
            Stmt::Return(Some(Expr::Binop(Binop::Cmp(Cmp::Eq), lhs, _, _))) => match &**lhs {
                Expr::Binop(Binop::Add, _, rhs, _) => {
                    assert!(matches!(&**rhs, Expr::Binop(Binop::Mul, _, _, _)));
                }
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn errors_report_lines() {
        let err = parse("int f(void) {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn call_in_expression_position_names_the_dialect_rule() {
        // `return f(x);` is the idiomatic C a user writes first; the dialect
        // only admits calls as statements. The diagnostic must say so and
        // show the rewrite, not report a generic token mismatch somewhere
        // after the stray `(`.
        let err = parse("extern int f(int);\nint g(int x) {\n  return f(x);\n}").unwrap_err();
        assert_eq!(
            err.to_string(),
            "parse error at line 3: call to `f` in expression position: calls are statements \
             in this dialect — bind the result first (`tmp = f(...);`) and use `tmp` in the \
             expression"
        );
        // Same rule inside a condition and nested in arithmetic.
        let err = parse("extern int p(int);\nint g(int x) { if (p(x)) { return 1; } return 0; }")
            .unwrap_err();
        assert!(err.to_string().contains("call to `p` in expression position"), "{err}");
        let err = parse("extern int h(int);\nint g(int x) { int y; y = 1 + h(x); return y; }")
            .unwrap_err();
        assert!(err.to_string().contains("call to `h` in expression position"), "{err}");
        // The statement forms stay legal.
        assert!(parse("extern int f(int);\nint g(int x) { int r; r = f(x); return r; }").is_ok());
        assert!(parse("extern int f(int);\nint g(int x) { f(x); return 0; }").is_ok());
    }

    #[test]
    fn pointer_types_and_addressof() {
        let p = parse("long deref(long* p) { return *p; }").unwrap();
        assert_eq!(p.functions[0].params[0].1, Ty::Ptr(Box::new(Ty::Long)));
        let p2 = parse("int f(void) { int x; int* p; x = 3; p = &x; return *p; }").unwrap();
        assert_eq!(p2.functions[0].vars.len(), 2);
    }
}
