//! Abstract syntax of Clight-mini.
//!
//! Following CompCert's Clight, expressions are side-effect free (no calls,
//! no assignments inside expressions); function calls occur only at the
//! statement level. Every expression node carries its type, established by
//! [`crate::typecheck`].

use std::fmt;

use compcerto_core::iface::Signature;
use compcerto_core::symtab::Ident;
use mem::Cmp;

use crate::ty::Ty;

/// Identifier of a temporary (introduced by `SimplLocals`).
pub type TempId = u32;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Arithmetic negation `-e`.
    Neg,
    /// Bitwise complement `~e`.
    Not,
    /// Logical negation `!e`.
    LogicalNot,
}

impl fmt::Display for Unop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unop::Neg => "-",
            Unop::Not => "~",
            Unop::LogicalNot => "!",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    /// Addition (including pointer arithmetic).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Signed comparison.
    Cmp(Cmp),
}

impl fmt::Display for Binop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binop::Add => write!(f, "+"),
            Binop::Sub => write!(f, "-"),
            Binop::Mul => write!(f, "*"),
            Binop::Div => write!(f, "/"),
            Binop::Mod => write!(f, "%"),
            Binop::And => write!(f, "&"),
            Binop::Or => write!(f, "|"),
            Binop::Xor => write!(f, "^"),
            Binop::Shl => write!(f, "<<"),
            Binop::Shr => write!(f, ">>"),
            Binop::Cmp(c) => write!(f, "{c}"),
        }
    }
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// 32-bit integer literal.
    ConstInt(i32),
    /// 64-bit integer literal.
    ConstLong(i64),
    /// A named variable (local in memory, or global); an lvalue.
    Var(Ident, Ty),
    /// A temporary (register-like, introduced by `SimplLocals`); not an
    /// lvalue.
    Temp(TempId, Ty),
    /// Pointer dereference `*e`; an lvalue.
    Deref(Box<Expr>, Ty),
    /// Address-of `&lv`.
    Addr(Box<Expr>, Ty),
    /// Unary operation.
    Unop(Unop, Box<Expr>, Ty),
    /// Binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>, Ty),
    /// Type cast `(ty)e`.
    Cast(Box<Expr>, Ty),
    /// `sizeof(ty)`, a `long` constant.
    SizeOf(Ty),
    /// Surface-only array indexing `a[i]`; eliminated by the type checker
    /// (rewritten to pointer arithmetic plus [`Expr::Deref`]). The semantics
    /// rejects it.
    Index(Box<Expr>, Box<Expr>, Ty),
}

impl Expr {
    /// The type of the expression.
    pub fn ty(&self) -> Ty {
        match self {
            Expr::ConstInt(_) => Ty::Int,
            Expr::ConstLong(_) => Ty::Long,
            Expr::Var(_, t)
            | Expr::Temp(_, t)
            | Expr::Deref(_, t)
            | Expr::Addr(_, t)
            | Expr::Unop(_, _, t)
            | Expr::Binop(_, _, _, t)
            | Expr::Cast(_, t)
            | Expr::Index(_, _, t) => t.clone(),
            Expr::SizeOf(_) => Ty::Long,
        }
    }

    /// Is the expression an lvalue (denotes a memory location)?
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            Expr::Var(_, _) | Expr::Deref(_, _) | Expr::Index(_, _, _)
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::ConstInt(n) => write!(f, "{n}"),
            Expr::ConstLong(n) => write!(f, "{n}L"),
            Expr::Var(x, _) => write!(f, "{x}"),
            Expr::Temp(t, _) => write!(f, "$t{t}"),
            Expr::Deref(e, _) => write!(f, "*({e})"),
            Expr::Addr(e, _) => write!(f, "&({e})"),
            Expr::Unop(op, e, _) => write!(f, "{op}({e})"),
            Expr::Binop(op, a, b, _) => write!(f, "({a} {op} {b})"),
            Expr::Cast(e, t) => write!(f, "({t})({e})"),
            Expr::SizeOf(t) => write!(f, "sizeof({t})"),
            Expr::Index(a, i, _) => write!(f, "{a}[{i}]"),
        }
    }
}

/// Destination of a call's result.
#[derive(Debug, Clone, PartialEq)]
pub enum CallDest {
    /// Discard the result.
    None,
    /// Store into an lvalue.
    Lvalue(Expr),
    /// Bind a temporary.
    Temp(TempId, Ty),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Do nothing.
    Skip,
    /// Memory assignment `lv = e`.
    Assign(Expr, Expr),
    /// Temporary binding `$t = e` (post-`SimplLocals`).
    Set(TempId, Expr),
    /// Function call `dest = fn(args)`; `fn` names a global function.
    Call(CallDest, Ident, Vec<Expr>),
    /// Sequencing.
    Seq(Box<Stmt>, Box<Stmt>),
    /// Conditional.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// Loop.
    While(Expr, Box<Stmt>),
    /// Exit the nearest loop.
    Break,
    /// Continue the nearest loop.
    Continue,
    /// Return from the function.
    Return(Option<Expr>),
}

impl Stmt {
    /// Sequence two statements, dropping `Skip`s.
    pub fn seq(a: Stmt, b: Stmt) -> Stmt {
        match (a, b) {
            (Stmt::Skip, b) => b,
            (a, Stmt::Skip) => a,
            (a, b) => Stmt::Seq(Box::new(a), Box::new(b)),
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Ident,
    /// Return type.
    pub ret: Ty,
    /// Parameters, in order. Each parameter's storage is determined by
    /// membership in [`Function::vars`] (memory) or [`Function::temps`]
    /// (register-like).
    pub params: Vec<(Ident, Ty)>,
    /// Memory-resident locals (including parameters before `SimplLocals`).
    pub vars: Vec<(Ident, Ty)>,
    /// Temporaries with optional source names (parameters/locals lifted by
    /// `SimplLocals`).
    pub temps: Vec<(TempId, Ty, Option<Ident>)>,
    /// Function body.
    pub body: Stmt,
}

impl Function {
    /// The interface-level signature of the function.
    pub fn signature(&self) -> Signature {
        Signature::new(
            self.params
                .iter()
                .filter_map(|(_, t)| t.machine_typ())
                .collect(),
            self.ret.machine_typ(),
        )
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Variable name.
    pub name: Ident,
    /// Type.
    pub ty: Ty,
    /// Initial value (scalar globals only); zero/space otherwise.
    pub init: Option<i64>,
    /// Is the variable `const`?
    pub readonly: bool,
}

/// An external function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Function name.
    pub name: Ident,
    /// Return type.
    pub ret: Ty,
    /// Parameter types.
    pub params: Vec<Ty>,
}

impl ExternDecl {
    /// The interface-level signature of the declaration.
    pub fn signature(&self) -> Signature {
        Signature::new(
            self.params.iter().filter_map(|t| t.machine_typ()).collect(),
            self.ret.machine_typ(),
        )
    }
}

/// A Clight-mini translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global variables defined here.
    pub globals: Vec<GlobalVar>,
    /// Functions defined here.
    pub functions: Vec<Function>,
    /// External functions this unit calls.
    pub externs: Vec<ExternDecl>,
}

impl Program {
    /// Find a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find an extern declaration by name.
    pub fn extern_decl(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.iter().find(|e| e.name == name)
    }

    /// The signature associated with `name` in this unit, if any
    /// (definition or declaration).
    pub fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name)
            .map(Function::signature)
            .or_else(|| self.extern_decl(name).map(ExternDecl::signature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_types() {
        let e = Expr::Binop(
            Binop::Add,
            Box::new(Expr::ConstInt(1)),
            Box::new(Expr::ConstInt(2)),
            Ty::Int,
        );
        assert_eq!(e.ty(), Ty::Int);
        assert!(!e.is_lvalue());
        assert!(Expr::Var("x".into(), Ty::Int).is_lvalue());
    }

    #[test]
    fn seq_drops_skip() {
        assert_eq!(Stmt::seq(Stmt::Skip, Stmt::Break), Stmt::Break);
        assert_eq!(Stmt::seq(Stmt::Break, Stmt::Skip), Stmt::Break);
    }

    #[test]
    fn signature_of_function() {
        let f = Function {
            name: "f".into(),
            ret: Ty::Int,
            params: vec![
                ("a".into(), Ty::Int),
                ("p".into(), Ty::Ptr(Box::new(Ty::Int))),
            ],
            vars: vec![],
            temps: vec![],
            body: Stmt::Skip,
        };
        let sig = f.signature();
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.ret, Some(mem::Typ::I32));
    }
}
