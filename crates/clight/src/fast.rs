//! Prepared ("arena") form of a Clight-mini program and the batched fast
//! interpreter behind [`ClightSem`]'s `step_batch` (DESIGN.md §13).
//!
//! `prepare` runs once per [`ClightSem`] and compiles every function body
//! into dense statement/expression arenas (`u32` ids), resolving at compile
//! time everything the legacy stepper re-derived on every step:
//!
//! * variable references become slot indices (locals) or block ids
//!   (globals), with load/store chunks precomputed from the same types the
//!   legacy evaluator would consult;
//! * callee names are interned ([`Interner`]) and resolved to function
//!   indices or external function pointers + signatures;
//! * casts become one of four kinds; `sizeof` becomes a constant;
//! * local allocation/free plans mirror `enter`/`free_locals` exactly
//!   (every declaration allocated in order, the *last* declaration of a
//!   name owning its slot, frees in name order — duplicate-name leaks and
//!   all);
//! * statically-known stuck conditions carry their exact legacy message,
//!   label-free (the label is prefixed at stuck time, like
//!   `ClightSem::stuck`).
//!
//! Activations use a dense register file ([`PFrame`]: `Vec<BlockId>` slots,
//! `Vec<Option<Val>>` temps) and continuations mirror the legacy [`Kont`]
//! one-to-one ([`PKont`]) so step counts match the legacy machine exactly —
//! including every `Skip` continuation pop. Mid-run states live in hidden
//! fast variants of [`State`] (`FEntry`/`FStmt`/`FReturning`/`FExternal`),
//! so external calls resume natively without converting back and forth.
//! Observable behaviour — answers, step counts, stuck messages, and the
//! `mem.*` counter stream — is bit-for-bit the legacy interpreter's;
//! `tests/fast_equiv.rs` checks this side by side.

use std::collections::BTreeMap;
use std::rc::Rc;

use compcerto_core::iface::{CQuery, CReply, Signature};
use compcerto_core::intern::Interner;
use compcerto_core::lts::{Batch, Lts, Step, Stuck};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Mem, Val};

use crate::ast::{Binop, CallDest, Expr, Function, Program, Stmt, Unop};
use crate::sem::{eval_binop, ClightSem, Kont, State};
use crate::ty::Ty;

/// A precompiled cast, keyed by (source type, target type).
#[derive(Debug, Clone, Copy)]
pub enum CastK {
    /// Value preserved (`int→int`, `long→long`, pointer/long punning).
    Id,
    /// `int → long` sign extension.
    LongOfInt,
    /// `long → int` truncation.
    IntOfLong,
    /// Any other pair: undefined.
    Undef,
}

/// A resolved lvalue place.
#[derive(Debug, Clone)]
pub enum PLval {
    /// A memory-resident local: slot index into [`PFrame::var_blocks`].
    Local(u32),
    /// A global block.
    Global(BlockId),
    /// A pointer dereference: evaluate the inner expression.
    Deref(u32),
    /// Statically stuck (unknown variable, not an lvalue).
    Trap(Box<str>),
}

/// A compiled expression node.
#[derive(Debug, Clone)]
pub enum PExpr {
    /// Constants (`ConstInt`, `ConstLong`, `SizeOf`).
    Const(Val),
    /// Read a temporary; the message is the exact unbound-temp stuck text.
    Temp(u32, Box<str>),
    /// Load a scalar local.
    LoadLocal(u32, Chunk),
    /// Load a scalar global.
    LoadGlobal(BlockId, Chunk),
    /// Load through a pointer.
    LoadDeref(u32, Chunk),
    /// `Deref` at non-scalar type: the inner expression still evaluates
    /// (and must be a pointer) before the load-type stuck fires.
    DerefNonScalar(u32, Box<str>),
    /// `&local`.
    AddrLocal(u32),
    /// `&*e`: evaluate `e`, require a pointer.
    AddrDeref(u32),
    /// Unary operation.
    Unop(Unop, u32),
    /// Binary operation.
    Binop(Binop, u32, u32),
    /// Cast.
    Cast(CastK, u32),
    /// Statically stuck.
    Trap(Box<str>),
}

/// A resolved call destination.
#[derive(Debug, Clone)]
pub enum PDest {
    /// Discard the result.
    None,
    /// Bind a temporary.
    Temp(u32),
    /// Store into an lvalue (chunk `None` means non-scalar: stuck at
    /// write time, after the place evaluates).
    Lvalue(PLval, Option<Chunk>),
}

/// A compiled statement node.
#[derive(Debug, Clone)]
pub enum PStmt {
    /// Do nothing (continuation pop).
    Skip,
    /// `lv = rhs` (chunk `None`: non-scalar, stuck after both evaluate).
    Assign {
        /// Destination place.
        lv: PLval,
        /// Store chunk from the legacy lvalue type.
        chunk: Option<Chunk>,
        /// Right-hand side.
        rhs: u32,
    },
    /// `$t = rhs`.
    Set(u32, u32),
    /// Call a function defined in this unit.
    CallI {
        /// Callee index.
        fidx: u32,
        /// Argument expressions.
        args: Box<[u32]>,
        /// Result destination.
        dest: PDest,
    },
    /// Call an external function.
    CallE {
        /// Resolved callee pointer.
        vf: Val,
        /// Call signature.
        sig: Signature,
        /// Argument expressions.
        args: Box<[u32]>,
        /// Result destination.
        dest: PDest,
    },
    /// A call that sticks after evaluating its arguments (unknown symbol
    /// or missing signature).
    CallTrap {
        /// Argument expressions (evaluated first, as in the legacy order).
        args: Box<[u32]>,
        /// The stuck message.
        msg: Box<str>,
    },
    /// Sequencing.
    Seq(u32, u32),
    /// Conditional; `prefix` is the legacy ``undefined condition: {c} = ``
    /// text awaiting the runtime value.
    If {
        /// Condition.
        cond: u32,
        /// Stuck-message prefix.
        prefix: Box<str>,
        /// Then branch.
        then_sid: u32,
        /// Else branch.
        else_sid: u32,
    },
    /// Loop; `prefix` as for `If`.
    While {
        /// Condition.
        cond: u32,
        /// Stuck-message prefix.
        prefix: Box<str>,
        /// Loop body.
        body_sid: u32,
    },
    /// Exit the nearest loop.
    Break,
    /// Re-test the nearest loop.
    Continue,
    /// Return from the function.
    Return(Option<u32>),
}

/// Per-parameter binding plan (mirrors `enter`'s branches).
#[derive(Debug, Clone)]
pub enum PParam {
    /// Store into a local's block; the prefix is
    /// ``storing parameter `p`: `` awaiting the runtime error.
    Mem(u32, Chunk, Box<str>),
    /// Bind the matching temp.
    Temp(u32),
    /// Statically stuck (non-scalar parameter / no storage).
    Trap(Box<str>),
}

/// A prepared function.
#[derive(Debug, Clone)]
pub struct PFunc {
    /// Name.
    pub name: Ident,
    /// Parameter binding plans, in order.
    pub params: Vec<PParam>,
    /// Allocation plan: `(slot, size)` per declaration, in declaration
    /// order (duplicates each allocate; the slot keeps the last block).
    pub allocs: Vec<(u32, i64)>,
    /// Free plan, indexed by slot (slots are in name order, matching the
    /// legacy `BTreeMap` iteration): `(size, name)` from the last
    /// declaration of the name.
    pub frees: Vec<(i64, Box<str>)>,
    /// Temp-slot count (covers every temp id the function mentions).
    pub n_temps: usize,
    /// Which temp slots `enter` binds to `Undef` (declared temps).
    pub temps_init: Vec<bool>,
    /// Body statement.
    pub body_sid: u32,
    /// Canonical `Skip` statement (post-assignment continuation).
    pub skip_sid: u32,
    /// Statement arena.
    pub stmts: Vec<PStmt>,
    /// Expression arena.
    pub exprs: Vec<PExpr>,
}

/// A prepared program.
#[derive(Debug, Clone)]
pub struct PProg {
    /// Interned function names (definition order — deterministic).
    pub syms: Interner,
    /// Function arena, in definition order.
    pub funcs: Vec<PFunc>,
    /// `Sym` index → function index (first definition wins, like
    /// `Program::function`).
    pub fidx_of_sym: Vec<Option<u32>>,
}

/// A fast activation: dense local slots and temps.
#[derive(Debug, Clone)]
pub struct PFrame {
    /// Owning function (index into [`PProg::funcs`]).
    pub fidx: u32,
    /// Block per local slot (slots in name order).
    pub var_blocks: Vec<BlockId>,
    /// Temp values; `None` is *unbound* (distinct from a bound `Undef`).
    pub temps: Vec<Option<Val>>,
}

/// Fast continuations, mirroring [`Kont`] one-to-one (so step counts,
/// including `Skip` pops, match the legacy machine exactly).
#[derive(Debug, Clone)]
pub enum PKont {
    /// Return to the environment.
    Stop,
    /// Execute a statement next.
    Seq(u32, Rc<PKont>),
    /// Re-test a `while` (the sid of the original `While` statement).
    Loop(u32, Rc<PKont>),
    /// Return into a suspended internal caller.
    Call {
        /// Result destination.
        dest: PDest,
        /// Suspended frame.
        frame: PFrame,
        /// Caller's continuation.
        kont: Rc<PKont>,
    },
}

impl PKont {
    /// Number of suspended internal activations (the `Call` links).
    pub fn call_depth(&self) -> u64 {
        let mut depth = 0u64;
        let mut k = self;
        loop {
            match k {
                PKont::Stop => return depth,
                PKont::Seq(_, next) | PKont::Loop(_, next) => k = next,
                PKont::Call { kont, .. } => {
                    depth += 1;
                    k = kont;
                }
            }
        }
    }
}

/// Take a continuation out of its `Rc`, cloning only when shared.
fn unrc(k: Rc<PKont>) -> PKont {
    Rc::try_unwrap(k).unwrap_or_else(|rc| (*rc).clone())
}

/// The per-function compiler.
struct FnC<'a> {
    f: &'a Function,
    symtab: &'a SymbolTable,
    /// Unique local names in name order → slot.
    slot_of: BTreeMap<&'a str, u32>,
    /// Last-declaration type per slot (what the legacy `env` holds).
    env_ty: Vec<&'a Ty>,
    stmts: Vec<PStmt>,
    exprs: Vec<PExpr>,
}

impl<'a> FnC<'a> {
    fn push_expr(&mut self, e: PExpr) -> u32 {
        self.exprs.push(e);
        (self.exprs.len() - 1) as u32
    }

    /// Compile an lvalue, returning the place and the type the legacy
    /// `eval_lvalue` would report (env type for locals, annotation
    /// otherwise).
    fn lvalue(&mut self, e: &Expr) -> (PLval, Ty) {
        match e {
            Expr::Var(name, ty) => {
                if let Some(&slot) = self.slot_of.get(name.as_str()) {
                    (PLval::Local(slot), self.env_ty[slot as usize].clone())
                } else if let Some(b) = self.symtab.block_of(name) {
                    (PLval::Global(b), ty.clone())
                } else {
                    (
                        PLval::Trap(format!("unknown variable `{name}`").into_boxed_str()),
                        ty.clone(),
                    )
                }
            }
            Expr::Deref(inner, ty) => {
                let eid = self.expr(inner);
                (PLval::Deref(eid), ty.clone())
            }
            other => (
                PLval::Trap(format!("not an lvalue: {other}").into_boxed_str()),
                other.ty(),
            ),
        }
    }

    fn expr(&mut self, e: &Expr) -> u32 {
        let node = match e {
            Expr::ConstInt(n) => PExpr::Const(Val::Int(*n)),
            Expr::ConstLong(n) => PExpr::Const(Val::Long(*n)),
            Expr::SizeOf(t) => PExpr::Const(Val::Long(t.size())),
            Expr::Temp(t, _) => PExpr::Temp(
                *t,
                format!("unbound temporary $t{t} in `{}`", self.f.name).into_boxed_str(),
            ),
            Expr::Var(_, _) => {
                let (lv, ty) = self.lvalue(e);
                match lv {
                    PLval::Trap(msg) => PExpr::Trap(msg),
                    PLval::Local(slot) => match ty.chunk() {
                        Some(c) => PExpr::LoadLocal(slot, c),
                        None => PExpr::Trap(
                            format!("load at non-scalar type {ty}").into_boxed_str(),
                        ),
                    },
                    PLval::Global(b) => match ty.chunk() {
                        Some(c) => PExpr::LoadGlobal(b, c),
                        None => PExpr::Trap(
                            format!("load at non-scalar type {ty}").into_boxed_str(),
                        ),
                    },
                    PLval::Deref(_) => unreachable!("Var never compiles to Deref"),
                }
            }
            Expr::Deref(inner, ty) => {
                let eid = self.expr(inner);
                match ty.chunk() {
                    Some(c) => PExpr::LoadDeref(eid, c),
                    // The inner pointer still evaluates (and is checked)
                    // before the non-scalar load sticks, as in the legacy
                    // eval order.
                    None => PExpr::DerefNonScalar(
                        eid,
                        format!("load at non-scalar type {ty}").into_boxed_str(),
                    ),
                }
            }
            Expr::Addr(inner, _) => {
                let (lv, _) = self.lvalue(inner);
                match lv {
                    PLval::Local(slot) => PExpr::AddrLocal(slot),
                    PLval::Global(b) => PExpr::Const(Val::Ptr(b, 0)),
                    PLval::Deref(eid) => PExpr::AddrDeref(eid),
                    PLval::Trap(msg) => PExpr::Trap(msg),
                }
            }
            Expr::Unop(op, a, _) => {
                let a = self.expr(a);
                PExpr::Unop(*op, a)
            }
            Expr::Binop(op, a, b, _) => {
                let a = self.expr(a);
                let b = self.expr(b);
                PExpr::Binop(*op, a, b)
            }
            Expr::Cast(a, target) => {
                let from = a.ty();
                let a = self.expr(a);
                let kind = match (&from, target) {
                    (Ty::Int, Ty::Int) | (Ty::Long, Ty::Long) => CastK::Id,
                    (Ty::Int, Ty::Long) => CastK::LongOfInt,
                    (Ty::Long, Ty::Int) => CastK::IntOfLong,
                    (Ty::Ptr(_), Ty::Ptr(_)) | (Ty::Ptr(_), Ty::Long) | (Ty::Long, Ty::Ptr(_)) => {
                        CastK::Id
                    }
                    _ => CastK::Undef,
                };
                PExpr::Cast(kind, a)
            }
            Expr::Index(_, _, _) => {
                PExpr::Trap("surface Index reached the semantics".into())
            }
        };
        self.push_expr(node)
    }

    fn dest(&mut self, d: &CallDest) -> PDest {
        match d {
            CallDest::None => PDest::None,
            CallDest::Temp(t, _) => PDest::Temp(*t),
            CallDest::Lvalue(lv) => {
                let (place, ty) = self.lvalue(lv);
                PDest::Lvalue(place, ty.chunk())
            }
        }
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        prog: &Program,
        syms: &Interner,
        fidx_of_sym: &[Option<u32>],
    ) -> u32 {
        let sid = self.stmts.len() as u32;
        self.stmts.push(PStmt::Skip); // placeholder
        let node = match s {
            Stmt::Skip => PStmt::Skip,
            Stmt::Assign(lv, rhs) => {
                let (place, ty) = self.lvalue(lv);
                let rhs = self.expr(rhs);
                PStmt::Assign {
                    lv: place,
                    chunk: ty.chunk(),
                    rhs,
                }
            }
            Stmt::Set(t, rhs) => {
                let rhs = self.expr(rhs);
                PStmt::Set(*t, rhs)
            }
            Stmt::Call(dest, fname, args) => {
                let args: Box<[u32]> = args.iter().map(|a| self.expr(a)).collect();
                match self.symtab.func_ptr(fname) {
                    None => PStmt::CallTrap {
                        args,
                        msg: format!("call to unknown symbol `{fname}`").into_boxed_str(),
                    },
                    Some(vf) => {
                        let fidx = syms
                            .lookup(fname)
                            .and_then(|sy| fidx_of_sym.get(sy.index()).copied().flatten());
                        match fidx {
                            Some(fidx) => PStmt::CallI {
                                fidx,
                                args,
                                dest: self.dest(dest),
                            },
                            None => match prog.sig_of(fname) {
                                Some(sig) => PStmt::CallE {
                                    vf,
                                    sig,
                                    args,
                                    dest: self.dest(dest),
                                },
                                None => PStmt::CallTrap {
                                    args,
                                    msg: format!("no signature for `{fname}`").into_boxed_str(),
                                },
                            },
                        }
                    }
                }
            }
            Stmt::Seq(a, b) => {
                let a = self.stmt(a, prog, syms, fidx_of_sym);
                let b = self.stmt(b, prog, syms, fidx_of_sym);
                PStmt::Seq(a, b)
            }
            Stmt::If(c, a, b) => {
                let prefix = format!("undefined condition: {c} = ").into_boxed_str();
                let cond = self.expr(c);
                let then_sid = self.stmt(a, prog, syms, fidx_of_sym);
                let else_sid = self.stmt(b, prog, syms, fidx_of_sym);
                PStmt::If {
                    cond,
                    prefix,
                    then_sid,
                    else_sid,
                }
            }
            Stmt::While(c, body) => {
                let prefix = format!("undefined loop condition: {c} = ").into_boxed_str();
                let cond = self.expr(c);
                let body_sid = self.stmt(body, prog, syms, fidx_of_sym);
                PStmt::While {
                    cond,
                    prefix,
                    body_sid,
                }
            }
            Stmt::Break => PStmt::Break,
            Stmt::Continue => PStmt::Continue,
            Stmt::Return(e) => PStmt::Return(e.as_ref().map(|e| self.expr(e))),
        };
        self.stmts[sid as usize] = node;
        sid
    }
}

/// Every temp id a function mentions (declared temps, `Set` targets, call
/// destinations, reads), to size the dense temp file.
fn max_temp(f: &Function) -> usize {
    fn expr_max(e: &Expr, m: &mut usize) {
        match e {
            Expr::Temp(t, _) => *m = (*m).max(*t as usize + 1),
            Expr::Deref(a, _) | Expr::Addr(a, _) | Expr::Unop(_, a, _) | Expr::Cast(a, _) => {
                expr_max(a, m);
            }
            Expr::Binop(_, a, b, _) | Expr::Index(a, b, _) => {
                expr_max(a, m);
                expr_max(b, m);
            }
            _ => {}
        }
    }
    fn stmt_max(s: &Stmt, m: &mut usize) {
        match s {
            Stmt::Assign(a, b) => {
                expr_max(a, m);
                expr_max(b, m);
            }
            Stmt::Set(t, e) => {
                *m = (*m).max(*t as usize + 1);
                expr_max(e, m);
            }
            Stmt::Call(d, _, args) => {
                match d {
                    CallDest::Temp(t, _) => *m = (*m).max(*t as usize + 1),
                    CallDest::Lvalue(e) => expr_max(e, m),
                    CallDest::None => {}
                }
                for a in args {
                    expr_max(a, m);
                }
            }
            Stmt::Seq(a, b) => {
                stmt_max(a, m);
                stmt_max(b, m);
            }
            Stmt::If(c, a, b) => {
                expr_max(c, m);
                stmt_max(a, m);
                stmt_max(b, m);
            }
            Stmt::While(c, b) => {
                expr_max(c, m);
                stmt_max(b, m);
            }
            Stmt::Return(Some(e)) => expr_max(e, m),
            _ => {}
        }
    }
    let mut m = 0usize;
    for (tid, _, _) in &f.temps {
        m = m.max(*tid as usize + 1);
    }
    stmt_max(&f.body, &mut m);
    m
}

/// Compile `prog` into its prepared form. Pure function of the program and
/// symbol table; runs once in `ClightSem::new`.
pub fn prepare(prog: &Program, symtab: &SymbolTable) -> PProg {
    let mut syms = Interner::new();
    for f in &prog.functions {
        syms.intern(&f.name);
    }
    for e in &prog.externs {
        syms.intern(&e.name);
    }
    let mut fidx_of_sym: Vec<Option<u32>> = vec![None; syms.len()];
    for (i, f) in prog.functions.iter().enumerate() {
        if let Some(s) = syms.lookup(&f.name) {
            let slot = &mut fidx_of_sym[s.index()];
            if slot.is_none() {
                *slot = Some(i as u32);
            }
        }
    }

    let funcs = prog
        .functions
        .iter()
        .map(|f| {
            // Slots: unique local names in name order (the legacy env is a
            // BTreeMap, so frees iterate in name order). The slot's type and
            // free size come from the *last* declaration (env.insert
            // overwrites); every declaration still allocates.
            let mut slot_of: BTreeMap<&str, u32> = BTreeMap::new();
            for (name, _) in &f.vars {
                let next = slot_of.len() as u32;
                slot_of.entry(name.as_str()).or_insert(next);
            }
            // Re-number in name order.
            let names: Vec<&str> = slot_of.keys().copied().collect();
            for (i, n) in names.iter().enumerate() {
                if let Some(s) = slot_of.get_mut(n) {
                    *s = i as u32;
                }
            }
            let mut env_ty: Vec<&Ty> = vec![&Ty::Void; slot_of.len()];
            let mut allocs = Vec::with_capacity(f.vars.len());
            for (name, ty) in &f.vars {
                let slot = slot_of[name.as_str()];
                allocs.push((slot, ty.size()));
                env_ty[slot as usize] = ty; // last declaration wins
            }
            let frees: Vec<(i64, Box<str>)> = names
                .iter()
                .enumerate()
                .map(|(slot, name)| (env_ty[slot].size(), (*name).into()))
                .collect();

            let n_temps = max_temp(f);
            let mut temps_init = vec![false; n_temps];
            for (tid, _, _) in &f.temps {
                temps_init[*tid as usize] = true;
            }

            let mut c = FnC {
                f,
                symtab,
                slot_of,
                env_ty,
                stmts: Vec::new(),
                exprs: Vec::new(),
            };
            // Parameter plans, in order (mirroring `enter`).
            let params: Vec<PParam> = f
                .params
                .iter()
                .map(|(pname, pty)| {
                    if let Some(&slot) = c.slot_of.get(pname.as_str()) {
                        match pty.chunk() {
                            Some(chunk) => PParam::Mem(
                                slot,
                                chunk,
                                format!("storing parameter `{pname}`: ").into_boxed_str(),
                            ),
                            None => PParam::Trap(
                                format!("parameter `{pname}` not scalar").into_boxed_str(),
                            ),
                        }
                    } else if let Some((tid, _, _)) = f
                        .temps
                        .iter()
                        .find(|(_, _, n)| n.as_deref() == Some(pname.as_str()))
                    {
                        PParam::Temp(*tid)
                    } else {
                        PParam::Trap(
                            format!("parameter `{pname}` has no storage").into_boxed_str(),
                        )
                    }
                })
                .collect();

            let body_sid = c.stmt(&f.body, prog, &syms, &fidx_of_sym);
            let skip_sid = c.stmts.len() as u32;
            c.stmts.push(PStmt::Skip);

            PFunc {
                name: f.name.clone(),
                params,
                allocs,
                frees,
                n_temps,
                temps_init,
                body_sid,
                skip_sid,
                stmts: c.stmts,
                exprs: c.exprs,
            }
        })
        .collect();

    PProg {
        syms,
        funcs,
        fidx_of_sym,
    }
}

fn st(label: &str, msg: impl std::fmt::Display) -> Stuck {
    Stuck::new(format!("{label}: {msg}"))
}

/// Evaluate a compiled expression (same order, loads, and stuck messages as
/// the legacy `eval`).
fn eval(f: &PFunc, frame: &PFrame, mem: &Mem, label: &str, eid: u32) -> Result<Val, Stuck> {
    match &f.exprs[eid as usize] {
        PExpr::Const(v) => Ok(*v),
        PExpr::Temp(t, msg) => match frame.temps[*t as usize] {
            Some(v) => Ok(v),
            None => Err(st(label, msg)),
        },
        PExpr::LoadLocal(slot, chunk) => {
            match mem.load(*chunk, frame.var_blocks[*slot as usize], 0) {
                Ok(v) => Ok(v),
                Err(err) => Err(st(label, format_args!("load failed: {err}"))),
            }
        }
        PExpr::LoadGlobal(b, chunk) => match mem.load(*chunk, *b, 0) {
            Ok(v) => Ok(v),
            Err(err) => Err(st(label, format_args!("load failed: {err}"))),
        },
        PExpr::LoadDeref(inner, chunk) => {
            let (b, ofs) = eval_ptr(f, frame, mem, label, *inner)?;
            match mem.load(*chunk, b, ofs) {
                Ok(v) => Ok(v),
                Err(err) => Err(st(label, format_args!("load failed: {err}"))),
            }
        }
        PExpr::DerefNonScalar(inner, msg) => {
            let _ = eval_ptr(f, frame, mem, label, *inner)?;
            Err(st(label, msg))
        }
        PExpr::AddrLocal(slot) => Ok(Val::Ptr(frame.var_blocks[*slot as usize], 0)),
        PExpr::AddrDeref(inner) => {
            let (b, ofs) = eval_ptr(f, frame, mem, label, *inner)?;
            Ok(Val::Ptr(b, ofs))
        }
        PExpr::Unop(op, a) => {
            let v = eval(f, frame, mem, label, *a)?;
            Ok(match op {
                Unop::Neg => v.neg(),
                Unop::Not => v.not(),
                Unop::LogicalNot => v.bool_not(),
            })
        }
        PExpr::Binop(op, a, b) => {
            let va = eval(f, frame, mem, label, *a)?;
            let vb = eval(f, frame, mem, label, *b)?;
            Ok(eval_binop(*op, va, vb))
        }
        PExpr::Cast(kind, a) => {
            let v = eval(f, frame, mem, label, *a)?;
            Ok(match kind {
                CastK::Id => v,
                CastK::LongOfInt => v.longofint(),
                CastK::IntOfLong => v.intoflong(),
                CastK::Undef => Val::Undef,
            })
        }
        PExpr::Trap(msg) => Err(st(label, msg)),
    }
}

/// Evaluate an expression that must yield a pointer (the `Deref` inner).
fn eval_ptr(
    f: &PFunc,
    frame: &PFrame,
    mem: &Mem,
    label: &str,
    eid: u32,
) -> Result<(BlockId, i64), Stuck> {
    match eval(f, frame, mem, label, eid)? {
        Val::Ptr(b, ofs) => Ok((b, ofs)),
        other => Err(st(
            label,
            format_args!("dereference of non-pointer {other}"),
        )),
    }
}

/// Evaluate a compiled place to a location.
fn eval_place(
    f: &PFunc,
    frame: &PFrame,
    mem: &Mem,
    label: &str,
    lv: &PLval,
) -> Result<(BlockId, i64), Stuck> {
    match lv {
        PLval::Local(slot) => Ok((frame.var_blocks[*slot as usize], 0)),
        PLval::Global(b) => Ok((*b, 0)),
        PLval::Deref(eid) => eval_ptr(f, frame, mem, label, *eid),
        PLval::Trap(msg) => Err(st(label, msg)),
    }
}

/// Write a call result into its destination (the fast `write_dest`, used by
/// both the batch loop and `ClightSem::resume` on fast externals).
pub(crate) fn write_dest(
    p: &PProg,
    label: &str,
    dest: &PDest,
    v: Val,
    frame: &mut PFrame,
    mem: &mut Mem,
) -> Result<(), Stuck> {
    let f = &p.funcs[frame.fidx as usize];
    match dest {
        PDest::None => Ok(()),
        PDest::Temp(t) => {
            frame.temps[*t as usize] = Some(v);
            Ok(())
        }
        PDest::Lvalue(lv, chunk) => {
            let (b, ofs) = eval_place(f, frame, mem, label, lv)?;
            let Some(chunk) = chunk else {
                return Err(st(label, "call destination not scalar"));
            };
            match mem.store(*chunk, b, ofs, v) {
                Ok(()) => Ok(()),
                Err(e) => Err(st(label, format_args!("storing call result: {e}"))),
            }
        }
    }
}

/// Free a frame's locals (the fast `free_locals`: name order, last-decl
/// blocks and sizes).
fn free_locals(f: &PFunc, frame: &PFrame, mem: &mut Mem, label: &str) -> Result<(), Stuck> {
    for (slot, (size, name)) in f.frees.iter().enumerate() {
        if let Err(e) = mem.free(frame.var_blocks[slot], 0, *size) {
            return Err(st(label, format_args!("freeing local `{name}`: {e}")));
        }
    }
    Ok(())
}

/// One legacy step, packaged as a [`Batch`] — the fallback for legacy
/// states the arena does not model (anything but the initial `Entry`).
fn legacy_one(sem: &ClightSem, s: &mut State) -> Batch<CQuery, CReply> {
    match sem.step(s) {
        Step::Internal(s2, _) => {
            *s = s2;
            Batch::Ran(1)
        }
        Step::Final(a) => Batch::Final(0, a),
        Step::External(oq) => Batch::External(0, oq),
        Step::Stuck(stuck) => Batch::Stuck(0, stuck),
    }
}

/// Control position of the fast machine (the shared `mem` rides alongside).
enum M {
    /// Mirror of `State::Entry` (callee resolved).
    Enter(u32, Vec<Val>, PKont),
    /// Mirror of `State::Stmt`.
    Stmt(u32, PFrame, PKont),
    /// Mirror of `State::Returning`.
    Ret(Val, PKont),
}

/// Run up to `fuel_left` steps in place. Every legacy `step` — including
/// `Skip` continuation pops and `Entry` transitions — counts exactly one
/// step here too, so fuel accounting is bit-for-bit identical.
#[allow(clippy::too_many_lines)]
pub(crate) fn step_batch(sem: &ClightSem, s: &mut State, fuel_left: u64) -> Batch<CQuery, CReply> {
    let p = sem.fast();
    let label = sem.label();

    // Take ownership of the state (fast states move in and out without
    // cloning frames or memory).
    let taken = std::mem::replace(
        s,
        State::FReturning {
            v: Val::Undef,
            mem: Mem::new(),
            kont: PKont::Stop,
        },
    );
    let (mut mode, mut mem) = match taken {
        State::External { .. } | State::FExternal { .. } => {
            if let State::External { q, .. } | State::FExternal { q, .. } = &taken {
                let q = q.clone();
                *s = taken;
                return Batch::External(0, q);
            }
            unreachable!()
        }
        State::Entry {
            vf,
            args,
            mem,
            kont: Kont::Stop,
        } => {
            // The initial state: resolve the callee once and go fast.
            let fidx = match vf {
                Val::Ptr(b, 0) => sem
                    .symtab()
                    .ident_of(b)
                    .and_then(|name| p.syms.lookup(name))
                    .and_then(|sy| p.fidx_of_sym.get(sy.index()).copied().flatten()),
                _ => None,
            };
            match fidx {
                Some(fidx) => (M::Enter(fidx, args, PKont::Stop), mem),
                None => {
                    *s = State::Entry {
                        vf,
                        args,
                        mem,
                        kont: Kont::Stop,
                    };
                    return legacy_one(sem, s);
                }
            }
        }
        State::FEntry {
            fidx,
            args,
            mem,
            kont,
        } => (M::Enter(fidx, args, kont), mem),
        State::FStmt {
            sid,
            frame,
            kont,
            mem,
        } => (M::Stmt(sid, frame, kont), mem),
        State::FReturning { v, mem, kont } => (M::Ret(v, kont), mem),
        other => {
            // Hand-built legacy mid-states: step them with the legacy
            // machine (exact messages, legacy speed).
            *s = other;
            return legacy_one(sem, s);
        }
    };
    let mut n: u64 = 0;

    loop {
        match mode {
            M::Enter(fidx, args, kont) => {
                if n == fuel_left {
                    *s = State::FEntry {
                        fidx,
                        args,
                        mem,
                        kont,
                    };
                    return Batch::Ran(n);
                }
                let f = &p.funcs[fidx as usize];
                if args.len() != f.params.len() {
                    return Batch::Stuck(
                        n,
                        st(
                            label,
                            format_args!(
                                "`{}` expects {} arguments, got {}",
                                f.name,
                                f.params.len(),
                                args.len()
                            ),
                        ),
                    );
                }
                let mut var_blocks = vec![0 as BlockId; f.frees.len()];
                for &(slot, size) in &f.allocs {
                    var_blocks[slot as usize] = mem.alloc(0, size);
                }
                let mut temps: Vec<Option<Val>> = f
                    .temps_init
                    .iter()
                    .map(|init| if *init { Some(Val::Undef) } else { None })
                    .collect();
                let mut stuck = None;
                for (plan, v) in f.params.iter().zip(&args) {
                    match plan {
                        PParam::Mem(slot, chunk, prefix) => {
                            if let Err(e) =
                                mem.store(*chunk, var_blocks[*slot as usize], 0, *v)
                            {
                                stuck = Some(st(label, format_args!("{prefix}{e}")));
                                break;
                            }
                        }
                        PParam::Temp(tid) => temps[*tid as usize] = Some(*v),
                        PParam::Trap(msg) => {
                            stuck = Some(st(label, msg));
                            break;
                        }
                    }
                }
                if let Some(stuck) = stuck {
                    return Batch::Stuck(n, stuck);
                }
                n += 1;
                mode = M::Stmt(
                    f.body_sid,
                    PFrame {
                        fidx,
                        var_blocks,
                        temps,
                    },
                    kont,
                );
            }
            M::Stmt(start_sid, mut frame, mut kont) => {
                let f = &p.funcs[frame.fidx as usize];
                let mut sid = start_sid;
                // The hot inner loop: stays inside one activation.
                loop {
                    if n == fuel_left {
                        *s = State::FStmt {
                            sid,
                            frame,
                            kont,
                            mem,
                        };
                        return Batch::Ran(n);
                    }
                    match &f.stmts[sid as usize] {
                        PStmt::Skip => match kont {
                            PKont::Seq(next_sid, k) => {
                                sid = next_sid;
                                kont = unrc(k);
                                n += 1;
                            }
                            PKont::Loop(while_sid, k) => {
                                sid = while_sid;
                                kont = unrc(k);
                                n += 1;
                            }
                            // Fell off the end: implicit `return;`.
                            PKont::Stop | PKont::Call { .. } => {
                                if let Err(stuck) = free_locals(f, &frame, &mut mem, label) {
                                    return Batch::Stuck(n, stuck);
                                }
                                n += 1;
                                mode = M::Ret(Val::Undef, kont);
                                break;
                            }
                        },
                        PStmt::Assign { lv, chunk, rhs } => {
                            let (b, ofs) = match eval_place(f, &frame, &mem, label, lv) {
                                Ok(loc) => loc,
                                Err(stuck) => return Batch::Stuck(n, stuck),
                            };
                            let v = match eval(f, &frame, &mem, label, *rhs) {
                                Ok(v) => v,
                                Err(stuck) => return Batch::Stuck(n, stuck),
                            };
                            let Some(chunk) = chunk else {
                                return Batch::Stuck(
                                    n,
                                    st(label, "assignment at non-scalar type"),
                                );
                            };
                            if let Err(e) = mem.store(*chunk, b, ofs, v) {
                                return Batch::Stuck(
                                    n,
                                    st(label, format_args!("store failed: {e}")),
                                );
                            }
                            sid = f.skip_sid;
                            n += 1;
                        }
                        PStmt::Set(t, rhs) => {
                            let v = match eval(f, &frame, &mem, label, *rhs) {
                                Ok(v) => v,
                                Err(stuck) => return Batch::Stuck(n, stuck),
                            };
                            frame.temps[*t as usize] = Some(v);
                            sid = f.skip_sid;
                            n += 1;
                        }
                        PStmt::Seq(a, b) => {
                            kont = PKont::Seq(*b, Rc::new(kont));
                            sid = *a;
                            n += 1;
                        }
                        PStmt::If {
                            cond,
                            prefix,
                            then_sid,
                            else_sid,
                        } => {
                            let v = match eval(f, &frame, &mem, label, *cond) {
                                Ok(v) => v,
                                Err(stuck) => return Batch::Stuck(n, stuck),
                            };
                            match v.truth() {
                                Some(t) => {
                                    sid = if t { *then_sid } else { *else_sid };
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        st(label, format_args!("{prefix}{v}")),
                                    )
                                }
                            }
                        }
                        PStmt::While {
                            cond,
                            prefix,
                            body_sid,
                        } => {
                            let v = match eval(f, &frame, &mem, label, *cond) {
                                Ok(v) => v,
                                Err(stuck) => return Batch::Stuck(n, stuck),
                            };
                            match v.truth() {
                                Some(true) => {
                                    kont = PKont::Loop(sid, Rc::new(kont));
                                    sid = *body_sid;
                                    n += 1;
                                }
                                Some(false) => {
                                    sid = f.skip_sid;
                                    n += 1;
                                }
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        st(label, format_args!("{prefix}{v}")),
                                    )
                                }
                            }
                        }
                        PStmt::Break => {
                            let mut k = kont;
                            loop {
                                match k {
                                    PKont::Seq(_, next) => k = unrc(next),
                                    PKont::Loop(_, next) => {
                                        kont = unrc(next);
                                        sid = f.skip_sid;
                                        n += 1;
                                        break;
                                    }
                                    PKont::Stop | PKont::Call { .. } => {
                                        return Batch::Stuck(
                                            n,
                                            st(label, "break outside a loop"),
                                        );
                                    }
                                }
                            }
                        }
                        PStmt::Continue => {
                            let mut k = kont;
                            loop {
                                match k {
                                    PKont::Seq(_, next) => k = unrc(next),
                                    PKont::Loop(while_sid, next) => {
                                        sid = while_sid;
                                        kont = unrc(next);
                                        n += 1;
                                        break;
                                    }
                                    PKont::Stop | PKont::Call { .. } => {
                                        return Batch::Stuck(
                                            n,
                                            st(label, "continue outside a loop"),
                                        );
                                    }
                                }
                            }
                        }
                        PStmt::Return(e) => {
                            let v = match e {
                                Some(eid) => match eval(f, &frame, &mem, label, *eid) {
                                    Ok(v) => v,
                                    Err(stuck) => return Batch::Stuck(n, stuck),
                                },
                                None => Val::Undef,
                            };
                            if let Err(stuck) = free_locals(f, &frame, &mut mem, label) {
                                return Batch::Stuck(n, stuck);
                            }
                            // Unwind to the enclosing Call/Stop.
                            let mut k = kont;
                            loop {
                                match k {
                                    PKont::Seq(_, next) | PKont::Loop(_, next) => k = unrc(next),
                                    PKont::Stop | PKont::Call { .. } => break,
                                }
                            }
                            n += 1;
                            mode = M::Ret(v, k);
                            break;
                        }
                        PStmt::CallI { fidx, args, dest } => {
                            let mut vals = Vec::with_capacity(args.len());
                            let mut stuck = None;
                            for &a in args.iter() {
                                match eval(f, &frame, &mem, label, a) {
                                    Ok(v) => vals.push(v),
                                    Err(e) => {
                                        stuck = Some(e);
                                        break;
                                    }
                                }
                            }
                            if let Some(stuck) = stuck {
                                return Batch::Stuck(n, stuck);
                            }
                            n += 1;
                            let fidx = *fidx;
                            mode = M::Enter(
                                fidx,
                                vals,
                                PKont::Call {
                                    dest: dest.clone(),
                                    frame,
                                    kont: Rc::new(kont),
                                },
                            );
                            break;
                        }
                        PStmt::CallE {
                            vf,
                            sig,
                            args,
                            dest,
                        } => {
                            let mut vals = Vec::with_capacity(args.len());
                            let mut stuck = None;
                            for &a in args.iter() {
                                match eval(f, &frame, &mem, label, a) {
                                    Ok(v) => vals.push(v),
                                    Err(e) => {
                                        stuck = Some(e);
                                        break;
                                    }
                                }
                            }
                            if let Some(stuck) = stuck {
                                return Batch::Stuck(n, stuck);
                            }
                            n += 1;
                            let q = CQuery {
                                vf: *vf,
                                sig: sig.clone(),
                                args: vals,
                                mem: mem.clone(),
                            };
                            *s = State::FExternal {
                                q: q.clone(),
                                dest: dest.clone(),
                                frame,
                                kont,
                            };
                            return if n == fuel_left {
                                Batch::Ran(n)
                            } else {
                                Batch::External(n, q)
                            };
                        }
                        PStmt::CallTrap { args, msg } => {
                            for &a in args.iter() {
                                if let Err(stuck) = eval(f, &frame, &mem, label, a) {
                                    return Batch::Stuck(n, stuck);
                                }
                            }
                            return Batch::Stuck(n, st(label, msg));
                        }
                    }
                }
            }
            M::Ret(v, kont) => {
                if n == fuel_left {
                    *s = State::FReturning { v, mem, kont };
                    return Batch::Ran(n);
                }
                match kont {
                    PKont::Stop => return Batch::Final(n, CReply { retval: v, mem }),
                    PKont::Call {
                        dest,
                        mut frame,
                        kont,
                    } => {
                        if let Err(stuck) =
                            write_dest(p, label, &dest, v, &mut frame, &mut mem)
                        {
                            return Batch::Stuck(n, stuck);
                        }
                        let skip = p.funcs[frame.fidx as usize].skip_sid;
                        n += 1;
                        mode = M::Stmt(skip, frame, unrc(kont));
                    }
                    // Unreachable by construction (Returning is built with
                    // Stop/Call only); keep the legacy message for safety.
                    PKont::Seq(_, _) | PKont::Loop(_, _) => {
                        return Batch::Stuck(
                            n,
                            Stuck::new("return into a non-call continuation"),
                        );
                    }
                }
            }
        }
    }
}

/// One fast step (used by `ClightSem::step` on the hidden fast variants so
/// `step` stays total): a batch of size one on a cloned state.
pub(crate) fn step_one(sem: &ClightSem, s: &State) -> Step<State, CQuery, CReply> {
    let mut s2 = s.clone();
    match step_batch(sem, &mut s2, 1) {
        Batch::Ran(_) => Step::Internal(s2, vec![]),
        Batch::Final(_, a) => Step::Final(a),
        Batch::External(_, q) => Step::External(q),
        Batch::Stuck(_, stuck) => Step::Stuck(stuck),
    }
}
