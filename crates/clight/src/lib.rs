//! # Clight-mini: the source language of CompCertO-rs
//!
//! A small but realistic C subset (DESIGN.md §2) with:
//!
//! * a hand-written [`lexer`] and [`parser`](parser::parse);
//! * a [type checker](typecheck::typecheck) that elaborates the surface
//!   syntax (array indexing, implicit widening, array decay);
//! * an [open semantics](sem::ClightSem) over the game `C ↠ C`
//!   (paper §3.2) with memory-resident locals;
//! * [linking](link) and shared [symbol-table](link::build_symtab)
//!   construction (paper App. A.3);
//! * the first compilation pass, [`simpl_locals`] (paper Table 3,
//!   convention `injp ↠ inj`).
//!
//! # Example
//!
//! ```
//! use compcerto_core::iface::CQuery;
//! use compcerto_core::lts::run;
//! use mem::Val;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = clight::parse("int sqr(int n) { return n * n; }")?;
//! let prog = clight::typecheck(&prog)?;
//! let symtab = clight::build_symtab(&[&prog])?;
//! let mem = symtab.build_init_mem()?;
//! let sem = clight::ClightSem::new(prog, symtab.clone());
//!
//! let q = CQuery {
//!     vf: symtab.func_ptr("sqr").unwrap(),
//!     sig: compcerto_core::iface::Signature::int_fn(1),
//!     args: vec![Val::Int(7)],
//!     mem,
//! };
//! let reply = run(&sem, &q, &mut |_q| None, 10_000).expect_complete();
//! assert_eq!(reply.retval, Val::Int(49));
//! # Ok(())
//! # }
//! ```

pub mod ast;
#[doc(hidden)]
pub mod fast;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod sem;
pub mod simpl_locals;
pub mod ty;
pub mod typecheck;

pub use ast::{
    Binop, CallDest, Expr, ExternDecl, Function, GlobalVar, Program, Stmt, TempId, Unop,
};
pub use link::{build_symtab, link, LinkError};
pub use parser::{parse, ParseError};
pub use sem::ClightSem;
pub use simpl_locals::simpl_locals;
pub use ty::Ty;
pub use typecheck::{typecheck, TypeError};
