//! Edge-case coverage for the Clight-mini semantics: control-flow corners,
//! 64-bit arithmetic, pointer discipline and undefined-behaviour detection.

use clight::{build_symtab, parse, simpl_locals, typecheck, ClightSem};
use compcerto_core::iface::{CQuery, CReply};
use compcerto_core::lts::{run, RunOutcome};
use mem::Val;

fn load(src: &str) -> (ClightSem, mem::Mem) {
    let p = typecheck(&parse(src).unwrap()).unwrap();
    let tbl = build_symtab(&[&p]).unwrap();
    let mem = tbl.build_init_mem().unwrap();
    (ClightSem::new(p, tbl), mem)
}

fn call(sem: &ClightSem, mem: &mem::Mem, f: &str, args: Vec<Val>) -> RunOutcome<CReply> {
    let q = CQuery {
        vf: sem.symtab().func_ptr(f).unwrap(),
        sig: sem.program().sig_of(f).unwrap(),
        args,
        mem: mem.clone(),
    };
    run(sem, &q, &mut |_q: &CQuery| None, 1_000_000)
}

#[test]
fn nested_loops_with_break_and_continue() {
    let src = "
        int f(int n) {
            int i; int j; int s;
            s = 0;
            i = 0;
            while (i < n) {
                j = 0;
                while (1) {
                    j = j + 1;
                    if (j > i) { break; }
                    if (j % 2 == 0) { continue; }
                    s = s + j;
                }
                i = i + 1;
            }
            return s;
        }";
    let (sem, mem) = load(src);
    // For each i: sum of odd j in 1..=i. n=5: i=1:1, i=2:1, i=3:1+3=4, i=4:4 → 1+1+4+4=10
    let r = call(&sem, &mem, "f", vec![Val::Int(5)]).expect_complete();
    assert_eq!(r.retval, Val::Int(10));
}

#[test]
fn long_arithmetic_and_mixed_widths() {
    let src = "
        long f(int a, long b) {
            long x;
            x = (long) a * b;
            x = x + 1L;
            x = x << 3;
            return x / 2L;
        }";
    let (sem, mem) = load(src);
    let r = call(&sem, &mem, "f", vec![Val::Int(1000), Val::Long(1_000_000)]).expect_complete();
    assert_eq!(r.retval, Val::Long((1_000_000_001i64 << 3) / 2));
}

#[test]
fn pointer_swap_through_memory() {
    let src = "
        void swap(int* p, int* q) {
            int t;
            t = *p;
            *p = *q;
            *q = t;
        }
        int f(int a, int b) {
            int x; int y;
            x = a; y = b;
            swap(&x, &y);
            return x * 100 + y;
        }";
    let (sem, mem) = load(src);
    let r = call(&sem, &mem, "f", vec![Val::Int(3), Val::Int(4)]).expect_complete();
    assert_eq!(r.retval, Val::Int(403));
}

#[test]
fn global_state_persists_across_calls_in_memory() {
    let src = "
        int counter = 100;
        int bump(void) { counter = counter + 1; return counter; }
        int f(void) {
            int a; int b; int c;
            a = bump(); b = bump(); c = bump();
            return a + b + c;
        }";
    let (sem, mem) = load(src);
    let r = call(&sem, &mem, "f", vec![]).expect_complete();
    assert_eq!(r.retval, Val::Int(101 + 102 + 103));
    // And the reply memory carries the final counter.
    let tbl = sem.symtab();
    let b = tbl.block_of("counter").unwrap();
    assert_eq!(r.mem.load(mem::Chunk::I32, b, 0), Ok(Val::Int(103)));
}

#[test]
fn writing_readonly_global_goes_wrong() {
    let src = "
        const int k = 5;
        int f(void) { k = 6; return k; }";
    let (sem, mem) = load(src);
    assert!(matches!(
        call(&sem, &mem, "f", vec![]),
        RunOutcome::Wrong { .. }
    ));
}

#[test]
fn uninitialized_local_branch_goes_wrong() {
    // Branching on an undefined value is undefined behaviour.
    let src = "int f(void) { int x; if (x > 0) { return 1; } return 0; }";
    let (sem, mem) = load(src);
    assert!(matches!(
        call(&sem, &mem, "f", vec![]),
        RunOutcome::Wrong { .. }
    ));
}

#[test]
fn dangling_pointer_dereference_goes_wrong() {
    // A pointer to a callee's local dangles after the callee returns.
    let src = "
        long leak(void) {
            int x;
            x = 5;
            return (long) &x;
        }
        int f(void) {
            long p;
            p = leak();
            return *((int*) p);
        }";
    let (sem, mem) = load(src);
    assert!(matches!(
        call(&sem, &mem, "f", vec![]),
        RunOutcome::Wrong { .. }
    ));
}

#[test]
fn void_functions_return_undef_silently() {
    let src = "
        int g = 0;
        void set(int v) { g = v; }
        int f(int v) { set(v * 2); return g; }";
    let (sem, mem) = load(src);
    let r = call(&sem, &mem, "f", vec![Val::Int(21)]).expect_complete();
    assert_eq!(r.retval, Val::Int(42));
}

#[test]
fn simpl_locals_preserves_all_of_the_above() {
    // Run the same scenarios through SimplLocals and compare results.
    for (src, f, args, expect) in [
        (
            "int f(int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) { s = s + i * i; } return s; }",
            "f",
            vec![Val::Int(6)],
            Val::Int(55),
        ),
        (
            "int f(int a, int b) { int x; int y; x = a; y = b; if (x > y) { return x - y; } return y - x; }",
            "f",
            vec![Val::Int(3), Val::Int(9)],
            Val::Int(6),
        ),
    ] {
        let p = typecheck(&parse(src).unwrap()).unwrap();
        let simplified = simpl_locals(&p);
        let tbl = build_symtab(&[&p]).unwrap();
        let mem = tbl.build_init_mem().unwrap();
        for prog in [p, simplified] {
            let sem = ClightSem::new(prog, tbl.clone());
            let r = call(&sem, &mem, f, args.clone()).expect_complete();
            assert_eq!(r.retval, expect, "source: {src}");
        }
    }
}
