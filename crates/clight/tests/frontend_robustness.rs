//! Robustness of the front end: whatever bytes arrive, `parse` and
//! `typecheck` return `Err` or `Ok` — they never panic. A verified-compiler
//! front end that aborts on bad input would undermine the whole "the
//! compiler is total on its domain" story, so this is checked on arbitrary
//! strings, on single-byte mutations of valid programs, and on truncations.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use clight::{parse, typecheck};
use proptest::prelude::*;

const VALID: &str = "
    extern int ping(int);
    int g;
    int entry(int a, int b) {
        int c; int r;
        c = a * b + 2;
        if (c > a) { g = c; } else { g = a - 1; }
        while (c > 0) { c = c - b; }
        r = ping(g);
        return r + c;
    }";

/// The full pipeline under test: never panics, errors are `Display`able.
fn feed(src: &str) {
    if let Ok(p) = parse(src) {
        match typecheck(&p) {
            Ok(tp) => {
                // A typechecked program survives SimplLocals too.
                let _ = clight::simpl_locals(&tp);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

proptest! {
    /// Arbitrary text never panics the front end.
    #[test]
    fn parser_is_total_on_arbitrary_text(src in ".{0,200}") {
        feed(&src);
    }

    /// Arbitrary *token-shaped* soup (identifiers, numbers, punctuation in
    /// plausible positions) never panics the front end.
    #[test]
    fn parser_is_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("int"), Just("long"), Just("extern"), Just("if"),
                Just("else"), Just("while"), Just("return"), Just("x"),
                Just("entry"), Just("("), Just(")"), Just("{"), Just("}"),
                Just(";"), Just(","), Just("="), Just("+"), Just("*"),
                Just("-"), Just("42"), Just("0"), Just("["), Just("]"),
                Just("&"), Just("<"), Just(">"),
            ],
            0..40,
        ),
    ) {
        feed(&words.join(" "));
    }

    /// Single-byte corruption of a valid program never panics the front end.
    #[test]
    fn parser_survives_single_byte_mutations(
        pos in 0usize..VALID.len(),
        byte in 0u8..128,
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes[pos] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            feed(&s);
        }
    }

    /// Every prefix of a valid program is handled (EOF in any production).
    #[test]
    fn parser_survives_truncation(len in 0usize..VALID.len()) {
        feed(&VALID[..len]);
    }
}

#[test]
fn valid_program_still_parses() {
    // Anchor: the generator baseline is accepted, so the mutation tests
    // above genuinely start from inside the language.
    let p = parse(VALID).expect("valid");
    typecheck(&p).expect("well-typed");
}

#[test]
fn error_messages_name_the_problem() {
    let err = parse("int f( {").unwrap_err().to_string();
    assert!(!err.is_empty());
    let p = parse("int f(int a) { return g; }").unwrap();
    let terr = typecheck(&p).unwrap_err().to_string();
    assert!(terr.contains('g'), "mentions the unknown name: {terr}");
}
