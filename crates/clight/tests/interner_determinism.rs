//! Interner determinism (DESIGN.md §13): `Sym` assignment is a pure
//! function of program order — the same program must intern to the same
//! dense ids on every build, on every thread, and under any worker-pool
//! width. (The compiler-level counterpart in
//! `compiler/tests/jobs_determinism.rs` pins the same property across
//! `--jobs 1/4/16` compilations.)

use std::thread;

use clight::fast;
use clight::{build_symtab, parse, typecheck, Program};

const SRC: &str = "
    int off(int g) { return g + 3; }
    int mult(int n, int p) { return n * p; }
    extern int helper(int);
    int entry(int a, int b) {
        int r;
        int t;
        r = mult(a, b);
        t = off(a);
        return r + t;
    }";

fn program() -> Program {
    typecheck(&parse(SRC).expect("parses")).expect("typechecks")
}

/// The observable interner state: every function and extern name with its
/// assigned `Sym` index, in program order.
fn sym_assignment(prog: &Program) -> Vec<(String, usize)> {
    let symtab = build_symtab(&[prog]).expect("symtab builds");
    let p = fast::prepare(prog, &symtab);
    prog.functions
        .iter()
        .map(|f| f.name.clone())
        .chain(prog.externs.iter().map(|e| e.name.clone()))
        .map(|name| {
            let sym = p.syms.lookup(&name).expect("every program name interns");
            (name, sym.index())
        })
        .collect()
}

#[test]
fn sym_ids_are_dense_and_insertion_ordered() {
    let prog = program();
    let got = sym_assignment(&prog);
    // Functions first (in definition order), then externs, densely from 0.
    let want: Vec<(String, usize)> = ["off", "mult", "entry", "helper"]
        .iter()
        .enumerate()
        .map(|(i, n)| ((*n).to_string(), i))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn sym_ids_are_identical_across_repeated_builds() {
    let reference = sym_assignment(&program());
    for _ in 0..4 {
        assert_eq!(sym_assignment(&program()), reference);
    }
}

#[test]
fn sym_ids_are_identical_across_thread_pools() {
    // The interner is thread-local state-free: building the same program
    // concurrently on 1, 4, or 16 workers must yield the same assignment.
    let reference = sym_assignment(&program());
    for workers in [1usize, 4, 16] {
        let handles: Vec<_> = (0..workers)
            .map(|_| thread::spawn(|| sym_assignment(&program())))
            .collect();
        for h in handles {
            let got = h.join().expect("worker completes");
            assert_eq!(got, reference, "assignment diverged at {workers} workers");
        }
    }
}
