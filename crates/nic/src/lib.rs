//! # The NIC heterogeneous-verification scenario (paper Fig. 7)
//!
//! The motivating example of the paper (Examples 1.1 and 3.10): a network
//! card and its driver treated as a unit, establishing a direct relationship
//! between C calls into the driver and network communication.
//!
//! * [`iface`] — the `Net` and `IO` language interfaces;
//! * [`device`] — the NIC model `σ_NIC : Net ↠ IO` and a loopback medium;
//! * [`io`] — the I/O primitives at the C level (`σ_io`) and the assembly
//!   level (`σ'_io`), with Eqn. (7) checkable between them;
//! * [`scenario`] — the assembled stacks of Fig. 7 and their simulation
//!   check.
//!
//! ```
//! use nic::{build, LoopbackNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sc = build()?;
//! let mut net = LoopbackNet::new(|frame| frame + 1000);
//! // client_main(21) = ping(42) + 1 = (42 + 1000) + 1
//! assert_eq!(sc.run_source(21, &mut net), 1043);
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod iface;
pub mod io;
pub mod scenario;

pub use device::{LoopbackNet, NicModel};
pub use iface::{Frame, Io, IoOp, IoReply, Net, NetOp, NetReply};
pub use io::{define_io_symbols, IoAtA, IoAtC};
pub use scenario::{build, expected, Scenario, CLIENT_SRC, DRIVER_SRC};
