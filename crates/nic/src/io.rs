//! Device I/O primitives at two abstraction levels (paper Example 3.10):
//!
//! * [`IoAtC`] is `σ_io : IO ↠ C` — the primitives as C functions
//!   (`nic_send`, `nic_recv`), the specification the *driver source* is
//!   verified against;
//! * [`IoAtA`] is `σ'_io : IO ↠ A` — the same primitives at the assembly
//!   interface, the specification the *compiled driver* links against.
//!
//! Paper Eqn. (7) — `σ_io ≤_{id↠C} σ'_io` — becomes a checkable statement:
//! the two components are related by the forward-simulation checker under
//! `id` on `IO` (outgoing) and the calling convention on `C`/`A` (incoming);
//! see `scenario::check_eqn7`.

use compcerto_core::iface::{abi, ARegs, CQuery, CReply, Signature, A, C};
use compcerto_core::lts::{Lts, Step, Stuck};
use compcerto_core::regs::Mreg;
use compcerto_core::symtab::{GlobKind, SymbolTable};
use mem::{Mem, Typ, Val};

use crate::iface::{Io, IoOp, IoReply};

/// Signature of `nic_send(long) -> long`.
pub fn sig_send() -> Signature {
    Signature::new(vec![Typ::I64], Some(Typ::I64))
}

/// Signature of `nic_recv() -> long`.
pub fn sig_recv() -> Signature {
    Signature::new(vec![], Some(Typ::I64))
}

/// Register the I/O primitives in a symbol table (idempotent).
pub fn define_io_symbols(tbl: &mut SymbolTable) {
    tbl.define("nic_send".into(), GlobKind::Func(sig_send()));
    tbl.define("nic_recv".into(), GlobKind::Func(sig_recv()));
}

/// `σ_io : IO ↠ C` — the device primitives as C functions.
#[derive(Debug, Clone)]
pub struct IoAtC {
    symtab: SymbolTable,
}

/// State of an I/O primitive activation at the C level.
#[derive(Debug, Clone)]
pub enum IoCState {
    /// About to issue the device transaction.
    Issue(IoOp, Mem),
    /// Waiting for the device.
    Waiting(IoOp, Mem),
    /// Returning the result.
    Done(i64, Mem),
}

impl IoAtC {
    /// Bind the primitives to a symbol table (must contain `nic_send`,
    /// `nic_recv`; see [`define_io_symbols`]).
    pub fn new(symtab: SymbolTable) -> IoAtC {
        IoAtC { symtab }
    }

    fn op_of(&self, q: &CQuery) -> Option<IoOp> {
        let Val::Ptr(b, 0) = q.vf else { return None };
        match self.symtab.ident_of(b)? {
            "nic_send" => match q.args.first() {
                Some(Val::Long(f)) => Some(IoOp::Send(*f)),
                _ => None,
            },
            "nic_recv" => Some(IoOp::Recv),
            _ => None,
        }
    }
}

impl Lts for IoAtC {
    type I = C;
    type O = Io;
    type State = IoCState;

    fn name(&self) -> String {
        "σ_io".into()
    }

    fn accepts(&self, q: &CQuery) -> bool {
        self.op_of(q).is_some()
    }

    fn initial(&self, q: &CQuery) -> Result<IoCState, Stuck> {
        match self.op_of(q) {
            Some(op) => Ok(IoCState::Issue(op, q.mem.clone())),
            None => Err(Stuck::new("σ_io: not an I/O primitive call")),
        }
    }

    fn step(&self, s: &IoCState) -> Step<IoCState, IoOp, CReply> {
        match s {
            IoCState::Issue(op, mem) => {
                Step::Internal(IoCState::Waiting(op.clone(), mem.clone()), vec![])
            }
            IoCState::Waiting(op, _) => Step::External(op.clone()),
            IoCState::Done(v, mem) => Step::Final(CReply {
                retval: Val::Long(*v),
                mem: mem.clone(),
            }),
        }
    }

    fn resume(&self, s: &IoCState, a: IoReply) -> Result<IoCState, Stuck> {
        match s {
            IoCState::Waiting(_, mem) => Ok(IoCState::Done(a.0, mem.clone())),
            _ => Err(Stuck::new("σ_io: resume in non-waiting state")),
        }
    }
}

/// `σ'_io : IO ↠ A` — the device primitives at the assembly interface:
/// arguments in ABI registers, result in the result register, control
/// returned through `ra` with `sp` and callee-save registers preserved.
#[derive(Debug, Clone)]
pub struct IoAtA {
    symtab: SymbolTable,
}

/// State of an I/O primitive activation at the assembly level.
#[derive(Debug, Clone)]
pub enum IoAState {
    /// About to issue the transaction (registers retained for the return).
    Issue(IoOp, ARegs),
    /// Waiting for the device.
    Waiting(IoOp, ARegs),
    /// Returning.
    Done(i64, ARegs),
}

impl IoAtA {
    /// Bind the primitives to a symbol table.
    pub fn new(symtab: SymbolTable) -> IoAtA {
        IoAtA { symtab }
    }

    fn op_of(&self, q: &ARegs) -> Option<IoOp> {
        let Val::Ptr(b, 0) = q.rs.pc else { return None };
        match self.symtab.ident_of(b)? {
            "nic_send" => match q.rs.get(abi::PARAM_REGS[0]) {
                Val::Long(f) => Some(IoOp::Send(f)),
                _ => None,
            },
            "nic_recv" => Some(IoOp::Recv),
            _ => None,
        }
    }
}

impl Lts for IoAtA {
    type I = A;
    type O = Io;
    type State = IoAState;

    fn name(&self) -> String {
        "σ'_io".into()
    }

    fn accepts(&self, q: &ARegs) -> bool {
        self.op_of(q).is_some()
    }

    fn initial(&self, q: &ARegs) -> Result<IoAState, Stuck> {
        match self.op_of(q) {
            Some(op) => Ok(IoAState::Issue(op, q.clone())),
            None => Err(Stuck::new("σ'_io: not an I/O primitive call")),
        }
    }

    fn step(&self, s: &IoAState) -> Step<IoAState, IoOp, ARegs> {
        match s {
            IoAState::Issue(op, q) => {
                Step::Internal(IoAState::Waiting(op.clone(), q.clone()), vec![])
            }
            IoAState::Waiting(op, _) => Step::External(op.clone()),
            IoAState::Done(v, q) => {
                // Return per the calling convention: result in the result
                // register, caller-save clobbered, control to `ra`.
                let mut rs = q.rs.clone();
                for r in Mreg::all() {
                    if !abi::is_callee_save(r) {
                        rs.set(r, Val::Undef);
                    }
                }
                rs.set(abi::RESULT_REG, Val::Long(*v));
                rs.pc = q.rs.ra;
                Step::Final(ARegs {
                    rs,
                    mem: q.mem.clone(),
                })
            }
        }
    }

    fn resume(&self, s: &IoAState, a: IoReply) -> Result<IoAState, Stuck> {
        match s {
            IoAState::Waiting(_, q) => Ok(IoAState::Done(a.0, q.clone())),
            _ => Err(Stuck::new("σ'_io: resume in non-waiting state")),
        }
    }
}
