//! The full heterogeneous scenario of paper Fig. 7.
//!
//! A driver written in Clight-mini is compiled by the CompCertO-rs pipeline
//! and layered over the I/O primitives and the NIC model with sequential
//! composition `∘` (paper §3.5):
//!
//! ```text
//!   source:  Clight(client) ⊕ Clight(driver)  ∘  σ_io   ∘ σ_NIC : Net ↠ C
//!   target:  Asm(client' + driver')           ∘  σ'_io  ∘ σ_NIC : Net ↠ A
//! ```
//!
//! [`Scenario::check_fig7`] verifies the bottom line of Fig. 7 on concrete runs: the
//! two stacks are related by the calling convention on the C/A side and by
//! the identity on the Net side, with the network medium as the environment.

use compcerto_core::cc::Ca;
use compcerto_core::conv::IdConv;
use compcerto_core::hcomp::HComp;
use compcerto_core::iface::CQuery;
use compcerto_core::lts::run;
use compcerto_core::seqcomp::SeqComp;
use compcerto_core::sim::{check_fwd_sim_env, EnvMode, SimCheckError, SimCheckReport};
use compcerto_core::symtab::SymbolTable;
use compiler::{compile_all, CompileError, CompilerOptions};
use mem::Val;

use crate::device::{LoopbackNet, NicModel};
use crate::iface::{Net, NetOp};
use crate::io::{IoAtA, IoAtC};

/// The driver translation unit: `ping` transmits a frame and waits for the
/// network's response (paper Example 1.1's "direct relationship between C
/// calls into the driver and network communication").
pub const DRIVER_SRC: &str = "
    extern long nic_send(long);
    extern long nic_recv();

    long ping(long payload) {
        long st; long r;
        st = nic_send(payload);
        if ((int) st != 0) { return -2L; }
        r = nic_recv();
        return r;
    }
";

/// A client translation unit using the driver.
pub const CLIENT_SRC: &str = "
    extern long ping(long);

    long client_main(long x) {
        long r;
        r = ping(x * 2L);
        return r + 1L;
    }
";

/// The compiled scenario: both units, their shared symbol table, and the
/// component semantics at both levels.
pub struct Scenario {
    /// Compiled client (unit 0) and driver (unit 1).
    pub units: Vec<compiler::CompiledUnit>,
    /// Shared symbol table (includes the I/O primitive symbols).
    pub symtab: SymbolTable,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario").finish()
    }
}

/// Build (compile) the scenario.
///
/// # Errors
/// Propagates compilation errors.
pub fn build() -> Result<Scenario, CompileError> {
    let (units, symtab) = compile_all(&[CLIENT_SRC, DRIVER_SRC], CompilerOptions::default())?;
    // `nic_send`/`nic_recv` were claimed as externals by `build_symtab`
    // already; nothing further to define.
    Ok(Scenario { units, symtab })
}

impl Scenario {
    /// The C-level query `client_main(x)`.
    pub fn query(&self, x: i64) -> CQuery {
        compiler::c_query(
            &self.symtab,
            &self.units[0],
            "client_main",
            vec![Val::Long(x)],
        )
    }

    /// The source stack `(Clight(client) ⊕ Clight(driver)) ∘ σ_io ∘ σ_NIC`.
    pub fn source_stack(
        &self,
    ) -> SeqComp<SeqComp<HComp<clight::ClightSem, clight::ClightSem>, IoAtC>, NicModel> {
        let c_components = HComp::new(
            self.units[0]
                .clight_sem(&self.symtab)
                .with_label("Clight(client)"),
            self.units[1]
                .clight_sem(&self.symtab)
                .with_label("Clight(driver)"),
        );
        SeqComp::new(
            SeqComp::new(c_components, IoAtC::new(self.symtab.clone())),
            NicModel,
        )
    }

    /// The target stack `Asm(client' + driver') ∘ σ'_io ∘ σ_NIC`.
    ///
    /// # Panics
    /// Panics if the two compiled units do not link (cannot happen for the
    /// built-in sources).
    pub fn target_stack(&self) -> SeqComp<SeqComp<backend::AsmSem, IoAtA>, NicModel> {
        let linked = backend::link_asm(&self.units[0].asm, &self.units[1].asm)
            .expect("client and driver link");
        SeqComp::new(
            SeqComp::new(
                backend::AsmSem::new(linked, self.symtab.clone()),
                IoAtA::new(self.symtab.clone()),
            ),
            NicModel,
        )
    }

    /// Run the *source* stack on `client_main(x)` against a network medium,
    /// reporting budget exhaustion or a stuck run as an error string.
    ///
    /// # Errors
    /// When the run goes wrong, runs out of fuel, or yields a non-`Long`
    /// result.
    pub fn try_run_source(&self, x: i64, net: &mut LoopbackNet) -> Result<i64, String> {
        let stack = self.source_stack();
        let out = run(
            &stack,
            &self.query(x),
            &mut |op: &NetOp| Some(net.answer(op)),
            1_000_000,
        );
        match out.into_answer().map_err(|e| e.to_string())?.retval {
            Val::Long(v) => Ok(v),
            other => Err(format!("unexpected result {other}")),
        }
    }

    /// Run the *source* stack on `client_main(x)` against a network medium.
    ///
    /// # Panics
    /// Panics when the run does not complete (demo/test usage; library code
    /// goes through [`Scenario::try_run_source`]).
    pub fn run_source(&self, x: i64, net: &mut LoopbackNet) -> i64 {
        match self.try_run_source(x, net) {
            Ok(v) => v,
            Err(e) => panic!("run_source: {e}"),
        }
    }

    /// Check the Fig. 7 bottom line on one run: the source and target stacks
    /// are related at `C` (incoming) and `id_Net` (outgoing).
    ///
    /// # Errors
    /// Reports the violated simulation edge.
    pub fn check_fig7(
        &self,
        x: i64,
        transform: fn(i64) -> i64,
    ) -> Result<SimCheckReport, SimCheckError> {
        let source = self.source_stack();
        let target = self.target_stack();
        let ca = Ca::new(self.symtab.len() as u32);
        // The medium is shared state: in dual mode each side gets its own
        // copy (the checker verifies the replies are identical, which for
        // `id_Net` forces the two media to behave identically — they do,
        // being deterministic with the same seed).
        let mut net1 = LoopbackNet::new(transform);
        let mut net2 = LoopbackNet::new(transform);
        let mut env1 = |op: &NetOp| Some(net1.answer(op));
        let mut env2 = |op: &NetOp| Some(net2.answer(op));
        check_fwd_sim_env(
            &source,
            &target,
            &IdConv::<Net>::new(),
            &ca,
            &self.query(x),
            EnvMode::Dual(&mut env1, &mut env2),
            1_000_000,
        )
    }

    /// Check paper Eqn. (7): `σ_io ≤_{id↠C} σ'_io` on one transaction.
    ///
    /// # Errors
    /// Reports the violated simulation edge.
    pub fn check_eqn7(&self, frame: i64) -> Result<SimCheckReport, SimCheckError> {
        let src = IoAtC::new(self.symtab.clone());
        let tgt = IoAtA::new(self.symtab.clone());
        let ca = Ca::new(self.symtab.len() as u32);
        let q = CQuery {
            vf: self.symtab.func_ptr("nic_send").expect("primitive defined"),
            sig: crate::io::sig_send(),
            args: vec![Val::Long(frame)],
            mem: self.symtab.build_init_mem().expect("initial memory"),
        };
        let mut dev1 = |op: &crate::iface::IoOp| {
            Some(crate::iface::IoReply(match op {
                crate::iface::IoOp::Send(_) => 0,
                crate::iface::IoOp::Recv => 9,
            }))
        };
        let mut dev2 = |op: &crate::iface::IoOp| {
            Some(crate::iface::IoReply(match op {
                crate::iface::IoOp::Send(_) => 0,
                crate::iface::IoOp::Recv => 9,
            }))
        };
        check_fwd_sim_env(
            &src,
            &tgt,
            &IdConv::<crate::iface::Io>::new(),
            &ca,
            &q,
            EnvMode::Dual(&mut dev1, &mut dev2),
            10_000,
        )
    }
}

/// Convenience: the expected result of `client_main(x)` over a loopback
/// medium applying `transform`: `transform(2x) + 1`.
pub fn expected(x: i64, transform: fn(i64) -> i64) -> i64 {
    transform(2 * x) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::NetReply;
    use compcerto_core::lts::RunOutcome;

    fn bump(f: i64) -> i64 {
        f + 1000
    }

    #[test]
    fn source_stack_runs_end_to_end() {
        let sc = build().unwrap();
        let mut net = LoopbackNet::new(bump);
        assert_eq!(sc.run_source(21, &mut net), expected(21, bump));
    }

    #[test]
    fn fig7_simulation_holds() {
        let sc = build().unwrap();
        for x in [0, 5, -3, 40] {
            let report = sc.check_fig7(x, bump).expect("Fig. 7 holds");
            // ping = one send + one recv on the wire.
            assert_eq!(report.external_calls, 2, "x = {x}");
        }
    }

    #[test]
    fn eqn7_io_primitives_related() {
        let sc = build().unwrap();
        sc.check_eqn7(7).expect("Eqn. (7) holds");
    }

    #[test]
    fn nic_goes_wrong_on_protocol_violation() {
        // A medium that answers Poll to a Transmit breaks the NIC.
        let sc = build().unwrap();
        let stack = sc.source_stack();
        let out = run(
            &stack,
            &sc.query(1),
            &mut |_op: &NetOp| Some(NetReply::Delivered(None)),
            100_000,
        );
        assert!(matches!(out, RunOutcome::Wrong { .. }));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn driver_surfaces_device_errors() {
        // A medium that rejects transmission: σ_NIC goes wrong (protocol
        // violation), because `Sent` is the only legal reply to Transmit.
        let sc = build().unwrap();
        let stack = sc.source_stack();
        let out = run(
            &stack,
            &sc.query(5),
            &mut |op: &NetOp| match op {
                NetOp::Transmit(_) => Some(crate::iface::NetReply::Delivered(None)),
                NetOp::Poll => Some(crate::iface::NetReply::Delivered(None)),
            },
            100_000,
        );
        assert!(matches!(out, compcerto_core::lts::RunOutcome::Wrong { .. }));
    }

    #[test]
    fn empty_network_returns_sentinel() {
        // A medium that swallows frames: recv yields -1, so client_main
        // returns 0.
        let sc = build().unwrap();
        let stack = sc.source_stack();
        let out = run(
            &stack,
            &sc.query(5),
            &mut |op: &NetOp| match op {
                NetOp::Transmit(_) => Some(crate::iface::NetReply::Sent),
                NetOp::Poll => Some(crate::iface::NetReply::Delivered(None)),
            },
            100_000,
        );
        assert_eq!(out.expect_complete().retval, Val::Long(0)); // -1 + 1
    }

    #[test]
    fn repeated_pings_reuse_the_stack() {
        // Several independent activations against one evolving medium.
        let sc = build().unwrap();
        let mut net = LoopbackNet::new(|f| f + 10);
        for x in 1..5 {
            assert_eq!(sc.run_source(x, &mut net), 2 * x + 10 + 1);
        }
    }

    #[test]
    fn fig7_detects_sabotaged_driver() {
        // Corrupt the compiled driver: the Fig. 7 check must fail.
        let mut sc = build().unwrap();
        let driver_asm = sc
            .units
            .iter_mut()
            .flat_map(|u| u.asm.functions.iter_mut())
            .find(|f| f.name == "ping")
            .expect("driver function");
        // Double the payload register at entry (after the prologue).
        driver_asm.code.insert(
            2,
            backend::AsmInst::BinopImm(
                minor::MBinop::Add64,
                compcerto_core::regs::Mreg(0),
                compcerto_core::regs::Mreg(0),
                Val::Long(1),
            ),
        );
        let err = sc.check_fig7(5, |f| f).unwrap_err();
        // The corruption shows up at the wire (different frame transmitted)
        // or at the final answer.
        let msg = err.to_string();
        assert!(
            msg.contains("not related") || msg.contains("mismatch"),
            "unexpected error: {msg}"
        );
    }
}
