//! The `Net` and `IO` language interfaces of the NIC scenario
//! (paper Examples 1.1 and 3.10).
//!
//! These interfaces live *outside* the C world: `Net` models the flow of
//! ethernet frames at the network adapter, `IO` models the device's
//! transaction interface to the CPU. Neither carries a memory state — the
//! point of the scenario is precisely that the details of the NIC/driver
//! interaction should not leak into large-scale reasoning (paper §1.2).
//!
//! Simplification (DESIGN.md §1): real MMIO exposes individual register
//! accesses whose device state persists across accesses; our activation-based
//! LTSs are per-question, so `IO` exposes whole *transactions* (`Send`,
//! `Recv`), and the register-level choreography (latch TX, pulse CTRL, read
//! STATUS/RX) happens inside one NIC activation.

use compcerto_core::iface::LanguageInterface;

/// A network frame (payload simplified to a 64-bit value).
pub type Frame = i64;

/// The network interface `Net`: questions are operations the adapter
/// performs on the medium; answers are the medium's responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Net;

/// Operations on the network medium.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetOp {
    /// Put a frame on the wire.
    Transmit(Frame),
    /// Ask the medium for a pending incoming frame.
    Poll,
}

/// Responses from the network medium.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetReply {
    /// Transmission accepted.
    Sent,
    /// Poll result: a frame, or nothing pending.
    Delivered(Option<Frame>),
}

impl LanguageInterface for Net {
    type Question = NetOp;
    type Answer = NetReply;
    const NAME: &'static str = "Net";
}

/// The device I/O interface `IO`: CPU-side transactions on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Io;

/// Device transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    /// Transmit a frame (returns 0 on success).
    Send(Frame),
    /// Receive a pending frame (returns the frame, or -1 when none).
    Recv,
}

/// Result of a device transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoReply(pub i64);

impl LanguageInterface for Io {
    type Question = IoOp;
    type Answer = IoReply;
    const NAME: &'static str = "IO";
}
