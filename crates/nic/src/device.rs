//! The NIC device model `σ_NIC : Net ↠ IO` (paper Example 3.10).
//!
//! Each IO transaction runs the device's internal register choreography:
//! `Send` latches the TX register and pulses CTRL, which puts the frame on
//! the medium (an outgoing `Net` question); `Recv` polls the medium and
//! reads the RX register.

use compcerto_core::lts::{Lts, Step, Stuck};

use crate::iface::{Io, IoOp, IoReply, Net, NetOp, NetReply};

/// The NIC model: an open LTS over `Net ↠ IO`.
#[derive(Debug, Clone, Default)]
pub struct NicModel;

/// Phases of a device transaction.
#[derive(Debug, Clone)]
pub enum NicState {
    /// `Send`: the frame has been latched into the TX register.
    TxLatched(i64),
    /// `Send`: CTRL pulsed; waiting for the medium to accept the frame.
    TxWaiting(i64),
    /// `Recv`: waiting for the medium's poll response.
    RxWaiting,
    /// Transaction complete with a result in the RX/status register.
    Done(i64),
}

impl Lts for NicModel {
    type I = Io;
    type O = Net;
    type State = NicState;

    fn name(&self) -> String {
        "σ_NIC".into()
    }

    fn accepts(&self, _q: &IoOp) -> bool {
        true
    }

    fn initial(&self, q: &IoOp) -> Result<NicState, Stuck> {
        Ok(match q {
            IoOp::Send(f) => NicState::TxLatched(*f),
            IoOp::Recv => NicState::RxWaiting,
        })
    }

    fn step(&self, s: &NicState) -> Step<NicState, NetOp, IoReply> {
        match s {
            // Pulse CTRL: the frame goes on the wire.
            NicState::TxLatched(f) => Step::Internal(NicState::TxWaiting(*f), vec![]),
            NicState::TxWaiting(f) => Step::External(NetOp::Transmit(*f)),
            NicState::RxWaiting => Step::External(NetOp::Poll),
            NicState::Done(v) => Step::Final(IoReply(*v)),
        }
    }

    fn resume(&self, s: &NicState, a: NetReply) -> Result<NicState, Stuck> {
        match (s, a) {
            (NicState::TxWaiting(_), NetReply::Sent) => Ok(NicState::Done(0)),
            (NicState::RxWaiting, NetReply::Delivered(f)) => Ok(NicState::Done(f.unwrap_or(-1))),
            (s, a) => Err(Stuck::new(format!(
                "NIC: unexpected medium reply {a:?} in state {s:?}"
            ))),
        }
    }
}

/// A simple network medium for tests and demos: a loopback that answers
/// `Poll` with the most recently transmitted frame, transformed by `f`.
#[derive(Debug, Clone)]
pub struct LoopbackNet {
    last: Option<i64>,
    transform: fn(i64) -> i64,
}

impl LoopbackNet {
    /// A loopback applying `transform` to echoed frames.
    pub fn new(transform: fn(i64) -> i64) -> LoopbackNet {
        LoopbackNet {
            last: None,
            transform,
        }
    }

    /// Answer a medium operation.
    pub fn answer(&mut self, op: &NetOp) -> NetReply {
        match op {
            NetOp::Transmit(f) => {
                self.last = Some((self.transform)(*f));
                NetReply::Sent
            }
            NetOp::Poll => NetReply::Delivered(self.last.take()),
        }
    }
}
