//! The `RTLgen` pass: build a control-flow graph from CminorSel's structured
//! statements (paper Table 3, convention `ext ↠ ext`).

use std::collections::BTreeMap;

use minor::cminorsel::{SelExpr, SelFunction, SelProgram, SelStmt};
use minor::{GStmt, StructLang, TempId};

use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};

/// Lower a CminorSel program to RTL.
pub fn rtlgen(prog: &SelProgram) -> RtlProgram {
    RtlProgram {
        functions: prog
            .functions
            .iter()
            .map(|f| gen_function(prog, f))
            .collect(),
        externs: prog.externs.clone(),
    }
}

struct Builder<'p> {
    prog: &'p SelProgram,
    code: BTreeMap<Node, Inst>,
    next_node: Node,
    next_reg: PReg,
    temp_regs: BTreeMap<TempId, PReg>,
}

impl Builder<'_> {
    fn add(&mut self, inst: Inst) -> Node {
        let n = self.next_node;
        self.next_node += 1;
        self.code.insert(n, inst);
        n
    }

    fn reserve(&mut self) -> Node {
        let n = self.next_node;
        self.next_node += 1;
        n
    }

    fn set(&mut self, n: Node, inst: Inst) {
        self.code.insert(n, inst);
    }

    fn fresh(&mut self) -> PReg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn temp_reg(&mut self, t: TempId) -> PReg {
        if let Some(r) = self.temp_regs.get(&t) {
            return *r;
        }
        let r = self.fresh();
        self.temp_regs.insert(t, r);
        r
    }

    /// Emit code evaluating `e` into `dst`, continuing at `next`; returns the
    /// entry node of the emitted code.
    fn expr(&mut self, e: &SelExpr, dst: PReg, next: Node) -> Node {
        match e {
            SelExpr::ConstInt(n) => self.add(Inst::Op(RtlOp::Int(*n), dst, next)),
            SelExpr::ConstLong(n) => self.add(Inst::Op(RtlOp::Long(*n), dst, next)),
            SelExpr::Temp(t) => {
                let r = self.temp_reg(*t);
                self.add(Inst::Op(RtlOp::Move(r), dst, next))
            }
            SelExpr::AddrStack(o) => self.add(Inst::Op(RtlOp::AddrStack(*o), dst, next)),
            SelExpr::AddrGlobal(s, d) => {
                self.add(Inst::Op(RtlOp::AddrGlobal(s.clone(), *d), dst, next))
            }
            SelExpr::Load(chunk, base, disp) => {
                let rb = self.fresh();
                let load = self.add(Inst::Load(*chunk, rb, *disp, dst, next));
                self.expr(base, rb, load)
            }
            SelExpr::Unop(op, a) => {
                let ra = self.fresh();
                let opn = self.add(Inst::Op(RtlOp::Unop(*op, ra), dst, next));
                self.expr(a, ra, opn)
            }
            SelExpr::Binop(op, a, b) => {
                let ra = self.fresh();
                let rb = self.fresh();
                let opn = self.add(Inst::Op(RtlOp::Binop(*op, ra, rb), dst, next));
                let nb = self.expr(b, rb, opn);
                self.expr(a, ra, nb)
            }
            SelExpr::BinopImm(op, a, imm) => {
                let ra = self.fresh();
                let opn = self.add(Inst::Op(RtlOp::BinopImm(*op, ra, *imm), dst, next));
                self.expr(a, ra, opn)
            }
        }
    }

    /// Emit code for `s` continuing at `next`; `brk`/`cont` are the targets
    /// of `break`/`continue` when inside a loop.
    fn stmt(&mut self, s: &SelStmt, next: Node, brk: Option<Node>, cont: Option<Node>) -> Node {
        match s {
            GStmt::Skip => next,
            GStmt::Set(t, e) => {
                let dst = self.temp_reg(*t);
                self.expr(e, dst, next)
            }
            GStmt::Store(chunk, addr, value) => {
                let ra = self.fresh();
                let rv = self.fresh();
                let st = self.add(Inst::Store(*chunk, ra, 0, rv, next));
                let nv = self.expr(value, rv, st);
                self.expr(addr, ra, nv)
            }
            GStmt::Call(dest, f, args) => {
                let arg_regs: Vec<PReg> = args.iter().map(|_| self.fresh()).collect();
                let dst = dest.map(|t| self.temp_reg(t));
                let sig = self
                    .prog
                    .sig_of(f)
                    .unwrap_or_else(|| compcerto_core::iface::Signature::int_fn(args.len()));
                let call = self.add(Inst::Call(sig, f.clone(), arg_regs.clone(), dst, next));
                // Evaluate arguments left-to-right: chain backwards.
                let mut entry = call;
                for (a, r) in args.iter().zip(arg_regs).rev() {
                    entry = self.expr(a, r, entry);
                }
                entry
            }
            GStmt::Seq(a, b) => {
                let nb = self.stmt(b, next, brk, cont);
                self.stmt(a, nb, brk, cont)
            }
            GStmt::If(c, a, b) => {
                let na = self.stmt(a, next, brk, cont);
                let nb = self.stmt(b, next, brk, cont);
                let rc = self.fresh();
                let cond = self.add(Inst::Cond(rc, na, nb));
                self.expr(c, rc, cond)
            }
            GStmt::While(c, body) => {
                let head = self.reserve();
                let nb = self.stmt(body, head, Some(next), Some(head));
                let rc = self.fresh();
                let cond = self.add(Inst::Cond(rc, nb, next));
                let test_entry = self.expr(c, rc, cond);
                self.set(head, Inst::Nop(test_entry));
                head
            }
            GStmt::Break => brk.unwrap_or(next),
            GStmt::Continue => cont.unwrap_or(next),
            GStmt::Return(Some(e)) => {
                let r = self.fresh();
                let ret = self.add(Inst::Return(Some(r)));
                self.expr(e, r, ret)
            }
            GStmt::Return(None) => self.add(Inst::Return(None)),
        }
    }
}

fn gen_function(prog: &SelProgram, f: &SelFunction) -> RtlFunction {
    let mut b = Builder {
        prog,
        code: BTreeMap::new(),
        next_node: 0,
        next_reg: 0,
        temp_regs: BTreeMap::new(),
    };
    // Fix parameter registers first so they are dense and in order.
    let params: Vec<PReg> = f.params.iter().map(|t| b.temp_reg(*t)).collect();
    // Falling off the end returns undef.
    let fallthrough = b.add(Inst::Return(match f.sig.ret {
        Some(_) => None,
        None => None,
    }));
    let entry = b.stmt(&f.body, fallthrough, None, None);
    RtlFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        params,
        stack_size: f.stack_size,
        entry,
        code: b.code,
        next_reg: b.next_reg,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::sem::RtlSem;
    use clight::{build_symtab, parse, simpl_locals, typecheck};
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use compcerto_core::symtab::SymbolTable;
    use mem::{extends, Val};
    use minor::{cminorgen, cshmgen, selection, CminorSelSem};

    pub(crate) fn front_end(src: &str) -> (minor::SelProgram, RtlProgram, SymbolTable) {
        let p = simpl_locals(&typecheck(&parse(src).unwrap()).unwrap());
        let sel = selection(&cminorgen(&cshmgen(&p).unwrap()).unwrap());
        let r = rtlgen(&sel);
        let tbl = build_symtab(&[&p]).unwrap();
        (sel, r, tbl)
    }

    /// Differential check against CminorSel under `ext ↠ ext`.
    fn differential(src: &str, fname: &str, args: Vec<Val>) -> CReply {
        let (sel, r, tbl) = front_end(src);
        let mem = tbl.build_init_mem().unwrap();
        let sig = r.function(fname).unwrap().sig.clone();
        let q = CQuery {
            vf: tbl.func_ptr(fname).unwrap(),
            sig,
            args,
            mem,
        };
        let s1 = CminorSelSem::new(sel, tbl.clone());
        let s2 = RtlSem::new(r, tbl);
        let env = |eq: &CQuery| {
            Some(CReply {
                retval: eq.args.first().copied().unwrap_or(Val::Int(0)),
                mem: eq.mem.clone(),
            })
        };
        let r1 = run(&s1, &q, &mut env.clone(), 1_000_000).expect_complete();
        let r2 = run(&s2, &q, &mut env.clone(), 1_000_000).expect_complete();
        assert!(
            r1.retval.lessdef(&r2.retval),
            "retval not refined: {} vs {}",
            r1.retval,
            r2.retval
        );
        assert!(extends(&r1.mem, &r2.mem), "memory not extended");
        r2
    }

    #[test]
    fn straightline() {
        let r = differential(
            "int f(int a, int b) { return a * b + 2; }",
            "f",
            vec![Val::Int(6), Val::Int(7)],
        );
        assert_eq!(r.retval, Val::Int(44));
    }

    #[test]
    fn loops_with_break() {
        let src = "
            int firstdiv(int n) {
                int d;
                d = 2;
                while (1) {
                    if (n % d == 0) { break; }
                    d = d + 1;
                }
                return d;
            }";
        let r = differential(src, "firstdiv", vec![Val::Int(49)]);
        assert_eq!(r.retval, Val::Int(7));
    }

    #[test]
    fn nested_control_flow() {
        let src = "
            int collatz(int n) {
                int steps;
                steps = 0;
                while (n != 1) {
                    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                    steps = steps + 1;
                }
                return steps;
            }";
        let r = differential(src, "collatz", vec![Val::Int(27)]);
        assert_eq!(r.retval, Val::Int(111));
    }

    #[test]
    fn memory_traffic() {
        let src = "
            long buf[8];
            long sum(int n) {
                int i; long s;
                for (i = 0; i < n; i = i + 1) { buf[i] = (long) (i * 2); }
                s = 0L;
                for (i = 0; i < n; i = i + 1) { s = s + buf[i]; }
                return s;
            }";
        let r = differential(src, "sum", vec![Val::Int(8)]);
        assert_eq!(r.retval, Val::Long(56));
    }

    #[test]
    fn calls_internal_and_external() {
        let src = "
            extern int mystery(int);
            int helper(int x) { return x + 100; }
            int f(int x) {
                int a; int b;
                a = helper(x);
                b = mystery(a);
                return a + b;
            }";
        let r = differential(src, "f", vec![Val::Int(1)]);
        assert_eq!(r.retval, Val::Int(202));
    }

    #[test]
    fn recursion() {
        let src = "
            int fib(int n) {
                int a; int b;
                if (n < 2) { return n; }
                a = fib(n - 1);
                b = fib(n - 2);
                return a + b;
            }";
        let r = differential(src, "fib", vec![Val::Int(12)]);
        assert_eq!(r.retval, Val::Int(144));
    }
}
