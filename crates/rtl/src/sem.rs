//! Open semantics of RTL: an LTS over `C ↠ C` (paper §3.2, Thm. 4.3 lists
//! RTL among the languages parametric in CKLRs).

use std::collections::BTreeMap;

use compcerto_core::iface::{CQuery, CReply, C};
use compcerto_core::lts::{Batch, Event, Lts, Step, Stuck};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Mem, Val};

use crate::fast;
use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};

/// The open semantics `RTL(p) : C ↠ C`.
#[derive(Debug, Clone)]
pub struct RtlSem {
    prog: RtlProgram,
    symtab: SymbolTable,
    pub(crate) label: String,
    /// Prepared arena form driving [`Lts::step_batch`] (see `fast`).
    pub(crate) fast: fast::PProg,
}

/// An RTL activation.
#[derive(Debug, Clone)]
pub struct RtlFrame {
    pub(crate) fname: Ident,
    pub(crate) pc: Node,
    pub(crate) regs: BTreeMap<PReg, Val>,
    pub(crate) sp: BlockId,
}

impl RtlFrame {
    /// The function this activation executes.
    #[must_use]
    pub fn fname(&self) -> &Ident {
        &self.fname
    }

    /// The node about to execute.
    #[must_use]
    pub fn pc(&self) -> Node {
        self.pc
    }

    /// The register file (a missing register reads as `Undef`).
    #[must_use]
    pub fn regs(&self) -> &BTreeMap<PReg, Val> {
        &self.regs
    }

    /// The activation's stack block.
    #[must_use]
    pub fn sp(&self) -> BlockId {
        self.sp
    }
}

/// States of the RTL LTS.
#[derive(Debug, Clone)]
pub enum RtlState {
    /// Entering an internal function.
    Call {
        /// Callee.
        fname: Ident,
        /// Arguments.
        args: Vec<Val>,
        /// Memory.
        mem: Mem,
        /// Suspended callers (innermost last).
        stack: Vec<RtlFrame>,
    },
    /// Executing instructions.
    Exec {
        /// Active frame.
        cur: RtlFrame,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<RtlFrame>,
    },
    /// Suspended on an external call.
    External {
        /// Outgoing question.
        q: CQuery,
        /// Active frame (its `pc` still points at the call).
        cur: RtlFrame,
        /// Suspended callers.
        stack: Vec<RtlFrame>,
    },
    /// Returning `v` to the innermost suspended caller (or the environment).
    Ret {
        /// Value.
        v: Val,
        /// Memory.
        mem: Mem,
        /// Suspended callers.
        stack: Vec<RtlFrame>,
    },
}

impl RtlSem {
    /// Wrap an RTL program and the shared symbol table.
    pub fn new(prog: RtlProgram, symtab: SymbolTable) -> RtlSem {
        let fast = fast::prepare(&prog, &symtab);
        RtlSem {
            prog,
            symtab,
            label: "RTL".into(),
            fast,
        }
    }

    /// Override the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> RtlSem {
        self.label = label.into();
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &RtlProgram {
        &self.prog
    }

    /// The shared symbol table.
    pub fn symtab(&self) -> &SymbolTable {
        &self.symtab
    }

    fn stuck<T>(&self, msg: impl Into<String>) -> Result<T, Stuck> {
        Err(Stuck::new(format!("{}: {}", self.label, msg.into())))
    }

    fn reg(&self, frame: &RtlFrame, r: PReg) -> Val {
        frame.regs.get(&r).copied().unwrap_or(Val::Undef)
    }

    fn eval_op(&self, frame: &RtlFrame, op: &RtlOp) -> Result<Val, Stuck> {
        Ok(match op {
            RtlOp::Move(r) => self.reg(frame, *r),
            RtlOp::Int(n) => Val::Int(*n),
            RtlOp::Long(n) => Val::Long(*n),
            RtlOp::AddrGlobal(s, d) => match self.symtab.block_of(s) {
                Some(b) => Val::Ptr(b, *d),
                None => return self.stuck(format!("unknown symbol `{s}`")),
            },
            RtlOp::AddrStack(o) => Val::Ptr(frame.sp, *o),
            RtlOp::Unop(op, r) => op.eval(self.reg(frame, *r)),
            RtlOp::Binop(op, a, b) => op.eval(self.reg(frame, *a), self.reg(frame, *b)),
            RtlOp::BinopImm(op, a, i) => op.eval(self.reg(frame, *a), *i),
        })
    }

    fn exec_inst(
        &self,
        f: &RtlFunction,
        cur: &RtlFrame,
        mem: &Mem,
        stack: &[RtlFrame],
    ) -> Result<RtlState, Stuck> {
        let Some(inst) = f.code.get(&cur.pc) else {
            return self.stuck(format!("no instruction at {}:{}", cur.fname, cur.pc));
        };
        let goto = |frame: &RtlFrame, pc: Node, mem: Mem| RtlState::Exec {
            cur: RtlFrame {
                pc,
                ..frame.clone()
            },
            mem,
            stack: stack.to_vec(),
        };
        match inst {
            Inst::Nop(n) => Ok(goto(cur, *n, mem.clone())),
            Inst::Op(op, dst, n) => {
                let v = self.eval_op(cur, op)?;
                let mut frame = cur.clone();
                frame.regs.insert(*dst, v);
                frame.pc = *n;
                Ok(RtlState::Exec {
                    cur: frame,
                    mem: mem.clone(),
                    stack: stack.to_vec(),
                })
            }
            Inst::Load(chunk, base, disp, dst, n) => {
                let addr = self.reg(cur, *base).add(Val::Long(*disp));
                let v = match mem.loadv(*chunk, addr) {
                    Ok(v) => v,
                    Err(e) => return self.stuck(format!("load failed: {e}")),
                };
                let mut frame = cur.clone();
                frame.regs.insert(*dst, v);
                frame.pc = *n;
                Ok(RtlState::Exec {
                    cur: frame,
                    mem: mem.clone(),
                    stack: stack.to_vec(),
                })
            }
            Inst::Store(chunk, base, disp, src, n) => {
                let addr = self.reg(cur, *base).add(Val::Long(*disp));
                let mut mem = mem.clone();
                if let Err(e) = mem.storev(*chunk, addr, self.reg(cur, *src)) {
                    return self.stuck(format!("store failed: {e}"));
                }
                Ok(goto(cur, *n, mem))
            }
            Inst::Cond(r, t, e) => match self.reg(cur, *r).truth() {
                Some(b) => Ok(goto(cur, if b { *t } else { *e }, mem.clone())),
                None => self.stuck("undefined branch condition"),
            },
            Inst::Call(sig, callee, args, _, _) => {
                let vals: Vec<Val> = args.iter().map(|r| self.reg(cur, *r)).collect();
                if self.prog.function(callee).is_some() {
                    let mut stack = stack.to_vec();
                    stack.push(cur.clone());
                    Ok(RtlState::Call {
                        fname: callee.clone(),
                        args: vals,
                        mem: mem.clone(),
                        stack,
                    })
                } else {
                    let Some(vf) = self.symtab.func_ptr(callee) else {
                        return self.stuck(format!("unknown callee `{callee}`"));
                    };
                    Ok(RtlState::External {
                        q: CQuery {
                            vf,
                            sig: sig.clone(),
                            args: vals,
                            mem: mem.clone(),
                        },
                        cur: cur.clone(),
                        stack: stack.to_vec(),
                    })
                }
            }
            Inst::Tailcall(sig, callee, args) => {
                let vals: Vec<Val> = args.iter().map(|r| self.reg(cur, *r)).collect();
                // The frame is freed *before* the tail call.
                let mut mem = mem.clone();
                if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                    return self.stuck(format!("freeing frame for tailcall: {e}"));
                }
                if self.prog.function(callee).is_some() {
                    Ok(RtlState::Call {
                        fname: callee.clone(),
                        args: vals,
                        mem,
                        stack: stack.to_vec(),
                    })
                } else {
                    // A tail call to an external: suspend with the caller
                    // already gone; the reply is forwarded directly.
                    let Some(vf) = self.symtab.func_ptr(callee) else {
                        return self.stuck(format!("unknown callee `{callee}`"));
                    };
                    let mut frame = cur.clone();
                    frame.pc = u32::MAX; // poisoned: tailcall never resumes here
                    Ok(RtlState::External {
                        q: CQuery {
                            vf,
                            sig: sig.clone(),
                            args: vals,
                            mem,
                        },
                        cur: frame,
                        stack: stack.to_vec(),
                    })
                }
            }
            Inst::Return(r) => {
                let v = match r {
                    Some(r) => self.reg(cur, *r),
                    None => Val::Undef,
                };
                let mut mem = mem.clone();
                if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                    return self.stuck(format!("freeing frame: {e}"));
                }
                Ok(RtlState::Ret {
                    v,
                    mem,
                    stack: stack.to_vec(),
                })
            }
        }
    }
}

impl Lts for RtlSem {
    type I = C;
    type O = C;
    type State = RtlState;

    fn name(&self) -> String {
        self.label.clone()
    }

    fn accepts(&self, q: &CQuery) -> bool {
        match &q.vf {
            Val::Ptr(b, 0) => match self.symtab.ident_of(*b) {
                Some(name) => match self.prog.function(name) {
                    Some(f) => f.sig == q.sig && q.args.len() == f.params.len(),
                    None => false,
                },
                None => false,
            },
            _ => false,
        }
    }

    fn initial(&self, q: &CQuery) -> Result<RtlState, Stuck> {
        if !self.accepts(q) {
            return self.stuck("query not accepted");
        }
        let Val::Ptr(b, 0) = q.vf else {
            return self.stuck("accepted query has a non-pointer vf");
        };
        let Some(name) = self.symtab.ident_of(b) else {
            return self.stuck("accepted query names an unknown block");
        };
        Ok(RtlState::Call {
            fname: name.to_string(),
            args: q.args.clone(),
            mem: q.mem.clone(),
            stack: vec![],
        })
    }

    fn step(&self, s: &RtlState) -> Step<RtlState, CQuery, CReply> {
        match s {
            RtlState::Call {
                fname,
                args,
                mem,
                stack,
            } => {
                let Some(f) = self.prog.function(fname) else {
                    return Step::Stuck(Stuck::new(format!("unknown function `{fname}`")));
                };
                if f.params.len() != args.len() {
                    return Step::Stuck(Stuck::new(format!("arity mismatch calling `{fname}`")));
                }
                let mut mem = mem.clone();
                let sp = mem.alloc(0, f.stack_size);
                let regs = f.params.iter().copied().zip(args.iter().copied()).collect();
                Step::Internal(
                    RtlState::Exec {
                        cur: RtlFrame {
                            fname: fname.clone(),
                            pc: f.entry,
                            regs,
                            sp,
                        },
                        mem,
                        stack: stack.clone(),
                    },
                    vec![],
                )
            }
            RtlState::Exec { cur, mem, stack } => {
                let Some(f) = self.prog.function(&cur.fname) else {
                    return Step::Stuck(Stuck::new("frame names unknown function"));
                };
                match self.exec_inst(f, cur, mem, stack) {
                    Ok(next) => Step::Internal(next, vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            RtlState::Ret { v, mem, stack } => {
                if stack.is_empty() {
                    return Step::Final(CReply {
                        retval: *v,
                        mem: mem.clone(),
                    });
                }
                let mut stack = stack.clone();
                let Some(mut caller) = stack.pop() else {
                    return Step::Stuck(Stuck::new("return with no caller frame"));
                };
                let Some(cf) = self.prog.function(&caller.fname) else {
                    return Step::Stuck(Stuck::new("caller frame names unknown function"));
                };
                let Some(Inst::Call(_, _, _, dest, next)) = cf.code.get(&caller.pc) else {
                    return Step::Stuck(Stuck::new("caller pc is not at a call"));
                };
                if let Some(d) = dest {
                    caller.regs.insert(*d, *v);
                }
                caller.pc = *next;
                Step::Internal(
                    RtlState::Exec {
                        cur: caller,
                        mem: mem.clone(),
                        stack,
                    },
                    vec![],
                )
            }
            RtlState::External { q, .. } => Step::External(q.clone()),
        }
    }

    fn step_batch(
        &self,
        s: &mut RtlState,
        fuel_left: u64,
        _events: &mut Vec<Event>,
    ) -> Batch<CQuery, CReply> {
        // RTL emits no events; the prepared arena loop replicates the legacy
        // stepper's observables exactly (tests/fast_equiv.rs).
        fast::step_batch(self, s, fuel_left)
    }

    fn resume(&self, s: &RtlState, a: CReply) -> Result<RtlState, Stuck> {
        match s {
            RtlState::External { cur, stack, .. } => {
                // A poisoned pc marks a tail call: forward the answer.
                if cur.pc == u32::MAX {
                    return Ok(RtlState::Ret {
                        v: a.retval,
                        mem: a.mem,
                        stack: stack.clone(),
                    });
                }
                let Some(f) = self.prog.function(&cur.fname) else {
                    return self.stuck("frame names unknown function");
                };
                let Some(Inst::Call(_, _, _, dest, next)) = f.code.get(&cur.pc) else {
                    return self.stuck("external frame pc is not at a call");
                };
                let mut frame = cur.clone();
                if let Some(d) = dest {
                    frame.regs.insert(*d, a.retval);
                }
                frame.pc = *next;
                Ok(RtlState::Exec {
                    cur: frame,
                    mem: a.mem,
                    stack: stack.clone(),
                })
            }
            _ => self.stuck("resume in non-external state"),
        }
    }

    fn measure(&self, s: &RtlState) -> compcerto_core::lts::StateMeasure {
        let (mem_bytes, stack) = match s {
            RtlState::Call { mem, stack, .. } | RtlState::Exec { mem, stack, .. } => {
                (mem.allocated_bytes(), stack)
            }
            RtlState::External { q, stack, .. } => (q.mem.allocated_bytes(), stack),
            RtlState::Ret { mem, stack, .. } => (mem.allocated_bytes(), stack),
        };
        compcerto_core::lts::StateMeasure {
            mem_bytes,
            call_depth: stack.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use compcerto_core::lts::run;
    use compcerto_core::symtab::GlobKind;
    use minor::MBinop;

    /// Build `int double_add(a, b) { return a + a + b; }` by hand.
    fn sample() -> (RtlSem, Mem) {
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 0), 2, 1));
        code.insert(1, Inst::Op(RtlOp::Binop(MBinop::Add32, 2, 1), 3, 2));
        code.insert(2, Inst::Return(Some(3)));
        let f = RtlFunction {
            name: "double_add".into(),
            sig: Signature::int_fn(2),
            params: vec![0, 1],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 4,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("double_add".into(), GlobKind::Func(Signature::int_fn(2)));
        let mem = tbl.build_init_mem().unwrap();
        (RtlSem::new(prog, tbl), mem)
    }

    #[test]
    fn executes_cfg() {
        let (sem, mem) = sample();
        let q = CQuery {
            vf: sem.symtab().func_ptr("double_add").unwrap(),
            sig: Signature::int_fn(2),
            args: vec![Val::Int(10), Val::Int(3)],
            mem,
        };
        let r = run(&sem, &q, &mut |_q| None, 1000).expect_complete();
        assert_eq!(r.retval, Val::Int(23));
    }

    #[test]
    fn missing_node_goes_wrong() {
        let (sem, mem) = sample();
        // Corrupt: entry points to a missing node.
        let mut prog = sem.program().clone();
        prog.functions[0].entry = 99;
        let sem = RtlSem::new(prog, sem.symtab().clone());
        let q = CQuery {
            vf: sem.symtab().func_ptr("double_add").unwrap(),
            sig: Signature::int_fn(2),
            args: vec![Val::Int(1), Val::Int(2)],
            mem,
        };
        let out = run(&sem, &q, &mut |_q| None, 1000);
        assert!(matches!(out, compcerto_core::lts::RunOutcome::Wrong { .. }));
    }
}
