//! The `Constprop` pass: constant propagation driven by the value analysis
//! (paper Table 3, convention `va·ext ↠ va·ext`).
//!
//! The convention records that the pass is only correct when the environment
//! maintains the value-analysis invariant — read-only globals keep their
//! initial values across external calls (paper App. B.3).

use mem::Val;

use crate::analysis::{eval_op_abstract, value_analysis, AVal, Romem};
use crate::lang::{Inst, RtlFunction, RtlOp, RtlProgram};

/// Run constant propagation over every function.
pub fn constprop(prog: &RtlProgram, romem: &Romem) -> RtlProgram {
    prog.map_functions(|f| constprop_function(f, romem))
}

fn const_op(v: &Val) -> Option<RtlOp> {
    match v {
        Val::Int(n) => Some(RtlOp::Int(*n)),
        Val::Long(n) => Some(RtlOp::Long(*n)),
        _ => None,
    }
}

fn constprop_function(f: &RtlFunction, romem: &Romem) -> RtlFunction {
    let states = value_analysis(f, romem);
    let mut out = f.clone();
    for (n, inst) in &f.code {
        let Some(env) = states.get(n) else { continue };
        let new = match inst {
            Inst::Op(op, dst, next) => {
                match eval_op_abstract(env, op) {
                    AVal::Const(v) => match const_op(&v) {
                        Some(c) => Inst::Op(c, *dst, *next),
                        None => inst.clone(),
                    },
                    // Rebuild symbolic addresses as direct address operations.
                    AVal::Global(s, d) if !matches!(op, RtlOp::AddrGlobal(_, _)) => {
                        Inst::Op(RtlOp::AddrGlobal(s, d), *dst, *next)
                    }
                    AVal::Stack(d) if !matches!(op, RtlOp::AddrStack(_)) => {
                        Inst::Op(RtlOp::AddrStack(d), *dst, *next)
                    }
                    _ => inst.clone(),
                }
            }
            Inst::Load(chunk, base, disp, dst, next) => match env.get_ref(*base) {
                AVal::Global(s, d) => match romem.load(*chunk, s, d + disp) {
                    Some(v) => match const_op(&v) {
                        Some(c) => Inst::Op(c, *dst, *next),
                        None => inst.clone(),
                    },
                    None => inst.clone(),
                },
                _ => inst.clone(),
            },
            Inst::Cond(r, t, e) => match env.get_ref(*r) {
                AVal::Const(v) => match v.truth() {
                    Some(true) => Inst::Nop(*t),
                    Some(false) => Inst::Nop(*e),
                    None => inst.clone(),
                },
                _ => inst.clone(),
            },
            other => other.clone(),
        };
        out.code.insert(*n, new);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::symtab::SymbolTable;
    use std::collections::BTreeMap;

    use compcerto_core::iface::Signature;
    use minor::MBinop;

    #[test]
    fn folds_constant_chains() {
        // x0 := 6; x1 := 7; x2 := x0*x1; return x2  ==>  x2 := 42
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::Int(6), 0, 1));
        code.insert(1, Inst::Op(RtlOp::Int(7), 1, 2));
        code.insert(2, Inst::Op(RtlOp::Binop(MBinop::Mul32, 0, 1), 2, 3));
        code.insert(3, Inst::Return(Some(2)));
        let f = RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let romem = Romem::new(&SymbolTable::new());
        let out = constprop(&prog, &romem);
        assert_eq!(out.functions[0].code[&2], Inst::Op(RtlOp::Int(42), 2, 3));
    }

    #[test]
    fn resolves_known_branches() {
        // x0 := 1; if x0 goto 2 else 3
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::Int(1), 0, 1));
        code.insert(1, Inst::Cond(0, 2, 3));
        code.insert(2, Inst::Return(Some(0)));
        code.insert(3, Inst::Return(None));
        let f = RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 1,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let romem = Romem::new(&SymbolTable::new());
        let out = constprop(&prog, &romem);
        assert_eq!(out.functions[0].code[&1], Inst::Nop(2));
    }

    #[test]
    fn loads_from_readonly_globals_fold() {
        use compcerto_core::symtab::{GlobKind, InitDatum};
        let mut tbl = SymbolTable::new();
        tbl.define(
            "limit".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(64)],
                readonly: true,
            },
        );
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::AddrGlobal("limit".into(), 0), 0, 1));
        code.insert(1, Inst::Load(mem::Chunk::I32, 0, 0, 1, 2));
        code.insert(2, Inst::Return(Some(1)));
        let f = RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 2,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let romem = Romem::new(&tbl);
        let out = constprop(&prog, &romem);
        assert_eq!(out.functions[0].code[&1], Inst::Op(RtlOp::Int(64), 1, 2));
    }
}
