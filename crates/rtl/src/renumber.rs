//! The `Renumber` pass: give CFG nodes contiguous identifiers in reverse
//! postorder (paper Table 3, convention `id ↠ id`).
//!
//! Purely administrative — later analyses converge faster on compact,
//! topologically-ordered node numbering — and semantically invisible, hence
//! the identity convention.

use std::collections::BTreeMap;

use crate::lang::{Inst, Node, RtlFunction, RtlProgram};

/// Renumber every function's CFG.
pub fn renumber(prog: &RtlProgram) -> RtlProgram {
    prog.map_functions(renumber_function)
}

fn renumber_function(f: &RtlFunction) -> RtlFunction {
    // Depth-first traversal from the entry; unreachable nodes are dropped.
    let mut order: Vec<Node> = Vec::new();
    let mut seen: BTreeMap<Node, ()> = BTreeMap::new();
    let mut stack = vec![f.entry];
    while let Some(n) = stack.pop() {
        if seen.contains_key(&n) || !f.code.contains_key(&n) {
            continue;
        }
        seen.insert(n, ());
        order.push(n);
        if let Some(inst) = f.code.get(&n) {
            for s in inst.successors().into_iter().rev() {
                stack.push(s);
            }
        }
    }
    let renaming: BTreeMap<Node, Node> = order
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, i as Node))
        .collect();
    let rn = |n: &Node| renaming[n];
    let code = order
        .iter()
        .map(|n| {
            let inst = match &f.code[n] {
                Inst::Op(op, d, nn) => Inst::Op(op.clone(), *d, rn(nn)),
                Inst::Load(c, b, disp, d, nn) => Inst::Load(*c, *b, *disp, *d, rn(nn)),
                Inst::Store(c, b, disp, s, nn) => Inst::Store(*c, *b, *disp, *s, rn(nn)),
                Inst::Call(sg, f2, a, d, nn) => {
                    Inst::Call(sg.clone(), f2.clone(), a.clone(), *d, rn(nn))
                }
                Inst::Tailcall(sg, f2, a) => Inst::Tailcall(sg.clone(), f2.clone(), a.clone()),
                Inst::Cond(r, t, e) => Inst::Cond(*r, rn(t), rn(e)),
                Inst::Nop(nn) => Inst::Nop(rn(nn)),
                Inst::Return(r) => Inst::Return(*r),
            };
            (renaming[n], inst)
        })
        .collect();
    RtlFunction {
        entry: renaming[&f.entry],
        code,
        ..f.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::RtlOp;
    use compcerto_core::iface::Signature;

    #[test]
    fn renumbers_compactly_and_drops_unreachable() {
        let code: BTreeMap<Node, Inst> = [
            (10, Inst::Op(RtlOp::Int(1), 0, 30)),
            (30, Inst::Return(Some(0))),
            (99, Inst::Return(None)), // unreachable
        ]
        .into_iter()
        .collect();
        let f = RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 10,
            code,
            next_reg: 1,
        };
        let out = renumber_function(&f);
        assert_eq!(out.entry, 0);
        assert_eq!(out.code.len(), 2);
        assert_eq!(out.code[&0], Inst::Op(RtlOp::Int(1), 0, 1));
        assert_eq!(out.code[&1], Inst::Return(Some(0)));
    }

    #[test]
    fn behaviour_identical() {
        use crate::gen::tests::front_end;
        use crate::sem::RtlSem;
        use compcerto_core::iface::{CQuery, CReply};
        use compcerto_core::lts::run;
        use mem::Val;

        let src =
            "int f(int n) { int s; s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }";
        let (_, prog, tbl) = front_end(src);
        let ren = renumber(&prog);
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: prog.function("f").unwrap().sig.clone(),
            args: vec![Val::Int(10)],
            mem: tbl.build_init_mem().unwrap(),
        };
        let r1 = run(
            &RtlSem::new(prog, tbl.clone()),
            &q,
            &mut |_: &CQuery| None::<CReply>,
            100_000,
        )
        .expect_complete();
        let r2 = run(
            &RtlSem::new(ren, tbl),
            &q,
            &mut |_: &CQuery| None::<CReply>,
            100_000,
        )
        .expect_complete();
        assert_eq!(r1.retval, r2.retval);
        assert_eq!(r1.mem, r2.mem);
    }
}
