//! The `Inlining` pass (paper Table 3, convention `injp ↠ inj`).
//!
//! Calls to small, non-tail-recursive internal functions are replaced by a
//! spliced copy of the callee's body. The inlined activation no longer
//! allocates its own stack block — a callee frame is merged into the
//! caller's frame at a fresh offset — so the source execution has memory
//! blocks the target lacks, and source stack addresses map into the target's
//! merged frame at a non-zero delta. The pass therefore sits under an
//! injection convention, with `injp` protecting the disappeared blocks
//! across external calls (paper §4.5); this is the same injection shape
//! CompCert's `Inliningproof` builds by hand.

use std::collections::BTreeMap;

use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};

/// Maximum callee size (in instructions) eligible for inlining.
pub const INLINE_LIMIT: usize = 50;

/// Run the inliner over every function (one level of inlining per run).
pub fn inlining(prog: &RtlProgram) -> RtlProgram {
    let eligible: BTreeMap<String, RtlFunction> = prog
        .functions
        .iter()
        .filter(|f| is_inlinable(f))
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    prog.map_functions(|f| inline_function(f, &eligible))
}

/// Can this function be inlined into callers?
///
/// Calls inside the callee are fine (they are spliced as calls from the
/// caller — one level of inlining per run); tail calls are not, because a
/// spliced tail call would free the *caller's* frame.
fn is_inlinable(f: &RtlFunction) -> bool {
    f.code.len() <= INLINE_LIMIT
        && !f
            .code
            .values()
            .any(|i| matches!(i, Inst::Tailcall(_, _, _)))
}

fn inline_function(f: &RtlFunction, eligible: &BTreeMap<String, RtlFunction>) -> RtlFunction {
    let mut out = f.clone();
    let call_sites: Vec<(Node, Inst)> = f
        .code
        .iter()
        .filter(|(_, i)| {
            matches!(i, Inst::Call(_, callee, _, _, _)
                     if eligible.contains_key(callee) && *callee != f.name)
        })
        .map(|(n, i)| (*n, i.clone()))
        .collect();

    for (site, inst) in call_sites {
        let Inst::Call(_, callee, args, dest, next) = inst else {
            continue;
        };
        let g = &eligible[&callee];
        let node_base = out.code.keys().max().copied().unwrap_or(0) + 1;
        let reg_base = out.next_reg;
        out.next_reg += g.next_reg;
        // Merge the callee's frame into the caller's at an 8-aligned offset:
        // the callee's `AddrStack o` becomes the caller's `AddrStack
        // (stack_shift + o)` (CompCert: the `fe` context of Inliningproof).
        let stack_shift = (out.stack_size + 7) & !7;
        if g.stack_size > 0 {
            out.stack_size = stack_shift + g.stack_size;
        }

        // Splice the callee's code with renamed nodes and registers.
        for (n, i) in &g.code {
            let renamed = rename_inst(i, reg_base, node_base, stack_shift, dest, next);
            out.code.insert(n + node_base, renamed);
        }
        // Bind parameters: arg registers move into renamed parameter
        // registers, then fall into the callee's entry.
        let mut entry = g.entry + node_base;
        for (p, a) in g.params.iter().zip(&args).rev() {
            let mv_node = out.code.keys().max().copied().unwrap_or(0) + 1;
            out.code
                .insert(mv_node, Inst::Op(RtlOp::Move(*a), p + reg_base, entry));
            entry = mv_node;
        }
        out.code.insert(site, Inst::Nop(entry));
    }
    out
}

/// Rename an inlined instruction: registers shift by `reg_base`, nodes by
/// `node_base`, stack offsets by `stack_shift`; returns become moves into the
/// call's destination followed by a jump to the call's continuation.
fn rename_inst(
    i: &Inst,
    reg_base: PReg,
    node_base: Node,
    stack_shift: i64,
    dest: Option<PReg>,
    next: Node,
) -> Inst {
    let r = |x: &PReg| x + reg_base;
    let n = |x: &Node| x + node_base;
    match i {
        Inst::Op(op, dst, nn) => Inst::Op(rename_op(op, reg_base, stack_shift), r(dst), n(nn)),
        Inst::Load(c, b, d, dst, nn) => Inst::Load(*c, r(b), *d, r(dst), n(nn)),
        Inst::Store(c, b, d, src, nn) => Inst::Store(*c, r(b), *d, r(src), n(nn)),
        Inst::Cond(x, t, e) => Inst::Cond(r(x), n(t), n(e)),
        Inst::Nop(nn) => Inst::Nop(n(nn)),
        Inst::Call(sig, callee, args, d, nn) => Inst::Call(
            sig.clone(),
            callee.clone(),
            args.iter().map(|a| a + reg_base).collect(),
            d.map(|x| x + reg_base),
            n(nn),
        ),
        Inst::Return(Some(x)) => match dest {
            Some(d) => Inst::Op(RtlOp::Move(r(x)), d, next),
            None => Inst::Nop(next),
        },
        Inst::Return(None) => Inst::Nop(next),
        // Excluded by `is_inlinable`.
        Inst::Tailcall(_, _, _) => unreachable!("tail calls are not inlinable"),
    }
}

fn rename_op(op: &RtlOp, reg_base: PReg, stack_shift: i64) -> RtlOp {
    match op {
        RtlOp::Move(x) => RtlOp::Move(x + reg_base),
        RtlOp::Unop(m, x) => RtlOp::Unop(*m, x + reg_base),
        RtlOp::Binop(m, a, b) => RtlOp::Binop(*m, a + reg_base, b + reg_base),
        RtlOp::BinopImm(m, a, i) => RtlOp::BinopImm(*m, a + reg_base, *i),
        RtlOp::AddrStack(o) => RtlOp::AddrStack(o + stack_shift),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::tests::front_end;
    use crate::sem::RtlSem;
    use compcerto_core::iface::{CQuery, CReply};
    use compcerto_core::lts::run;
    use mem::{mem_inject, MemInj, Val};

    #[test]
    fn inlines_small_helper() {
        let src = "
            int sq(int x) { return x * x; }
            int f(int a) { int r; r = sq(a); return r + 1; }";
        let (_, prog, tbl) = front_end(src);
        let inlined = inlining(&prog);
        // The call site in `f` became a Nop into spliced code.
        let f = inlined.function("f").unwrap();
        assert!(
            !f.code
                .values()
                .any(|i| matches!(i, Inst::Call(_, c, _, _, _) if c == "sq")),
            "call to sq should be gone:\n{}",
            f.dump()
        );

        // Behaviour preserved; final memories inject (the inlined activation
        // allocates one block less per call).
        let mem0 = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: prog.function("f").unwrap().sig.clone(),
            args: vec![Val::Int(9)],
            mem: mem0,
        };
        let s1 = RtlSem::new(prog, tbl.clone());
        let s2 = RtlSem::new(inlined, tbl.clone());
        let r1 = run(&s1, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, Val::Int(82));
        assert_eq!(r2.retval, Val::Int(82));
        let f = MemInj::identity_below(tbl.len() as u32);
        assert_eq!(mem_inject(&f, &r1.mem, &r2.mem), Ok(()));
        // The source allocated strictly more blocks.
        assert!(r1.mem.next_block() > r2.mem.next_block());
    }

    #[test]
    fn recursion_is_not_inlined() {
        let src = "
            int fact(int n) { int r; if (n <= 1) { return 1; } r = fact(n - 1); return n * r; }";
        let (_, prog, _) = front_end(src);
        let inlined = inlining(&prog);
        let f = inlined.function("fact").unwrap();
        assert!(f
            .code
            .values()
            .any(|i| matches!(i, Inst::Call(_, c, _, _, _) if c == "fact")));
    }

    #[test]
    fn frame_callees_inline_by_merging_frames() {
        // The callee owns a stack array: inlining must graft its frame into
        // the caller's at a fresh offset and shift every `AddrStack`.
        let src = "
            int boxed(int x) { int a[2]; a[0] = x; a[1] = x + 1; return a[0] * a[1]; }
            int f(int a) { int r; r = boxed(a); return r + a; }";
        let (_, prog, tbl) = front_end(src);
        let g_size = prog.function("boxed").unwrap().stack_size;
        assert!(g_size > 0);
        let f_size = prog.function("f").unwrap().stack_size;
        let inlined = inlining(&prog);
        let fi = inlined.function("f").unwrap();
        assert!(
            !fi.code
                .values()
                .any(|i| matches!(i, Inst::Call(_, c, _, _, _) if c == "boxed")),
            "call to boxed should be gone:\n{}",
            fi.dump()
        );
        // Merged frame: old caller frame (8-aligned) plus the callee's.
        assert_eq!(fi.stack_size, ((f_size + 7) & !7) + g_size);

        // Behaviour preserved: boxed(9) = 9 * 10 = 90, f = 90 + 9 = 99.
        let mem0 = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: prog.function("f").unwrap().sig.clone(),
            args: vec![Val::Int(9)],
            mem: mem0,
        };
        let s1 = RtlSem::new(prog, tbl.clone());
        let s2 = RtlSem::new(inlined, tbl.clone());
        let r1 = run(&s1, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, Val::Int(99));
        assert_eq!(r2.retval, Val::Int(99));
        // One activation (and its block) fewer on the target side.
        assert!(r1.mem.next_block() > r2.mem.next_block());
        let f = MemInj::identity_below(tbl.len() as u32);
        assert_eq!(mem_inject(&f, &r1.mem, &r2.mem), Ok(()));
    }

    #[test]
    fn callees_containing_calls_are_spliced_one_level() {
        // `mid` itself calls `leaf`: inlining `mid` splices a *call* to
        // `leaf` into `f` (one level per run), renaming its argument and
        // destination registers.
        let src = "
            int leaf(int x) { return x + 100; }
            int mid(int x) { int t; t = leaf(x * 2); return t + 1; }
            int f(int a) { int r; r = mid(a); return r; }";
        let (_, prog, tbl) = front_end(src);
        let inlined = inlining(&prog);
        let fi = inlined.function("f").unwrap();
        assert!(
            !fi.code
                .values()
                .any(|i| matches!(i, Inst::Call(_, c, _, _, _) if c == "mid")),
            "call to mid should be gone:\n{}",
            fi.dump()
        );
        // Behaviour preserved: leaf(3*2)=106, mid=107.
        let q = CQuery {
            vf: tbl.func_ptr("f").unwrap(),
            sig: prog.function("f").unwrap().sig.clone(),
            args: vec![Val::Int(3)],
            mem: tbl.build_init_mem().unwrap(),
        };
        let s1 = RtlSem::new(prog, tbl.clone());
        let s2 = RtlSem::new(inlined, tbl);
        let r1 = run(&s1, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, Val::Int(107));
        assert_eq!(r2.retval, r1.retval);
    }
}
