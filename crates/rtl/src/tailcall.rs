//! The `Tailcall` pass: turn `r := call f(…); return r` into a tail call
//! (paper Table 3, convention `ext ↠ ext`).
//!
//! As in CompCert, the transformation only applies to functions with an empty
//! stack frame: the tail call frees the frame before transferring control, so
//! a non-empty frame could still be reachable through escaped pointers.

use crate::lang::{Inst, RtlFunction, RtlProgram};

/// Run tail-call recognition over every function.
pub fn tailcall(prog: &RtlProgram) -> RtlProgram {
    prog.map_functions(tailcall_function)
}

fn tailcall_function(f: &RtlFunction) -> RtlFunction {
    if f.stack_size != 0 {
        return f.clone();
    }
    let mut out = f.clone();
    for (n, inst) in &f.code {
        if let Inst::Call(sig, callee, args, dest, next) = inst {
            let is_tail = match (f.code.get(next), dest) {
                // r := call f(...); return r
                (Some(Inst::Return(Some(r))), Some(d)) => r == d,
                // call f(...); return
                (Some(Inst::Return(None)), None) => true,
                _ => false,
            };
            if is_tail {
                out.code.insert(
                    *n,
                    Inst::Tailcall(sig.clone(), callee.clone(), args.clone()),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{PReg, RtlOp};
    use compcerto_core::iface::Signature;

    fn fun(code: Vec<(u32, Inst)>, params: Vec<PReg>, stack_size: i64) -> RtlFunction {
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(params.len()),
            params,
            stack_size,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 100,
        }
    }

    #[test]
    fn recognizes_tail_position() {
        let f = fun(
            vec![
                (
                    0,
                    Inst::Call(Signature::int_fn(1), "g".into(), vec![0], Some(1), 1),
                ),
                (1, Inst::Return(Some(1))),
            ],
            vec![0],
            0,
        );
        let out = tailcall_function(&f);
        assert_eq!(
            out.code[&0],
            Inst::Tailcall(Signature::int_fn(1), "g".into(), vec![0])
        );
    }

    #[test]
    fn requires_matching_result() {
        // The returned register differs from the call result: not a tail call.
        let f = fun(
            vec![
                (
                    0,
                    Inst::Call(Signature::int_fn(1), "g".into(), vec![0], Some(1), 1),
                ),
                (1, Inst::Return(Some(0))),
            ],
            vec![0],
            0,
        );
        let out = tailcall_function(&f);
        assert!(matches!(out.code[&0], Inst::Call(_, _, _, _, _)));
    }

    #[test]
    fn requires_empty_frame() {
        let f = fun(
            vec![
                (
                    0,
                    Inst::Call(Signature::int_fn(1), "g".into(), vec![0], Some(1), 1),
                ),
                (1, Inst::Return(Some(1))),
            ],
            vec![0],
            16,
        );
        let out = tailcall_function(&f);
        assert!(matches!(out.code[&0], Inst::Call(_, _, _, _, _)));
    }

    #[test]
    fn deep_recursion_runs_in_constant_stack() {
        use crate::sem::RtlSem;
        use compcerto_core::iface::{CQuery, CReply};
        use compcerto_core::lts::{run, Lts};
        use compcerto_core::symtab::{GlobKind, SymbolTable};
        use mem::Val;
        use minor::MBinop;

        // count(n) = if n == 0 then 0 else count(n - 1), tail-recursive.
        let code: Vec<(u32, Inst)> = vec![
            (
                0,
                Inst::Op(
                    RtlOp::BinopImm(MBinop::Cmp32(mem::Cmp::Eq), 0, Val::Int(0)),
                    1,
                    1,
                ),
            ),
            (1, Inst::Cond(1, 2, 3)),
            (2, Inst::Return(Some(0))),
            (
                3,
                Inst::Op(RtlOp::BinopImm(MBinop::Sub32, 0, Val::Int(1)), 0, 4),
            ),
            (
                4,
                Inst::Call(Signature::int_fn(1), "count".into(), vec![0], Some(2), 5),
            ),
            (5, Inst::Return(Some(2))),
        ];
        let f = RtlFunction {
            name: "count".into(),
            sig: Signature::int_fn(1),
            params: vec![0],
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 100,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let opt = tailcall(&prog);
        assert!(matches!(opt.functions[0].code[&4], Inst::Tailcall(_, _, _)));

        let mut tbl = SymbolTable::new();
        tbl.define("count".into(), GlobKind::Func(Signature::int_fn(1)));
        let mem0 = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr("count").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(500)],
            mem: mem0,
        };
        let s1 = RtlSem::new(prog, tbl.clone());
        let s2 = RtlSem::new(opt, tbl);
        let r1 = run(&s1, &q, &mut |_: &CQuery| None::<CReply>, 1_000_000).expect_complete();
        let r2 = run(&s2, &q, &mut |_: &CQuery| None::<CReply>, 1_000_000).expect_complete();
        assert_eq!(r1.retval, Val::Int(0));
        assert_eq!(r2.retval, Val::Int(0));

        // The tail-call version never grows its activation stack: every
        // internal frame is popped before the recursive call.
        let mut s = s2.initial(&q).unwrap();
        let mut max_depth = 0usize;
        for _ in 0..100_000 {
            match s2.step(&s) {
                compcerto_core::lts::Step::Internal(next, _) => {
                    if let crate::sem::RtlState::Exec { stack, .. } = &next {
                        max_depth = max_depth.max(stack.len());
                    }
                    s = next;
                }
                _ => break,
            }
        }
        assert_eq!(max_depth, 0, "tail calls must not stack frames");
    }
}
