//! The RTL language: a control-flow graph of three-address instructions over
//! an unbounded supply of pseudo-registers (paper Table 3).

use std::collections::BTreeMap;
use std::fmt;

use compcerto_core::iface::Signature;
use compcerto_core::symtab::Ident;
use mem::{Chunk, Val};
use minor::{MBinop, MUnop};

/// A CFG node identifier.
pub type Node = u32;

/// A pseudo-register.
pub type PReg = u32;

/// Pure operations (right-hand sides of [`Inst::Op`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RtlOp {
    /// Copy a register.
    Move(PReg),
    /// 32-bit constant.
    Int(i32),
    /// 64-bit constant.
    Long(i64),
    /// Address of a global symbol plus displacement.
    AddrGlobal(Ident, i64),
    /// Address within the activation's stack block.
    AddrStack(i64),
    /// Unary operation.
    Unop(MUnop, PReg),
    /// Binary operation.
    Binop(MBinop, PReg, PReg),
    /// Binary operation with immediate.
    BinopImm(MBinop, PReg, Val),
}

impl RtlOp {
    /// Registers read by the operation.
    pub fn uses(&self) -> Vec<PReg> {
        match self {
            RtlOp::Move(r) | RtlOp::Unop(_, r) | RtlOp::BinopImm(_, r, _) => vec![*r],
            RtlOp::Binop(_, a, b) => vec![*a, *b],
            _ => vec![],
        }
    }
}

impl fmt::Display for RtlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlOp::Move(r) => write!(f, "x{r}"),
            RtlOp::Int(n) => write!(f, "{n}"),
            RtlOp::Long(n) => write!(f, "{n}L"),
            RtlOp::AddrGlobal(s, d) => write!(f, "&{s}+{d}"),
            RtlOp::AddrStack(o) => write!(f, "&stack+{o}"),
            RtlOp::Unop(op, r) => write!(f, "{op} x{r}"),
            RtlOp::Binop(op, a, b) => write!(f, "{op} x{a}, x{b}"),
            RtlOp::BinopImm(op, a, i) => write!(f, "{op} x{a}, #{i}"),
        }
    }
}

/// An RTL instruction. Every instruction names its successor(s) explicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst := op`; continue at the successor.
    Op(RtlOp, PReg, Node),
    /// `dst := chunk[base + disp]`.
    Load(Chunk, PReg, i64, PReg, Node),
    /// `chunk[base + disp] := src`.
    Store(Chunk, PReg, i64, PReg, Node),
    /// `dst := call f(args)` with the callee's signature.
    Call(Signature, Ident, Vec<PReg>, Option<PReg>, Node),
    /// Tail call (frees the frame first; function must have no stack data).
    Tailcall(Signature, Ident, Vec<PReg>),
    /// Branch on the truth of a register.
    Cond(PReg, Node, Node),
    /// No-op (used by optimization passes to blank instructions).
    Nop(Node),
    /// Return from the function.
    Return(Option<PReg>),
}

impl Inst {
    /// Successor nodes.
    pub fn successors(&self) -> Vec<Node> {
        match self {
            Inst::Op(_, _, n)
            | Inst::Load(_, _, _, _, n)
            | Inst::Store(_, _, _, _, n)
            | Inst::Call(_, _, _, _, n)
            | Inst::Nop(n) => vec![*n],
            Inst::Cond(_, t, f) => vec![*t, *f],
            Inst::Tailcall(_, _, _) | Inst::Return(_) => vec![],
        }
    }

    /// Registers read by the instruction.
    pub fn uses(&self) -> Vec<PReg> {
        match self {
            Inst::Op(op, _, _) => op.uses(),
            Inst::Load(_, base, _, _, _) => vec![*base],
            Inst::Store(_, base, _, src, _) => vec![*base, *src],
            Inst::Call(_, _, args, _, _) | Inst::Tailcall(_, _, args) => args.clone(),
            Inst::Cond(r, _, _) => vec![*r],
            Inst::Nop(_) => vec![],
            Inst::Return(r) => r.iter().copied().collect(),
        }
    }

    /// Register written by the instruction, if any.
    pub fn def(&self) -> Option<PReg> {
        match self {
            Inst::Op(_, d, _) | Inst::Load(_, _, _, d, _) => Some(*d),
            Inst::Call(_, _, _, d, _) => *d,
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Op(op, d, n) => write!(f, "x{d} := {op}; goto {n}"),
            Inst::Load(c, b, disp, d, n) => write!(f, "x{d} := {c}[x{b}+{disp}]; goto {n}"),
            Inst::Store(c, b, disp, s, n) => write!(f, "{c}[x{b}+{disp}] := x{s}; goto {n}"),
            Inst::Call(_, callee, args, d, n) => {
                match d {
                    Some(d) => write!(f, "x{d} := ")?,
                    None => {}
                }
                write!(f, "call {callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{a}")?;
                }
                write!(f, "); goto {n}")
            }
            Inst::Tailcall(_, callee, args) => {
                write!(f, "tailcall {callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{a}")?;
                }
                write!(f, ")")
            }
            Inst::Cond(r, t, e) => write!(f, "if x{r} goto {t} else {e}"),
            Inst::Nop(n) => write!(f, "nop; goto {n}"),
            Inst::Return(Some(r)) => write!(f, "return x{r}"),
            Inst::Return(None) => write!(f, "return"),
        }
    }
}

/// An RTL function.
#[derive(Debug, Clone, PartialEq)]
pub struct RtlFunction {
    /// Name.
    pub name: Ident,
    /// Signature.
    pub sig: Signature,
    /// Parameter registers, in order.
    pub params: Vec<PReg>,
    /// Stack block size.
    pub stack_size: i64,
    /// Entry node.
    pub entry: Node,
    /// The CFG.
    pub code: BTreeMap<Node, Inst>,
    /// First unused pseudo-register (for passes that need fresh ones).
    pub next_reg: PReg,
}

impl RtlFunction {
    /// Pretty-print the CFG (entry first, then node order).
    pub fn dump(&self) -> String {
        let mut out = format!(
            "{} {} stack={} entry={}\n",
            self.name, self.sig, self.stack_size, self.entry
        );
        for (n, i) in &self.code {
            out.push_str(&format!("  {n:>4}: {i}\n"));
        }
        out
    }
}

/// An RTL translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RtlProgram {
    /// Function definitions.
    pub functions: Vec<RtlFunction>,
    /// Known external functions.
    pub externs: Vec<(Ident, Signature)>,
}

impl RtlProgram {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&RtlFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Signature of a definition or known external.
    pub fn sig_of(&self, name: &str) -> Option<Signature> {
        self.function(name).map(|f| f.sig.clone()).or_else(|| {
            self.externs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
        })
    }

    /// Map every function definition through `f`.
    pub fn map_functions(&self, f: impl Fn(&RtlFunction) -> RtlFunction) -> RtlProgram {
        RtlProgram {
            functions: self.functions.iter().map(f).collect(),
            externs: self.externs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let i = Inst::Op(RtlOp::Binop(MBinop::Add32, 1, 2), 3, 4);
        assert_eq!(i.uses(), vec![1, 2]);
        assert_eq!(i.def(), Some(3));
        assert_eq!(i.successors(), vec![4]);
        let c = Inst::Cond(5, 10, 20);
        assert_eq!(c.successors(), vec![10, 20]);
        assert_eq!(c.def(), None);
    }
}
