//! Prepared ("arena") form of an RTL program and the batched fast
//! interpreter behind [`crate::sem::RtlSem`]'s `step_batch` (DESIGN.md §13).
//!
//! `prepare` runs once per [`RtlSem`] and compiles every function's
//! `BTreeMap<Node, Inst>` CFG into a dense `Vec<UOp>`:
//!
//! * node ids become dense `u32` indices, jump targets are pre-resolved;
//! * function and global names are interned ([`Interner`]) and resolved —
//!   callees to function indices or external function pointers, globals to
//!   `Val::Ptr` constants;
//! * statically-known stuck conditions (missing CFG nodes, unknown symbols)
//!   become `Trap` µops carrying their exact legacy message, label-free
//!   (the label is prefixed at stuck time, like `RtlSem::stuck`);
//! * hot two-instruction idioms are fused into superinstructions with
//!   *prefix-commit* semantics: the fused op sits at the first instruction's
//!   index while the unfused second µop stays at its own index, so jumps
//!   into the middle of a pair, fuel exhaustion between the halves, and
//!   step counting all behave exactly as in the unfused program.
//!
//! The step loop mutates a dense `Vec<Val>` register file and the memory
//! state in place. Observable behaviour — answers, step counts, stuck
//! messages, and the `mem.*` counter stream — is bit-for-bit the legacy
//! interpreter's; the fusion-is-refinement unit tests below and the
//! cross-stage `compiler/tests/fast_equiv.rs` check this side by side.

use std::collections::BTreeMap;

use compcerto_core::iface::{CQuery, CReply, Signature};
use compcerto_core::intern::Interner;
use compcerto_core::lts::{Batch, Lts, Step, Stuck};
use compcerto_core::symtab::{Ident, SymbolTable};
use mem::{BlockId, Chunk, Val};
use minor::{MBinop, MUnop};

use crate::lang::{Inst, Node, PReg, RtlOp, RtlProgram};
use crate::sem::{RtlFrame, RtlSem, RtlState};

/// A resolved pure operation (the right-hand side of an `Op`), with global
/// addresses already looked up.
#[derive(Debug, Clone, Copy)]
pub(crate) enum POp {
    /// Copy a register.
    Move(PReg),
    /// Any constant: `Int`, `Long`, or a resolved `AddrGlobal`.
    Const(Val),
    /// Address within the activation's stack block.
    AddrStack(i64),
    /// Unary operation.
    Unop(MUnop, PReg),
    /// Binary operation.
    Binop(MBinop, PReg, PReg),
    /// Binary operation with immediate.
    BinopImm(MBinop, PReg, Val),
}

/// A resolved callee.
#[derive(Debug, Clone)]
pub(crate) enum PCallee {
    /// Defined in this program: index into [`PProg::funcs`].
    Internal(u32),
    /// External: the resolved function pointer and call signature.
    External(Val, Signature),
    /// Neither defined nor in the symbol table; the label-free legacy
    /// stuck message (``unknown callee `f` ``).
    Unknown(Box<str>),
}

/// One decoded micro-op. Jump targets (`u32`) are dense indices into the
/// owning function's [`PFunc::code`].
#[derive(Debug, Clone)]
pub(crate) enum UOp {
    /// `dst := src`.
    Move(PReg, PReg, u32),
    /// `dst := v` (constants and resolved global addresses).
    Const(Val, PReg, u32),
    /// `dst := &stack + off`.
    AddrStack(i64, PReg, u32),
    /// `dst := op src`.
    Unop(MUnop, PReg, PReg, u32),
    /// `dst := op a, b`.
    Binop(MBinop, PReg, PReg, PReg, u32),
    /// `dst := op a, #imm`.
    BinopImm(MBinop, PReg, Val, PReg, u32),
    /// `dst := chunk[base + disp]`.
    Load(Chunk, PReg, i64, PReg, u32),
    /// `chunk[base + disp] := src`.
    Store(Chunk, PReg, i64, PReg, u32),
    /// Branch on the truth of a register.
    Cond(PReg, u32, u32),
    /// No-op.
    Nop(u32),
    /// `dst := call callee(args)`.
    Call {
        /// Resolved callee.
        callee: PCallee,
        /// Argument registers.
        args: Box<[PReg]>,
        /// Destination register.
        dest: Option<PReg>,
        /// Return point.
        next: u32,
    },
    /// Tail call.
    Tailcall {
        /// Resolved callee.
        callee: PCallee,
        /// Argument registers.
        args: Box<[PReg]>,
    },
    /// Return from the function.
    Return(Option<PReg>),
    /// Statically-known stuck: the label-free legacy message.
    Trap(Box<str>),
    /// Fused `Store; Op(BinopImm)` (store to memory, then bump an index —
    /// the dominant array-write idiom). Prefix-commit: the unfused
    /// `BinopImm` stays at `second_ix`.
    FusedStoreAddImm {
        /// Store chunk.
        chunk: Chunk,
        /// Store base register.
        base: PReg,
        /// Store displacement.
        disp: i64,
        /// Stored register.
        src: PReg,
        /// Index of the unfused second half.
        second_ix: u32,
        /// Second-half operation.
        op: MBinop,
        /// Second-half source register.
        a: PReg,
        /// Second-half immediate.
        imm: Val,
        /// Second-half destination.
        dst: PReg,
        /// Successor of the pair.
        next: u32,
    },
    /// Fused `Op(BinopImm); Cond` (compare-and-branch / counter-and-loop).
    /// The destination is written *before* the condition register is read,
    /// exactly as in two legacy steps.
    FusedAddImmCond {
        /// First-half operation.
        op: MBinop,
        /// First-half source register.
        a: PReg,
        /// First-half immediate.
        imm: Val,
        /// First-half destination.
        dst: PReg,
        /// Index of the unfused second half.
        second_ix: u32,
        /// Condition register.
        cond: PReg,
        /// True target.
        t: u32,
        /// False target.
        e: u32,
    },
    /// Fused `Op; Op` (straight-line arithmetic pairs). Executed strictly in
    /// sequence: the second op sees the first's write.
    FusedOpOp {
        /// First operation.
        op1: POp,
        /// First destination.
        d1: PReg,
        /// Index of the unfused second half.
        second_ix: u32,
        /// Second operation.
        op2: POp,
        /// Second destination.
        d2: PReg,
        /// Successor of the pair.
        next: u32,
    },
}

/// A prepared function.
#[derive(Debug, Clone)]
pub(crate) struct PFunc {
    /// Name (kept for writeback into legacy states and stuck messages).
    pub name: Ident,
    /// Stack block size.
    pub stack_size: i64,
    /// Dense register file size (covers every register the code mentions).
    pub nregs: usize,
    /// Dense index of the entry node (a `Trap` if the entry is missing).
    pub entry_ix: u32,
    /// Parameter registers, in order.
    pub params: Box<[PReg]>,
    /// The decoded µop arena: real nodes in node order, then traps for
    /// referenced-but-missing nodes.
    pub code: Vec<UOp>,
    /// Dense index → original node id (traps map to the missing node).
    pub node_of_ix: Vec<Node>,
    /// Original node id → dense index (includes trap indices).
    pub ix_of: BTreeMap<Node, u32>,
}

/// A prepared program: the per-program interner plus the function arena.
#[derive(Debug, Clone)]
pub(crate) struct PProg {
    /// Interned function names (insertion order = definition order, then
    /// externs — deterministic across runs and thread counts).
    pub syms: Interner,
    /// Function arena, in definition order.
    pub funcs: Vec<PFunc>,
    /// `Sym` index → function index (first definition wins, like
    /// `RtlProgram::function`).
    pub fidx_of_sym: Vec<Option<u32>>,
}

/// Resolve `op`, precomputing global addresses. `Err` carries the exact
/// label-free legacy stuck message for an unknown symbol.
fn resolve_op(op: &RtlOp, symtab: &SymbolTable) -> Result<POp, String> {
    Ok(match op {
        RtlOp::Move(r) => POp::Move(*r),
        RtlOp::Int(n) => POp::Const(Val::Int(*n)),
        RtlOp::Long(n) => POp::Const(Val::Long(*n)),
        RtlOp::AddrGlobal(s, d) => match symtab.block_of(s) {
            Some(b) => POp::Const(Val::Ptr(b, *d)),
            None => return Err(format!("unknown symbol `{s}`")),
        },
        RtlOp::AddrStack(o) => POp::AddrStack(*o),
        RtlOp::Unop(u, r) => POp::Unop(*u, *r),
        RtlOp::Binop(b, x, y) => POp::Binop(*b, *x, *y),
        RtlOp::BinopImm(b, x, i) => POp::BinopImm(*b, *x, *i),
    })
}

/// An op-like single µop, viewed as `(op, dst, next)` for fusion.
fn as_pop(u: &UOp) -> Option<(POp, PReg, u32)> {
    Some(match *u {
        UOp::Move(src, dst, next) => (POp::Move(src), dst, next),
        UOp::Const(v, dst, next) => (POp::Const(v), dst, next),
        UOp::AddrStack(off, dst, next) => (POp::AddrStack(off), dst, next),
        UOp::Unop(op, src, dst, next) => (POp::Unop(op, src), dst, next),
        UOp::Binop(op, x, y, dst, next) => (POp::Binop(op, x, y), dst, next),
        UOp::BinopImm(op, x, imm, dst, next) => (POp::BinopImm(op, x, imm), dst, next),
        _ => return None,
    })
}

/// Compile `prog` into its prepared form. Pure function of the program and
/// symbol table; runs once in `RtlSem::new`.
pub(crate) fn prepare(prog: &RtlProgram, symtab: &SymbolTable) -> PProg {
    let mut syms = Interner::new();
    for f in &prog.functions {
        syms.intern(&f.name);
    }
    for (n, _) in &prog.externs {
        syms.intern(n);
    }
    let mut fidx_of_sym: Vec<Option<u32>> = vec![None; syms.len()];
    for (i, f) in prog.functions.iter().enumerate() {
        if let Some(s) = syms.lookup(&f.name) {
            // First definition wins, matching `RtlProgram::function`.
            let slot = &mut fidx_of_sym[s.index()];
            if slot.is_none() {
                *slot = Some(i as u32);
            }
        }
    }

    let resolve_callee = |name: &Ident, sig: &Signature| -> PCallee {
        if let Some(fidx) = syms.lookup(name).and_then(|s| fidx_of_sym[s.index()]) {
            return PCallee::Internal(fidx);
        }
        match symtab.func_ptr(name) {
            Some(vf) => PCallee::External(vf, sig.clone()),
            None => PCallee::Unknown(format!("unknown callee `{name}`").into_boxed_str()),
        }
    };

    let funcs = prog
        .functions
        .iter()
        .map(|f| {
            // Dense indices: real nodes in node order, then traps for every
            // referenced-but-missing node.
            let mut ix_of: BTreeMap<Node, u32> = BTreeMap::new();
            for (i, &n) in f.code.keys().enumerate() {
                ix_of.insert(n, i as u32);
            }
            let n_real = ix_of.len();
            let mut node_of_ix: Vec<Node> = f.code.keys().copied().collect();
            let mut referenced: Vec<Node> = f
                .code
                .values()
                .flat_map(Inst::successors)
                .chain(std::iter::once(f.entry))
                .filter(|n| !ix_of.contains_key(n))
                .collect();
            referenced.sort_unstable();
            referenced.dedup();
            for n in referenced {
                ix_of.insert(n, node_of_ix.len() as u32);
                node_of_ix.push(n);
            }

            let mut nregs = f.next_reg as usize;
            let mut see = |r: PReg| {
                nregs = nregs.max(r as usize + 1);
            };
            for &r in &f.params {
                see(r);
            }
            for i in f.code.values() {
                for r in i.uses() {
                    see(r);
                }
                if let Some(d) = i.def() {
                    see(d);
                }
            }

            let missing =
                |n: Node| format!("no instruction at {}:{}", f.name, n).into_boxed_str();
            let mut code: Vec<UOp> = f
                .code
                .iter()
                .map(|(_, inst)| {
                    let ix = |n: Node| ix_of.get(&n).copied().unwrap_or(u32::MAX);
                    match inst {
                        Inst::Nop(n) => UOp::Nop(ix(*n)),
                        Inst::Op(op, dst, n) => match resolve_op(op, symtab) {
                            Err(msg) => UOp::Trap(msg.into_boxed_str()),
                            Ok(POp::Move(src)) => UOp::Move(src, *dst, ix(*n)),
                            Ok(POp::Const(v)) => UOp::Const(v, *dst, ix(*n)),
                            Ok(POp::AddrStack(o)) => UOp::AddrStack(o, *dst, ix(*n)),
                            Ok(POp::Unop(u, r)) => UOp::Unop(u, r, *dst, ix(*n)),
                            Ok(POp::Binop(b, x, y)) => UOp::Binop(b, x, y, *dst, ix(*n)),
                            Ok(POp::BinopImm(b, x, i)) => UOp::BinopImm(b, x, i, *dst, ix(*n)),
                        },
                        Inst::Load(c, b, d, dst, n) => UOp::Load(*c, *b, *d, *dst, ix(*n)),
                        Inst::Store(c, b, d, src, n) => UOp::Store(*c, *b, *d, *src, ix(*n)),
                        Inst::Cond(r, t, e) => UOp::Cond(*r, ix(*t), ix(*e)),
                        Inst::Call(sig, callee, args, dest, n) => UOp::Call {
                            callee: resolve_callee(callee, sig),
                            args: args.clone().into_boxed_slice(),
                            dest: *dest,
                            next: ix(*n),
                        },
                        Inst::Tailcall(sig, callee, args) => UOp::Tailcall {
                            callee: resolve_callee(callee, sig),
                            args: args.clone().into_boxed_slice(),
                        },
                        Inst::Return(r) => UOp::Return(*r),
                    }
                })
                .collect();
            for &n in &node_of_ix[n_real..] {
                code.push(UOp::Trap(missing(n)));
            }

            // Superinstruction fusion, decided on the unfused µops (so a
            // chain A;B;C fuses as (A;B) at A and (B;C) at B without ever
            // double-executing: a fused op always jumps *past* its pair).
            let singles = code.clone();
            for i in 0..n_real {
                let second = |j: u32| singles.get(j as usize).filter(|_| (j as usize) < n_real);
                let fused = match &singles[i] {
                    UOp::Store(chunk, base, disp, src, n1) => match second(*n1) {
                        Some(UOp::BinopImm(op, a, imm, dst, n2)) => Some(UOp::FusedStoreAddImm {
                            chunk: *chunk,
                            base: *base,
                            disp: *disp,
                            src: *src,
                            second_ix: *n1,
                            op: *op,
                            a: *a,
                            imm: *imm,
                            dst: *dst,
                            next: *n2,
                        }),
                        _ => None,
                    },
                    UOp::BinopImm(op, a, imm, dst, n1) => match second(*n1) {
                        Some(UOp::Cond(cond, t, e)) => Some(UOp::FusedAddImmCond {
                            op: *op,
                            a: *a,
                            imm: *imm,
                            dst: *dst,
                            second_ix: *n1,
                            cond: *cond,
                            t: *t,
                            e: *e,
                        }),
                        _ => None,
                    },
                    _ => None,
                };
                let fused = fused.or_else(|| {
                    let (op1, d1, n1) = as_pop(&singles[i])?;
                    let (op2, d2, n2) = as_pop(second(n1)?)?;
                    Some(UOp::FusedOpOp {
                        op1,
                        d1,
                        second_ix: n1,
                        op2,
                        d2,
                        next: n2,
                    })
                });
                if let Some(u) = fused {
                    code[i] = u;
                }
            }

            PFunc {
                name: f.name.clone(),
                stack_size: f.stack_size,
                nregs,
                entry_ix: ix_of.get(&f.entry).copied().unwrap_or(u32::MAX),
                params: f.params.clone().into_boxed_slice(),
                code,
                node_of_ix,
                ix_of,
            }
        })
        .collect();

    PProg {
        syms,
        funcs,
        fidx_of_sym,
    }
}

/// A fast activation: dense registers, dense code index.
#[derive(Debug, Clone)]
struct FFrame {
    fidx: u32,
    ix: u32,
    regs: Vec<Val>,
    sp: BlockId,
}

fn fast_frame(p: &PProg, fr: &RtlFrame) -> Option<FFrame> {
    let s = p.syms.lookup(fr.fname())?;
    let fidx = (*p.fidx_of_sym.get(s.index())?)?;
    let f = &p.funcs[fidx as usize];
    let ix = *f.ix_of.get(&fr.pc())?;
    let mut regs = vec![Val::Undef; f.nregs];
    for (&r, &v) in fr.regs() {
        *regs.get_mut(r as usize)? = v;
    }
    Some(FFrame {
        fidx,
        ix,
        regs,
        sp: fr.sp(),
    })
}

fn legacy_frame(p: &PProg, fr: &FFrame) -> RtlFrame {
    let f = &p.funcs[fr.fidx as usize];
    RtlFrame {
        fname: f.name.clone(),
        pc: f.node_of_ix.get(fr.ix as usize).copied().unwrap_or(fr.ix),
        regs: fr
            .regs
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as PReg, v))
            .collect(),
        sp: fr.sp,
    }
}

fn legacy_stack(p: &PProg, stack: &[FFrame]) -> Vec<RtlFrame> {
    stack.iter().map(|f| legacy_frame(p, f)).collect()
}

/// One legacy step, packaged as a [`Batch`] — the fallback for states the
/// prepared tables cannot represent (frames naming unknown functions or
/// sitting at never-referenced nodes).
fn legacy_one(sem: &RtlSem, s: &mut RtlState) -> Batch<CQuery, CReply> {
    match sem.step(s) {
        Step::Internal(s2, _) => {
            *s = s2;
            Batch::Ran(1)
        }
        Step::Final(a) => Batch::Final(0, a),
        Step::External(oq) => Batch::External(0, oq),
        Step::Stuck(stuck) => Batch::Stuck(0, stuck),
    }
}

/// Control position of the fast machine, mirroring `RtlState` minus the
/// shared `mem`/`stack`.
enum M {
    /// Mirror of `RtlState::Call` (callee already resolved).
    Enter(u32, Vec<Val>),
    /// Mirror of `RtlState::Exec`.
    Exec(FFrame),
    /// Mirror of `RtlState::Ret`.
    Ret(Val),
}

/// Run up to `fuel_left` steps in place. Fuel accounting, step counts, and
/// every stuck message replicate the legacy single-step loop bit for bit;
/// see the module docs for the prefix-commit rules on fused µops.
#[allow(clippy::too_many_lines)]
pub(crate) fn step_batch(
    sem: &RtlSem,
    s: &mut RtlState,
    fuel_left: u64,
) -> Batch<CQuery, CReply> {
    let p = &sem.fast;
    let label = &sem.label;
    let stuck_l = |msg: String| Stuck::new(format!("{label}: {msg}"));

    // Convert the legacy state; anything the tables can't express falls back
    // to one legacy step (which produces the exact legacy outcome for it).
    let (mut mode, mut mem, mut stack) = match s {
        RtlState::External { q, .. } => return Batch::External(0, q.clone()),
        RtlState::Call {
            fname,
            args,
            mem,
            stack,
        } => {
            let Some(fidx) = p
                .syms
                .lookup(fname)
                .and_then(|sy| p.fidx_of_sym.get(sy.index()).copied().flatten())
            else {
                return legacy_one(sem, s);
            };
            let Some(fstack) = stack.iter().map(|f| fast_frame(p, f)).collect() else {
                return legacy_one(sem, s);
            };
            (M::Enter(fidx, args.clone()), mem.clone(), fstack)
        }
        RtlState::Exec { cur, mem, stack } => {
            let Some(fcur) = fast_frame(p, cur) else {
                return legacy_one(sem, s);
            };
            let Some(fstack) = stack.iter().map(|f| fast_frame(p, f)).collect::<Option<Vec<_>>>()
            else {
                return legacy_one(sem, s);
            };
            (M::Exec(fcur), mem.clone(), fstack)
        }
        RtlState::Ret { v, mem, stack } => {
            let Some(fstack) = stack.iter().map(|f| fast_frame(p, f)).collect::<Option<Vec<_>>>()
            else {
                return legacy_one(sem, s);
            };
            (M::Ret(*v), mem.clone(), fstack)
        }
    };
    let mut n: u64 = 0;

    loop {
        match mode {
            M::Enter(fidx, args) => {
                // Legacy `Call` state: one step to enter (alloc + bind).
                if n == fuel_left {
                    let f = &p.funcs[fidx as usize];
                    *s = RtlState::Call {
                        fname: f.name.clone(),
                        args,
                        mem,
                        stack: legacy_stack(p, &stack),
                    };
                    return Batch::Ran(n);
                }
                let f = &p.funcs[fidx as usize];
                if f.params.len() != args.len() {
                    return Batch::Stuck(
                        n,
                        Stuck::new(format!("arity mismatch calling `{}`", f.name)),
                    );
                }
                let sp = mem.alloc(0, f.stack_size);
                let mut regs = vec![Val::Undef; f.nregs];
                for (&pr, &v) in f.params.iter().zip(args.iter()) {
                    regs[pr as usize] = v;
                }
                n += 1;
                mode = M::Exec(FFrame {
                    fidx,
                    ix: f.entry_ix,
                    regs,
                    sp,
                });
            }
            M::Exec(mut cur) => {
                let f = &p.funcs[cur.fidx as usize];
                let eval = |regs: &[Val], sp: BlockId, op: POp| -> Val {
                    match op {
                        POp::Move(r) => regs[r as usize],
                        POp::Const(v) => v,
                        POp::AddrStack(o) => Val::Ptr(sp, o),
                        POp::Unop(u, r) => u.eval(regs[r as usize]),
                        POp::Binop(b, x, y) => b.eval(regs[x as usize], regs[y as usize]),
                        POp::BinopImm(b, x, i) => b.eval(regs[x as usize], i),
                    }
                };
                // The hot inner loop: stays inside one function.
                loop {
                    if n == fuel_left {
                        *s = RtlState::Exec {
                            cur: legacy_frame(p, &cur),
                            mem,
                            stack: legacy_stack(p, &stack),
                        };
                        return Batch::Ran(n);
                    }
                    let Some(uop) = f.code.get(cur.ix as usize) else {
                        // Unresolvable dense index (corrupt successor):
                        // report it as the legacy missing-node stuck.
                        let node = f.node_of_ix.get(cur.ix as usize).copied().unwrap_or(cur.ix);
                        return Batch::Stuck(
                            n,
                            stuck_l(format!("no instruction at {}:{}", f.name, node)),
                        );
                    };
                    match uop {
                        UOp::Move(src, dst, next) => {
                            cur.regs[*dst as usize] = cur.regs[*src as usize];
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Const(v, dst, next) => {
                            cur.regs[*dst as usize] = *v;
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::AddrStack(off, dst, next) => {
                            cur.regs[*dst as usize] = Val::Ptr(cur.sp, *off);
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Unop(op, src, dst, next) => {
                            cur.regs[*dst as usize] = op.eval(cur.regs[*src as usize]);
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Binop(op, x, y, dst, next) => {
                            cur.regs[*dst as usize] =
                                op.eval(cur.regs[*x as usize], cur.regs[*y as usize]);
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::BinopImm(op, x, imm, dst, next) => {
                            cur.regs[*dst as usize] = op.eval(cur.regs[*x as usize], *imm);
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Load(chunk, base, disp, dst, next) => {
                            let addr = cur.regs[*base as usize].add(Val::Long(*disp));
                            match mem.loadv(*chunk, addr) {
                                Ok(v) => cur.regs[*dst as usize] = v,
                                Err(e) => {
                                    return Batch::Stuck(n, stuck_l(format!("load failed: {e}")))
                                }
                            }
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Store(chunk, base, disp, src, next) => {
                            let addr = cur.regs[*base as usize].add(Val::Long(*disp));
                            if let Err(e) = mem.storev(*chunk, addr, cur.regs[*src as usize]) {
                                return Batch::Stuck(n, stuck_l(format!("store failed: {e}")));
                            }
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Cond(r, t, e) => {
                            match cur.regs[*r as usize].truth() {
                                Some(true) => cur.ix = *t,
                                Some(false) => cur.ix = *e,
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        stuck_l("undefined branch condition".into()),
                                    )
                                }
                            }
                            n += 1;
                        }
                        UOp::Nop(next) => {
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::Trap(msg) => {
                            return Batch::Stuck(n, stuck_l(msg.to_string()));
                        }
                        UOp::Return(r) => {
                            let v = match r {
                                Some(r) => cur.regs[*r as usize],
                                None => Val::Undef,
                            };
                            if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                                return Batch::Stuck(
                                    n,
                                    stuck_l(format!("freeing frame: {e}")),
                                );
                            }
                            n += 1;
                            mode = M::Ret(v);
                            break;
                        }
                        UOp::Call {
                            callee,
                            args,
                            dest: _,
                            next: _,
                        } => {
                            let vals: Vec<Val> =
                                args.iter().map(|&r| cur.regs[r as usize]).collect();
                            match callee {
                                PCallee::Internal(fidx2) => {
                                    // Exec → Call costs one step; the frame is
                                    // suspended at the call µop.
                                    n += 1;
                                    let fidx2 = *fidx2;
                                    stack.push(cur);
                                    mode = M::Enter(fidx2, vals);
                                    break;
                                }
                                PCallee::External(vf, sig) => {
                                    n += 1;
                                    let q = CQuery {
                                        vf: *vf,
                                        sig: sig.clone(),
                                        args: vals,
                                        mem: mem.clone(),
                                    };
                                    *s = RtlState::External {
                                        q: q.clone(),
                                        cur: legacy_frame(p, &cur),
                                        stack: legacy_stack(p, &stack),
                                    };
                                    return if n == fuel_left {
                                        Batch::Ran(n)
                                    } else {
                                        Batch::External(n, q)
                                    };
                                }
                                PCallee::Unknown(msg) => {
                                    return Batch::Stuck(n, stuck_l(msg.to_string()));
                                }
                            }
                        }
                        UOp::Tailcall { callee, args } => {
                            let vals: Vec<Val> =
                                args.iter().map(|&r| cur.regs[r as usize]).collect();
                            // The frame is freed *before* the tail call.
                            if let Err(e) = mem.free(cur.sp, 0, f.stack_size) {
                                return Batch::Stuck(
                                    n,
                                    stuck_l(format!("freeing frame for tailcall: {e}")),
                                );
                            }
                            match callee {
                                PCallee::Internal(fidx2) => {
                                    n += 1;
                                    mode = M::Enter(*fidx2, vals);
                                    break;
                                }
                                PCallee::External(vf, sig) => {
                                    n += 1;
                                    let q = CQuery {
                                        vf: *vf,
                                        sig: sig.clone(),
                                        args: vals,
                                        mem: mem.clone(),
                                    };
                                    let mut fr = legacy_frame(p, &cur);
                                    fr.pc = u32::MAX; // poisoned: tailcall never resumes here
                                    *s = RtlState::External {
                                        q: q.clone(),
                                        cur: fr,
                                        stack: legacy_stack(p, &stack),
                                    };
                                    return if n == fuel_left {
                                        Batch::Ran(n)
                                    } else {
                                        Batch::External(n, q)
                                    };
                                }
                                PCallee::Unknown(msg) => {
                                    return Batch::Stuck(n, stuck_l(msg.to_string()));
                                }
                            }
                        }
                        UOp::FusedStoreAddImm {
                            chunk,
                            base,
                            disp,
                            src,
                            second_ix,
                            op,
                            a,
                            imm,
                            dst,
                            next,
                        } => {
                            // First half: the store (may stick at step n).
                            let addr = cur.regs[*base as usize].add(Val::Long(*disp));
                            if let Err(e) = mem.storev(*chunk, addr, cur.regs[*src as usize]) {
                                return Batch::Stuck(n, stuck_l(format!("store failed: {e}")));
                            }
                            n += 1;
                            if n == fuel_left {
                                // Prefix-commit: resume at the unfused half.
                                cur.ix = *second_ix;
                                continue;
                            }
                            cur.regs[*dst as usize] = op.eval(cur.regs[*a as usize], *imm);
                            cur.ix = *next;
                            n += 1;
                        }
                        UOp::FusedAddImmCond {
                            op,
                            a,
                            imm,
                            dst,
                            second_ix,
                            cond,
                            t,
                            e,
                        } => {
                            // The write lands before the condition is read
                            // (`cond` may alias `dst`), as in two steps.
                            cur.regs[*dst as usize] = op.eval(cur.regs[*a as usize], *imm);
                            n += 1;
                            if n == fuel_left {
                                cur.ix = *second_ix;
                                continue;
                            }
                            match cur.regs[*cond as usize].truth() {
                                Some(true) => cur.ix = *t,
                                Some(false) => cur.ix = *e,
                                None => {
                                    return Batch::Stuck(
                                        n,
                                        stuck_l("undefined branch condition".into()),
                                    )
                                }
                            }
                            n += 1;
                        }
                        UOp::FusedOpOp {
                            op1,
                            d1,
                            second_ix,
                            op2,
                            d2,
                            next,
                        } => {
                            cur.regs[*d1 as usize] = eval(&cur.regs, cur.sp, *op1);
                            n += 1;
                            if n == fuel_left {
                                cur.ix = *second_ix;
                                continue;
                            }
                            cur.regs[*d2 as usize] = eval(&cur.regs, cur.sp, *op2);
                            cur.ix = *next;
                            n += 1;
                        }
                    }
                }
            }
            M::Ret(v) => {
                if n == fuel_left {
                    *s = RtlState::Ret {
                        v,
                        mem,
                        stack: legacy_stack(p, &stack),
                    };
                    return Batch::Ran(n);
                }
                let Some(mut caller) = stack.pop() else {
                    return Batch::Final(n, CReply { retval: v, mem });
                };
                let cf = &p.funcs[caller.fidx as usize];
                let Some(UOp::Call { dest, next, .. }) = cf.code.get(caller.ix as usize) else {
                    return Batch::Stuck(n, Stuck::new("caller pc is not at a call"));
                };
                if let Some(d) = dest {
                    caller.regs[*d as usize] = v;
                }
                caller.ix = *next;
                n += 1;
                mode = M::Exec(caller);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::tests::front_end;

    /// SplitMix64 — the fixed-block randomizer shared by the fusion
    /// soundness tests (deterministic, seedable, no external crates).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Run the *unfused* machine (the legacy single-step relation) to its
    /// final answer, counting steps. The fusion corpus is closed code: no
    /// external calls, no stuckness, no events.
    fn unfused_to_final(sem: &RtlSem, s: &mut RtlState) -> (u64, CReply) {
        let mut n = 0u64;
        loop {
            match sem.step(s) {
                Step::Internal(s2, events) => {
                    assert!(events.is_empty(), "RTL internal steps emit no events");
                    *s = s2;
                    n += 1;
                }
                Step::Final(a) => return (n, a),
                Step::External(q) => panic!("unexpected external call: {q:?}"),
                Step::Stuck(e) => panic!("unfused run stuck: {e}"),
            }
        }
    }

    /// The refinement harness: compile `src`, require that `entry`'s
    /// prepared code contains the superinstruction selected by `want`
    /// (guarding against the idiom drifting out of fusion coverage), then
    /// step the fused and unfused forms side by side:
    ///
    /// 1. a full-fuel fused batch must produce the same answer, memory,
    ///    and exact step count as unfused single-stepping;
    /// 2. a batch cut at *every* fuel prefix — including cuts that land
    ///    between the two halves of a fused pair — must write back a state
    ///    from which unfused stepping completes with the same answer in
    ///    exactly the remaining number of steps (prefix-commit).
    fn fusion_refines(
        prog: &RtlProgram,
        tbl: &SymbolTable,
        entry: &str,
        args: Vec<Val>,
        what: &str,
        want: fn(&UOp) -> bool,
    ) {
        let prog = prog.clone();
        let tbl = tbl.clone();
        let sig = prog.function(entry).unwrap().sig.clone();
        let sem = RtlSem::new(prog, tbl.clone());
        let fidx = sem
            .fast
            .syms
            .lookup(entry)
            .and_then(|s| sem.fast.fidx_of_sym[s.index()])
            .unwrap();
        let pf = &sem.fast.funcs[fidx as usize];
        assert!(
            pf.code.iter().any(want),
            "`{entry}` did not fuse a {what}: {:?}",
            pf.code
        );

        let q = CQuery {
            vf: tbl.func_ptr(entry).unwrap(),
            sig,
            args,
            mem: tbl.build_init_mem().unwrap(),
        };
        let s0 = sem.initial(&q).unwrap();

        let mut su = s0.clone();
        let (total, want_reply) = unfused_to_final(&sem, &mut su);
        let want_dbg = format!("{want_reply:?}");

        // 1. Full-fuel fused batch.
        let mut sf = s0.clone();
        match step_batch(&sem, &mut sf, total + 8) {
            Batch::Final(n, reply) => {
                assert_eq!(n, total, "fused step count diverged");
                assert_eq!(format!("{reply:?}"), want_dbg, "fused answer diverged");
            }
            other => panic!("fused run did not complete: {other:?}"),
        }

        // 2. Every fuel prefix (mid-pair cuts included).
        for fuel in 0..=total {
            let mut sf = s0.clone();
            match step_batch(&sem, &mut sf, fuel) {
                Batch::Ran(n) => assert_eq!(n, fuel, "prefix consumed wrong fuel"),
                other => panic!("prefix at fuel {fuel} returned {other:?}"),
            }
            let (rest, reply) = unfused_to_final(&sem, &mut sf);
            assert_eq!(
                fuel + rest,
                total,
                "cut at {fuel} changed the total step count"
            );
            assert_eq!(
                format!("{reply:?}"),
                want_dbg,
                "cut at {fuel} changed the answer"
            );
        }
    }

    #[test]
    fn fused_store_add_imm_refines_unfused() {
        // Store-and-bump: `*p = v; p += 4` with the bump *directly* after
        // the store. The C front-end interposes a `Move` on the temp-based
        // `buf[i] = ...; i = i + 1` spelling, so assemble the pair-adjacent
        // CFG by hand — exactly the shape the fusion pass targets.
        use compcerto_core::symtab::GlobKind;
        use mem::Cmp;
        let f = crate::RtlFunction {
            name: "fill".into(),
            sig: Signature::int_fn(1),
            params: vec![0],
            stack_size: 32,
            entry: 1,
            code: [
                (1, Inst::Op(RtlOp::AddrStack(0), 1, 2)),
                (2, Inst::Op(RtlOp::Move(1), 3, 3)),
                (3, Inst::Op(RtlOp::Int(0), 2, 4)),
                (
                    4,
                    Inst::Op(RtlOp::BinopImm(MBinop::Cmp32(Cmp::Lt), 2, Val::Int(8)), 4, 5),
                ),
                (5, Inst::Cond(4, 6, 10)),
                (6, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 2), 5, 7)),
                (7, Inst::Store(Chunk::I32, 3, 0, 5, 8)),
                (
                    8,
                    Inst::Op(RtlOp::BinopImm(MBinop::Add64, 3, Val::Long(4)), 3, 9),
                ),
                (
                    9,
                    Inst::Op(RtlOp::BinopImm(MBinop::Add32, 2, Val::Int(1)), 2, 4),
                ),
                (10, Inst::Load(Chunk::I32, 1, 28, 6, 11)),
                (11, Inst::Return(Some(6))),
            ]
            .into_iter()
            .collect(),
            next_reg: 7,
        };
        let prog = RtlProgram {
            functions: vec![f],
            externs: vec![],
        };
        let mut tbl = SymbolTable::new();
        tbl.define("fill".into(), GlobKind::Func(Signature::int_fn(1)));
        let mut rng = 0x5eed_0001u64;
        for _ in 0..8 {
            let n = splitmix64(&mut rng) as i32;
            fusion_refines(
                &prog,
                &tbl,
                "fill",
                vec![Val::Int(n)],
                "FusedStoreAddImm",
                |u| matches!(u, UOp::FusedStoreAddImm { .. }),
            );
        }
    }

    #[test]
    fn fused_add_imm_cond_refines_unfused() {
        // Counter-and-loop: compare-with-immediate feeding the branch.
        let src = "
            int acc(int n) {
                int i;
                int s;
                s = 0;
                for (i = 0; i < 8; i = i + 1) { s = s + n; }
                return s;
            }";
        let (_, prog, tbl) = front_end(src);
        let mut rng = 0x5eed_0002u64;
        for _ in 0..8 {
            let n = splitmix64(&mut rng) as i32;
            fusion_refines(
                &prog,
                &tbl,
                "acc",
                vec![Val::Int(n)],
                "FusedAddImmCond",
                |u| matches!(u, UOp::FusedAddImmCond { .. }),
            );
        }
    }

    #[test]
    fn fused_op_op_refines_unfused() {
        // Straight-line arithmetic pairs.
        let src = "
            int poly(int a, int b) {
                int t;
                int u;
                t = a * b;
                u = t + a;
                return u * t - b;
            }";
        let (_, prog, tbl) = front_end(src);
        let mut rng = 0x5eed_0003u64;
        for _ in 0..8 {
            let a = splitmix64(&mut rng) as i32;
            let b = splitmix64(&mut rng) as i32;
            fusion_refines(
                &prog,
                &tbl,
                "poly",
                vec![Val::Int(a), Val::Int(b)],
                "FusedOpOp",
                |u| matches!(u, UOp::FusedOpOp { .. }),
            );
        }
    }
}
