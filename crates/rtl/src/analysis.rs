//! Dataflow analyses over RTL: a generic worklist solver, the value analysis
//! used by `Constprop`/`CSE`/`Deadcode` (paper App. B.3), and liveness.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::bitset::BitSet;
use crate::ptree::PTree;

use compcerto_core::symtab::{GlobKind, SymbolTable};
use mem::{Mem, Val};

use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp};

// ---------------------------------------------------------------------------
// Worklist solvers
// ---------------------------------------------------------------------------

thread_local! {
    static SOLVER_ITERATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Cumulative worklist-solver iterations (node pops across
/// [`forward_solve`] and [`backward_solve`]) on *this thread*.
///
/// A deterministic effort counter for the observability layer (DESIGN.md
/// §10): the worklists are ordered `BTreeSet`s popped in exact RPO /
/// postorder, so for a fixed function the pop sequence — and hence this
/// counter's delta — is byte-reproducible and independent of `--jobs`
/// (each function is solved entirely on one worker thread). Diff two reads
/// to attribute iterations to a region of code.
#[must_use]
pub fn solver_iterations() -> u64 {
    SOLVER_ITERATIONS.with(std::cell::Cell::get)
}

fn tick_solver() {
    SOLVER_ITERATIONS.with(|c| c.set(c.get() + 1));
}

/// Predecessor map of a function's CFG.
///
/// Each CFG edge is recorded once: an instruction that lists the same
/// successor twice (e.g. a `Cond` whose two targets coincide) contributes a
/// single `n → s` edge, not two. Backward solvers re-queue every predecessor
/// of a changed node, so duplicate entries would only cause redundant
/// re-evaluations — but clients that *count* predecessors (edge-split
/// heuristics, validators) need the deduplicated form.
pub fn predecessors(f: &RtlFunction) -> BTreeMap<Node, Vec<Node>> {
    let mut preds: BTreeMap<Node, Vec<Node>> = BTreeMap::new();
    for (n, i) in &f.code {
        let mut succs = i.successors();
        succs.sort_unstable();
        succs.dedup();
        for s in succs {
            preds.entry(s).or_default().push(*n);
        }
    }
    preds
}

/// Dense node numbering for the worklist solvers: reverse postorder of the
/// reachable subgraph, followed by the remaining (unreachable) nodes in
/// ascending id order. The dense index doubles as the worklist priority —
/// ascending visits approximate the analysis-optimal order (RPO forward,
/// postorder backward) *exactly*, rather than relying on `renumber` keeping
/// node ids ascending along the CFG.
///
/// Unreachable nodes are kept (at the tail) because backward clients solve
/// them too: the allocation validator checks live sets for dead code.
fn dense_order(f: &RtlFunction) -> (Vec<Node>, HashMap<Node, usize>) {
    let mut order: Vec<Node> = Vec::with_capacity(f.code.len());
    let mut seen: BTreeSet<Node> = BTreeSet::new();
    if f.code.contains_key(&f.entry) {
        // Iterative DFS with an explicit frame stack; postorder, reversed.
        let mut stack: Vec<(Node, usize)> = vec![(f.entry, 0)];
        seen.insert(f.entry);
        while let Some((n, i)) = stack.pop() {
            let succs = f.code.get(&n).map(|x| x.successors()).unwrap_or_default();
            let mut advanced = false;
            for (j, s) in succs.iter().enumerate().skip(i) {
                if f.code.contains_key(s) && seen.insert(*s) {
                    stack.push((n, j + 1));
                    stack.push((*s, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                order.push(n);
            }
        }
        order.reverse();
    }
    for n in f.code.keys() {
        if !seen.contains(n) {
            order.push(*n);
        }
    }
    let idx = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    (order, idx)
}

/// Assemble the dense solver state back into the public node-keyed map.
fn undense<S>(order: &[Node], state: Vec<Option<S>>) -> BTreeMap<Node, S> {
    order
        .iter()
        .zip(state)
        .filter_map(|(n, s)| s.map(|s| (*n, s)))
        .collect()
}

/// Solve a forward dataflow problem: `state[n]` is the abstract state *before*
/// node `n`; `transfer` computes the state after executing the instruction.
///
/// The solver state is a dense `Vec` indexed by [`dense_order`] (reverse
/// postorder), and the worklist an ordered set of dense indices: popping the
/// smallest visits pending nodes in *exact* RPO, which keeps the number of
/// re-evaluations near the theoretical minimum.
pub fn forward_solve<S, T>(f: &RtlFunction, entry: S, bot: S, transfer: T) -> BTreeMap<Node, S>
where
    S: Clone + PartialEq + JoinSemiLattice,
    T: Fn(Node, &Inst, &S) -> S,
{
    if !f.code.contains_key(&f.entry) {
        // Degenerate CFG: only the entry pseudo-state exists.
        return BTreeMap::from([(f.entry, entry)]);
    }
    let (order, idx) = dense_order(f);
    let mut state: Vec<Option<S>> = order.iter().map(|_| None).collect();
    let Some(&ei) = idx.get(&f.entry) else {
        return BTreeMap::new();
    };
    state[ei] = Some(entry);
    let mut work: BTreeSet<usize> = BTreeSet::from([ei]);
    while let Some(i) = work.pop_first() {
        tick_solver();
        let n = order[i];
        let Some(inst) = f.code.get(&n) else { continue };
        let after = match state[i].as_ref() {
            Some(before) => transfer(n, inst, before),
            None => transfer(n, inst, &bot),
        };
        for s in inst.successors() {
            // Dangling successors (no instruction) carry no state.
            let Some(&si) = idx.get(&s) else { continue };
            let changed = match state[si].as_mut() {
                Some(cur) => cur.join_in_place(&after),
                None => {
                    state[si] = Some(after.clone());
                    true
                }
            };
            if changed {
                work.insert(si);
            }
        }
    }
    undense(&order, state)
}

/// Solve a backward dataflow problem: `state[n]` is the abstract state
/// *before* node `n` (the classical "in" set of a backward analysis);
/// `transfer` computes it from the join of the successors' before-states
/// (the "out" set, passed as the third argument).
///
/// Mirror image of [`forward_solve`], over the same [`JoinSemiLattice`]
/// interface and the same dense numbering: popping the *largest* dense
/// index visits pending nodes in exact postorder — the fast direction for a
/// backward analysis.
pub fn backward_solve<S, T>(f: &RtlFunction, bot: S, transfer: T) -> BTreeMap<Node, S>
where
    S: Clone + PartialEq + JoinSemiLattice,
    T: Fn(Node, &Inst, &S) -> S,
{
    let (order, idx) = dense_order(f);
    // Dense predecessor lists (each CFG edge once, as in [`predecessors`]).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    for (i, n) in order.iter().enumerate() {
        if let Some(inst) = f.code.get(n) {
            let mut succs = inst.successors();
            succs.sort_unstable();
            succs.dedup();
            for s in succs {
                if let Some(&si) = idx.get(&s) {
                    preds[si].push(i);
                }
            }
        }
    }
    let mut state: Vec<Option<S>> = order.iter().map(|_| None).collect();
    let mut work: BTreeSet<usize> = (0..order.len()).collect();
    while let Some(i) = work.pop_last() {
        tick_solver();
        let n = order[i];
        let Some(inst) = f.code.get(&n) else { continue };
        let mut out = bot.clone();
        for s in inst.successors() {
            if let Some(&si) = idx.get(&s) {
                if let Some(ss) = state[si].as_ref() {
                    out.join_in_place(ss);
                }
            }
        }
        let inn = transfer(n, inst, &out);
        let changed = match state[i].as_mut() {
            Some(cur) => cur.join_in_place(&inn),
            None => {
                state[i] = Some(inn);
                true
            }
        };
        if changed {
            work.extend(preds[i].iter().copied());
        }
    }
    undense(&order, state)
}

/// A join-semilattice.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;

    /// Join `other` into `self`; report whether `self` grew. Implementations
    /// should override this when they can detect growth without materializing
    /// a fresh value (the solver calls it once per CFG edge re-evaluation).
    fn join_in_place(&mut self, other: &Self) -> bool {
        let joined = self.join(other);
        if joined != *self {
            *self = joined;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Value analysis (abstract interpretation, paper App. B.3)
// ---------------------------------------------------------------------------

/// Abstract value of a register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AVal {
    /// Unreached / undefined.
    Bot,
    /// A known numeric constant.
    Const(Val),
    /// A pointer to global `ident` plus displacement.
    Global(String, i64),
    /// A pointer into the activation's stack block plus displacement.
    Stack(i64),
    /// Unknown.
    Top,
}

impl AVal {
    /// Join of two abstract values.
    pub fn join(&self, other: &AVal) -> AVal {
        match (self, other) {
            (AVal::Bot, x) | (x, AVal::Bot) => x.clone(),
            (a, b) if a == b => a.clone(),
            _ => AVal::Top,
        }
    }
}

impl fmt::Display for AVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AVal::Bot => write!(f, "⊥"),
            AVal::Const(v) => write!(f, "{v}"),
            AVal::Global(s, d) => write!(f, "&{s}+{d}"),
            AVal::Stack(d) => write!(f, "&stk+{d}"),
            AVal::Top => write!(f, "⊤"),
        }
    }
}

/// Abstract register environment (missing registers are `Bot`).
///
/// Backed by the persistent [`PTree`] (CompCert's `Maps.v`): the solver
/// snapshots one environment per CFG node, so `clone` must be O(1) and
/// `set`/`join` must share structure rather than copy it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AEnv {
    regs: PTree<AVal>,
}

impl AEnv {
    /// Abstract value of `r`.
    pub fn get(&self, r: PReg) -> AVal {
        self.get_ref(r).clone()
    }

    /// Abstract value of `r`, by reference (hot path of the transfer
    /// function: avoids cloning `Global`'s symbol name on every lookup).
    pub fn get_ref(&self, r: PReg) -> &AVal {
        self.regs.get(r).unwrap_or(&AVal::Bot)
    }

    /// Bind `r`.
    pub fn set(&mut self, r: PReg, v: AVal) {
        self.regs = self.regs.set(r, v);
    }
}

impl JoinSemiLattice for AEnv {
    fn join(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.join_in_place(other);
        out
    }

    fn join_in_place(&mut self, other: &Self) -> bool {
        let (joined, changed) = self.regs.join_with(
            &other.regs,
            &|a, b| a.join(b),
            // `Bot` reads back as the default for a missing register:
            // binding it would grow the tree without changing the meaning.
            &|v| match v {
                AVal::Bot => None,
                other => Some(other.clone()),
            },
        );
        self.regs = joined;
        changed
    }
}

/// Static knowledge about read-only globals: the initial memory restricted to
/// `const` variables (CompCert's `romem`).
#[derive(Debug, Clone)]
pub struct Romem {
    symtab: SymbolTable,
    init: Mem,
}

impl Romem {
    /// Build the read-only-globals summary from the symbol table.
    pub fn new(symtab: &SymbolTable) -> Romem {
        let init = symtab.build_init_mem().unwrap_or_default();
        Romem {
            symtab: symtab.clone(),
            init,
        }
    }

    /// The value at `ident + disp` through `chunk`, if `ident` is a read-only
    /// global (so the load must still yield its initial value at run time).
    pub fn load(&self, chunk: mem::Chunk, ident: &str, disp: i64) -> Option<Val> {
        let b = self.symtab.block_of(ident)?;
        match self.symtab.kind_of(b)? {
            GlobKind::Var { readonly: true, .. } => self.init.load(chunk, b, disp).ok(),
            _ => None,
        }
    }
}

/// Abstractly evaluate a pure operation.
pub fn eval_op_abstract(env: &AEnv, op: &RtlOp) -> AVal {
    match op {
        RtlOp::Move(r) => env.get_ref(*r).clone(),
        RtlOp::Int(n) => AVal::Const(Val::Int(*n)),
        RtlOp::Long(n) => AVal::Const(Val::Long(*n)),
        RtlOp::AddrGlobal(s, d) => AVal::Global(s.clone(), *d),
        RtlOp::AddrStack(o) => AVal::Stack(*o),
        RtlOp::Unop(mop, r) => match env.get_ref(*r) {
            AVal::Const(v) => {
                let out = mop.eval(*v);
                if out.is_defined() && !matches!(out, Val::Ptr(_, _)) {
                    AVal::Const(out)
                } else {
                    AVal::Top
                }
            }
            AVal::Bot => AVal::Bot,
            _ => AVal::Top,
        },
        RtlOp::Binop(mop, a, b) => match (env.get_ref(*a), env.get_ref(*b)) {
            (AVal::Const(x), AVal::Const(y)) => match mop.fold(x, y) {
                Some(v) => AVal::Const(v),
                None => AVal::Top,
            },
            // Pointer arithmetic on known symbolic pointers.
            (AVal::Global(s, d), AVal::Const(Val::Long(n))) if *mop == minor::MBinop::Add64 => {
                AVal::Global(s.clone(), d + n)
            }
            (AVal::Stack(d), AVal::Const(Val::Long(n))) if *mop == minor::MBinop::Add64 => {
                AVal::Stack(d + n)
            }
            (AVal::Bot, _) | (_, AVal::Bot) => AVal::Bot,
            _ => AVal::Top,
        },
        RtlOp::BinopImm(mop, a, imm) => match env.get_ref(*a) {
            AVal::Const(x) => match mop.fold(x, imm) {
                Some(v) => AVal::Const(v),
                None => AVal::Top,
            },
            AVal::Global(s, d) if *mop == minor::MBinop::Add64 => match imm {
                Val::Long(n) => AVal::Global(s.clone(), d + n),
                _ => AVal::Top,
            },
            AVal::Stack(d) if *mop == minor::MBinop::Add64 => match imm {
                Val::Long(n) => AVal::Stack(d + n),
                _ => AVal::Top,
            },
            AVal::Bot => AVal::Bot,
            _ => AVal::Top,
        },
    }
}

/// Run the value analysis on a function: abstract register environment
/// *before* each node.
pub fn value_analysis(f: &RtlFunction, romem: &Romem) -> BTreeMap<Node, AEnv> {
    let mut entry = AEnv::default();
    for p in &f.params {
        entry.set(*p, AVal::Top);
    }
    forward_solve(f, entry, AEnv::default(), |_, inst, before| {
        let mut after = before.clone();
        match inst {
            Inst::Op(op, dst, _) => after.set(*dst, eval_op_abstract(before, op)),
            Inst::Load(chunk, base, disp, dst, _) => {
                let v = match before.get_ref(*base) {
                    AVal::Global(s, d) => match romem.load(*chunk, s, d + disp) {
                        Some(v) if !matches!(v, Val::Ptr(_, _)) && v.is_defined() => AVal::Const(v),
                        _ => AVal::Top,
                    },
                    _ => AVal::Top,
                };
                after.set(*dst, v);
            }
            Inst::Call(_, _, _, dst, _) => {
                if let Some(d) = dst {
                    after.set(*d, AVal::Top);
                }
            }
            _ => {}
        }
        after
    })
}

// ---------------------------------------------------------------------------
// Liveness (backward)
// ---------------------------------------------------------------------------

/// Compute the set of registers live *after* each node.
///
/// `live_in[n] = uses(n) ∪ (live_out[n] \ def(n))`,
/// `live_out[n] = ∪ live_in[succ]` — expressed as a [`backward_solve`]
/// instance over the dense [`BitSet`] union lattice (pseudo-registers are
/// already small integers, so the bit index *is* the register: no separate
/// numbering pass), so liveness shares the fixpoint engine (worklist, join
/// discipline) with the forward value analysis and joins sets by word-wise
/// `OR` instead of re-allocating a `BTreeSet` per CFG edge.
pub fn liveness(f: &RtlFunction) -> BTreeMap<Node, BTreeSet<PReg>> {
    let live_in = backward_solve(f, BitSet::new(), |_, inst, out: &BitSet| {
        let mut inn = out.clone();
        if let Some(d) = inst.def() {
            inn.remove(d);
        }
        for u in inst.uses() {
            inn.insert(u);
        }
        inn
    });
    // Derive live-out from live-in of successors.
    f.code
        .iter()
        .map(|(n, inst)| {
            let mut out = BTreeSet::new();
            for s in inst.successors() {
                if let Some(li) = live_in.get(&s) {
                    out.extend(li.iter());
                }
            }
            (*n, out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use minor::MBinop;

    fn const_fn() -> RtlFunction {
        // x2 := 6; x3 := 7; x4 := x2 * x3; return x4
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::Int(6), 2, 1));
        code.insert(1, Inst::Op(RtlOp::Int(7), 3, 2));
        code.insert(2, Inst::Op(RtlOp::Binop(MBinop::Mul32, 2, 3), 4, 3));
        code.insert(3, Inst::Return(Some(4)));
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 5,
        }
    }

    #[test]
    fn constants_propagate() {
        let f = const_fn();
        let romem = Romem::new(&SymbolTable::new());
        let states = value_analysis(&f, &romem);
        // Before the return, x4 is known to be 42.
        let env = &states[&3];
        assert_eq!(env.get(4), AVal::Const(Val::Int(42)));
    }

    #[test]
    fn liveness_flows_backwards() {
        let f = const_fn();
        let live = liveness(&f);
        // After node 2, only x4 is live.
        assert_eq!(live[&2], BTreeSet::from([4]));
        // After node 0, x2 is live (used at node 2).
        assert!(live[&0].contains(&2));
        assert!(!live[&0].contains(&4));
    }

    #[test]
    fn romem_reads_constants() {
        use compcerto_core::symtab::{GlobKind, InitDatum};
        let mut tbl = SymbolTable::new();
        tbl.define(
            "k".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(9)],
                readonly: true,
            },
        );
        tbl.define(
            "w".into(),
            GlobKind::Var {
                init: vec![InitDatum::Int32(9)],
                readonly: false,
            },
        );
        let romem = Romem::new(&tbl);
        assert_eq!(romem.load(mem::Chunk::I32, "k", 0), Some(Val::Int(9)));
        // Writable globals are not compile-time constants.
        assert_eq!(romem.load(mem::Chunk::I32, "w", 0), None);
    }

    #[test]
    fn predecessors_dedupe_parallel_edges() {
        // A `Cond` whose two targets coincide must record a single edge.
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Op(RtlOp::Int(1), 2, 1));
        code.insert(1, Inst::Cond(2, 2, 2)); // both arms fall to node 2
        code.insert(2, Inst::Return(Some(2)));
        let f = RtlFunction {
            name: "g".into(),
            sig: Signature::int_fn(0),
            params: vec![],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 3,
        };
        let preds = predecessors(&f);
        assert_eq!(preds[&2], vec![1], "parallel Cond edge must be deduped");
        assert_eq!(preds[&1], vec![0]);
    }

    #[test]
    fn backward_solve_matches_liveness_contract() {
        // Diamond: 0 -> cond -> {1, 2} -> 3 -> return x5.
        // x4 defined on both arms; x6 only used on one.
        let mut code = BTreeMap::new();
        code.insert(0, Inst::Cond(2, 1, 2));
        code.insert(1, Inst::Op(RtlOp::Move(6), 4, 3));
        code.insert(2, Inst::Op(RtlOp::Int(0), 4, 3));
        code.insert(3, Inst::Op(RtlOp::Move(4), 5, 4));
        code.insert(4, Inst::Return(Some(5)));
        let f = RtlFunction {
            name: "h".into(),
            sig: Signature::int_fn(0),
            params: vec![2, 6],
            stack_size: 0,
            entry: 0,
            code,
            next_reg: 7,
        };
        let live = liveness(&f);
        // After the cond, x6 is live only on the path through node 1 — but
        // live-out is the union over successors, so it appears at node 0.
        assert!(live[&0].contains(&6));
        // After node 3, only x5 survives.
        assert_eq!(live[&3], BTreeSet::from([5]));
        // After the return, nothing.
        assert_eq!(live[&4], BTreeSet::new());
    }

    #[test]
    fn join_goes_to_top_on_conflict() {
        assert_eq!(
            AVal::Const(Val::Int(1)).join(&AVal::Const(Val::Int(2))),
            AVal::Top
        );
        assert_eq!(
            AVal::Bot.join(&AVal::Const(Val::Int(2))),
            AVal::Const(Val::Int(2))
        );
    }
}
