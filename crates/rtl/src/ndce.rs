//! The `Ndce` pass: neededness-driven dead-code elimination (DESIGN.md §12,
//! convention `va·ext ↠ va·ext`).
//!
//! Strengthens [`crate::deadcode`] with the backward *neededness* analysis
//! (CompCert's liveness-of-bits): an instruction whose result is needed at
//! `Nothing` is deleted, and because a dead result propagates `Nothing` to
//! everything it reads, whole dead *chains* disappear in one fixpoint —
//! including chains the plain one-shot liveness pass leaves behind after
//! `vprop` turns their last consumer into a constant.
//!
//! Like [`crate::vprop`], the pass is untrusted: it consumes precomputed
//! per-node needed-*after* environments and every deletion is re-justified
//! by `validate_deadcode` against facts recomputed from the pass input.
//! Only pure operations and loads are ever deleted; stores, calls and
//! control flow are untouchable regardless of the facts.

use std::collections::BTreeMap;

use crate::absint::NeedEnv;
use crate::lang::{Inst, Node, RtlFunction, RtlProgram};

/// Per-function, per-node needed-after environments: what the continuation
/// *after* the node observes of each register.
pub type NeedFacts = BTreeMap<String, BTreeMap<Node, NeedEnv>>;

/// Run neededness-driven dead-code elimination over every function for
/// which facts were solved (functions without facts are left untouched).
pub fn ndce(prog: &RtlProgram, facts: &NeedFacts) -> RtlProgram {
    prog.map_functions(|f| match facts.get(&f.name) {
        Some(envs) => ndce_function(f, envs),
        None => f.clone(),
    })
}

/// Is this instruction deletable when its destination is needed at
/// `Nothing` — a pure operation or a load (never a store, call, or control
/// transfer)?
#[must_use]
pub fn deletable(inst: &Inst) -> bool {
    matches!(inst, Inst::Op(_, _, _) | Inst::Load(_, _, _, _, _))
}

fn ndce_function(f: &RtlFunction, envs: &BTreeMap<Node, NeedEnv>) -> RtlFunction {
    let mut out = f.clone();
    for (n, inst) in &f.code {
        let Some(env) = envs.get(n) else { continue };
        if !deletable(inst) {
            continue;
        }
        let succs = inst.successors();
        let (Some(dst), [next]) = (inst.def(), succs.as_slice()) else {
            continue;
        };
        if env.get(dst).is_nothing() {
            out.code.insert(*n, Inst::Nop(*next));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::Needs;
    use crate::lang::RtlOp;
    use compcerto_core::iface::Signature;
    use minor::MBinop;

    fn fun(code: Vec<(Node, Inst)>) -> RtlFunction {
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(1),
            params: vec![0],
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 8,
        }
    }

    fn facts_for(f: &RtlFunction, envs: Vec<(Node, NeedEnv)>) -> NeedFacts {
        let mut m = BTreeMap::new();
        m.insert(f.name.clone(), envs.into_iter().collect());
        m
    }

    #[test]
    fn dead_chain_is_deleted_but_live_tail_stays() {
        // r1 := r0+1; r2 := r1*2 (r2 dead) — both go; the return survives.
        let f = fun(vec![
            (0, Inst::Op(RtlOp::BinopImm(MBinop::Add32, 0, mem::Val::Int(1)), 1, 1)),
            (1, Inst::Op(RtlOp::BinopImm(MBinop::Mul32, 1, mem::Val::Int(2)), 2, 2)),
            (2, Inst::Return(Some(0))),
        ]);
        // Needed-after: r0 all the way (returned); r1/r2 never.
        let mut e = NeedEnv::default();
        e.add(0, Needs::All);
        let facts = facts_for(&f, vec![(0, e.clone()), (1, e.clone()), (2, NeedEnv::default())]);
        let prog = RtlProgram { functions: vec![f], externs: vec![] };
        let out = ndce(&prog, &facts);
        assert_eq!(out.functions[0].code[&0], Inst::Nop(1));
        assert_eq!(out.functions[0].code[&1], Inst::Nop(2));
        assert_eq!(out.functions[0].code[&2], Inst::Return(Some(0)));
    }

    #[test]
    fn bit_needed_results_survive() {
        let f = fun(vec![
            (0, Inst::Op(RtlOp::BinopImm(MBinop::And32, 0, mem::Val::Int(1)), 1, 1)),
            (1, Inst::Return(Some(1))),
        ]);
        let mut e = NeedEnv::default();
        e.add(1, Needs::Bits(1));
        let facts = facts_for(&f, vec![(0, e), (1, NeedEnv::default())]);
        let prog = RtlProgram { functions: vec![f.clone()], externs: vec![] };
        let out = ndce(&prog, &facts);
        assert_eq!(out.functions[0].code, f.code);
    }

    #[test]
    fn stores_are_never_deleted() {
        let f = fun(vec![
            (0, Inst::Store(mem::Chunk::I32, 0, 0, 0, 1)),
            (1, Inst::Return(None)),
        ]);
        // Even an (impossible) all-dead fact must not delete a store.
        let facts = facts_for(&f, vec![(0, NeedEnv::default()), (1, NeedEnv::default())]);
        let prog = RtlProgram { functions: vec![f.clone()], externs: vec![] };
        let out = ndce(&prog, &facts);
        assert_eq!(out.functions[0].code, f.code);
    }
}
