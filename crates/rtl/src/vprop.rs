//! The `Vprop` pass: interval-driven constant propagation with branch
//! folding (DESIGN.md §12, convention `va·ext ↠ va·ext`).
//!
//! Strengthens [`crate::constprop`] with the interval facts of the abstract
//! interpreter: operations whose abstract result is a *singleton* fold to
//! constants even when no operand is a compile-time constant (e.g. `x % 4`
//! after a widening settled `x ≥ 0`, or a definite interval comparison),
//! algebraic identities collapse to moves, three-address operations with one
//! proven-constant operand strength-reduce to their immediate forms, and
//! conditions with a definite truth value fold to gotos.
//!
//! The pass is *untrusted*: it consumes precomputed per-node abstract
//! environments (`facts`, keyed by function name — solved by
//! `compcerto-validate`'s fixpoint engine) and every rewrite is re-justified
//! after the fact by `validate_constprop` against facts recomputed from the
//! pass *input*. Every rewrite here is semantically **exact** — the rewritten
//! instruction computes the same value (including definedness) in every
//! execution — which is what makes the justification checkable per node.

use std::collections::BTreeMap;

use mem::Val;

use crate::absint::{commutes, eval_op_va, VaEnv, VaVal};
use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};
use minor::MBinop;

/// Per-function, per-node abstract environments (the state *before* the
/// node executes).
pub type VaFacts = BTreeMap<String, BTreeMap<Node, VaEnv>>;

/// Run interval-driven constant propagation over every function for which
/// facts were solved (functions without facts are left untouched).
pub fn vprop(prog: &RtlProgram, facts: &VaFacts) -> RtlProgram {
    prog.map_functions(|f| match facts.get(&f.name) {
        Some(envs) => vprop_function(f, envs),
        None => f.clone(),
    })
}

fn const_op(v: &Val) -> Option<RtlOp> {
    match v {
        Val::Int(n) => Some(RtlOp::Int(*n)),
        Val::Long(n) => Some(RtlOp::Long(*n)),
        _ => None,
    }
}

/// Does `op` with right-hand immediate `imm` act as the identity on every
/// concrete value described by `x` (same value, same definedness)?
fn is_identity(op: MBinop, x: &VaVal, imm: &Val) -> bool {
    use MBinop::*;
    match (op, imm) {
        // `v + 0` / `v - 0`: exact for 32-bit ints with an `Int 0`, 64-bit
        // ints with a `Long 0`, and pointers with either (mem::Val offsets
        // pointers by both widths).
        (Add32 | Sub32, Val::Int(0)) => x.is_i32() || x.is_pointer(),
        (Add64 | Sub64, Val::Long(0)) => x.is_i64() || x.is_pointer(),
        (Add32 | Sub32, Val::Long(0)) | (Add64 | Sub64, Val::Int(0)) => x.is_pointer(),
        (Mul32, Val::Int(1)) => x.is_i32(),
        (Mul64, Val::Long(1)) => x.is_i64(),
        (And32, Val::Int(-1)) | (Or32 | Xor32, Val::Int(0)) => x.is_i32(),
        (And64, Val::Long(-1)) | (Or64 | Xor64, Val::Long(0)) => x.is_i64(),
        // Shift amounts are 32-bit for both widths.
        (Shl32 | Shr32 | Shru32, Val::Int(0)) => x.is_i32(),
        (Shl64 | Shr64 | Shru64, Val::Int(0)) => x.is_i64(),
        _ => false,
    }
}

/// Rewrite one pure operation under the abstract environment `env`, or
/// return `None` to keep it. Exposed so the validator enumerates the exact
/// same rewrite space when re-justifying a differing node.
#[must_use]
pub fn rewrite_op(env: &VaEnv, op: &RtlOp) -> Option<RtlOp> {
    // 1. The whole result is known: fold to a constant / address. A
    //    singleton abstract value concretizes to exactly one defined value,
    //    so the fold is exact.
    let av = eval_op_va(env, op);
    if let Some(v) = av.as_const() {
        if let Some(c) = const_op(&v) {
            if *op != c {
                return Some(c);
            }
            return None;
        }
    }
    match &av {
        VaVal::Global(s, d) if !matches!(op, RtlOp::AddrGlobal(_, _)) => {
            return Some(RtlOp::AddrGlobal(s.clone(), *d));
        }
        VaVal::Stack(d) if !matches!(op, RtlOp::AddrStack(_)) => {
            return Some(RtlOp::AddrStack(*d));
        }
        _ => {}
    }
    // 2. Algebraic identities: collapse to a move when the non-neutral
    //    operand's width/shape is proven (never changes definedness).
    // 3. Strength reduction: a two-register operation with one operand
    //    proven to be a point constant becomes its immediate form (the
    //    immediate equals the runtime value in every execution).
    match op {
        RtlOp::Binop(b, x, y) => {
            let (vx, vy) = (env.get(*x), env.get(*y));
            if let Some(k) = vy.as_const() {
                if is_identity(*b, vx, &k) {
                    return Some(RtlOp::Move(*x));
                }
                return Some(RtlOp::BinopImm(*b, *x, k));
            }
            if let Some(k) = vx.as_const() {
                if commutes(*b) {
                    if is_identity(*b, vy, &k) {
                        return Some(RtlOp::Move(*y));
                    }
                    return Some(RtlOp::BinopImm(*b, *y, k));
                }
                // `k ⋈ y` swaps to `y ⋈⁻¹ k` (mem::Val orderings are
                // swap-symmetric for every defined case).
                match b {
                    MBinop::Cmp32(c) => {
                        return Some(RtlOp::BinopImm(MBinop::Cmp32(c.swap()), *y, k));
                    }
                    MBinop::Cmp64(c) => {
                        return Some(RtlOp::BinopImm(MBinop::Cmp64(c.swap()), *y, k));
                    }
                    _ => {}
                }
            }
            None
        }
        RtlOp::BinopImm(b, x, k) => {
            if is_identity(*b, env.get(*x), k) {
                return Some(RtlOp::Move(*x));
            }
            None
        }
        _ => None,
    }
}

/// The rewrite of a `Cond` whose scrutinee has a definite truth value, if
/// any (sound because intervals exclude `Undef` and pointers are true).
#[must_use]
pub fn rewrite_cond(env: &VaEnv, r: PReg, t: Node, e: Node) -> Option<Inst> {
    match env.get(r).truth() {
        Some(true) => Some(Inst::Nop(t)),
        Some(false) => Some(Inst::Nop(e)),
        None => None,
    }
}

fn vprop_function(f: &RtlFunction, envs: &BTreeMap<Node, VaEnv>) -> RtlFunction {
    let mut out = f.clone();
    for (n, inst) in &f.code {
        let Some(env) = envs.get(n) else { continue };
        match inst {
            Inst::Op(op, dst, next) => {
                if let Some(new) = rewrite_op(env, op) {
                    out.code.insert(*n, Inst::Op(new, *dst, *next));
                }
            }
            Inst::Cond(r, t, e) => {
                if let Some(new) = rewrite_cond(env, *r, *t, *e) {
                    out.code.insert(*n, new);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::Itv;
    use compcerto_core::iface::Signature;
    use mem::Cmp;

    fn fun(code: Vec<(Node, Inst)>) -> RtlFunction {
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(1),
            params: vec![0],
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 8,
        }
    }

    fn facts_for(f: &RtlFunction, envs: Vec<(Node, VaEnv)>) -> VaFacts {
        let mut m = BTreeMap::new();
        m.insert(f.name.clone(), envs.into_iter().collect());
        m
    }

    #[test]
    fn interval_comparison_folds_and_branch_goes_away() {
        // r0 ∈ [0,9]; r1 := r0 < 100 (definitely 1); if r1 … folds.
        let f = fun(vec![
            (0, Inst::Op(RtlOp::BinopImm(MBinop::Cmp32(Cmp::Lt), 0, Val::Int(100)), 1, 1)),
            (1, Inst::Cond(1, 2, 3)),
            (2, Inst::Return(Some(0))),
            (3, Inst::Return(None)),
        ]);
        let mut e0 = VaEnv::default();
        e0.set(0, VaVal::I32(Itv::range(0, 9)));
        let mut e1 = e0.clone();
        e1.set(1, VaVal::int(1));
        let facts = facts_for(&f, vec![(0, e0), (1, e1)]);
        let prog = RtlProgram { functions: vec![f], externs: vec![] };
        let out = vprop(&prog, &facts);
        assert_eq!(out.functions[0].code[&0], Inst::Op(RtlOp::Int(1), 1, 1));
        assert_eq!(out.functions[0].code[&1], Inst::Nop(2));
    }

    #[test]
    fn strength_reduction_to_immediate_form() {
        // r1 proven constant 4 ⇒ r2 := r0 + r1 becomes r2 := r0 +imm 4.
        let f = fun(vec![
            (0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 2, 1)),
            (1, Inst::Return(Some(2))),
        ]);
        let mut e0 = VaEnv::default();
        e0.set(0, VaVal::I32(Itv::full32()));
        e0.set(1, VaVal::int(4));
        let facts = facts_for(&f, vec![(0, e0)]);
        let prog = RtlProgram { functions: vec![f], externs: vec![] };
        let out = vprop(&prog, &facts);
        assert_eq!(
            out.functions[0].code[&0],
            Inst::Op(RtlOp::BinopImm(MBinop::Add32, 0, Val::Int(4)), 2, 1)
        );
    }

    #[test]
    fn left_constant_comparison_swaps() {
        // 10 < r0 becomes r0 > 10.
        let f = fun(vec![
            (0, Inst::Op(RtlOp::Binop(MBinop::Cmp32(Cmp::Lt), 1, 0), 2, 1)),
            (1, Inst::Return(Some(2))),
        ]);
        let mut e0 = VaEnv::default();
        e0.set(0, VaVal::I32(Itv::full32()));
        e0.set(1, VaVal::int(10));
        let facts = facts_for(&f, vec![(0, e0)]);
        let prog = RtlProgram { functions: vec![f], externs: vec![] };
        let out = vprop(&prog, &facts);
        assert_eq!(
            out.functions[0].code[&0],
            Inst::Op(RtlOp::BinopImm(MBinop::Cmp32(Cmp::Gt), 0, Val::Int(10)), 2, 1)
        );
    }

    #[test]
    fn identities_collapse_to_moves_only_with_width_proof() {
        // r0's width proven ⇒ r0 + 0 is a move; width unknown ⇒ untouched
        // (an Undef-preserving rewrite would change definedness).
        let add0 = RtlOp::BinopImm(MBinop::Add32, 0, Val::Int(0));
        let f = fun(vec![
            (0, Inst::Op(add0.clone(), 1, 1)),
            (1, Inst::Return(Some(1))),
        ]);
        let mut known = VaEnv::default();
        known.set(0, VaVal::I32(Itv::full32()));
        let facts = facts_for(&f, vec![(0, known)]);
        let prog = RtlProgram { functions: vec![f.clone()], externs: vec![] };
        let out = vprop(&prog, &facts);
        assert_eq!(out.functions[0].code[&0], Inst::Op(RtlOp::Move(0), 1, 1));

        let top_facts = facts_for(&f, vec![(0, VaEnv::default())]);
        let prog = RtlProgram { functions: vec![f], externs: vec![] };
        let out = vprop(&prog, &top_facts);
        assert_eq!(out.functions[0].code[&0], Inst::Op(add0, 1, 1));
    }

    #[test]
    fn functions_without_facts_are_untouched() {
        let f = fun(vec![(0, Inst::Return(Some(0)))]);
        let prog = RtlProgram { functions: vec![f.clone()], externs: vec![] };
        let out = vprop(&prog, &BTreeMap::new());
        assert_eq!(out.functions[0].code, f.code);
    }
}
