//! The `CSE` pass: local value numbering within basic blocks
//! (paper Table 3, convention `va·ext ↠ va·ext`).
//!
//! Pure operations computing a value already available in a register are
//! replaced by moves; available loads are reused until a store or call
//! invalidates memory equations.

use std::collections::BTreeMap;

use mem::{Chunk, Val};

use crate::analysis::predecessors;
use crate::lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};

/// Run common-subexpression elimination over every function.
pub fn cse(prog: &RtlProgram) -> RtlProgram {
    prog.map_functions(cse_function)
}

/// A value number.
type Vn = u32;

/// Right-hand sides, keyed by the value numbers of their operands.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Int(i32),
    Long(i64),
    AddrGlobal(String, i64),
    AddrStack(i64),
    Unop(minor::MUnop, Vn),
    Binop(minor::MBinop, Vn, Vn),
    BinopImm(minor::MBinop, Vn, ValKey),
    Load(Chunk, Vn, i64),
}

/// An orderable projection of immediate values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ValKey {
    Int(i32),
    Long(i64),
    Other,
}

fn val_key(v: &Val) -> ValKey {
    match v {
        Val::Int(n) => ValKey::Int(*n),
        Val::Long(n) => ValKey::Long(*n),
        _ => ValKey::Other,
    }
}

#[derive(Default)]
struct Numbering {
    next_vn: Vn,
    reg_vn: BTreeMap<PReg, Vn>,
    /// Known equations: key → (value number, a register holding it).
    table: BTreeMap<Key, (Vn, PReg)>,
}

impl Numbering {
    /// Is `(vn, holder)` still valid — i.e. does the holder register still
    /// contain the numbered value? (It may have been overwritten since the
    /// equation was recorded.)
    fn holder_valid(&self, vn: Vn, holder: PReg) -> bool {
        self.reg_vn.get(&holder) == Some(&vn)
    }

    fn vn_of(&mut self, r: PReg) -> Vn {
        if let Some(v) = self.reg_vn.get(&r) {
            return *v;
        }
        let v = self.fresh();
        self.reg_vn.insert(r, v);
        v
    }

    fn fresh(&mut self) -> Vn {
        let v = self.next_vn;
        self.next_vn += 1;
        v
    }

    /// Invalidate all memory equations (after stores and calls).
    fn kill_loads(&mut self) {
        self.table.retain(|k, _| !matches!(k, Key::Load(_, _, _)));
    }

    fn key_of_op(&mut self, op: &RtlOp) -> Option<Key> {
        Some(match op {
            RtlOp::Move(_) => return None,
            RtlOp::Int(n) => Key::Int(*n),
            RtlOp::Long(n) => Key::Long(*n),
            RtlOp::AddrGlobal(s, d) => Key::AddrGlobal(s.clone(), *d),
            RtlOp::AddrStack(o) => Key::AddrStack(*o),
            RtlOp::Unop(m, r) => Key::Unop(*m, self.vn_of(*r)),
            RtlOp::Binop(m, a, b) => Key::Binop(*m, self.vn_of(*a), self.vn_of(*b)),
            RtlOp::BinopImm(m, a, i) => Key::BinopImm(*m, self.vn_of(*a), val_key(i)),
        })
    }
}

/// Compute the basic-block leaders: the entry, branch targets of conditional
/// jumps, and any node with several predecessors.
fn leaders(f: &RtlFunction) -> Vec<Node> {
    let preds = predecessors(f);
    let mut out = vec![f.entry];
    for (n, inst) in &f.code {
        if let Inst::Cond(_, t, e) = inst {
            out.push(*t);
            out.push(*e);
        }
        if preds.get(n).map(|p| p.len()).unwrap_or(0) > 1 {
            out.push(*n);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn cse_function(f: &RtlFunction) -> RtlFunction {
    let mut out = f.clone();
    let leader_list = leaders(f);
    for leader in leader_list.iter().copied() {
        let mut num = Numbering::default();
        let mut n = leader;
        // Walk the straight-line block.
        loop {
            let Some(inst) = f.code.get(&n) else { break };
            match inst {
                Inst::Op(op, dst, next) => {
                    if let Some(key) = num.key_of_op(op) {
                        match num.table.get(&key).copied() {
                            // Available only while the holder register still
                            // carries the value.
                            Some((vn, src)) if num.holder_valid(vn, src) => {
                                out.code.insert(n, Inst::Op(RtlOp::Move(src), *dst, *next));
                                num.reg_vn.insert(*dst, vn);
                            }
                            _ => {
                                let vn = num.fresh();
                                num.reg_vn.insert(*dst, vn);
                                num.table.insert(key, (vn, *dst));
                            }
                        }
                    } else if let RtlOp::Move(src) = op {
                        let vn = num.vn_of(*src);
                        num.reg_vn.insert(*dst, vn);
                    }
                    n = *next;
                }
                Inst::Load(chunk, base, disp, dst, next) => {
                    let key = Key::Load(*chunk, num.vn_of(*base), *disp);
                    match num.table.get(&key).copied() {
                        Some((vn, src)) if num.holder_valid(vn, src) => {
                            out.code.insert(n, Inst::Op(RtlOp::Move(src), *dst, *next));
                            num.reg_vn.insert(*dst, vn);
                        }
                        _ => {
                            let vn = num.fresh();
                            num.reg_vn.insert(*dst, vn);
                            num.table.insert(key, (vn, *dst));
                        }
                    }
                    n = *next;
                }
                Inst::Store(_, _, _, _, next) => {
                    num.kill_loads();
                    n = *next;
                }
                Inst::Call(_, _, _, dst, next) => {
                    num.kill_loads();
                    if let Some(d) = dst {
                        let vn = num.fresh();
                        num.reg_vn.insert(*d, vn);
                    }
                    n = *next;
                }
                Inst::Nop(next) => {
                    n = *next;
                }
                Inst::Cond(_, _, _) | Inst::Return(_) | Inst::Tailcall(_, _, _) => break,
            }
            // Stop at the next leader (it starts its own block).
            if leader_list.binary_search(&n).is_ok() {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::iface::Signature;
    use minor::MBinop;

    fn fun(code: Vec<(Node, Inst)>, params: Vec<PReg>) -> RtlFunction {
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(params.len()),
            params,
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 100,
        }
    }

    #[test]
    fn reuses_pure_computation() {
        // x2 := x0+x1; x3 := x0+x1; return x3  ==>  x3 := move x2
        let f = fun(
            vec![
                (0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 2, 1)),
                (1, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 3, 2)),
                (2, Inst::Return(Some(3))),
            ],
            vec![0, 1],
        );
        let out = cse_function(&f);
        assert_eq!(out.code[&1], Inst::Op(RtlOp::Move(2), 3, 2));
    }

    #[test]
    fn reuses_loads_until_store() {
        let f = fun(
            vec![
                (0, Inst::Load(Chunk::I32, 0, 0, 2, 1)),
                (1, Inst::Load(Chunk::I32, 0, 0, 3, 2)), // same load: reused
                (2, Inst::Store(Chunk::I32, 0, 0, 1, 3)),
                (3, Inst::Load(Chunk::I32, 0, 0, 4, 4)), // after store: kept
                (4, Inst::Return(Some(4))),
            ],
            vec![0, 1],
        );
        let out = cse_function(&f);
        assert_eq!(out.code[&1], Inst::Op(RtlOp::Move(2), 3, 2));
        assert!(matches!(out.code[&3], Inst::Load(_, _, _, _, _)));
    }

    #[test]
    fn blocks_are_isolated() {
        // The computation in the branch target cannot see the one before the
        // branch (conservative local value numbering).
        let f = fun(
            vec![
                (0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 2, 1)),
                (1, Inst::Cond(2, 2, 3)),
                (2, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 3, 4)),
                (3, Inst::Return(Some(2))),
                (4, Inst::Return(Some(3))),
            ],
            vec![0, 1],
        );
        let out = cse_function(&f);
        // Node 2 is a leader (branch target): not rewritten.
        assert!(matches!(
            out.code[&2],
            Inst::Op(RtlOp::Binop(_, _, _), _, _)
        ));
    }

    #[test]
    fn behaviour_preserved() {
        use crate::gen::tests::front_end;
        use crate::sem::RtlSem;
        use compcerto_core::iface::{CQuery, CReply};
        use compcerto_core::lts::run;

        let src = "
            long quad(long a, long b) {
                long x; long y;
                x = (a + b) * (a + b);
                y = (a + b) * (a + b);
                return x + y;
            }";
        let (_, r, tbl) = front_end(src);
        let opt = cse(&r);
        let mem0 = tbl.build_init_mem().unwrap();
        let q = CQuery {
            vf: tbl.func_ptr("quad").unwrap(),
            sig: r.function("quad").unwrap().sig.clone(),
            args: vec![Val::Long(3), Val::Long(4)],
            mem: mem0,
        };
        let s1 = RtlSem::new(r, tbl.clone());
        let s2 = RtlSem::new(opt, tbl);
        let r1 = run(&s1, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        let r2 = run(&s2, &q, &mut |_: &CQuery| None::<CReply>, 100_000).expect_complete();
        assert_eq!(r1.retval, Val::Long(98));
        assert!(r1.retval.lessdef(&r2.retval));
        assert!(mem::extends(&r1.mem, &r2.mem));
    }
}
