//! The `Deadcode` pass: remove pure instructions whose result is never used
//! (paper Table 3, convention `va·ext ↠ va·ext`).
//!
//! Removal can only turn defined behaviour into *more* defined behaviour
//! (a dead load that would have trapped disappears), which is why the pass
//! sits under an `ext`-flavoured convention rather than the identity.

use crate::analysis::liveness;
use crate::lang::{Inst, RtlFunction, RtlProgram};

/// Run dead-code elimination over every function.
pub fn deadcode(prog: &RtlProgram) -> RtlProgram {
    prog.map_functions(deadcode_function)
}

fn deadcode_function(f: &RtlFunction) -> RtlFunction {
    let live_out = liveness(f);
    let mut out = f.clone();
    for (n, inst) in &f.code {
        let dead = match inst {
            Inst::Op(_, dst, _) | Inst::Load(_, _, _, dst, _) => {
                !live_out.get(n).map(|l| l.contains(dst)).unwrap_or(true)
            }
            _ => false,
        };
        if dead {
            let next = inst.successors()[0];
            out.code.insert(*n, Inst::Nop(next));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{PReg, RtlOp};
    use compcerto_core::iface::Signature;
    use minor::MBinop;

    fn fun(code: Vec<(u32, Inst)>, params: Vec<PReg>) -> RtlFunction {
        RtlFunction {
            name: "f".into(),
            sig: Signature::int_fn(params.len()),
            params,
            stack_size: 0,
            entry: 0,
            code: code.into_iter().collect(),
            next_reg: 100,
        }
    }

    #[test]
    fn removes_unused_ops() {
        // x2 := x0+x1 (dead); return x0
        let f = fun(
            vec![
                (0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 2, 1)),
                (1, Inst::Return(Some(0))),
            ],
            vec![0, 1],
        );
        let out = deadcode_function(&f);
        assert_eq!(out.code[&0], Inst::Nop(1));
    }

    #[test]
    fn removes_dead_loads_but_not_stores() {
        let f = fun(
            vec![
                (0, Inst::Load(mem::Chunk::I32, 0, 0, 2, 1)), // dead load
                (1, Inst::Store(mem::Chunk::I32, 0, 0, 1, 2)), // store stays
                (2, Inst::Return(Some(1))),
            ],
            vec![0, 1],
        );
        let out = deadcode_function(&f);
        assert_eq!(out.code[&0], Inst::Nop(1));
        assert!(matches!(out.code[&1], Inst::Store(_, _, _, _, _)));
    }

    #[test]
    fn keeps_live_chains() {
        // x2 := x0+x1; return x2 — everything live.
        let f = fun(
            vec![
                (0, Inst::Op(RtlOp::Binop(MBinop::Add32, 0, 1), 2, 1)),
                (1, Inst::Return(Some(2))),
            ],
            vec![0, 1],
        );
        let out = deadcode_function(&f);
        assert_eq!(out.code, f.code);
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // x2 := 0; L: if x0 goto 2 else 4; x2 := x2 + x1; goto L; return x2
        let f = fun(
            vec![
                (0, Inst::Op(RtlOp::Int(0), 2, 1)),
                (1, Inst::Cond(0, 2, 4)),
                (2, Inst::Op(RtlOp::Binop(MBinop::Add32, 2, 1), 2, 3)),
                (3, Inst::Op(RtlOp::Int(0), 0, 1)), // kill the loop condition
                (4, Inst::Return(Some(2))),
            ],
            vec![0, 1],
        );
        let mut code = f.code.clone();
        let out = deadcode_function(&f);
        // Nothing is dead: x2 feeds the return through the back edge.
        code.remove(&99);
        assert_eq!(out.code, code);
    }
}
