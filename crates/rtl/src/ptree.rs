//! A persistent radix-2 trie over `u32` keys — CompCert's `lib/Maps.v`
//! `PTree`, the data structure its dataflow analyses store their per-node
//! abstract environments in.
//!
//! The operations the solver loop needs are cheap in exactly the way the
//! analyses use them: `clone` is O(1) (an `Rc` bump), `set` path-copies
//! O(log key) nodes, and [`PTree::join_with`] reuses whole subtrees via
//! pointer equality, so joining a state into itself (the common case once
//! the fixpoint nears) touches nothing.

use std::rc::Rc;

type Link<V> = Option<Rc<PNode<V>>>;

#[derive(Debug, PartialEq, Eq)]
struct PNode<V> {
    val: Option<V>,
    l: Link<V>,
    r: Link<V>,
}

/// A persistent map from `u32` to `V` with structural sharing.
///
/// # Example
///
/// ```
/// use rtl::ptree::PTree;
/// let a = PTree::new().set(3, "x");
/// let b = a.set(9, "y");      // `a` is untouched
/// assert_eq!(a.get(9), None);
/// assert_eq!(b.get(3), Some(&"x"));
/// assert_eq!(b.get(9), Some(&"y"));
/// ```
#[derive(Debug)]
pub struct PTree<V>(Link<V>);

impl<V> Clone for PTree<V> {
    fn clone(&self) -> Self {
        PTree(self.0.clone())
    }
}

impl<V> Default for PTree<V> {
    fn default() -> Self {
        PTree(None)
    }
}

impl<V: PartialEq> PartialEq for PTree<V> {
    fn eq(&self, other: &Self) -> bool {
        eq_link(&self.0, &other.0)
    }
}

impl<V: Eq> Eq for PTree<V> {}

fn eq_link<V: PartialEq>(a: &Link<V>, b: &Link<V>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            Rc::ptr_eq(x, y) || (x.val == y.val && eq_link(&x.l, &y.l) && eq_link(&x.r, &y.r))
        }
        _ => false,
    }
}

/// Build a node, pruning empty leaves (keeps trees canonical: equal contents
/// built by any operation sequence compare equal structurally).
fn mk<V>(val: Option<V>, l: Link<V>, r: Link<V>) -> Link<V> {
    if val.is_none() && l.is_none() && r.is_none() {
        None
    } else {
        Some(Rc::new(PNode { val, l, r }))
    }
}

impl<V> PTree<V> {
    /// The empty map.
    pub fn new() -> Self {
        PTree(None)
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Value at `key`, if present.
    pub fn get(&self, key: u32) -> Option<&V> {
        let mut link = &self.0;
        let mut k = key;
        loop {
            let node = link.as_ref()?;
            if k == 0 {
                return node.val.as_ref();
            }
            link = if k & 1 == 0 { &node.l } else { &node.r };
            k >>= 1;
        }
    }

    /// Iterate over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &V)> {
        let mut stack: Vec<(&Link<V>, u32, u32)> = vec![(&self.0, 0, 0)];
        std::iter::from_fn(move || loop {
            let (link, key, depth) = stack.pop()?;
            let node = match link {
                Some(n) => n,
                None => continue,
            };
            stack.push((&node.l, key, depth + 1));
            stack.push((&node.r, key | (1 << depth), depth + 1));
            if let Some(v) = &node.val {
                return Some((key, v));
            }
        })
    }

    /// Number of entries (O(n): walks the trie).
    pub fn len(&self) -> usize {
        self.iter().count()
    }
}

impl<V: Clone> PTree<V> {
    /// The map with `key` bound to `v` (path-copying; `self` is unchanged).
    #[must_use]
    pub fn set(&self, key: u32, v: V) -> Self {
        PTree(set_link(&self.0, key, v))
    }
}

fn set_link<V: Clone>(link: &Link<V>, k: u32, v: V) -> Link<V> {
    let (val, l, r) = match link {
        Some(n) => (n.val.clone(), n.l.clone(), n.r.clone()),
        None => (None, None, None),
    };
    if k == 0 {
        mk(Some(v), l, r)
    } else if k & 1 == 0 {
        let child = set_link(&l, k >> 1, v);
        mk(val, child, r)
    } else {
        let child = set_link(&r, k >> 1, v);
        mk(val, l, child)
    }
}

impl<V: Clone + PartialEq> PTree<V> {
    /// Pointwise join for dataflow solvers: the result binds every key of
    /// either map, combining values with `f`. Returns the joined map and
    /// whether it differs from `self`.
    ///
    /// `f`'s contract (the join-semilattice laws the caller's lattice already
    /// satisfies): `f(v, v) = v`, and keys only in `self` keep their value.
    /// Keys only in `other` are admitted through `absorb`: `absorb(v)` is
    /// `None` when binding `v` would not change the map's *meaning* (e.g. a
    /// lattice bottom that reads back as the default) — this keeps the
    /// changed-flag honest.
    ///
    /// Subtrees shared between the two maps (or absent from `other`) are
    /// reused wholesale — joining a state with itself is O(1).
    pub fn join_with(
        &self,
        other: &Self,
        f: &impl Fn(&V, &V) -> V,
        absorb: &impl Fn(&V) -> Option<V>,
    ) -> (Self, bool) {
        let (link, changed) = join_link(&self.0, &other.0, f, absorb);
        (PTree(link), changed)
    }
}

fn join_link<V: Clone + PartialEq>(
    a: &Link<V>,
    b: &Link<V>,
    f: &impl Fn(&V, &V) -> V,
    absorb: &impl Fn(&V) -> Option<V>,
) -> (Link<V>, bool) {
    match (a, b) {
        (None, None) => (None, false),
        // Keys only in `a` keep their value: reuse the subtree, unchanged.
        (Some(_), None) => (a.clone(), false),
        (Some(x), Some(y)) if Rc::ptr_eq(x, y) => (a.clone(), false),
        // Keys only in `b`: admit through `absorb`.
        (None, Some(y)) => {
            let link = absorb_link(y, absorb);
            let changed = link.is_some();
            (link, changed)
        }
        (Some(x), Some(y)) => {
            let (l, lc) = join_link(&x.l, &y.l, f, absorb);
            let (r, rc) = join_link(&x.r, &y.r, f, absorb);
            let (val, vc) = match (&x.val, &y.val) {
                (Some(xv), Some(yv)) => {
                    let j = f(xv, yv);
                    let changed = j != *xv;
                    (Some(j), changed)
                }
                (Some(xv), None) => (Some(xv.clone()), false),
                (None, Some(yv)) => match absorb(yv) {
                    Some(v) => (Some(v), true),
                    None => (None, false),
                },
                (None, None) => (None, false),
            };
            if lc || rc || vc {
                (mk(val, l, r), true)
            } else {
                (a.clone(), false)
            }
        }
    }
}

fn absorb_link<V: Clone + PartialEq>(
    b: &Rc<PNode<V>>,
    absorb: &impl Fn(&V) -> Option<V>,
) -> Link<V> {
    let val = b.val.as_ref().and_then(absorb);
    let l = b.l.as_ref().and_then(|n| absorb_link(n, absorb));
    let r = b.r.as_ref().and_then(|n| absorb_link(n, absorb));
    mk(val, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gets_nothing() {
        let t: PTree<i32> = PTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(17), None);
    }

    #[test]
    fn set_then_get() {
        let t = PTree::new().set(0, "a").set(5, "b").set(1024, "c");
        assert_eq!(t.get(0), Some(&"a"));
        assert_eq!(t.get(5), Some(&"b"));
        assert_eq!(t.get(1024), Some(&"c"));
        assert_eq!(t.get(6), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn set_is_persistent() {
        let a = PTree::new().set(3, 1);
        let b = a.set(3, 2);
        assert_eq!(a.get(3), Some(&1));
        assert_eq!(b.get(3), Some(&2));
    }

    #[test]
    fn equal_contents_compare_equal() {
        let a = PTree::new().set(2, 10).set(7, 20);
        let b = PTree::new().set(7, 20).set(2, 10);
        assert_eq!(a, b);
        assert_ne!(a, b.set(2, 11));
        assert_ne!(a, PTree::new());
    }

    #[test]
    fn iter_visits_every_binding() {
        let t = PTree::new().set(1, "x").set(0, "y").set(33, "z");
        let mut got: Vec<(u32, &&str)> = t.iter().collect();
        got.sort();
        assert_eq!(got, vec![(0, &"y"), (1, &"x"), (33, &"z")]);
    }

    #[test]
    fn join_with_self_is_noop() {
        let t = PTree::new().set(4, 7).set(9, 8);
        let (j, changed) = t.join_with(&t, &|a, b| (*a).max(*b), &|v| Some(*v));
        assert!(!changed);
        assert_eq!(j, t);
    }

    #[test]
    fn join_grows_on_new_keys_and_bigger_values() {
        let a = PTree::new().set(1, 5);
        let b = PTree::new().set(1, 9).set(2, 3);
        let (j, changed) = a.join_with(&b, &|x, y| (*x).max(*y), &|v| Some(*v));
        assert!(changed);
        assert_eq!(j.get(1), Some(&9));
        assert_eq!(j.get(2), Some(&3));
    }

    #[test]
    fn join_absorb_filters_bottom() {
        // Here 0 plays "bottom": binding it is meaningless.
        let a = PTree::new().set(1, 5);
        let b = PTree::new().set(2, 0);
        let (j, changed) = a.join_with(&b, &|x, y| (*x).max(*y), &|v| {
            if *v == 0 {
                None
            } else {
                Some(*v)
            }
        });
        assert!(!changed);
        assert_eq!(j, a);
    }

    #[test]
    fn join_keeps_left_only_keys_without_change() {
        let a = PTree::new().set(1, 5).set(40, 6);
        let b = PTree::new().set(1, 5);
        let (j, changed) = a.join_with(&b, &|x, y| (*x).max(*y), &|v| Some(*v));
        assert!(!changed);
        assert_eq!(j, a);
    }
}
