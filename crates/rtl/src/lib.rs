//! # RTL: the register-transfer language of CompCertO-rs
//!
//! A control-flow graph of three-address instructions over pseudo-registers,
//! with its open semantics over `C ↠ C` ([`sem::RtlSem`]) and the
//! optimization passes of paper Table 3:
//!
//! | Pass | Module | Convention |
//! |------|--------|------------|
//! | RTLgen | [`gen`] | `ext ↠ ext` |
//! | Tailcall† | [`tailcall`] | `ext ↠ ext` |
//! | Inlining | [`inlining`] | `injp ↠ inj` |
//! | Renumber | [`renumber`] | `id ↠ id` |
//! | Constprop† | [`constprop`] | `va·ext ↠ va·ext` |
//! | CSE† | [`cse`] | `va·ext ↠ va·ext` |
//! | Deadcode† | [`deadcode`] | `va·ext ↠ va·ext` |
//! | Vprop† | [`vprop`] | `va·ext ↠ va·ext` |
//! | Ndce† | [`ndce`] | `va·ext ↠ va·ext` |
//!
//! († = optional optimizations; the final convention `C` is insensitive to
//! whether they run, paper §3.4.)
//!
//! The value-analysis framework backing the `va` passes lives in
//! [`analysis`]; the interval/neededness abstract domains behind the
//! `vprop`/`ndce` pair (DESIGN.md §12) live in [`absint`], with their
//! fixpoint solvers and translation validators in `compcerto-validate`.

pub mod absint;
pub mod analysis;
pub mod bitset;
pub mod constprop;
pub mod cse;
pub mod deadcode;
mod fast;
pub mod gen;
pub mod inlining;
pub mod lang;
pub mod ndce;
pub mod ptree;
pub mod renumber;
pub mod sem;
pub mod tailcall;
pub mod vprop;

pub use absint::{
    commutes, eval_binop_va, eval_op_va, eval_unop_va, op_arg_needs, up_to_msb, Itv, NeedEnv,
    Needs, VaEnv, VaVal,
};
pub use analysis::{
    backward_solve, forward_solve, liveness, predecessors, solver_iterations, value_analysis,
    AEnv, AVal, JoinSemiLattice, Romem,
};
pub use bitset::BitSet;
pub use constprop::constprop;
pub use cse::cse;
pub use deadcode::deadcode;
pub use gen::rtlgen;
pub use inlining::inlining;
pub use lang::{Inst, Node, PReg, RtlFunction, RtlOp, RtlProgram};
pub use ndce::ndce;
pub use renumber::renumber;
pub use sem::{RtlFrame, RtlSem, RtlState};
pub use tailcall::tailcall;
pub use vprop::vprop;
