//! A dense bitset over `u64` words — the high-throughput set-union lattice
//! of the dataflow solvers.
//!
//! Liveness and the maybe-uninitialized analysis join sets on every CFG edge
//! re-evaluation; over a `BTreeSet` each join walks tree nodes and may
//! reallocate. Over a dense numbering (registers are already small integers;
//! the generic engine numbers arbitrary variables), a join is a word-wise
//! `OR` with a changed-bit accumulator: one cache-friendly pass, no
//! allocation once the word vector has grown to the universe size.
//!
//! Equality is *semantic*: trailing zero words are ignored, so a set that
//! grew and shrank compares equal to one that never grew. This is what lets
//! [`BitSet`] implement [`JoinSemiLattice`](crate::analysis::JoinSemiLattice)
//! directly (the solvers detect fixpoints via `join_in_place`'s changed
//! bit, never via `==`, but the lattice laws still demand honest equality).

use std::fmt;

use crate::analysis::JoinSemiLattice;

/// Bits per storage word.
const WORD_BITS: u32 = 64;

/// A growable dense set of `u32` indices.
#[derive(Clone, Default, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set.
    pub fn new() -> BitSet {
        BitSet { words: Vec::new() }
    }

    /// The empty set, with capacity for indices `< nbits` preallocated.
    pub fn with_capacity(nbits: u32) -> BitSet {
        BitSet {
            words: Vec::with_capacity(nbits.div_ceil(WORD_BITS) as usize),
        }
    }

    #[inline]
    fn split(bit: u32) -> (usize, u64) {
        ((bit / WORD_BITS) as usize, 1u64 << (bit % WORD_BITS))
    }

    /// Whether `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: u32) -> bool {
        let (w, m) = Self::split(bit);
        self.words.get(w).is_some_and(|x| x & m != 0)
    }

    /// Insert `bit`; true if it was not already present.
    #[inline]
    pub fn insert(&mut self, bit: u32) -> bool {
        let (w, m) = Self::split(bit);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// Remove `bit`; true if it was present.
    #[inline]
    pub fn remove(&mut self, bit: u32) -> bool {
        let (w, m) = Self::split(bit);
        match self.words.get_mut(w) {
            Some(x) if *x & m != 0 => {
                *x &= !m;
                true
            }
            _ => false,
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Number of elements (population count).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// In-place union; true if `self` gained at least one bit. This is the
    /// solver's hot operation: word-wise `OR`, no allocation unless `other`
    /// is wider than `self`.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            grew |= *b & !*a;
            *a |= *b;
        }
        grew != 0
    }

    /// Iterate the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(bit)
            })
            .map(move |b| wi as u32 * WORD_BITS + b)
        })
    }
}

impl PartialEq for BitSet {
    /// Semantic equality: trailing zero words do not distinguish sets.
    fn eq(&self, other: &BitSet) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|w| *w == 0)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> BitSet {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl Extend<u32> for BitSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl JoinSemiLattice for BitSet {
    fn join(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    fn join_in_place(&mut self, other: &Self) -> bool {
        self.union_with(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(s.insert(200));
        assert!(!s.insert(3));
        assert!(s.contains(3) && s.contains(200) && !s.contains(64));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.remove(9999));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_ascending() {
        let s: BitSet = [190, 0, 63, 64, 65].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 190]);
    }

    #[test]
    fn union_reports_growth() {
        let mut a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [2, 130].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union must be a no-op");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a: BitSet = [5].into_iter().collect();
        let b: BitSet = [5].into_iter().collect();
        a.insert(500);
        a.remove(500);
        assert_eq!(a, b);
        assert_eq!(b, a);
        a.insert(500);
        assert_ne!(a, b);
    }

    /// Word-boundary edges: bits 63, 64 and 65 straddle the first/second
    /// `u64`; every operation must agree on which side of the boundary each
    /// lives on.
    #[test]
    fn word_boundary_bits() {
        for bit in [63u32, 64, 65] {
            let mut s = BitSet::new();
            assert!(!s.contains(bit));
            assert!(s.insert(bit), "bit {bit}: first insert is fresh");
            assert!(!s.insert(bit), "bit {bit}: reinsert is not");
            assert!(s.contains(bit));
            assert_eq!(s.len(), 1, "bit {bit}");
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![bit]);
            // Neighbors on the other side of the boundary are unaffected.
            assert!(!s.contains(bit.wrapping_sub(1)) || bit == 0);
            assert!(!s.contains(bit + 1));
            assert!(s.remove(bit));
            assert!(s.is_empty(), "bit {bit}");
        }
        // All three together occupy exactly two words and iterate in order.
        let s: BitSet = [65, 63, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert_eq!(s.len(), 3);
    }

    /// `union_with`'s changed-bit return at word boundaries: growing only in
    /// a *new trailing word* must report `true`, re-unioning must report
    /// `false`, and a union that adds nothing but forces a resize (other is
    /// wider but only with zero words) must report `false`.
    #[test]
    fn union_with_changed_bit_at_word_boundaries() {
        // Gain confined to the second word.
        let mut a: BitSet = [63].into_iter().collect();
        let b: BitSet = [64].into_iter().collect();
        assert!(a.union_with(&b), "gaining bit 64 must report change");
        assert!(!a.union_with(&b), "idempotent re-union");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![63, 64]);

        // Gain confined to the third word (65 already shared, 128 new).
        let mut c: BitSet = [63, 65].into_iter().collect();
        let d: BitSet = [65, 128].into_iter().collect();
        assert!(c.union_with(&d));
        assert!(!c.union_with(&d));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![63, 65, 128]);

        // `other` wider only by an explicitly zeroed word: no semantic gain,
        // so no change — even though `self`'s word vector grows.
        let mut e: BitSet = [63].into_iter().collect();
        let mut wide = BitSet::new();
        wide.insert(64 + 63); // occupy word 1,
        wide.remove(64 + 63); // then empty it again (words stay allocated).
        assert!(!e.union_with(&wide), "zero-word widening is not a change");
        assert_eq!(e.iter().collect::<Vec<_>>(), vec![63]);
        // And semantic equality still holds against the never-widened set.
        let f: BitSet = [63].into_iter().collect();
        assert_eq!(e, f);
    }

    #[test]
    fn lattice_laws() {
        let a: BitSet = [1, 64].into_iter().collect();
        let b: BitSet = [2].into_iter().collect();
        // Commutative, idempotent, and consistent with join_in_place.
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
        let mut c = a.clone();
        assert!(c.join_in_place(&b));
        assert_eq!(c, a.join(&b));
        assert!(!c.join_in_place(&b));
    }
}
