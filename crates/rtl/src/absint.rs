//! The abstract domains of the interval value analysis and the neededness
//! analysis (DESIGN.md §12).
//!
//! Only the *domains* live here — the lattice of abstract values
//! ([`VaVal`]: constants as singleton intervals, signed intervals per
//! machine width, pointer provenance into globals and the stack frame), the
//! abstract register environments ([`VaEnv`], [`NeedEnv`]), and the sound
//! transfer functions over [`RtlOp`]. The fixpoint solvers that *run* these
//! domains live in `compcerto-validate::absint` (on top of the generic
//! `CfgView` toolkit), and the optimization passes ([`crate::vprop`],
//! [`crate::ndce`]) consume the solved facts as plain data — so the passes
//! stay decoupled from the analysis engine and the translation validators
//! can recompute the same facts on the passes' *inputs*.
//!
//! Signed vs. unsigned: intervals are stored with signed bounds; when
//! `lo ≥ 0` the same bounds are exact unsigned bounds ([`Itv::unsigned`]),
//! which is what the transfer functions for `Shru`, `ZeroExt` and the
//! masking operators exploit.

use std::collections::BTreeMap;
use std::fmt;

use mem::{Cmp, Val};
use minor::{MBinop, MUnop};

use crate::analysis::JoinSemiLattice;
use crate::lang::{PReg, RtlOp};

const I32_MIN: i64 = i32::MIN as i64;
const I32_MAX: i64 = i32::MAX as i64;
const U32_MAX: i64 = u32::MAX as i64;

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

/// A non-empty signed interval `[lo, hi]` (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Itv {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
}

impl Itv {
    /// The singleton interval `[n, n]`.
    #[must_use]
    pub fn point(n: i64) -> Itv {
        Itv { lo: n, hi: n }
    }

    /// The interval `[lo, hi]`, swapping the bounds if given reversed.
    #[must_use]
    pub fn range(lo: i64, hi: i64) -> Itv {
        if lo <= hi {
            Itv { lo, hi }
        } else {
            Itv { lo: hi, hi: lo }
        }
    }

    /// Every 32-bit integer.
    #[must_use]
    pub fn full32() -> Itv {
        Itv {
            lo: I32_MIN,
            hi: I32_MAX,
        }
    }

    /// Every 64-bit integer.
    #[must_use]
    pub fn full64() -> Itv {
        Itv {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// Is this the singleton `{n}`?
    #[must_use]
    pub fn as_point(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Does the interval contain `n`?
    #[must_use]
    pub fn contains(&self, n: i64) -> bool {
        self.lo <= n && n <= self.hi
    }

    /// Convex hull (the interval join).
    #[must_use]
    pub fn join(&self, other: &Itv) -> Itv {
        Itv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard widening: a bound that grew since `self` jumps to the width
    /// extreme, a stable bound is kept. Guarantees termination of the
    /// fixpoint iteration on loop-carried counters.
    #[must_use]
    pub fn widen(&self, next: &Itv, min: i64, max: i64) -> Itv {
        Itv {
            lo: if next.lo < self.lo { min } else { self.lo },
            hi: if next.hi > self.hi { max } else { self.hi },
        }
    }

    /// Exact unsigned bounds, when the sign is known (`lo ≥ 0`).
    #[must_use]
    pub fn unsigned(&self) -> Option<(u64, u64)> {
        (self.lo >= 0).then_some((self.lo as u64, self.hi as u64))
    }

    /// Definite truth of the comparison `a ⋈ b` over all pairs drawn from
    /// the two intervals, when one answer covers every pair.
    #[must_use]
    pub fn cmp_definite(&self, op: Cmp, other: &Itv) -> Option<bool> {
        match op {
            Cmp::Eq => {
                if self.hi < other.lo || other.hi < self.lo {
                    Some(false)
                } else {
                    match (self.as_point(), other.as_point()) {
                        (Some(a), Some(b)) => Some(a == b),
                        _ => None,
                    }
                }
            }
            Cmp::Ne => self.cmp_definite(Cmp::Eq, other).map(|b| !b),
            Cmp::Lt => {
                if self.hi < other.lo {
                    Some(true)
                } else if self.lo >= other.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Cmp::Le => {
                if self.hi <= other.lo {
                    Some(true)
                } else if self.lo > other.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Cmp::Gt => other.cmp_definite(Cmp::Lt, self),
            Cmp::Ge => other.cmp_definite(Cmp::Le, self),
        }
    }
}

impl fmt::Display for Itv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_point() {
            Some(n) => write!(f, "{n}"),
            None => write!(f, "[{},{}]", self.lo, self.hi),
        }
    }
}

/// The smallest all-ones mask `2^k − 1 ≥ h` (for `h ≥ 0`): an upper bound
/// for `or`/`xor` of non-negative values below `h`.
fn up_mask(h: i64) -> i64 {
    let mut m: i64 = 0;
    while m < h && m < I32_MAX.max(h) {
        m = (m << 1) | 1;
        if m >= h {
            break;
        }
    }
    m.max(h)
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Abstract value of a register in the interval value analysis.
///
/// Concretization (`γ`): `I32 i` is the set of `Val::Int(n)` with
/// `n ∈ i` — *`Undef` is not in `γ` of an interval*, which is what lets the
/// branch-folding rewrite rely on the truth of an interval being defined.
/// `Global`/`Stack` are single symbolic pointers (provenance + exact
/// displacement); `Top` is every value including `Undef`.
///
/// `Bot` concretizes to `{Undef}` — "unwritten on every path here": the RTL
/// semantics reads a never-assigned register as `Undef`, and since the
/// differential oracle demands *exact* stage agreement (no CompCert-style
/// `lessdef` slack), the analysis must track `Undef` honestly rather than
/// treat it as refinable. Consequently `Bot ⊔ x = Top` for `x ∉ {Bot}`
/// (nothing smaller contains both `Undef` and a defined value), every
/// operation on a `Bot` operand yields `Bot` (every `mem::Val` operation
/// maps an `Undef` operand to `Undef`), and no rewrite ever fires on `Bot`.
/// The precision cost is nil for well-defined programs: a register merged
/// as defined-on-one-path-only may not be read afterwards anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VaVal {
    /// Unwritten on every path (reads as `Undef`).
    Bot,
    /// A 32-bit integer within the interval.
    I32(Itv),
    /// A 64-bit integer within the interval.
    I64(Itv),
    /// A pointer to global `ident` plus displacement.
    Global(String, i64),
    /// A pointer into the activation's stack block plus displacement.
    Stack(i64),
    /// Unknown (includes `Undef`).
    Top,
}

impl VaVal {
    /// The abstract 32-bit constant `n`.
    #[must_use]
    pub fn int(n: i32) -> VaVal {
        VaVal::I32(Itv::point(n as i64))
    }

    /// The abstract 64-bit constant `n`.
    #[must_use]
    pub fn long(n: i64) -> VaVal {
        VaVal::I64(Itv::point(n))
    }

    /// Abstract a compile-time constant (non-numeric values go to `Top`).
    #[must_use]
    pub fn of_const(v: &Val) -> VaVal {
        match v {
            Val::Int(n) => VaVal::int(*n),
            Val::Long(n) => VaVal::long(*n),
            _ => VaVal::Top,
        }
    }

    /// The numeric constant this value denotes, if it is a singleton.
    #[must_use]
    pub fn as_const(&self) -> Option<Val> {
        match self {
            VaVal::I32(i) => i.as_point().map(|n| Val::Int(n as i32)),
            VaVal::I64(i) => i.as_point().map(Val::Long),
            _ => None,
        }
    }

    /// Definite truth value as a branch condition, if one is known.
    /// Sound because intervals exclude `Undef` and pointers are true.
    #[must_use]
    pub fn truth(&self) -> Option<bool> {
        match self {
            VaVal::I32(i) | VaVal::I64(i) => {
                if !i.contains(0) {
                    Some(true)
                } else if i.as_point() == Some(0) {
                    Some(false)
                } else {
                    None
                }
            }
            VaVal::Global(_, _) | VaVal::Stack(_) => Some(true),
            VaVal::Bot | VaVal::Top => None,
        }
    }

    /// Join of two abstract values. `Bot ⊔ x = Top` for non-`Bot` `x`:
    /// `γ(Bot) = {Undef}` and no interval or pointer contains `Undef`.
    #[must_use]
    pub fn join(&self, other: &VaVal) -> VaVal {
        match (self, other) {
            (VaVal::Bot, VaVal::Bot) => VaVal::Bot,
            (VaVal::Bot, _) | (_, VaVal::Bot) => VaVal::Top,
            (VaVal::I32(a), VaVal::I32(b)) => VaVal::I32(a.join(b)),
            (VaVal::I64(a), VaVal::I64(b)) => VaVal::I64(a.join(b)),
            (a, b) if a == b => a.clone(),
            _ => VaVal::Top,
        }
    }

    /// Widen `self` (the old state) against `next` (the joined state):
    /// growing interval bounds jump to the width extremes, everything else
    /// behaves like [`VaVal::join`].
    #[must_use]
    pub fn widen(&self, next: &VaVal) -> VaVal {
        match (self, next) {
            (VaVal::I32(a), VaVal::I32(b)) => VaVal::I32(a.widen(b, I32_MIN, I32_MAX)),
            (VaVal::I64(a), VaVal::I64(b)) => VaVal::I64(a.widen(b, i64::MIN, i64::MAX)),
            _ => self.join(next),
        }
    }

    /// Does every concrete value of `self` have the width/shape that makes
    /// `op` act as the identity on it (used by the algebraic rewrites of
    /// `vprop` and their validator)?
    #[must_use]
    pub fn is_i32(&self) -> bool {
        matches!(self, VaVal::I32(_))
    }

    /// Is this a 64-bit integer interval?
    #[must_use]
    pub fn is_i64(&self) -> bool {
        matches!(self, VaVal::I64(_))
    }

    /// Is this a known pointer (global or stack provenance)?
    #[must_use]
    pub fn is_pointer(&self) -> bool {
        matches!(self, VaVal::Global(_, _) | VaVal::Stack(_))
    }
}

impl fmt::Display for VaVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaVal::Bot => write!(f, "bot"),
            VaVal::I32(i) => write!(f, "i32:{i}"),
            VaVal::I64(i) => write!(f, "i64:{i}"),
            VaVal::Global(s, d) => write!(f, "&{s}+{d}"),
            VaVal::Stack(d) => write!(f, "&stk+{d}"),
            VaVal::Top => write!(f, "top"),
        }
    }
}

/// Abstract register environment of the value analysis (missing registers
/// are `Bot`). `BTreeMap`-backed so iteration — and hence the JSON fact
/// dump — is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VaEnv {
    regs: BTreeMap<PReg, VaVal>,
}

impl VaEnv {
    /// Abstract value of `r`.
    #[must_use]
    pub fn get(&self, r: PReg) -> &VaVal {
        self.regs.get(&r).unwrap_or(&VaVal::Bot)
    }

    /// Bind `r` (binding `Bot` erases the entry: it is the default).
    pub fn set(&mut self, r: PReg, v: VaVal) {
        if v == VaVal::Bot {
            self.regs.remove(&r);
        } else {
            self.regs.insert(r, v);
        }
    }

    /// The bound registers, ascending (for fact dumps).
    pub fn iter(&self) -> impl Iterator<Item = (PReg, &VaVal)> {
        self.regs.iter().map(|(r, v)| (*r, v))
    }

    /// Widen `self` (old state) against `next` register-wise.
    #[must_use]
    pub fn widen(&self, next: &VaEnv) -> VaEnv {
        let mut out = next.clone();
        for (r, old) in &self.regs {
            let n = next.get(*r);
            out.set(*r, old.widen(n));
        }
        out
    }
}

impl JoinSemiLattice for VaEnv {
    fn join(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.join_in_place(other);
        out
    }

    /// Pointwise join over the *union* of the two key sets: a register
    /// bound on one side only joins against the other side's implicit
    /// `Bot` (= `Undef`), which goes to `Top` — see [`VaVal::join`].
    fn join_in_place(&mut self, other: &Self) -> bool {
        let mut changed = false;
        // Registers bound only in `self` meet `Bot` from `other`.
        let only_here: Vec<PReg> = self
            .regs
            .keys()
            .filter(|r| !other.regs.contains_key(r))
            .copied()
            .collect();
        for r in only_here {
            if self.regs.get(&r) != Some(&VaVal::Top) {
                self.regs.insert(r, VaVal::Top);
                changed = true;
            }
        }
        for (r, v) in &other.regs {
            let cur = self.get(*r);
            let j = cur.join(v);
            if j != *cur {
                changed = true;
                self.set(*r, j);
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Abstract evaluation (the value-analysis transfer function on operations)
// ---------------------------------------------------------------------------

/// Is `op` commutative on every pair of values (`eval(a,b) == eval(b,a)`)?
#[must_use]
pub fn commutes(op: MBinop) -> bool {
    use MBinop::*;
    matches!(
        op,
        Add32 | Mul32 | And32 | Or32 | Xor32 | Add64 | Mul64 | And64 | Or64 | Xor64
    )
}

fn add_itv32(a: &Itv, b: &Itv) -> VaVal {
    // i32 bounds summed in i64 cannot overflow i64; a result outside the
    // i32 range may wrap at run time, so it widens to every 32-bit value.
    let lo = a.lo + b.lo;
    let hi = a.hi + b.hi;
    if lo >= I32_MIN && hi <= I32_MAX {
        VaVal::I32(Itv { lo, hi })
    } else {
        VaVal::I32(Itv::full32())
    }
}

fn sub_itv32(a: &Itv, b: &Itv) -> VaVal {
    let lo = a.lo - b.hi;
    let hi = a.hi - b.lo;
    if lo >= I32_MIN && hi <= I32_MAX {
        VaVal::I32(Itv { lo, hi })
    } else {
        VaVal::I32(Itv::full32())
    }
}

fn mul_itv32(a: &Itv, b: &Itv) -> VaVal {
    // Corner products of i32-range bounds fit in i64 (≤ 2^62).
    let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let lo = c.iter().copied().fold(i64::MAX, i64::min);
    let hi = c.iter().copied().fold(i64::MIN, i64::max);
    if lo >= I32_MIN && hi <= I32_MAX {
        VaVal::I32(Itv { lo, hi })
    } else {
        VaVal::I32(Itv::full32())
    }
}

fn add_itv64(a: &Itv, b: &Itv) -> VaVal {
    match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
        (Some(lo), Some(hi)) => VaVal::I64(Itv { lo, hi }),
        _ => VaVal::I64(Itv::full64()),
    }
}

fn sub_itv64(a: &Itv, b: &Itv) -> VaVal {
    match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
        (Some(lo), Some(hi)) => VaVal::I64(Itv { lo, hi }),
        _ => VaVal::I64(Itv::full64()),
    }
}

fn mul_itv64(a: &Itv, b: &Itv) -> VaVal {
    let cs = [
        a.lo.checked_mul(b.lo),
        a.lo.checked_mul(b.hi),
        a.hi.checked_mul(b.lo),
        a.hi.checked_mul(b.hi),
    ];
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for c in cs {
        match c {
            Some(v) => {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            None => return VaVal::I64(Itv::full64()),
        }
    }
    VaVal::I64(Itv { lo, hi })
}

/// Quotient interval for a positive constant divisor (Rust division
/// truncates toward zero, which is monotone in the dividend; `d > 0` rules
/// out both division by zero and the `MIN / -1` overflow).
fn div_pos(a: &Itv, d: i64) -> Itv {
    Itv::range(a.lo / d, a.hi / d)
}

/// Remainder interval for a positive constant divisor: `a % d` has the sign
/// of `a` and magnitude below `d`.
fn mod_pos(a: &Itv, d: i64) -> Itv {
    let hi = if a.hi > 0 { d - 1 } else { 0 };
    let lo = if a.lo < 0 { -(d - 1) } else { 0 };
    Itv { lo, hi }
}

fn bool_itv(b: Option<bool>) -> VaVal {
    match b {
        Some(true) => VaVal::int(1),
        Some(false) => VaVal::int(0),
        None => VaVal::I32(Itv { lo: 0, hi: 1 }),
    }
}

/// Abstractly evaluate `a ⟨op⟩ b`. Sound with respect to [`MBinop::eval`]:
/// the concrete result of any pair drawn from the operands' concretizations
/// is in the result's concretization (`Top` whenever `Undef` is possible).
#[must_use]
pub fn eval_binop_va(op: MBinop, a: &VaVal, b: &VaVal) -> VaVal {
    use MBinop::*;
    if *a == VaVal::Bot || *b == VaVal::Bot {
        return VaVal::Bot;
    }
    // Exact constant folding first — mirrors the runtime op bit for bit
    // (including the division-by-zero and overflow cases, which fold to
    // nothing and land in `Top`).
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return match op.fold(&x, &y) {
            Some(v) => VaVal::of_const(&v),
            None => VaVal::Top,
        };
    }
    match (op, a, b) {
        // -- integer interval arithmetic ---------------------------------
        (Add32 | Add64, VaVal::I32(x), VaVal::I32(y)) => add_itv32(x, y),
        (Add32 | Add64, VaVal::I64(x), VaVal::I64(y)) => add_itv64(x, y),
        (Sub32 | Sub64, VaVal::I32(x), VaVal::I32(y)) => sub_itv32(x, y),
        (Sub32 | Sub64, VaVal::I64(x), VaVal::I64(y)) => sub_itv64(x, y),
        (Mul32 | Mul64, VaVal::I32(x), VaVal::I32(y)) => mul_itv32(x, y),
        (Mul32 | Mul64, VaVal::I64(x), VaVal::I64(y)) => mul_itv64(x, y),
        (Div32 | Div64, VaVal::I32(x), VaVal::I32(y)) => match y.as_point() {
            Some(d) if d > 0 => VaVal::I32(div_pos(x, d)),
            _ => VaVal::Top,
        },
        (Div32 | Div64, VaVal::I64(x), VaVal::I64(y)) => match y.as_point() {
            Some(d) if d > 0 => VaVal::I64(div_pos(x, d)),
            _ => VaVal::Top,
        },
        (Mod32 | Mod64, VaVal::I32(x), VaVal::I32(y)) => match y.as_point() {
            Some(d) if d > 0 => VaVal::I32(mod_pos(x, d)),
            _ => VaVal::Top,
        },
        (Mod32 | Mod64, VaVal::I64(x), VaVal::I64(y)) => match y.as_point() {
            Some(d) if d > 0 => VaVal::I64(mod_pos(x, d)),
            _ => VaVal::Top,
        },
        // -- masking operators (unsigned reasoning when signs are known) --
        (And32 | And64, VaVal::I32(x), VaVal::I32(y)) => match (x.unsigned(), y.unsigned()) {
            (Some(_), Some(_)) => VaVal::I32(Itv::range(0, x.hi.min(y.hi))),
            (Some(_), None) => VaVal::I32(Itv::range(0, x.hi)),
            (None, Some(_)) => VaVal::I32(Itv::range(0, y.hi)),
            (None, None) => VaVal::I32(Itv::full32()),
        },
        (And32 | And64, VaVal::I64(x), VaVal::I64(y)) => match (x.unsigned(), y.unsigned()) {
            (Some(_), Some(_)) => VaVal::I64(Itv::range(0, x.hi.min(y.hi))),
            (Some(_), None) => VaVal::I64(Itv::range(0, x.hi)),
            (None, Some(_)) => VaVal::I64(Itv::range(0, y.hi)),
            (None, None) => VaVal::I64(Itv::full64()),
        },
        (Or32 | Or64 | Xor32 | Xor64, VaVal::I32(x), VaVal::I32(y)) => {
            if x.lo >= 0 && y.lo >= 0 {
                VaVal::I32(Itv::range(0, up_mask(x.hi.max(y.hi))))
            } else {
                VaVal::I32(Itv::full32())
            }
        }
        (Or32 | Or64 | Xor32 | Xor64, VaVal::I64(x), VaVal::I64(y)) => {
            if x.lo >= 0 && y.lo >= 0 && x.hi.max(y.hi) < i64::MAX / 2 {
                VaVal::I64(Itv::range(0, up_mask(x.hi.max(y.hi))))
            } else {
                VaVal::I64(Itv::full64())
            }
        }
        // -- shifts (the amount is a 32-bit value for both widths) --------
        (Shl32 | Shr32 | Shru32, VaVal::I32(x), VaVal::I32(k)) => shift32(op, x, k),
        (Shl64 | Shr64 | Shru64, VaVal::I64(x), VaVal::I32(k)) => shift64(op, x, k),
        // -- comparisons --------------------------------------------------
        (Cmp32(c) | Cmp64(c), VaVal::I32(x), VaVal::I32(y)) => bool_itv(x.cmp_definite(c, y)),
        (Cmp32(c) | Cmp64(c), VaVal::I64(x), VaVal::I64(y)) => bool_itv(x.cmp_definite(c, y)),
        (Cmp32(c) | Cmp64(c), VaVal::Global(s1, d1), VaVal::Global(s2, d2)) => {
            if s1 == s2 {
                bool_itv(Some(c.holds(d1.cmp(d2))))
            } else {
                // Distinct symbols name distinct blocks: only (in)equality
                // is defined across blocks.
                match c {
                    Cmp::Eq => VaVal::int(0),
                    Cmp::Ne => VaVal::int(1),
                    _ => VaVal::Top,
                }
            }
        }
        (Cmp32(c) | Cmp64(c), VaVal::Stack(d1), VaVal::Stack(d2)) => {
            bool_itv(Some(c.holds(d1.cmp(d2))))
        }
        // -- pointer arithmetic (provenance tracking) ---------------------
        (Add32 | Add64, VaVal::Global(s, d), y) | (Add32 | Add64, y, VaVal::Global(s, d)) => {
            match y.as_const() {
                Some(Val::Int(n)) => VaVal::Global(s.clone(), d.wrapping_add(n as i64)),
                Some(Val::Long(n)) => VaVal::Global(s.clone(), d.wrapping_add(n)),
                _ => VaVal::Top,
            }
        }
        (Add32 | Add64, VaVal::Stack(d), y) | (Add32 | Add64, y, VaVal::Stack(d)) => {
            match y.as_const() {
                Some(Val::Int(n)) => VaVal::Stack(d.wrapping_add(n as i64)),
                Some(Val::Long(n)) => VaVal::Stack(d.wrapping_add(n)),
                _ => VaVal::Top,
            }
        }
        (Sub32 | Sub64, VaVal::Global(s, d), y) => match y.as_const() {
            Some(Val::Int(n)) => VaVal::Global(s.clone(), d.wrapping_sub(n as i64)),
            Some(Val::Long(n)) => VaVal::Global(s.clone(), d.wrapping_sub(n)),
            _ => match y {
                VaVal::Global(s2, d2) if s == s2 => VaVal::long(d.wrapping_sub(*d2)),
                _ => VaVal::Top,
            },
        },
        (Sub32 | Sub64, VaVal::Stack(d), y) => match y.as_const() {
            Some(Val::Int(n)) => VaVal::Stack(d.wrapping_sub(n as i64)),
            Some(Val::Long(n)) => VaVal::Stack(d.wrapping_sub(n)),
            _ => match y {
                VaVal::Stack(d2) => VaVal::long(d.wrapping_sub(*d2)),
                _ => VaVal::Top,
            },
        },
        _ => VaVal::Top,
    }
}

fn shift32(op: MBinop, x: &Itv, k: &Itv) -> VaVal {
    match k.as_point() {
        Some(k) if (0..32).contains(&k) => {
            let k = k as u32;
            match op {
                MBinop::Shl32 => {
                    if x.lo >= 0 && x.hi <= (I32_MAX >> k) {
                        VaVal::I32(Itv::range(x.lo << k, x.hi << k))
                    } else {
                        VaVal::I32(Itv::full32())
                    }
                }
                MBinop::Shr32 => VaVal::I32(Itv::range(x.lo >> k, x.hi >> k)),
                MBinop::Shru32 => {
                    if k == 0 {
                        VaVal::I32(*x)
                    } else if x.lo >= 0 {
                        VaVal::I32(Itv::range(x.lo >> k, x.hi >> k))
                    } else {
                        VaVal::I32(Itv::range(0, U32_MAX >> k))
                    }
                }
                _ => VaVal::Top,
            }
        }
        // An in-range but unknown amount still yields a defined 32-bit
        // integer; anything else may be `Undef`.
        _ if k.lo >= 0 && k.hi < 32 => VaVal::I32(Itv::full32()),
        _ => VaVal::Top,
    }
}

fn shift64(op: MBinop, x: &Itv, k: &Itv) -> VaVal {
    match k.as_point() {
        Some(k) if (0..64).contains(&k) => {
            let k = k as u32;
            match op {
                MBinop::Shl64 => {
                    if x.lo >= 0 && x.hi <= (i64::MAX >> k) {
                        VaVal::I64(Itv::range(x.lo << k, x.hi << k))
                    } else {
                        VaVal::I64(Itv::full64())
                    }
                }
                MBinop::Shr64 => VaVal::I64(Itv::range(x.lo >> k, x.hi >> k)),
                MBinop::Shru64 => {
                    if k == 0 {
                        VaVal::I64(*x)
                    } else if x.lo >= 0 {
                        VaVal::I64(Itv::range(x.lo >> k, x.hi >> k))
                    } else {
                        VaVal::I64(Itv::range(0, ((u64::MAX >> k) as i64).max(0)))
                    }
                }
                _ => VaVal::Top,
            }
        }
        _ if k.lo >= 0 && k.hi < 64 => VaVal::I64(Itv::full64()),
        _ => VaVal::Top,
    }
}

/// Abstractly evaluate a unary operation.
#[must_use]
pub fn eval_unop_va(op: MUnop, v: &VaVal) -> VaVal {
    if *v == VaVal::Bot {
        return VaVal::Bot;
    }
    if let Some(x) = v.as_const() {
        let out = op.eval(x);
        return if out.is_defined() && !matches!(out, Val::Ptr(_, _)) {
            VaVal::of_const(&out)
        } else {
            VaVal::Top
        };
    }
    match (op, v) {
        (MUnop::Neg32, VaVal::I32(i)) => {
            if i.lo > I32_MIN {
                VaVal::I32(Itv::range(-i.hi, -i.lo))
            } else {
                VaVal::I32(Itv::full32())
            }
        }
        (MUnop::Neg64, VaVal::I64(i)) => {
            if i.lo > i64::MIN {
                VaVal::I64(Itv::range(-i.hi, -i.lo))
            } else {
                VaVal::I64(Itv::full64())
            }
        }
        (MUnop::Not32, VaVal::I32(i)) => VaVal::I32(Itv::range(!i.hi, !i.lo)),
        (MUnop::Not64, VaVal::I64(i)) => VaVal::I64(Itv::range(!i.hi, !i.lo)),
        (MUnop::BoolNot, v) => match v.truth() {
            Some(b) => VaVal::int(if b { 0 } else { 1 }),
            None => match v {
                VaVal::I32(_) | VaVal::I64(_) => VaVal::I32(Itv { lo: 0, hi: 1 }),
                _ => VaVal::Top,
            },
        },
        (MUnop::SignExt, VaVal::I32(i)) => VaVal::I64(*i),
        (MUnop::ZeroExt, VaVal::I32(i)) => {
            if i.lo >= 0 {
                VaVal::I64(*i)
            } else {
                VaVal::I64(Itv::range(0, U32_MAX))
            }
        }
        (MUnop::Trunc, VaVal::I64(i)) => {
            if i.lo >= I32_MIN && i.hi <= I32_MAX {
                VaVal::I32(*i)
            } else {
                VaVal::I32(Itv::full32())
            }
        }
        _ => VaVal::Top,
    }
}

/// Abstractly evaluate a pure [`RtlOp`] under `env`.
#[must_use]
pub fn eval_op_va(env: &VaEnv, op: &RtlOp) -> VaVal {
    match op {
        RtlOp::Move(r) => env.get(*r).clone(),
        RtlOp::Int(n) => VaVal::int(*n),
        RtlOp::Long(n) => VaVal::long(*n),
        RtlOp::AddrGlobal(s, d) => VaVal::Global(s.clone(), *d),
        RtlOp::AddrStack(o) => VaVal::Stack(*o),
        RtlOp::Unop(u, r) => eval_unop_va(*u, env.get(*r)),
        RtlOp::Binop(b, x, y) => eval_binop_va(*b, env.get(*x), env.get(*y)),
        RtlOp::BinopImm(b, x, imm) => eval_binop_va(*b, env.get(*x), &VaVal::of_const(imm)),
    }
}

// ---------------------------------------------------------------------------
// Neededness (liveness of bits)
// ---------------------------------------------------------------------------

/// How much of a register's value a continuation needs (CompCert's
/// `NeedDomain`, DESIGN.md §12): nothing, some bit positions, or the full
/// value.
///
/// The bit masks refine *reporting* (and power future narrowing rewrites);
/// the dead-code pass only acts on `Nothing`. To keep that deletion
/// unconditionally sound, mask propagation is floored: a non-`Nothing`
/// need never propagates `Nothing` to the registers an instruction reads —
/// so `Nothing` means "no instruction whose result is ever needed reads
/// this register", a transitive-use argument that does not depend on the
/// masked-agreement of possibly-`Undef` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Needs {
    /// The value is never observed.
    Nothing,
    /// Only these bit positions are observed (never the empty mask).
    Bits(u64),
    /// The whole value is observed.
    All,
}

impl Needs {
    /// Build a mask need, normalizing empty and full masks.
    #[must_use]
    pub fn bits(m: u64) -> Needs {
        if m == 0 {
            Needs::Nothing
        } else if m == u64::MAX {
            Needs::All
        } else {
            Needs::Bits(m)
        }
    }

    /// Like [`Needs::bits`], but floored: an empty computed mask still
    /// demands one bit, so a live chain never collapses to `Nothing`.
    #[must_use]
    pub fn bits_floor(m: u64) -> Needs {
        Needs::bits(if m == 0 { 1 } else { m })
    }

    /// Join (union of observations).
    #[must_use]
    pub fn join(&self, other: &Needs) -> Needs {
        match (self, other) {
            (Needs::Nothing, x) | (x, Needs::Nothing) => *x,
            (Needs::All, _) | (_, Needs::All) => Needs::All,
            (Needs::Bits(a), Needs::Bits(b)) => Needs::bits(a | b),
        }
    }

    /// Is anything needed?
    #[must_use]
    pub fn is_nothing(&self) -> bool {
        matches!(self, Needs::Nothing)
    }

    /// The mask of observed bits (`u64::MAX` for `All`).
    #[must_use]
    pub fn mask(&self) -> u64 {
        match self {
            Needs::Nothing => 0,
            Needs::Bits(m) => *m,
            Needs::All => u64::MAX,
        }
    }
}

impl fmt::Display for Needs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Needs::Nothing => write!(f, "nothing"),
            Needs::Bits(m) => write!(f, "bits:{m:#x}"),
            Needs::All => write!(f, "all"),
        }
    }
}

/// All bit positions up to (and including) the most significant needed bit:
/// the needed input bits of carry-propagating operators (`add`, `sub`,
/// `mul`, `neg`) — carries flow strictly upward, so input bits above the
/// highest observed output bit cannot influence it.
#[must_use]
pub fn up_to_msb(m: u64) -> u64 {
    if m == 0 {
        return 0;
    }
    let msb = 63 - m.leading_zeros();
    if msb >= 63 {
        u64::MAX
    } else {
        (1u64 << (msb + 1)) - 1
    }
}

/// The needs an instruction's *uses* inherit from the need `nv` of its
/// result, per operator (floored — see [`Needs`]). Returns the need of each
/// operand register of `op`, in `op.uses()` order.
#[must_use]
pub fn op_arg_needs(op: &RtlOp, nv: Needs) -> Vec<Needs> {
    use MBinop::*;
    if nv.is_nothing() {
        return op.uses().iter().map(|_| Needs::Nothing).collect();
    }
    let m = nv.mask();
    match op {
        RtlOp::Move(_) => vec![nv],
        RtlOp::Int(_) | RtlOp::Long(_) | RtlOp::AddrGlobal(_, _) | RtlOp::AddrStack(_) => vec![],
        RtlOp::Unop(u, _) => vec![match u {
            MUnop::Not32 | MUnop::Not64 => Needs::bits_floor(m),
            MUnop::Neg32 | MUnop::Neg64 => Needs::bits_floor(up_to_msb(m)),
            MUnop::BoolNot => Needs::All,
            MUnop::SignExt => {
                // Any observed high bit observes the sign bit 31.
                let low = m & 0xFFFF_FFFF;
                let sign = if m >> 31 != 0 { 1u64 << 31 } else { 0 };
                Needs::bits_floor(low | sign)
            }
            MUnop::ZeroExt => Needs::bits_floor(m & 0xFFFF_FFFF),
            MUnop::Trunc => Needs::bits_floor(m & 0xFFFF_FFFF),
        }],
        RtlOp::Binop(b, _, _) | RtlOp::BinopImm(b, _, _) => {
            let each = match b {
                And32 | Or32 | Xor32 | And64 | Or64 | Xor64 => Needs::bits_floor(m),
                Add32 | Sub32 | Mul32 | Add64 | Sub64 | Mul64 => Needs::bits_floor(up_to_msb(m)),
                _ => Needs::All,
            };
            // For `BinopImm` the masking by a known immediate refines the
            // single register operand.
            if let RtlOp::BinopImm(And32, _, Val::Int(k)) = op {
                return vec![Needs::bits_floor(m & (*k as u32 as u64))];
            }
            if let RtlOp::BinopImm(And64, _, Val::Long(k)) = op {
                return vec![Needs::bits_floor(m & (*k as u64))];
            }
            if let RtlOp::BinopImm(Shl32, _, Val::Int(k)) = op {
                if (0..32).contains(k) {
                    return vec![Needs::bits_floor((m & 0xFFFF_FFFF) >> k)];
                }
            }
            if let RtlOp::BinopImm(Shru32, _, Val::Int(k)) = op {
                if (0..32).contains(k) {
                    return vec![Needs::bits_floor((m << k) & 0xFFFF_FFFF)];
                }
            }
            op.uses().iter().map(|_| each).collect()
        }
    }
}

/// Needed-bits environment at a program point (missing registers are
/// `Nothing`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NeedEnv {
    regs: BTreeMap<PReg, Needs>,
}

impl NeedEnv {
    /// The need of `r`.
    #[must_use]
    pub fn get(&self, r: PReg) -> Needs {
        self.regs.get(&r).copied().unwrap_or(Needs::Nothing)
    }

    /// Record that `r` is needed at (at least) `n`.
    pub fn add(&mut self, r: PReg, n: Needs) {
        let j = self.get(r).join(&n);
        if j.is_nothing() {
            self.regs.remove(&r);
        } else {
            self.regs.insert(r, j);
        }
    }

    /// Forget `r` (it is being defined here).
    pub fn kill(&mut self, r: PReg) {
        self.regs.remove(&r);
    }

    /// The needed registers, ascending (for fact dumps).
    pub fn iter(&self) -> impl Iterator<Item = (PReg, Needs)> + '_ {
        self.regs.iter().map(|(r, n)| (*r, *n))
    }
}

impl JoinSemiLattice for NeedEnv {
    fn join(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.join_in_place(other);
        out
    }

    fn join_in_place(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (r, n) in &other.regs {
            let cur = self.get(*r);
            let j = cur.join(n);
            if j != cur {
                changed = true;
                self.regs.insert(*r, j);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itv_join_and_widen() {
        let a = Itv::point(3);
        let b = Itv::range(5, 9);
        assert_eq!(a.join(&b), Itv { lo: 3, hi: 9 });
        // A growing upper bound widens to the width maximum.
        let w = a.widen(&a.join(&b), I32_MIN, I32_MAX);
        assert_eq!(w, Itv { lo: 3, hi: I32_MAX });
        // Stable bounds stay.
        let w2 = b.widen(&b, I32_MIN, I32_MAX);
        assert_eq!(w2, b);
    }

    #[test]
    fn definite_comparisons() {
        let a = Itv::range(0, 4);
        let b = Itv::range(5, 9);
        assert_eq!(a.cmp_definite(Cmp::Lt, &b), Some(true));
        assert_eq!(b.cmp_definite(Cmp::Lt, &a), Some(false));
        assert_eq!(a.cmp_definite(Cmp::Eq, &b), Some(false));
        assert_eq!(a.cmp_definite(Cmp::Lt, &a), None);
        assert_eq!(
            Itv::point(7).cmp_definite(Cmp::Eq, &Itv::point(7)),
            Some(true)
        );
    }

    #[test]
    fn eval_mirrors_runtime_on_constants() {
        // Exhaustive-ish agreement between abstract and concrete eval on
        // singleton intervals.
        let cases = [
            (MBinop::Add32, 7, -3),
            (MBinop::Mul32, 6, 7),
            (MBinop::Div32, 9, 0), // folds to nothing => Top
            (MBinop::Shl32, 1, 31),
            (MBinop::Cmp32(Cmp::Lt), 2, 5),
        ];
        for (op, x, y) in cases {
            let av = eval_binop_va(op, &VaVal::int(x), &VaVal::int(y));
            match op.fold(&Val::Int(x), &Val::Int(y)) {
                Some(v) => assert_eq!(av.as_const(), Some(v), "{op} {x} {y}"),
                None => assert_eq!(av, VaVal::Top, "{op} {x} {y}"),
            }
        }
    }

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        let a = Itv::range(-3, 10);
        let b = Itv::range(2, 5);
        let out = eval_binop_va(MBinop::Add32, &VaVal::I32(a), &VaVal::I32(b));
        let VaVal::I32(o) = out else {
            panic!("expected interval")
        };
        for x in a.lo..=a.hi {
            for y in b.lo..=b.hi {
                assert!(o.contains(x + y));
            }
        }
    }

    #[test]
    fn division_and_modulo_by_positive_constants() {
        let a = Itv::range(-7, 20);
        let q = eval_binop_va(MBinop::Div32, &VaVal::I32(a), &VaVal::int(3));
        let VaVal::I32(q) = q else { panic!() };
        let r = eval_binop_va(MBinop::Mod32, &VaVal::I32(a), &VaVal::int(3));
        let VaVal::I32(r) = r else { panic!() };
        for x in -7i64..=20 {
            assert!(q.contains(x / 3), "{x}/3 = {} ∉ {q}", x / 3);
            assert!(r.contains(x % 3), "{x}%3 = {} ∉ {r}", x % 3);
        }
        // Unknown divisor may trap: Top.
        assert_eq!(
            eval_binop_va(MBinop::Div32, &VaVal::I32(a), &VaVal::I32(Itv::range(0, 3))),
            VaVal::Top
        );
    }

    #[test]
    fn truth_of_intervals_and_pointers() {
        assert_eq!(VaVal::I32(Itv::range(1, 9)).truth(), Some(true));
        assert_eq!(VaVal::I32(Itv::range(-2, -1)).truth(), Some(true));
        assert_eq!(VaVal::int(0).truth(), Some(false));
        assert_eq!(VaVal::I32(Itv::range(0, 1)).truth(), None);
        assert_eq!(VaVal::Global("buf".into(), 8).truth(), Some(true));
        assert_eq!(VaVal::Top.truth(), None);
    }

    #[test]
    fn pointer_provenance_tracks_displacement() {
        let p = VaVal::Global("buf".into(), 8);
        let out = eval_binop_va(MBinop::Add64, &p, &VaVal::long(16));
        assert_eq!(out, VaVal::Global("buf".into(), 24));
        let diff = eval_binop_va(MBinop::Sub64, &out, &p);
        assert_eq!(diff.as_const(), Some(Val::Long(16)));
        // Distinct provenances only decide (in)equality.
        let q = VaVal::Global("acc".into(), 0);
        assert_eq!(
            eval_binop_va(MBinop::Cmp64(Cmp::Eq), &p, &q),
            VaVal::int(0)
        );
        assert_eq!(
            eval_binop_va(MBinop::Cmp64(Cmp::Lt), &p, &q),
            VaVal::Top
        );
    }

    #[test]
    fn env_join_is_pointwise_over_the_union() {
        let mut a = VaEnv::default();
        a.set(1, VaVal::int(4));
        a.set(2, VaVal::int(9));
        let mut b = VaEnv::default();
        b.set(1, VaVal::int(6));
        let j = a.join(&b);
        assert_eq!(*j.get(1), VaVal::I32(Itv::range(4, 6)));
        // Register 2 is unwritten (= Undef) along `b`, so the merge can
        // only be Top: γ must contain both 9 and Undef.
        assert_eq!(*j.get(2), VaVal::Top);
        // And symmetrically.
        assert_eq!(*b.join(&a).get(2), VaVal::Top);
        // Bot ⊔ Bot stays Bot.
        assert_eq!(VaVal::Bot.join(&VaVal::Bot), VaVal::Bot);
    }

    #[test]
    fn needs_join_and_floor() {
        assert_eq!(Needs::bits(0), Needs::Nothing);
        assert_eq!(Needs::bits_floor(0), Needs::Bits(1));
        assert_eq!(
            Needs::Bits(0b0110).join(&Needs::Bits(0b1010)),
            Needs::Bits(0b1110)
        );
        assert_eq!(Needs::All.join(&Needs::Bits(1)), Needs::All);
        assert_eq!(up_to_msb(0b0100), 0b0111);
        assert_eq!(up_to_msb(1), 1);
        assert_eq!(up_to_msb(0), 0);
    }

    #[test]
    fn arg_needs_follow_operator_structure() {
        // x & 0x0F with only bit 4 observed: the mask misses, but the floor
        // keeps the operand needed (deletion stays a transitive-use fact).
        let op = RtlOp::BinopImm(MBinop::And32, 1, Val::Int(0x0F));
        let needs = op_arg_needs(&op, Needs::Bits(0x10));
        assert_eq!(needs, vec![Needs::Bits(1)]);
        // A dead result needs nothing from its operands (cascade deletion).
        let needs = op_arg_needs(&op, Needs::Nothing);
        assert_eq!(needs, vec![Needs::Nothing]);
        // Comparisons observe everything.
        let op = RtlOp::Binop(MBinop::Cmp32(Cmp::Lt), 1, 2);
        assert_eq!(op_arg_needs(&op, Needs::Bits(1)), vec![Needs::All; 2]);
    }
}
