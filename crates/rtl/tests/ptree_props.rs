//! Model-based checking of the persistent `PTree` (CompCert's `Maps.v`)
//! against `BTreeMap`: arbitrary scripts of `set`s agree on every `get`,
//! iteration, equality, and the dataflow `join_with` — including its
//! changed-flag, which the worklist solver's termination depends on.

//!
//! Requires the optional `proptest` feature (and the proptest crate,
//! which is not vendored -- see Cargo.toml): these tests are skipped in
//! the offline build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rtl::ptree::PTree;
use std::collections::BTreeMap;

fn script() -> impl Strategy<Value = Vec<(u32, i32)>> {
    proptest::collection::vec((0u32..200, any::<i32>()), 0..64)
}

fn build(script: &[(u32, i32)]) -> (PTree<i32>, BTreeMap<u32, i32>) {
    let mut t = PTree::new();
    let mut m = BTreeMap::new();
    for (k, v) in script {
        t = t.set(*k, *v);
        m.insert(*k, *v);
    }
    (t, m)
}

proptest! {
    /// `get` agrees with the model on present and absent keys.
    #[test]
    fn gets_agree_with_model(s in script(), probe in proptest::collection::vec(0u32..250, 8)) {
        let (t, m) = build(&s);
        for k in probe {
            prop_assert_eq!(t.get(k), m.get(&k));
        }
        prop_assert_eq!(t.len(), m.len());
        prop_assert_eq!(t.is_empty(), m.is_empty());
    }

    /// Iteration yields exactly the model's bindings.
    #[test]
    fn iteration_agrees_with_model(s in script()) {
        let (t, m) = build(&s);
        let mut got: Vec<(u32, i32)> = t.iter().map(|(k, v)| (k, *v)).collect();
        got.sort();
        let want: Vec<(u32, i32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Structural equality is content equality, independent of insertion
    /// order (trees are canonical).
    #[test]
    fn equality_is_content_equality(s in script(), seed in any::<u64>()) {
        let (t1, m) = build(&s);
        // Rebuild in a permuted order with the same final contents.
        let mut entries: Vec<(u32, i32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let rot = if entries.is_empty() { 0 } else { (seed as usize) % entries.len() };
        entries.rotate_left(rot);
        let mut t2 = PTree::new();
        for (k, v) in &entries {
            t2 = t2.set(*k, *v);
        }
        prop_assert_eq!(&t1, &t2);
        // And any extra binding with a fresh key breaks equality.
        prop_assert_ne!(&t1, &t2.set(999, 0));
    }

    /// Persistence: a snapshot taken mid-script is unaffected by later sets.
    #[test]
    fn snapshots_are_immutable(s in script(), cut in 0usize..64) {
        let cut = cut.min(s.len());
        let (snapshot, model_at_cut) = build(&s[..cut]);
        let _rest = s[cut..].iter().fold(snapshot.clone(), |t, (k, v)| t.set(*k, *v));
        for (k, v) in &model_at_cut {
            prop_assert_eq!(snapshot.get(*k), Some(v));
        }
        prop_assert_eq!(snapshot.len(), model_at_cut.len());
    }

    /// `join_with(max)` agrees with the model's pointwise max, and the
    /// changed-flag is exactly "the result differs from the left operand".
    #[test]
    fn join_agrees_with_model(s1 in script(), s2 in script()) {
        let (t1, m1) = build(&s1);
        let (t2, m2) = build(&s2);
        let (joined, changed) = t1.join_with(&t2, &|a, b| (*a).max(*b), &|v| Some(*v));
        let mut want = m1.clone();
        for (k, v) in &m2 {
            want.entry(*k)
                .and_modify(|cur| *cur = (*cur).max(*v))
                .or_insert(*v);
        }
        let mut got: Vec<(u32, i32)> = joined.iter().map(|(k, v)| (k, *v)).collect();
        got.sort();
        let wantv: Vec<(u32, i32)> = want.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, wantv);
        prop_assert_eq!(changed, want != m1, "changed flag must match semantics");
    }

    /// Join is idempotent and monotone: `t ⊔ t = t` (unchanged), and joining
    /// twice is the same as joining once.
    #[test]
    fn join_is_idempotent(s1 in script(), s2 in script()) {
        let (t1, _) = build(&s1);
        let (t2, _) = build(&s2);
        let max = |a: &i32, b: &i32| (*a).max(*b);
        let keep = |v: &i32| Some(*v);
        let (self_join, self_changed) = t1.join_with(&t1, &max, &keep);
        prop_assert!(!self_changed);
        prop_assert_eq!(&self_join, &t1);
        let (once, _) = t1.join_with(&t2, &max, &keep);
        let (twice, changed2) = once.join_with(&t2, &max, &keep);
        prop_assert!(!changed2, "second join must be a no-op");
        prop_assert_eq!(twice, once);
    }
}
