//! The static validation layer: run every IR lint and per-pass translation
//! validator from `compcerto-validate` over one [`CompiledUnit`].
//!
//! This is the *a posteriori* complement to the dynamic Thm 3.8 harness:
//! the lints check each intermediate program's well-formedness in
//! isolation, and the validators check three backend passes (Allocation,
//! Linearize, Asmgen) against their inputs without trusting the pass code.
//! An empty result means the unit passed every check.

use compcerto_core::symtab::SymbolTable;
use compcerto_validate::{
    lint_asm, lint_linear, lint_ltl, lint_mach, lint_rtl, validate_allocation, validate_asmgen,
    validate_constprop, validate_deadcode, validate_linearize, Diagnostic,
};
use rtl::Romem;

use crate::driver::CompiledUnit;

/// Run the full static validation layer over `unit`.
///
/// Checks, in pipeline order:
///
/// 1. `validate_constprop` — `Vprop` input snapshot vs its output (the
///    abstract-interpretation constant propagation, DESIGN.md §12); the
///    value facts are recomputed on the snapshot against the same
///    read-only memory the pass used, so `symtab` is required;
/// 2. `validate_deadcode` — `Ndce` input snapshot vs the final optimized
///    RTL (neededness-driven dead-code elimination);
/// 3. `lint_rtl` on the optimized RTL (the allocator's input);
/// 4. `validate_allocation` — optimized RTL vs post-`Allocation` LTL;
/// 5. `lint_ltl` on the post-`Tunneling` LTL (the linearizer's input);
/// 6. `validate_linearize` — tunneled LTL vs raw `Linearize` output;
/// 7. `lint_linear` on the final Linear program (the stacker's input);
/// 8. `lint_mach` on the Mach program;
/// 9. `validate_asmgen` — Mach vs Asm;
/// 10. `lint_asm` on the final Asm program.
///
/// Function pairing between pass input and output is by name; a function
/// present on one side only is itself a finding (`<pass>.function-missing`).
pub fn validate_unit(unit: &CompiledUnit, symtab: &SymbolTable) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let romem = Romem::new(symtab);
    diags.extend(validate_constprop(
        &unit.rtl_vprop_in,
        &unit.rtl_ndce_in,
        &romem,
    ));
    diags.extend(validate_deadcode(&unit.rtl_ndce_in, &unit.rtl_opt));

    diags.extend(lint_rtl(&unit.rtl_opt));

    for rf in &unit.rtl_opt.functions {
        match unit.ltl.functions.iter().find(|lf| lf.name == rf.name) {
            Some(lf) => diags.extend(validate_allocation(rf, lf)),
            None => diags.push(Diagnostic::new(
                "alloc",
                &rf.name,
                None,
                "alloc.function-missing",
                "function present in RTL but absent from LTL".to_string(),
            )),
        }
    }

    diags.extend(lint_ltl(&unit.ltl_tunneled));

    for tf in &unit.ltl_tunneled.functions {
        match unit.linear_raw.functions.iter().find(|nf| nf.name == tf.name) {
            Some(nf) => diags.extend(validate_linearize(tf, nf)),
            None => diags.push(Diagnostic::new(
                "linearize",
                &tf.name,
                None,
                "linearize.function-missing",
                "function present in LTL but absent from Linear".to_string(),
            )),
        }
    }

    diags.extend(lint_linear(&unit.linear));
    diags.extend(lint_mach(&unit.mach));

    for mf in &unit.mach.functions {
        match unit.asm.functions.iter().find(|af| af.name == mf.name) {
            Some(af) => diags.extend(validate_asmgen(mf, af)),
            None => diags.push(Diagnostic::new(
                "asmgen",
                &mf.name,
                None,
                "asmgen.function-missing",
                "function present in Mach but absent from Asm".to_string(),
            )),
        }
    }

    diags.extend(lint_asm(&unit.asm));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all, CompilerOptions};

    #[test]
    fn honest_compilation_is_statically_clean() {
        let src = "
            extern int inc(int);
            int shared = 5;
            int helper(int x) { return x * 3; }
            int entry(int a) {
                int b; int c; int i; int acc;
                acc = 0;
                i = 0;
                while (i < a) { acc = acc + i; i = i + 1; }
                shared = shared + a;
                b = helper(a + 1);
                c = inc(b + acc);
                return b + c + shared;
            }";
        let (units, _) = compile_all(&[src], CompilerOptions::validated()).expect("compiles");
        assert_eq!(units[0].diagnostics, vec![], "honest unit must be clean");
    }

    #[test]
    fn validation_off_by_default_and_report_empty() {
        let src = "int f(int a) { return a + 1; }";
        let (units, _) = compile_all(&[src], CompilerOptions::default()).expect("compiles");
        assert!(units[0].diagnostics.is_empty());
    }

    #[test]
    fn tampered_asm_is_flagged() {
        let src = "int f(int a) { return a + 1; }";
        let (mut units, tbl) = compile_all(&[src], CompilerOptions::default()).expect("compiles");
        let mut unit = units.remove(0);
        // Delete one instruction from the Asm: the cursor walk must notice.
        let mid = unit.asm.functions[0].code.len() / 2;
        unit.asm.functions[0].code.remove(mid);
        let diags = validate_unit(&unit, &tbl);
        assert!(
            diags.iter().any(|d| d.pass == "asmgen"),
            "expected an asmgen finding, got {diags:?}"
        );
    }

    #[test]
    fn tampered_optimized_rtl_is_flagged_statically() {
        // Drift one immediate in the final optimized RTL: the neededness
        // validator sees a non-Nop rewrite it cannot justify.
        let src = "int f(int a) { return a + 41; }";
        let (mut units, tbl) = compile_all(&[src], CompilerOptions::default()).expect("compiles");
        let mut unit = units.remove(0);
        let f = &mut unit.rtl_opt.functions[0];
        let drifted = f.code.iter().find_map(|(n, i)| match i {
            rtl::Inst::Op(rtl::RtlOp::BinopImm(b, r, mem::Val::Int(k)), d, s) => Some((
                *n,
                rtl::Inst::Op(rtl::RtlOp::BinopImm(*b, *r, mem::Val::Int(k ^ 1)), *d, *s),
            )),
            _ => None,
        });
        let (n, inst) = drifted.expect("an Int immediate to drift");
        f.code.insert(n, inst);
        let diags = validate_unit(&unit, &tbl);
        assert!(
            diags.iter().any(|d| d.pass == "deadcode"),
            "expected a deadcode finding, got {diags:?}"
        );
    }
}
