//! The CompCertO-rs pass pipeline (paper Table 3, §3.4).

use std::fmt;

use backend::{
    allocation, asmgen, cleanup_labels, debugvar, linearize, stacking, tunneling, AsmProgram,
    AsmSem, LinProgram, LtlProgram, MachSem,
};
use clight::{build_symtab, parse, simpl_locals, typecheck};
use compcerto_core::iface::Signature;
use compcerto_core::symtab::{Ident, SymbolTable};
use minor::{cminorgen, cshmgen, selection, CmProgram, CsProgram, SelProgram};
use rtl::{
    constprop, cse, deadcode, inlining, renumber, rtlgen, tailcall, Romem, RtlFunction, RtlProgram,
};

use crate::par::{self, Jobs};

/// Options controlling the optional optimization passes (paper Table 3 marks
/// them with †; the final convention `C` is insensitive to them, §3.4).
#[derive(Debug, Clone, Copy)]
pub struct CompilerOptions {
    /// Run `Tailcall`.
    pub tailcall: bool,
    /// Run `Inlining`.
    pub inlining: bool,
    /// Run `Constprop`.
    pub constprop: bool,
    /// Run `CSE`.
    pub cse: bool,
    /// Run `Deadcode`.
    pub deadcode: bool,
    /// Run `Vprop` — interval-driven constant propagation with branch
    /// folding, consuming the forward value analysis of
    /// `compcerto-validate` (DESIGN.md §12).
    pub vprop: bool,
    /// Run `Ndce` — neededness-driven dead-code elimination, consuming the
    /// backward liveness-of-bits analysis (DESIGN.md §12).
    pub ndce: bool,
    /// Run the static validation layer after compiling: per-IR
    /// well-formedness lints and per-pass translation validators
    /// (see [`crate::validate`]). Findings land in
    /// [`CompiledUnit::diagnostics`]; compilation still succeeds, callers
    /// decide what to do with a non-empty report.
    pub validate: bool,
    /// Collect per-unit observability metrics (DESIGN.md §10): the
    /// deterministic counter delta of the unit's pass pipeline plus
    /// per-pass wall-clock spans, landing in [`CompiledUnit::metrics`].
    /// Off by default; the counters themselves tick unconditionally (they
    /// are a few thread-local adds), this flag only controls the per-pass
    /// timing spans and the snapshot/delta bookkeeping.
    pub metrics: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            tailcall: true,
            inlining: true,
            constprop: true,
            cse: true,
            deadcode: true,
            vprop: true,
            ndce: true,
            validate: false,
            metrics: false,
        }
    }
}

impl CompilerOptions {
    /// All optional optimizations off (`-O0`).
    pub fn none() -> CompilerOptions {
        CompilerOptions {
            tailcall: false,
            inlining: false,
            constprop: false,
            cse: false,
            deadcode: false,
            vprop: false,
            ndce: false,
            validate: false,
            metrics: false,
        }
    }

    /// Default optimizations with the static validation layer on.
    pub fn validated() -> CompilerOptions {
        CompilerOptions {
            validate: true,
            ..CompilerOptions::default()
        }
    }

    /// Enable per-unit observability metrics collection.
    #[must_use]
    pub fn with_metrics(mut self) -> CompilerOptions {
        self.metrics = true;
        self
    }
}

/// A compilation error from any stage of the pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(clight::ParseError),
    /// Type checking failed.
    Type(clight::TypeError),
    /// Symbol-table construction failed.
    Link(clight::LinkError),
    /// `Cshmgen` failed (ill-typed input).
    Cshmgen(minor::CshmgenError),
    /// `Cminorgen` failed.
    Cminorgen(minor::CminorgenError),
    /// `Stacking` failed (input not in allocator normal form).
    Stacking(backend::stacking::StackingError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Link(e) => write!(f, "{e}"),
            CompileError::Cshmgen(e) => write!(f, "{e}"),
            CompileError::Cminorgen(e) => write!(f, "{e}"),
            CompileError::Stacking(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Every intermediate program of one translation unit's compilation — the
/// full Table 3 pipeline, kept around so each pass's simulation can be
/// checked and benchmarked.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// The typed Clight-mini program.
    pub clight: clight::Program,
    /// After `SimplLocals`.
    pub clight_simpl: clight::Program,
    /// After `Cshmgen`.
    pub csharp: CsProgram,
    /// After `Cminorgen`.
    pub cminor: CmProgram,
    /// After `Selection`.
    pub cminorsel: SelProgram,
    /// After `RTLgen`.
    pub rtl: RtlProgram,
    /// The `Vprop` input snapshot: the RTL program right before the
    /// abstract-interpretation passes (equal to [`CompiledUnit::rtl_opt`]
    /// when both are disabled). The `Vprop` translation validator
    /// recomputes value facts on this program.
    pub rtl_vprop_in: RtlProgram,
    /// The `Ndce` input snapshot: after `Vprop`, before `Ndce`. The `Ndce`
    /// translation validator recomputes neededness facts on this program.
    pub rtl_ndce_in: RtlProgram,
    /// After the (enabled) RTL optimizations and `Renumber`.
    pub rtl_opt: RtlProgram,
    /// After `Allocation`.
    pub ltl: LtlProgram,
    /// After `Tunneling`.
    pub ltl_tunneled: LtlProgram,
    /// The *raw* `Linearize` output, before `CleanupLabels` erases the
    /// per-block labels — kept because the linearize translation validator
    /// keys on those labels.
    pub linear_raw: LinProgram,
    /// After `Linearize`, `CleanupLabels` and `Debugvar`.
    pub linear: LinProgram,
    /// After `Stacking`.
    pub mach: backend::mach::MachProgram,
    /// After `Asmgen`.
    pub asm: AsmProgram,
    /// The return-address map from `Asmgen`.
    pub ra_map: backend::asmgen::RaMap,
    /// Findings of the static validation layer (empty unless
    /// [`CompilerOptions::validate`] was set — or when it was set and the
    /// unit is clean).
    pub diagnostics: Vec<compcerto_validate::Diagnostic>,
    /// Observability metrics of this unit's pass pipeline (`None` unless
    /// [`CompilerOptions::metrics`] was set). The counter bag is
    /// deterministic; the pass spans are wall-clock (see `crate::obs`).
    pub metrics: Option<crate::obs::UnitMetrics>,
}

/// The shared front-end prefix of [`compile_unit`] and [`compile_all`]:
/// parse and type-check one translation unit.
///
/// # Errors
/// Reports lexing/parsing and type-checking failures.
pub fn front_end(src: &str) -> Result<clight::Program, CompileError> {
    let parsed = parse(src).map_err(CompileError::Parse)?;
    typecheck(&parsed).map_err(CompileError::Type)
}

/// Compile one translation unit against a given symbol table.
///
/// # Errors
/// Any front-end or back-end failure is reported as a [`CompileError`].
pub fn compile_unit(
    src: &str,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> Result<CompiledUnit, CompileError> {
    let typed = front_end(src)?;
    compile_program(&typed, symtab, opts)
}

/// Run one pass, recording its wall-clock span when metrics are on.
/// Every pass announces itself to the resilience layer first, so a
/// panic unwinding out of `f` is attributed to the right pass (and the
/// pass-panic envfault has its injection point).
fn span<T>(
    on: bool,
    pass_ms: &mut Vec<(&'static str, f64)>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    crate::resilience::pass_boundary(name);
    if !on {
        return f();
    }
    let t0 = std::time::Instant::now();
    let r = f();
    pass_ms.push((name, t0.elapsed().as_secs_f64() * 1e3));
    r
}

/// Every pass name, in canonical pipeline order. Per-function pass spans
/// are merged (summed) into this order so a unit's `pass_ms` reads the
/// same whether its back end ran whole-program or function-by-function.
const PASS_ORDER: [&'static str; 20] = [
    "simpl_locals",
    "cshmgen",
    "cminorgen",
    "selection",
    "rtlgen",
    "tailcall",
    "inlining",
    "renumber",
    "constprop",
    "cse",
    "deadcode",
    "vprop",
    "ndce",
    "allocation",
    "tunneling",
    "linearize",
    "cleanup_labels",
    "stacking",
    "asmgen",
    "validate",
];

/// Sum pass spans by name into canonical [`PASS_ORDER`] order. Timings are
/// volatile (stripped before any byte comparison) — this merge only keeps
/// the human-facing report shaped like the serial pipeline's.
fn merge_pass_ms(parts: Vec<Vec<(&'static str, f64)>>) -> Vec<(&'static str, f64)> {
    let mut sums: std::collections::BTreeMap<&'static str, f64> = std::collections::BTreeMap::new();
    for part in parts {
        for (name, ms) in part {
            *sums.entry(name).or_insert(0.0) += ms;
        }
    }
    PASS_ORDER
        .iter()
        .filter_map(|n| sums.get(n).map(|v| (*n, *v)))
        .collect()
}

/// The cross-function half of one unit's compilation (DESIGN.md §14): the
/// Clight → RTL stages plus the two whole-program RTL passes (`Tailcall`,
/// `Inlining` — the latter reads every function's body to build its
/// eligibility map). Everything after this point is a pure per-function
/// map, which is what lets [`compile_all_jobs`] and the serve scheduler
/// fan *functions*, not units, over the worker pool.
#[derive(Debug)]
pub struct UnitPrefix {
    /// After `SimplLocals`.
    pub clight_simpl: clight::Program,
    /// After `Cshmgen`.
    pub csharp: CsProgram,
    /// After `Cminorgen`.
    pub cminor: CmProgram,
    /// After `Selection`.
    pub cminorsel: SelProgram,
    /// After `RTLgen` (the `rtl` snapshot of [`CompiledUnit`]).
    pub rtl: RtlProgram,
    /// After `Tailcall` + `Inlining`: the program whose functions become
    /// the per-function work items.
    pub rtl_pre: RtlProgram,
    /// The read-only-globals summary the RTL optimizations consult: a pure
    /// function of the shared symbol table, built once per unit (inside the
    /// prefix counter window, exactly like the historical whole-unit
    /// pipeline) and shared by reference across the unit's per-function
    /// work items — `mem`'s block table is `Arc`-backed so the summary
    /// crosses the pool boundary.
    pub romem: Romem,
    /// Deterministic counter delta of the prefix (when metrics are on).
    counters: Option<crate::obs::Counters>,
    /// Wall-clock spans of the prefix passes (volatile).
    pass_ms: Vec<(&'static str, f64)>,
}

/// Clight → RTL, plus the cross-function RTL passes. See [`UnitPrefix`].
///
/// # Errors
/// Reports `Cshmgen`/`Cminorgen` failures.
pub fn unit_prefix(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> Result<UnitPrefix, CompileError> {
    // Observability (DESIGN.md §10): each phase's snapshot/delta pair runs
    // entirely on the thread executing that phase, and per-unit counters
    // are the *sum* of the unit's phase deltas — u64 sums commute, so the
    // total is schedule- and jobs-invariant however the phases are
    // distributed over workers.
    let snap = opts.metrics.then(crate::obs::ObsSnapshot::take);
    let mut pass_ms: Vec<(&'static str, f64)> = Vec::new();
    let on = opts.metrics;
    let ms = &mut pass_ms;

    let clight_simpl = span(on, ms, "simpl_locals", || simpl_locals(typed));
    let csharp =
        span(on, ms, "cshmgen", || cshmgen(&clight_simpl)).map_err(CompileError::Cshmgen)?;
    let cminor = span(on, ms, "cminorgen", || cminorgen(&csharp)).map_err(CompileError::Cminorgen)?;
    let cminorsel = span(on, ms, "selection", || selection(&cminor));
    let rtl0 = span(on, ms, "rtlgen", || rtlgen(&cminorsel));

    let mut r = rtl0.clone();
    if opts.tailcall {
        r = span(on, ms, "tailcall", || tailcall(&r));
    }
    if opts.inlining {
        r = span(on, ms, "inlining", || inlining(&r));
    }
    let romem = Romem::new(symtab);
    Ok(UnitPrefix {
        clight_simpl,
        csharp,
        cminor,
        cminorsel,
        rtl: rtl0,
        rtl_pre: r,
        romem,
        counters: snap.map(|s| s.delta()),
        pass_ms,
    })
}

/// One function's back end: every per-function artifact from `Renumber`
/// through `Asmgen`, carried as singleton programs so [`assemble_unit`]
/// can reassemble the unit by concatenating functions in input order.
#[derive(Debug)]
pub struct FnBack {
    vprop_in: RtlProgram,
    ndce_in: RtlProgram,
    rtl_opt: RtlProgram,
    ltl: LtlProgram,
    ltl_tunneled: LtlProgram,
    linear_raw: LinProgram,
    linear: LinProgram,
    mach: backend::mach::MachProgram,
    asm: AsmProgram,
    ra_map: backend::asmgen::RaMap,
    counters: Option<crate::obs::Counters>,
    pass_ms: Vec<(&'static str, f64)>,
}

/// The per-function back end (DESIGN.md §14): `Renumber` → `Asmgen` on a
/// singleton program. All of these passes are per-function maps in the
/// whole-program pipeline, so running them on one function at a time
/// produces byte-identical artifacts and counter totals — the property the
/// `jobs_determinism`/`obs_determinism`/golden-Asm suites gate.
///
/// # Errors
/// Reports `Stacking` failures.
pub fn fn_back_end(
    func: &RtlFunction,
    externs: &[(Ident, Signature)],
    romem: &Romem,
    opts: CompilerOptions,
) -> Result<FnBack, CompileError> {
    let snap = opts.metrics.then(crate::obs::ObsSnapshot::take);
    let mut pass_ms: Vec<(&'static str, f64)> = Vec::new();
    let on = opts.metrics;
    let ms = &mut pass_ms;

    let mut r = RtlProgram {
        functions: vec![func.clone()],
        externs: externs.to_vec(),
    };
    r = span(on, ms, "renumber", || renumber(&r));
    if opts.constprop {
        r = span(on, ms, "constprop", || constprop(&r, romem));
    }
    if opts.cse {
        r = span(on, ms, "cse", || cse(&r));
    }
    if opts.deadcode {
        r = span(on, ms, "deadcode", || deadcode(&r));
    }
    // The abstract-interpretation tier (DESIGN.md §12): both passes are
    // *untrusted* — they consume facts solved by `compcerto-validate`'s
    // fixpoint engine, and the snapshots taken here are what the matching
    // translation validators recompute those facts on.
    let vprop_in = r.clone();
    if opts.vprop {
        r = span(on, ms, "vprop", || {
            let facts = compcerto_validate::value_facts_program(&r, romem);
            rtl::vprop(&r, &facts)
        });
    }
    let ndce_in = r.clone();
    if opts.ndce {
        r = span(on, ms, "ndce", || {
            let facts = compcerto_validate::needed_facts_program(&r);
            rtl::ndce(&r, &facts)
        });
    }

    let ltl = span(on, ms, "allocation", || allocation(&r));
    let ltl_tunneled = span(on, ms, "tunneling", || tunneling(&ltl));
    let linear_raw = span(on, ms, "linearize", || linearize(&ltl_tunneled));
    let linear = span(on, ms, "cleanup_labels", || {
        debugvar(&cleanup_labels(&linear_raw))
    });
    let mach = span(on, ms, "stacking", || stacking(&linear)).map_err(CompileError::Stacking)?;
    let (asm, ra_map) = span(on, ms, "asmgen", || asmgen(&mach));

    Ok(FnBack {
        vprop_in,
        ndce_in,
        rtl_opt: r,
        ltl,
        ltl_tunneled,
        linear_raw,
        linear,
        mach,
        asm,
        ra_map,
        counters: snap.map(|s| s.delta()),
        pass_ms,
    })
}

/// Concatenate the per-function singleton programs back into whole-unit
/// programs (functions in input order, the unit's externs at every level —
/// every back-end pass passes `externs` through unchanged) and seed the
/// metrics bag with the prefix + per-function counter deltas. Validation
/// and the final metric assembly happen in [`finalize_unit`].
fn merge_unit(
    typed: &clight::Program,
    opts: CompilerOptions,
    mut prefix: UnitPrefix,
    backs: Vec<FnBack>,
) -> CompiledUnit {
    let ex = prefix.rtl_pre.externs.clone();
    let n = backs.len();
    let mut vprop_in_f = Vec::with_capacity(n);
    let mut ndce_in_f = Vec::with_capacity(n);
    let mut rtl_opt_f = Vec::with_capacity(n);
    let mut ltl_f = Vec::with_capacity(n);
    let mut ltl_tun_f = Vec::with_capacity(n);
    let mut lin_raw_f = Vec::with_capacity(n);
    let mut lin_f = Vec::with_capacity(n);
    let mut mach_f = Vec::with_capacity(n);
    let mut asm_f = Vec::with_capacity(n);
    let mut ra_map = backend::asmgen::RaMap::new();
    let mut counters = prefix.counters.take().unwrap_or_default();
    let mut ms_parts: Vec<Vec<(&'static str, f64)>> = vec![std::mem::take(&mut prefix.pass_ms)];
    for b in backs {
        vprop_in_f.extend(b.vprop_in.functions);
        ndce_in_f.extend(b.ndce_in.functions);
        rtl_opt_f.extend(b.rtl_opt.functions);
        ltl_f.extend(b.ltl.functions);
        ltl_tun_f.extend(b.ltl_tunneled.functions);
        lin_raw_f.extend(b.linear_raw.functions);
        lin_f.extend(b.linear.functions);
        mach_f.extend(b.mach.functions);
        asm_f.extend(b.asm.functions);
        ra_map.extend(b.ra_map);
        if let Some(c) = &b.counters {
            counters.add(c);
        }
        ms_parts.push(b.pass_ms);
    }
    let metrics = opts.metrics.then(|| crate::obs::UnitMetrics {
        counters,
        pass_ms: merge_pass_ms(ms_parts),
    });
    CompiledUnit {
        clight: typed.clone(),
        clight_simpl: prefix.clight_simpl,
        csharp: prefix.csharp,
        cminor: prefix.cminor,
        cminorsel: prefix.cminorsel,
        rtl: prefix.rtl,
        rtl_vprop_in: RtlProgram {
            functions: vprop_in_f,
            externs: ex.clone(),
        },
        rtl_ndce_in: RtlProgram {
            functions: ndce_in_f,
            externs: ex.clone(),
        },
        rtl_opt: RtlProgram {
            functions: rtl_opt_f,
            externs: ex.clone(),
        },
        ltl: LtlProgram {
            functions: ltl_f,
            externs: ex.clone(),
        },
        ltl_tunneled: LtlProgram {
            functions: ltl_tun_f,
            externs: ex.clone(),
        },
        linear_raw: LinProgram {
            functions: lin_raw_f,
            externs: ex.clone(),
        },
        linear: LinProgram {
            functions: lin_f,
            externs: ex.clone(),
        },
        mach: backend::mach::MachProgram {
            functions: mach_f,
            externs: ex.clone(),
        },
        asm: AsmProgram {
            functions: asm_f,
            externs: ex,
        },
        ra_map,
        diagnostics: Vec::new(),
        metrics,
    }
}

/// Validate the merged unit and fold the validation-phase counter delta
/// plus the static IR counters into its metrics — the last per-unit step,
/// run on whichever worker owns the unit.
fn finalize_unit(unit: &mut CompiledUnit, symtab: &SymbolTable, opts: CompilerOptions) {
    let snap = opts.metrics.then(crate::obs::ObsSnapshot::take);
    let mut pass_ms: Vec<(&'static str, f64)> = Vec::new();
    if opts.validate {
        // The validators borrow the whole unit; stash the findings after.
        let diags = span(opts.metrics, &mut pass_ms, "validate", || {
            crate::validate::validate_unit(unit, symtab)
        });
        unit.diagnostics = diags;
    }
    if let Some(snap) = snap {
        let ir = crate::obs::ir_counters(unit);
        if let Some(m) = unit.metrics.as_mut() {
            m.counters.add(&snap.delta());
            m.counters.add(&ir);
            m.pass_ms.extend(pass_ms);
        }
    }
}

/// Reassemble one unit from its prefix and per-function artifacts, then
/// validate and finalize its metrics. The serial composition
/// `unit_prefix` → [`fn_back_end`]* → `assemble_unit` is [`compile_program`].
pub fn assemble_unit(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
    prefix: UnitPrefix,
    backs: Vec<FnBack>,
) -> CompiledUnit {
    let mut unit = merge_unit(typed, opts, prefix, backs);
    finalize_unit(&mut unit, symtab, opts);
    unit
}

/// Compile an already-typed program against a given symbol table.
///
/// This is the serial composition of the decomposed pipeline: the
/// cross-function prefix, each function's back end in order on this
/// thread, then reassembly + validation — byte-identical artifacts,
/// diagnostics and counter totals to the parallel scheduler's.
///
/// # Errors
/// See [`compile_unit`].
pub fn compile_program(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> Result<CompiledUnit, CompileError> {
    let prefix = unit_prefix(typed, symtab, opts)?;
    let mut backs = Vec::with_capacity(prefix.rtl_pre.functions.len());
    for f in &prefix.rtl_pre.functions {
        backs.push(fn_back_end(f, &prefix.rtl_pre.externs, &prefix.romem, opts)?);
    }
    Ok(assemble_unit(typed, symtab, opts, prefix, backs))
}

/// One-stop compilation of a set of sources sharing a symbol table: parses
/// and type-checks all units, builds the shared table (paper App. A.3), and
/// compiles each unit against it.
///
/// Fans the per-unit work out over [`Jobs::Auto`] workers; the result is
/// byte-identical to the serial run (see [`crate::par`] and
/// [`compile_all_jobs`]).
///
/// # Errors
/// See [`compile_unit`].
pub fn compile_all(
    sources: &[&str],
    opts: CompilerOptions,
) -> Result<(Vec<CompiledUnit>, SymbolTable), CompileError> {
    compile_all_jobs(sources, opts, Jobs::Auto)
}

/// [`compile_all`] with an explicit degree of parallelism.
///
/// The function-level scheduler (ISSUE 9, DESIGN.md §14). Four phases fan
/// out over the worker pool with `build_symtab` as the one shared barrier:
///
/// 1. front end per unit (parse + type-check),
/// 2. cross-function prefix per unit (Clight → RTL, `Tailcall`/`Inlining`),
/// 3. per-function back ends, flattened across *all* units in
///    `(unit, function)` order — the work items the pool schedules,
/// 4. reassembly (serial concatenation) + per-unit validation.
///
/// `Jobs::N(1)` runs the serial loops unchanged; any other setting
/// produces byte-identical units in the same order, with the
/// *first-by-index* error on failure — the campaign and CLI checksum tests
/// assert this equivalence.
///
/// # Errors
/// See [`compile_unit`]; with several failing units the reported error is
/// the one the serial loop would have hit first.
pub fn compile_all_jobs(
    sources: &[&str],
    opts: CompilerOptions,
    jobs: Jobs,
) -> Result<(Vec<CompiledUnit>, SymbolTable), CompileError> {
    // Front-end fan-out: each unit parses and type-checks independently.
    let typed: Vec<clight::Program> = par::try_par_map(jobs, sources, |_, src| front_end(src))?;
    // Shared barrier: the symbol table spans every unit.
    let refs: Vec<&clight::Program> = typed.iter().collect();
    let symtab = build_symtab(&refs).map_err(CompileError::Link)?;
    let units = compile_typed_jobs(&typed, &symtab, opts, jobs)?;
    Ok((units, symtab))
}

/// The post-barrier half of [`compile_all_jobs`]: compile already
/// type-checked units against a symbol table built elsewhere. The serve
/// cache ([`crate::serve`]) uses this to push only its cache *misses*
/// through the function-level scheduler while the shared table still spans
/// every unit of the batch — per-unit artifacts and metrics are invariant
/// to which other units happened to hit.
///
/// # Errors
/// See [`compile_all_jobs`]: the serial pipeline's first error.
pub fn compile_typed_jobs(
    typed: &[clight::Program],
    symtab: &SymbolTable,
    opts: CompilerOptions,
    jobs: Jobs,
) -> Result<Vec<CompiledUnit>, CompileError> {
    // Cross-function prefix per unit. No early abort: every unit's result
    // is collected so the error reported below is the serial pipeline's
    // first, not the pool's fastest.
    let prefixes: Vec<Result<UnitPrefix, CompileError>> =
        par::par_map(jobs, typed, |_, t| unit_prefix(t, symtab, opts));
    // The global per-function work list, flattened in (unit, function)
    // order so a linear scan of the results reproduces serial error order.
    let items: Vec<(usize, usize)> = prefixes
        .iter()
        .enumerate()
        .flat_map(|(u, p)| {
            let n = p.as_ref().map_or(0, |p| p.rtl_pre.functions.len());
            (0..n).map(move |f| (u, f))
        })
        .collect();
    let backs: Vec<Option<Result<FnBack, CompileError>>> =
        par::par_map(jobs, &items, |_, &(u, f)| {
            let Ok(p) = &prefixes[u] else { return None };
            Some(fn_back_end(
                &p.rtl_pre.functions[f],
                &p.rtl_pre.externs,
                &p.romem,
                opts,
            ))
        });
    // Regroup per unit, surfacing the first error in serial order: lowest
    // unit index first, then lowest function index within the unit.
    let mut first_err: Option<CompileError> = None;
    let mut bi = backs.into_iter();
    let mut grouped: Vec<(UnitPrefix, Vec<FnBack>)> = Vec::with_capacity(prefixes.len());
    for p in prefixes {
        match p {
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Ok(p) => {
                let n = p.rtl_pre.functions.len();
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    match bi.next().flatten() {
                        Some(Ok(b)) => v.push(b),
                        Some(Err(e)) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                        None => {}
                    }
                }
                grouped.push((p, v));
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    // Reassembly is pure Vec concatenation (serial, ticks no counters);
    // validation + metric finalization fan back out per unit.
    let mut units: Vec<CompiledUnit> = grouped
        .into_iter()
        .zip(typed)
        .map(|((p, v), t)| merge_unit(t, opts, p, v))
        .collect();
    let finals: Vec<(Vec<compcerto_validate::Diagnostic>, Option<crate::obs::Counters>, f64)> =
        par::par_map(jobs, &units, |_, u| {
            let snap = opts.metrics.then(crate::obs::ObsSnapshot::take);
            let mut ms: Vec<(&'static str, f64)> = Vec::new();
            let diags = if opts.validate {
                span(opts.metrics, &mut ms, "validate", || {
                    crate::validate::validate_unit(u, symtab)
                })
            } else {
                Vec::new()
            };
            let validate_ms = ms.first().map_or(0.0, |(_, v)| *v);
            (diags, snap.map(|s| s.delta()), validate_ms)
        });
    for (u, (diags, delta, validate_ms)) in units.iter_mut().zip(finals) {
        u.diagnostics = diags;
        if let Some(delta) = delta {
            let ir = crate::obs::ir_counters(u);
            if let Some(m) = u.metrics.as_mut() {
                m.counters.add(&delta);
                m.counters.add(&ir);
                if opts.validate {
                    m.pass_ms.push(("validate", validate_ms));
                }
            }
        }
    }
    Ok(units)
}

impl CompiledUnit {
    /// The Clight open semantics of this unit.
    pub fn clight_sem(&self, symtab: &SymbolTable) -> clight::ClightSem {
        clight::ClightSem::new(self.clight.clone(), symtab.clone())
    }

    /// The Asm open semantics of this unit.
    pub fn asm_sem(&self, symtab: &SymbolTable) -> AsmSem {
        AsmSem::new(self.asm.clone(), symtab.clone())
    }

    /// The Mach open semantics (with the `Asmgen` return-address oracle
    /// installed).
    pub fn mach_sem(&self, symtab: &SymbolTable) -> MachSem {
        MachSem::new(self.mach.clone(), symtab.clone()).with_ra_oracle(
            backend::asmgen::make_ra_oracle(self.ra_map.clone(), symtab.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_compiles() {
        let src = "
            int helper(int x) { return x * 2; }
            int main_fn(int a) {
                int b;
                b = helper(a + 1);
                return b - a;
            }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        assert_eq!(units.len(), 1);
        let u = &units[0];
        assert_eq!(u.asm.functions.len(), 2);
        assert!(tbl.block_of("main_fn").is_some());
    }

    #[test]
    fn optimizations_are_optional() {
        let src = "int f(int a) { return a * 1 + 0; }";
        let (u0, _) = compile_all(&[src], CompilerOptions::none()).unwrap();
        let (u1, _) = compile_all(&[src], CompilerOptions::default()).unwrap();
        // Both pipelines produce runnable Asm (sizes may differ).
        assert_eq!(u0[0].asm.functions.len(), 1);
        assert_eq!(u1[0].asm.functions.len(), 1);
    }

    #[test]
    fn multi_unit_compilation_shares_table() {
        let a = "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }";
        let b = "int mult(int n, int p) { return n * p; }";
        let (units, tbl) = compile_all(&[a, b], CompilerOptions::default()).unwrap();
        assert_eq!(units.len(), 2);
        // Both units agree on the block of `mult`.
        assert!(tbl.block_of("mult").is_some());
        assert!(tbl.block_of("sqr").is_some());
    }
}
