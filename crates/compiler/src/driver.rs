//! The CompCertO-rs pass pipeline (paper Table 3, §3.4).

use std::fmt;

use backend::{
    allocation, asmgen, cleanup_labels, debugvar, linearize, stacking, tunneling, AsmProgram,
    AsmSem, LinProgram, LtlProgram, MachSem,
};
use clight::{build_symtab, parse, simpl_locals, typecheck};
use compcerto_core::symtab::SymbolTable;
use minor::{cminorgen, cshmgen, selection, CmProgram, CsProgram, SelProgram};
use rtl::{constprop, cse, deadcode, inlining, renumber, rtlgen, tailcall, Romem, RtlProgram};

use crate::par::{self, Jobs};

/// Options controlling the optional optimization passes (paper Table 3 marks
/// them with †; the final convention `C` is insensitive to them, §3.4).
#[derive(Debug, Clone, Copy)]
pub struct CompilerOptions {
    /// Run `Tailcall`.
    pub tailcall: bool,
    /// Run `Inlining`.
    pub inlining: bool,
    /// Run `Constprop`.
    pub constprop: bool,
    /// Run `CSE`.
    pub cse: bool,
    /// Run `Deadcode`.
    pub deadcode: bool,
    /// Run `Vprop` — interval-driven constant propagation with branch
    /// folding, consuming the forward value analysis of
    /// `compcerto-validate` (DESIGN.md §12).
    pub vprop: bool,
    /// Run `Ndce` — neededness-driven dead-code elimination, consuming the
    /// backward liveness-of-bits analysis (DESIGN.md §12).
    pub ndce: bool,
    /// Run the static validation layer after compiling: per-IR
    /// well-formedness lints and per-pass translation validators
    /// (see [`crate::validate`]). Findings land in
    /// [`CompiledUnit::diagnostics`]; compilation still succeeds, callers
    /// decide what to do with a non-empty report.
    pub validate: bool,
    /// Collect per-unit observability metrics (DESIGN.md §10): the
    /// deterministic counter delta of the unit's pass pipeline plus
    /// per-pass wall-clock spans, landing in [`CompiledUnit::metrics`].
    /// Off by default; the counters themselves tick unconditionally (they
    /// are a few thread-local adds), this flag only controls the per-pass
    /// timing spans and the snapshot/delta bookkeeping.
    pub metrics: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            tailcall: true,
            inlining: true,
            constprop: true,
            cse: true,
            deadcode: true,
            vprop: true,
            ndce: true,
            validate: false,
            metrics: false,
        }
    }
}

impl CompilerOptions {
    /// All optional optimizations off (`-O0`).
    pub fn none() -> CompilerOptions {
        CompilerOptions {
            tailcall: false,
            inlining: false,
            constprop: false,
            cse: false,
            deadcode: false,
            vprop: false,
            ndce: false,
            validate: false,
            metrics: false,
        }
    }

    /// Default optimizations with the static validation layer on.
    pub fn validated() -> CompilerOptions {
        CompilerOptions {
            validate: true,
            ..CompilerOptions::default()
        }
    }

    /// Enable per-unit observability metrics collection.
    #[must_use]
    pub fn with_metrics(mut self) -> CompilerOptions {
        self.metrics = true;
        self
    }
}

/// A compilation error from any stage of the pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(clight::ParseError),
    /// Type checking failed.
    Type(clight::TypeError),
    /// Symbol-table construction failed.
    Link(clight::LinkError),
    /// `Cshmgen` failed (ill-typed input).
    Cshmgen(minor::CshmgenError),
    /// `Cminorgen` failed.
    Cminorgen(minor::CminorgenError),
    /// `Stacking` failed (input not in allocator normal form).
    Stacking(backend::stacking::StackingError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Link(e) => write!(f, "{e}"),
            CompileError::Cshmgen(e) => write!(f, "{e}"),
            CompileError::Cminorgen(e) => write!(f, "{e}"),
            CompileError::Stacking(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Every intermediate program of one translation unit's compilation — the
/// full Table 3 pipeline, kept around so each pass's simulation can be
/// checked and benchmarked.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// The typed Clight-mini program.
    pub clight: clight::Program,
    /// After `SimplLocals`.
    pub clight_simpl: clight::Program,
    /// After `Cshmgen`.
    pub csharp: CsProgram,
    /// After `Cminorgen`.
    pub cminor: CmProgram,
    /// After `Selection`.
    pub cminorsel: SelProgram,
    /// After `RTLgen`.
    pub rtl: RtlProgram,
    /// The `Vprop` input snapshot: the RTL program right before the
    /// abstract-interpretation passes (equal to [`CompiledUnit::rtl_opt`]
    /// when both are disabled). The `Vprop` translation validator
    /// recomputes value facts on this program.
    pub rtl_vprop_in: RtlProgram,
    /// The `Ndce` input snapshot: after `Vprop`, before `Ndce`. The `Ndce`
    /// translation validator recomputes neededness facts on this program.
    pub rtl_ndce_in: RtlProgram,
    /// After the (enabled) RTL optimizations and `Renumber`.
    pub rtl_opt: RtlProgram,
    /// After `Allocation`.
    pub ltl: LtlProgram,
    /// After `Tunneling`.
    pub ltl_tunneled: LtlProgram,
    /// The *raw* `Linearize` output, before `CleanupLabels` erases the
    /// per-block labels — kept because the linearize translation validator
    /// keys on those labels.
    pub linear_raw: LinProgram,
    /// After `Linearize`, `CleanupLabels` and `Debugvar`.
    pub linear: LinProgram,
    /// After `Stacking`.
    pub mach: backend::mach::MachProgram,
    /// After `Asmgen`.
    pub asm: AsmProgram,
    /// The return-address map from `Asmgen`.
    pub ra_map: backend::asmgen::RaMap,
    /// Findings of the static validation layer (empty unless
    /// [`CompilerOptions::validate`] was set — or when it was set and the
    /// unit is clean).
    pub diagnostics: Vec<compcerto_validate::Diagnostic>,
    /// Observability metrics of this unit's pass pipeline (`None` unless
    /// [`CompilerOptions::metrics`] was set). The counter bag is
    /// deterministic; the pass spans are wall-clock (see `crate::obs`).
    pub metrics: Option<crate::obs::UnitMetrics>,
}

/// The shared front-end prefix of [`compile_unit`] and [`compile_all`]:
/// parse and type-check one translation unit.
///
/// # Errors
/// Reports lexing/parsing and type-checking failures.
pub fn front_end(src: &str) -> Result<clight::Program, CompileError> {
    let parsed = parse(src).map_err(CompileError::Parse)?;
    typecheck(&parsed).map_err(CompileError::Type)
}

/// Compile one translation unit against a given symbol table.
///
/// # Errors
/// Any front-end or back-end failure is reported as a [`CompileError`].
pub fn compile_unit(
    src: &str,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> Result<CompiledUnit, CompileError> {
    let typed = front_end(src)?;
    compile_program(&typed, symtab, opts)
}

/// Compile an already-typed program against a given symbol table.
///
/// # Errors
/// See [`compile_unit`].
pub fn compile_program(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> Result<CompiledUnit, CompileError> {
    // Observability (DESIGN.md §10): the snapshot/delta pair runs entirely
    // on this thread, and the parallel pool runs each unit entirely on one
    // worker — so the per-unit counter delta is schedule- and
    // jobs-invariant by construction. Pass spans are wall-clock and land
    // in the volatile (never gated) half of the metrics.
    let snap = opts.metrics.then(crate::obs::ObsSnapshot::take);
    let mut pass_ms: Vec<(&'static str, f64)> = Vec::new();

    /// Run one pass, recording its wall-clock span when metrics are on.
    /// Every pass announces itself to the resilience layer first, so a
    /// panic unwinding out of `f` is attributed to the right pass (and the
    /// pass-panic envfault has its injection point).
    fn span<T>(
        on: bool,
        pass_ms: &mut Vec<(&'static str, f64)>,
        name: &'static str,
        f: impl FnOnce() -> T,
    ) -> T {
        crate::resilience::pass_boundary(name);
        if !on {
            return f();
        }
        let t0 = std::time::Instant::now();
        let r = f();
        pass_ms.push((name, t0.elapsed().as_secs_f64() * 1e3));
        r
    }
    let on = opts.metrics;
    let ms = &mut pass_ms;

    let clight_simpl = span(on, ms, "simpl_locals", || simpl_locals(typed));
    let csharp =
        span(on, ms, "cshmgen", || cshmgen(&clight_simpl)).map_err(CompileError::Cshmgen)?;
    let cminor = span(on, ms, "cminorgen", || cminorgen(&csharp)).map_err(CompileError::Cminorgen)?;
    let cminorsel = span(on, ms, "selection", || selection(&cminor));
    let rtl0 = span(on, ms, "rtlgen", || rtlgen(&cminorsel));

    let mut r = rtl0.clone();
    if opts.tailcall {
        r = span(on, ms, "tailcall", || tailcall(&r));
    }
    if opts.inlining {
        r = span(on, ms, "inlining", || inlining(&r));
    }
    r = span(on, ms, "renumber", || renumber(&r));
    let romem = Romem::new(symtab);
    if opts.constprop {
        r = span(on, ms, "constprop", || constprop(&r, &romem));
    }
    if opts.cse {
        r = span(on, ms, "cse", || cse(&r));
    }
    if opts.deadcode {
        r = span(on, ms, "deadcode", || deadcode(&r));
    }
    // The abstract-interpretation tier (DESIGN.md §12): both passes are
    // *untrusted* — they consume facts solved by `compcerto-validate`'s
    // fixpoint engine, and the snapshots taken here are what the matching
    // translation validators recompute those facts on.
    let rtl_vprop_in = r.clone();
    if opts.vprop {
        r = span(on, ms, "vprop", || {
            let facts = compcerto_validate::value_facts_program(&r, &romem);
            rtl::vprop(&r, &facts)
        });
    }
    let rtl_ndce_in = r.clone();
    if opts.ndce {
        r = span(on, ms, "ndce", || {
            let facts = compcerto_validate::needed_facts_program(&r);
            rtl::ndce(&r, &facts)
        });
    }

    let ltl = span(on, ms, "allocation", || allocation(&r));
    let ltl_tunneled = span(on, ms, "tunneling", || tunneling(&ltl));
    let linear_raw = span(on, ms, "linearize", || linearize(&ltl_tunneled));
    let linear = span(on, ms, "cleanup_labels", || {
        debugvar(&cleanup_labels(&linear_raw))
    });
    let mach = span(on, ms, "stacking", || stacking(&linear)).map_err(CompileError::Stacking)?;
    let (asm, ra_map) = span(on, ms, "asmgen", || asmgen(&mach));

    let mut unit = CompiledUnit {
        clight: typed.clone(),
        clight_simpl,
        csharp,
        cminor,
        cminorsel,
        rtl: rtl0,
        rtl_vprop_in,
        rtl_ndce_in,
        rtl_opt: r,
        ltl,
        ltl_tunneled,
        linear_raw,
        linear,
        mach,
        asm,
        ra_map,
        diagnostics: Vec::new(),
        metrics: None,
    };
    if opts.validate {
        unit.diagnostics = span(on, ms, "validate", || {
            crate::validate::validate_unit(&unit, symtab)
        });
    }
    if let Some(snap) = snap {
        let mut counters = snap.delta();
        counters.add(&crate::obs::ir_counters(&unit));
        unit.metrics = Some(crate::obs::UnitMetrics { counters, pass_ms });
    }
    Ok(unit)
}

/// One-stop compilation of a set of sources sharing a symbol table: parses
/// and type-checks all units, builds the shared table (paper App. A.3), and
/// compiles each unit against it.
///
/// Fans the per-unit work out over [`Jobs::Auto`] workers; the result is
/// byte-identical to the serial run (see [`crate::par`] and
/// [`compile_all_jobs`]).
///
/// # Errors
/// See [`compile_unit`].
pub fn compile_all(
    sources: &[&str],
    opts: CompilerOptions,
) -> Result<(Vec<CompiledUnit>, SymbolTable), CompileError> {
    compile_all_jobs(sources, opts, Jobs::Auto)
}

/// [`compile_all`] with an explicit degree of parallelism.
///
/// The front end (parse + type-check) and the per-unit pass pipelines fan
/// out over the worker pool; `build_symtab` is the one shared barrier
/// between them, exactly as in the serial pipeline. `Jobs::N(1)` runs the
/// serial loops unchanged; any other setting produces byte-identical units
/// in the same order, with the *first-by-index* error on failure — the
/// campaign and CLI checksum tests assert this equivalence.
///
/// # Errors
/// See [`compile_unit`]; with several failing units the reported error is
/// the one the serial loop would have hit first.
pub fn compile_all_jobs(
    sources: &[&str],
    opts: CompilerOptions,
    jobs: Jobs,
) -> Result<(Vec<CompiledUnit>, SymbolTable), CompileError> {
    // Front-end fan-out: each unit parses and type-checks independently.
    let typed: Vec<clight::Program> = par::try_par_map(jobs, sources, |_, src| front_end(src))?;
    // Shared barrier: the symbol table spans every unit.
    let refs: Vec<&clight::Program> = typed.iter().collect();
    let symtab = build_symtab(&refs).map_err(CompileError::Link)?;
    // Back-end fan-out: per-unit pass pipelines against the shared table.
    let units = par::try_par_map(jobs, &typed, |_, t| compile_program(t, &symtab, opts))?;
    Ok((units, symtab))
}

impl CompiledUnit {
    /// The Clight open semantics of this unit.
    pub fn clight_sem(&self, symtab: &SymbolTable) -> clight::ClightSem {
        clight::ClightSem::new(self.clight.clone(), symtab.clone())
    }

    /// The Asm open semantics of this unit.
    pub fn asm_sem(&self, symtab: &SymbolTable) -> AsmSem {
        AsmSem::new(self.asm.clone(), symtab.clone())
    }

    /// The Mach open semantics (with the `Asmgen` return-address oracle
    /// installed).
    pub fn mach_sem(&self, symtab: &SymbolTable) -> MachSem {
        MachSem::new(self.mach.clone(), symtab.clone()).with_ra_oracle(
            backend::asmgen::make_ra_oracle(self.ra_map.clone(), symtab.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_compiles() {
        let src = "
            int helper(int x) { return x * 2; }
            int main_fn(int a) {
                int b;
                b = helper(a + 1);
                return b - a;
            }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        assert_eq!(units.len(), 1);
        let u = &units[0];
        assert_eq!(u.asm.functions.len(), 2);
        assert!(tbl.block_of("main_fn").is_some());
    }

    #[test]
    fn optimizations_are_optional() {
        let src = "int f(int a) { return a * 1 + 0; }";
        let (u0, _) = compile_all(&[src], CompilerOptions::none()).unwrap();
        let (u1, _) = compile_all(&[src], CompilerOptions::default()).unwrap();
        // Both pipelines produce runnable Asm (sizes may differ).
        assert_eq!(u0[0].asm.functions.len(), 1);
        assert_eq!(u1[0].asm.functions.len(), 1);
    }

    #[test]
    fn multi_unit_compilation_shares_table() {
        let a = "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }";
        let b = "int mult(int n, int p) { return n * p; }";
        let (units, tbl) = compile_all(&[a, b], CompilerOptions::default()).unwrap();
        assert_eq!(units.len(), 2);
        // Both units agree on the block of `mult`.
        assert!(tbl.block_of("mult").is_some());
        assert!(tbl.block_of("sqr").is_some());
    }
}
