//! Cross-stage differential testing: the seeded-generator oracle.
//!
//! [`compcerto_gen`] produces well-defined multi-unit Clight-mini programs;
//! this module runs each one through the interpreter of (almost) every
//! pipeline stage — Clight, SimplLocals'd Clight, RTL, optimized RTL,
//! Linear, Mach and Asm — under *identical* incoming questions and one
//! shared [`RunBudget`], then compares what each level observed:
//!
//! * the final answer (normalized to an [`ObsVal`]);
//! * the outgoing-question trace (callee name and returned value, recorded
//!   inside the environment closure at each level's own interface);
//! * the memory-visible effects (final contents of every mutable global,
//!   read back per its [`InitDatum`] layout).
//!
//! Any disagreement, any non-budget [`RunOutcome::Wrong`], any refused
//! environment question, and any static-validator rejection is a *finding*
//! ([`FindingKind`]); budget exhaustion at any stage merely skips the query
//! (possible divergence under a finite budget is not a verdict). On a
//! finding, [`run_seed`] invokes the delta-debugging reducer
//! ([`compcerto_gen::reduce`]) with a same-kind predicate and attaches a
//! minimal self-contained reproducer.
//!
//! Two *metamorphic* link-composition checks ride along (paper Thm 3.8 /
//! Cor 3.9 territory): compile-each-unit-then-[`link_asm`] must observe the
//! same behaviour as [`clight::link`]-then-compile, and for two-unit
//! programs the horizontal composition `Asm(p1) ⊕ Asm(p2)` must simulate the
//! linked Asm ([`check_thm35_budgeted`]).
//!
//! Everything here is a pure function of `(seed, DifftestCfg)` — no
//! wall-clock budgets, no global state — so campaigns parallelize with
//! byte-identical reports (see the `difftest_campaign` binary).

use std::collections::BTreeSet;
use std::fmt;

use backend::asmgen::RaMap;
use backend::{link_asm, AsmProgram, AsmSem, LinProgram, LinearSem, MachProgram, MachSem};
use clight::{build_symtab, ClightSem};
use compcerto_core::cc::{Ca, Cl};
use compcerto_core::conv::SimConv;
use compcerto_core::iface::{abi, ARegs, CQuery, LQuery, MQuery, Signature};
use compcerto_core::lts::{run_budgeted, RunBudget, RunOutcome};
use compcerto_core::regs::{Loc, NREGS};
use compcerto_core::rng::SplitMix64;
use compcerto_core::sim::SimCheckError;
use compcerto_core::symtab::{GlobKind, InitDatum, SymbolTable};
use compcerto_gen::generate::gen_queries;
use compcerto_gen::{generate, reduce, GProgram, GenCfg, ReduceStats};
use mem::{Chunk, Mem, Val};
use rtl::{RtlProgram, RtlSem};

use crate::driver::{compile_all, compile_program, CompiledUnit, CompilerOptions};
use crate::extlib::ExtLib;
use crate::faultinj::{mutate, MutationClass, MUTATION_CLASSES};
use crate::harness::{check_thm35_budgeted, check_thm38_budgeted, try_c_query};

/// The stages the oracle compares, in pipeline order. `"clight"` is the
/// baseline every other stage is compared against.
pub const STAGES: [&str; 7] = [
    "clight",
    "simpl-locals",
    "rtl",
    "rtl-opt",
    "linear",
    "mach",
    "asm",
];

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct DifftestCfg {
    /// Shape of the generated programs.
    pub gen: GenCfg,
    /// Incoming queries per program.
    pub queries: usize,
    /// Fuel per stage execution (the only budget axis: wall-clock deadlines
    /// would break determinism).
    pub fuel: u64,
    /// Run the metamorphic link-composition checks on multi-unit programs.
    pub check_links: bool,
    /// Shrink findings to a minimal reproducer.
    pub reduce: bool,
    /// Predicate-evaluation budget for the reducer.
    pub reduce_checks: usize,
}

impl Default for DifftestCfg {
    fn default() -> Self {
        DifftestCfg {
            gen: GenCfg::default(),
            queries: 3,
            fuel: 2_000_000,
            check_links: true,
            reduce: true,
            reduce_checks: 400,
        }
    }
}

impl DifftestCfg {
    /// A smaller profile for high-volume campaigns and CI.
    pub fn quick() -> DifftestCfg {
        DifftestCfg {
            gen: GenCfg::quick(),
            queries: 2,
            fuel: 1_000_000,
            reduce_checks: 250,
            ..DifftestCfg::default()
        }
    }
}

/// A normalized observed value: concrete integers compare exactly, pointers
/// are opaque (block numbering differs across levels and symbol tables), and
/// anything else is lumped together.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsVal {
    /// A 32-bit integer.
    Int(i32),
    /// A 64-bit integer.
    Long(i64),
    /// Some pointer (opaque: block identity is not stable across levels).
    Ptr,
    /// The undefined value.
    Undef,
    /// A float or other value class the generator never produces.
    Other,
}

impl fmt::Display for ObsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsVal::Int(n) => write!(f, "int:{n}"),
            ObsVal::Long(n) => write!(f, "long:{n}"),
            ObsVal::Ptr => write!(f, "ptr"),
            ObsVal::Undef => write!(f, "undef"),
            ObsVal::Other => write!(f, "other"),
        }
    }
}

pub(crate) fn obs_val(v: &Val) -> ObsVal {
    match v {
        Val::Int(n) => ObsVal::Int(*n),
        Val::Long(n) => ObsVal::Long(*n),
        Val::Ptr(_, _) => ObsVal::Ptr,
        Val::Undef => ObsVal::Undef,
        _ => ObsVal::Other,
    }
}

/// Everything one stage observed while answering one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obs {
    /// The final answer (result register / return value), normalized.
    pub result: ObsVal,
    /// Outgoing questions in order: callee name and the value the
    /// environment returned, extracted at the stage's own interface.
    pub ext: Vec<(String, ObsVal)>,
    /// Final contents of every mutable global, read per its layout.
    pub globals: Vec<(String, Vec<ObsVal>)>,
}

impl fmt::Display for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "result={}", self.result)?;
        if !self.ext.is_empty() {
            write!(f, " ext=[")?;
            for (i, (n, v)) in self.ext.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{n}->{v}")?;
            }
            write!(f, "]")?;
        }
        for (name, vals) in &self.globals {
            write!(f, " {name}=[")?;
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Outcome of running one stage on one query.
#[derive(Debug, Clone)]
pub enum StageOutcome {
    /// The stage completed; here is what it observed.
    Ok(Obs),
    /// A budget quota was exhausted — not a verdict, the query is skipped.
    Budget(String),
    /// The interpreter got stuck (a finding: generated programs are
    /// well-defined by construction).
    Stuck(String),
    /// The environment refused an outgoing question (a finding: the model
    /// library answers everything the generator emits).
    EnvRefused(String),
    /// The query could not be transported to this stage's interface.
    Transport(String),
}

/// What kind of bug a finding is. The reducer predicate keys on
/// [`FindingKind::tag`], so shrinking preserves the failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The generated program failed to compile (or link).
    Compile,
    /// The static validation layer rejected a translation.
    ValidatorRejected,
    /// Two stages observed different behaviour.
    Disagreement {
        /// The stage that diverged from the Clight baseline.
        stage: &'static str,
    },
    /// A stage interpreter got stuck on a well-defined program.
    Stuck {
        /// The stuck stage.
        stage: &'static str,
    },
    /// The model environment refused a question it should answer.
    EnvRefused {
        /// The refusing stage.
        stage: &'static str,
    },
    /// A query could not be transported down to a stage's interface.
    Transport {
        /// The stage whose transport failed.
        stage: &'static str,
    },
    /// A metamorphic link-composition check failed (compile∘link vs
    /// link∘compile, or `⊕` vs syntactic linking).
    LinkMismatch,
}

impl FindingKind {
    /// Stable kebab-case class name (reducer predicate and reports).
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::Compile => "compile",
            FindingKind::ValidatorRejected => "validator-rejected",
            FindingKind::Disagreement { .. } => "disagreement",
            FindingKind::Stuck { .. } => "stuck",
            FindingKind::EnvRefused { .. } => "env-refused",
            FindingKind::Transport { .. } => "transport",
            FindingKind::LinkMismatch => "link-mismatch",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::Disagreement { stage }
            | FindingKind::Stuck { stage }
            | FindingKind::EnvRefused { stage }
            | FindingKind::Transport { stage } => write!(f, "{}@{stage}", self.tag()),
            _ => f.write_str(self.tag()),
        }
    }
}

/// Verdict of the oracle on one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedOutcome {
    /// Every (non-skipped) query agreed at every stage.
    Agree {
        /// Queries fully compared.
        queries_run: usize,
        /// Queries skipped for budget exhaustion at some stage.
        queries_skipped: usize,
    },
    /// Every query was budget-limited — no verdict for this seed.
    Skipped(String),
    /// A bug (or a bug in this harness): see the kind and detail.
    Finding {
        /// The failure class.
        kind: FindingKind,
        /// Human-readable context (query index, both observations, …).
        detail: String,
    },
}

/// A minimal reproducer attached to a finding.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Self-contained annotated source (seed banner + unit separators).
    pub source: String,
    /// Statements in the reduced program.
    pub stmts: usize,
    /// Reduction statistics.
    pub stats: ReduceStats,
}

/// The full per-seed report of [`run_seed`].
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// The oracle verdict.
    pub outcome: SeedOutcome,
    /// Present iff the outcome is a finding and reduction was enabled.
    pub reproducer: Option<Reproducer>,
}

// ---------------------------------------------------------------------------
// Stage program construction: linked / merged whole programs per IR
// ---------------------------------------------------------------------------

/// The per-stage merged programs of one multi-unit compilation.
#[derive(Debug, Clone)]
pub struct StagePrograms {
    /// Syntactically linked typed Clight.
    pub clight: clight::Program,
    /// Linked SimplLocals'd Clight.
    pub clight_simpl: clight::Program,
    /// Concatenated pre-optimization RTL.
    pub rtl: RtlProgram,
    /// Concatenated optimized RTL.
    pub rtl_opt: RtlProgram,
    /// Concatenated Linear.
    pub linear: LinProgram,
    /// Concatenated Mach.
    pub mach: MachProgram,
    /// Union of the per-unit return-address maps (function names are
    /// program-unique, so the maps never clash).
    pub ra_map: RaMap,
    /// Syntactically linked Asm.
    pub asm: AsmProgram,
}

fn merge_externs(
    externs: &mut Vec<(String, Signature)>,
    more: &[(String, Signature)],
    defined: &BTreeSet<String>,
) {
    for (n, s) in more {
        if !defined.contains(n) && !externs.iter().any(|(m, _)| m == n) {
            externs.push((n.clone(), s.clone()));
        }
    }
}

macro_rules! merge_ir {
    ($units:expr, $field:ident, $ty:ty) => {{
        let mut out = <$ty>::default();
        for u in $units {
            out.functions.extend(u.$field.functions.iter().cloned());
        }
        let defined: BTreeSet<String> = out.functions.iter().map(|f| f.name.clone()).collect();
        for u in $units {
            merge_externs(&mut out.externs, &u.$field.externs, &defined);
        }
        out
    }};
}

impl StagePrograms {
    /// Link / merge the per-unit intermediate programs into per-stage whole
    /// programs.
    ///
    /// # Errors
    /// Reports a Clight- or Asm-level linking failure as a string.
    pub fn build(units: &[CompiledUnit]) -> Result<StagePrograms, String> {
        let first = units.first().ok_or("no units")?;
        let mut clight = first.clight.clone();
        let mut clight_simpl = first.clight_simpl.clone();
        let mut asm = first.asm.clone();
        for u in &units[1..] {
            clight = clight::link(&clight, &u.clight).map_err(|e| format!("clight link: {e:?}"))?;
            clight_simpl = clight::link(&clight_simpl, &u.clight_simpl)
                .map_err(|e| format!("simpl-locals link: {e:?}"))?;
            asm = link_asm(&asm, &u.asm).map_err(|e| format!("asm link: {e}"))?;
        }
        let mut ra_map = RaMap::new();
        for u in units {
            ra_map.extend(u.ra_map.iter().map(|(k, v)| (k.clone(), *v)));
        }
        Ok(StagePrograms {
            clight,
            clight_simpl,
            rtl: merge_ir!(units, rtl, RtlProgram),
            rtl_opt: merge_ir!(units, rtl_opt, RtlProgram),
            linear: merge_ir!(units, linear, LinProgram),
            mach: merge_ir!(units, mach, MachProgram),
            ra_map,
            asm,
        })
    }
}

// ---------------------------------------------------------------------------
// Per-interface stage runners
// ---------------------------------------------------------------------------

pub(crate) fn name_of(symtab: &SymbolTable, vf: &Val) -> String {
    match vf {
        Val::Ptr(b, 0) => symtab
            .ident_of(*b)
            .map(str::to_string)
            .unwrap_or_else(|| format!("?block{b}")),
        other => format!("?{other:?}"),
    }
}

/// Read back the final contents of every mutable global, laid out per its
/// [`InitDatum`] list. Unreadable cells observe as [`ObsVal::Undef`].
pub(crate) fn read_globals(symtab: &SymbolTable, m: &Mem) -> Vec<(String, Vec<ObsVal>)> {
    let mut out = Vec::new();
    for (b, name, kind) in symtab.iter() {
        let GlobKind::Var { init, readonly } = kind else {
            continue;
        };
        if *readonly {
            continue;
        }
        let mut vals = Vec::new();
        let mut ofs = 0i64;
        for d in init {
            match d {
                InitDatum::Int32(_) => {
                    vals.push(obs_val(&m.load(Chunk::I32, b, ofs).unwrap_or(Val::Undef)));
                }
                InitDatum::Int64(_) => {
                    vals.push(obs_val(&m.load(Chunk::I64, b, ofs).unwrap_or(Val::Undef)));
                }
                InitDatum::Space(n) => {
                    let mut o = 0i64;
                    while o + 8 <= *n {
                        vals.push(obs_val(
                            &m.load(Chunk::I64, b, ofs + o).unwrap_or(Val::Undef),
                        ));
                        o += 8;
                    }
                }
            }
            ofs += d.size();
        }
        out.push((name.to_string(), vals));
    }
    out
}

fn budget_outcome<IA>(o: &RunOutcome<IA>) -> Option<StageOutcome> {
    match o {
        RunOutcome::OutOfFuel { .. } => Some(StageOutcome::Budget("out of fuel".into())),
        RunOutcome::OutOfMemory { used, limit, .. } => Some(StageOutcome::Budget(format!(
            "out of memory: {used} > {limit}"
        ))),
        RunOutcome::DepthExceeded { depth, limit, .. } => Some(StageOutcome::Budget(format!(
            "depth exceeded: {depth} > {limit}"
        ))),
        RunOutcome::TimedOut { elapsed, .. } => {
            Some(StageOutcome::Budget(format!("timed out after {elapsed:?}")))
        }
        _ => None,
    }
}

/// Run a C-interface semantics (Clight or RTL) on a C query.
macro_rules! run_c_level {
    ($sem:expr, $symtab:expr, $lib:expr, $q:expr, $budget:expr) => {{
        let mut ext: Vec<(String, ObsVal)> = Vec::new();
        let outcome = {
            let mut env = |oq: &CQuery| {
                let r = $lib.answer_c(oq)?;
                ext.push((name_of($symtab, &oq.vf), obs_val(&r.retval)));
                Some(r)
            };
            run_budgeted(&$sem, $q, &mut env, $budget)
        };
        if let Some(b) = budget_outcome(&outcome) {
            b
        } else {
            match outcome {
                RunOutcome::Complete { answer, .. } => StageOutcome::Ok(Obs {
                    result: obs_val(&answer.retval),
                    ext,
                    globals: read_globals($symtab, &answer.mem),
                }),
                RunOutcome::Wrong { stuck, .. } => StageOutcome::Stuck(format!("{stuck}")),
                RunOutcome::EnvRefused(q) => StageOutcome::EnvRefused(q),
                _ => unreachable!("budget outcomes handled above"),
            }
        }
    }};
}

fn run_clight_stage(
    prog: &clight::Program,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    let sem = ClightSem::new(prog.clone(), symtab.clone());
    run_c_level!(sem, symtab, lib, q, budget)
}

fn run_rtl_stage(
    prog: &RtlProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    let sem = RtlSem::new(prog.clone(), symtab.clone());
    run_c_level!(sem, symtab, lib, q, budget)
}

fn run_linear_stage(
    prog: &LinProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    let Some((_sig, lq)) = Cl.transport_query(q) else {
        return StageOutcome::Transport("CL transport failed".into());
    };
    let sem = LinearSem::new(prog.clone(), symtab.clone());
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &LQuery| {
            let r = lib.answer_l(oq)?;
            ext.push((
                name_of(symtab, &oq.vf),
                obs_val(&r.ls.get(Loc::Reg(abi::RESULT_REG))),
            ));
            Some(r)
        };
        run_budgeted(&sem, &lq, &mut env, budget)
    };
    if let Some(b) = budget_outcome(&outcome) {
        return b;
    }
    match outcome {
        RunOutcome::Complete { answer, .. } => StageOutcome::Ok(Obs {
            result: obs_val(&answer.ls.get(Loc::Reg(abi::RESULT_REG))),
            ext,
            globals: read_globals(symtab, &answer.mem),
        }),
        RunOutcome::Wrong { stuck, .. } => StageOutcome::Stuck(format!("{stuck}")),
        RunOutcome::EnvRefused(q) => StageOutcome::EnvRefused(q),
        _ => unreachable!("budget outcomes handled above"),
    }
}

/// Build an M-level query from a C-level one: register arguments in
/// `r0..r3`, overflow arguments stored in a freshly allocated argument
/// region `sp` points to (mirroring [`Ca::transport_query`]).
pub(crate) fn m_query(q: &CQuery) -> Option<MQuery> {
    let mut m2 = q.mem.clone();
    let spb = m2.alloc(0, abi::size_arguments(&q.sig).max(0));
    let mut rs = [Val::Undef; NREGS];
    for (i, v) in q.args.iter().enumerate() {
        if i < abi::PARAM_REGS.len() {
            rs[abi::PARAM_REGS[i].index()] = *v;
        } else {
            let ofs = ((i - abi::PARAM_REGS.len()) as i64) * 8;
            m2.store(Chunk::Any64, spb, ofs, *v).ok()?;
        }
    }
    Some(MQuery {
        vf: q.vf,
        sp: Val::Ptr(spb, 0),
        ra: Val::Undef,
        rs,
        mem: m2,
    })
}

fn run_mach_stage(
    prog: &MachProgram,
    ra_map: &RaMap,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    let Some(mq) = m_query(q) else {
        return StageOutcome::Transport("CM transport failed".into());
    };
    let sem = MachSem::new(prog.clone(), symtab.clone())
        .with_ra_oracle(backend::asmgen::make_ra_oracle(ra_map.clone(), symtab.clone()));
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &MQuery| {
            let r = lib.answer_m(oq)?;
            ext.push((
                name_of(symtab, &oq.vf),
                obs_val(&r.rs[abi::RESULT_REG.index()]),
            ));
            Some(r)
        };
        run_budgeted(&sem, &mq, &mut env, budget)
    };
    if let Some(b) = budget_outcome(&outcome) {
        return b;
    }
    match outcome {
        RunOutcome::Complete { answer, .. } => StageOutcome::Ok(Obs {
            result: obs_val(&answer.rs[abi::RESULT_REG.index()]),
            ext,
            globals: read_globals(symtab, &answer.mem),
        }),
        RunOutcome::Wrong { stuck, .. } => StageOutcome::Stuck(format!("{stuck}")),
        RunOutcome::EnvRefused(q) => StageOutcome::EnvRefused(q),
        _ => unreachable!("budget outcomes handled above"),
    }
}

fn run_asm_stage(
    prog: &AsmProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    let ca = Ca::new(symtab.len() as u32);
    let Some((_w, qa)) = ca.transport_query(q) else {
        return StageOutcome::Transport("CA transport failed".into());
    };
    let sem = AsmSem::new(prog.clone(), symtab.clone());
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &ARegs| {
            let r = lib.answer_a(oq)?;
            ext.push((
                name_of(symtab, &oq.rs.pc),
                obs_val(&r.rs.get(abi::RESULT_REG)),
            ));
            Some(r)
        };
        run_budgeted(&sem, &qa, &mut env, budget)
    };
    if let Some(b) = budget_outcome(&outcome) {
        return b;
    }
    match outcome {
        RunOutcome::Complete { answer, .. } => StageOutcome::Ok(Obs {
            result: obs_val(&answer.rs.get(abi::RESULT_REG)),
            ext,
            globals: read_globals(symtab, &answer.mem),
        }),
        RunOutcome::Wrong { stuck, .. } => StageOutcome::Stuck(format!("{stuck}")),
        RunOutcome::EnvRefused(q) => StageOutcome::EnvRefused(q),
        _ => unreachable!("budget outcomes handled above"),
    }
}

/// Run a single named stage (one of [`STAGES`]) on one C-level query —
/// the per-stage entry point used by the `interp_campaign` bench to
/// attribute step throughput to each interpreter via the `lts.*` counters.
///
/// Unknown stage names report as [`StageOutcome::Transport`].
pub fn run_stage(
    sp: &StagePrograms,
    symtab: &SymbolTable,
    lib: &ExtLib,
    stage: &str,
    q: &CQuery,
    budget: &RunBudget,
) -> StageOutcome {
    match stage {
        "clight" => run_clight_stage(&sp.clight, symtab, lib, q, budget),
        "simpl-locals" => run_clight_stage(&sp.clight_simpl, symtab, lib, q, budget),
        "rtl" => run_rtl_stage(&sp.rtl, symtab, lib, q, budget),
        "rtl-opt" => run_rtl_stage(&sp.rtl_opt, symtab, lib, q, budget),
        "linear" => run_linear_stage(&sp.linear, symtab, lib, q, budget),
        "mach" => run_mach_stage(&sp.mach, &sp.ra_map, symtab, lib, q, budget),
        "asm" => run_asm_stage(&sp.asm, symtab, lib, q, budget),
        other => StageOutcome::Transport(format!("unknown stage `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// The oracle: per-query stage comparison
// ---------------------------------------------------------------------------

/// Verdict of the oracle on one query.
#[derive(Debug, Clone)]
pub enum QueryVerdict {
    /// Every stage completed and observed the same behaviour.
    Agree(Box<Obs>),
    /// A stage was budget-limited; the query is skipped without a verdict.
    Skipped {
        /// The budget-limited stage.
        stage: &'static str,
    },
    /// A finding at some stage.
    Finding {
        /// The failure class.
        kind: FindingKind,
        /// Human-readable context.
        detail: String,
    },
}

fn compare_stage(stage: &'static str, run: StageOutcome, base: &Obs) -> Option<QueryVerdict> {
    match run {
        StageOutcome::Ok(obs) => {
            if obs == *base {
                None
            } else {
                Some(QueryVerdict::Finding {
                    kind: FindingKind::Disagreement { stage },
                    detail: format!("clight observed [{base}] but {stage} observed [{obs}]"),
                })
            }
        }
        StageOutcome::Budget(_) => Some(QueryVerdict::Skipped { stage }),
        StageOutcome::Stuck(d) => Some(QueryVerdict::Finding {
            kind: FindingKind::Stuck { stage },
            detail: d,
        }),
        StageOutcome::EnvRefused(d) => Some(QueryVerdict::Finding {
            kind: FindingKind::EnvRefused { stage },
            detail: d,
        }),
        StageOutcome::Transport(d) => Some(QueryVerdict::Finding {
            kind: FindingKind::Transport { stage },
            detail: d,
        }),
    }
}

/// Run one C-level query through every stage and compare observations
/// against the Clight baseline.
pub fn check_query(
    sp: &StagePrograms,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
) -> QueryVerdict {
    check_query_rec(sp, symtab, lib, q, budget, None)
}

/// [`check_query`] with an optional stage-pair recorder: each non-baseline
/// stage name is inserted *when its comparison against the Clight baseline
/// actually runs* (an early finding or skip leaves later stages unrecorded),
/// so a campaign can prove which of the six stage pairs its seed block
/// exercised (`gen/tests/coverage.rs`).
fn check_query_rec(
    sp: &StagePrograms,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    budget: &RunBudget,
    mut rec: Option<&mut BTreeSet<&'static str>>,
) -> QueryVerdict {
    let mut record = |stage: &'static str| {
        if let Some(set) = rec.as_deref_mut() {
            set.insert(stage);
        }
    };
    let base = match run_clight_stage(&sp.clight, symtab, lib, q, budget) {
        StageOutcome::Ok(obs) => obs,
        StageOutcome::Budget(_) => return QueryVerdict::Skipped { stage: "clight" },
        StageOutcome::Stuck(d) => {
            return QueryVerdict::Finding {
                kind: FindingKind::Stuck { stage: "clight" },
                detail: d,
            }
        }
        StageOutcome::EnvRefused(d) => {
            return QueryVerdict::Finding {
                kind: FindingKind::EnvRefused { stage: "clight" },
                detail: d,
            }
        }
        StageOutcome::Transport(d) => {
            return QueryVerdict::Finding {
                kind: FindingKind::Transport { stage: "clight" },
                detail: d,
            }
        }
    };
    record("simpl-locals");
    if let Some(v) = compare_stage(
        "simpl-locals",
        run_clight_stage(&sp.clight_simpl, symtab, lib, q, budget),
        &base,
    ) {
        return v;
    }
    record("rtl");
    if let Some(v) = compare_stage("rtl", run_rtl_stage(&sp.rtl, symtab, lib, q, budget), &base) {
        return v;
    }
    record("rtl-opt");
    if let Some(v) = compare_stage(
        "rtl-opt",
        run_rtl_stage(&sp.rtl_opt, symtab, lib, q, budget),
        &base,
    ) {
        return v;
    }
    record("linear");
    if let Some(v) = compare_stage(
        "linear",
        run_linear_stage(&sp.linear, symtab, lib, q, budget),
        &base,
    ) {
        return v;
    }
    record("mach");
    if let Some(v) = compare_stage(
        "mach",
        run_mach_stage(&sp.mach, &sp.ra_map, symtab, lib, q, budget),
        &base,
    ) {
        return v;
    }
    record("asm");
    if let Some(v) = compare_stage("asm", run_asm_stage(&sp.asm, symtab, lib, q, budget), &base) {
        return v;
    }
    QueryVerdict::Agree(Box::new(base))
}

// ---------------------------------------------------------------------------
// Whole-program oracle
// ---------------------------------------------------------------------------

/// The compile-then-link vs link-then-compile context: the generated units
/// linked *at the Clight level* and compiled as one translation unit,
/// against its own symbol table.
struct WholeProgram {
    unit: CompiledUnit,
    symtab: SymbolTable,
    lib: ExtLib,
}

fn build_whole(linked: &clight::Program, opts: CompilerOptions) -> Result<WholeProgram, String> {
    let symtab = build_symtab(&[linked]).map_err(|e| format!("whole-program symtab: {e}"))?;
    let unit =
        compile_program(linked, &symtab, opts).map_err(|e| format!("whole-program compile: {e}"))?;
    let lib = ExtLib::demo(symtab.clone());
    Ok(WholeProgram { unit, symtab, lib })
}

fn is_budget_sim_err(e: &SimCheckError) -> bool {
    matches!(
        e,
        SimCheckError::OutOfFuel { .. } | SimCheckError::BudgetExceeded { .. }
    )
}

/// Run the oracle on one generated program: compile, validate, compare every
/// stage on every query, and (for multi-unit programs) run the metamorphic
/// link-composition checks.
pub fn check_program(prog: &GProgram, cfg: &DifftestCfg) -> SeedOutcome {
    check_program_rec(prog, cfg, None)
}

/// [`check_program`] with an optional stage-pair recorder threaded through
/// every query (see [`check_query_rec`]).
fn check_program_rec(
    prog: &GProgram,
    cfg: &DifftestCfg,
    mut rec: Option<&mut BTreeSet<&'static str>>,
) -> SeedOutcome {
    let srcs = prog.render();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let opts = CompilerOptions::validated();
    let (units, symtab) = match compile_all(&refs, opts) {
        Ok(x) => x,
        Err(e) => {
            return SeedOutcome::Finding {
                kind: FindingKind::Compile,
                detail: format!("{e}"),
            }
        }
    };
    for (i, u) in units.iter().enumerate() {
        if let Some(d) = u.diagnostics.first() {
            return SeedOutcome::Finding {
                kind: FindingKind::ValidatorRejected,
                detail: format!("unit {i}: {d}"),
            };
        }
    }
    let sp = match StagePrograms::build(&units) {
        Ok(sp) => sp,
        Err(e) => {
            return SeedOutcome::Finding {
                kind: FindingKind::Compile,
                detail: e,
            }
        }
    };
    let lib = ExtLib::demo(symtab.clone());
    let (_, entry) = prog.entry();
    let entry_name = entry.name.clone();
    let queries = gen_queries(prog.seed, entry.nparams as usize, cfg.queries);
    let budget = RunBudget::with_fuel(cfg.fuel).no_trace();
    let init = match symtab.build_init_mem() {
        Ok(m) => m,
        Err(e) => {
            return SeedOutcome::Finding {
                kind: FindingKind::Compile,
                detail: format!("initial memory: {e:?}"),
            }
        }
    };
    let (Some(vf), Some(sig)) = (symtab.func_ptr(&entry_name), sp.clight.sig_of(&entry_name))
    else {
        return SeedOutcome::Finding {
            kind: FindingKind::Compile,
            detail: format!("entry `{entry_name}` missing from the linked program"),
        };
    };
    // The metamorphic path: link at the Clight level, compile as one unit.
    let whole = if cfg.check_links && units.len() >= 2 {
        match build_whole(&sp.clight, opts) {
            Ok(w) => Some(w),
            Err(e) => {
                return SeedOutcome::Finding {
                    kind: FindingKind::LinkMismatch,
                    detail: e,
                }
            }
        }
    } else {
        None
    };

    let mut queries_run = 0usize;
    let mut queries_skipped = 0usize;
    for (qi, args) in queries.iter().enumerate() {
        let q = CQuery {
            vf,
            sig: sig.clone(),
            args: args.iter().map(|&a| Val::Int(a)).collect(),
            mem: init.clone(),
        };
        let obs = match check_query_rec(&sp, &symtab, &lib, &q, &budget, rec.as_deref_mut()) {
            QueryVerdict::Agree(obs) => obs,
            QueryVerdict::Skipped { .. } => {
                queries_skipped += 1;
                continue;
            }
            QueryVerdict::Finding { kind, detail } => {
                return SeedOutcome::Finding {
                    kind,
                    detail: format!("query {qi} args {args:?}: {detail}"),
                }
            }
        };
        queries_run += 1;

        if let Some(w) = &whole {
            // Metamorphic check 1: link∘compile (the per-unit Asm linked by
            // `link_asm`, already compared above) must observe the same
            // behaviour as compile∘link (the Clight-linked whole program),
            // each against its own symbol table.
            let wq = match try_c_query(
                &w.symtab,
                &w.unit,
                &entry_name,
                args.iter().map(|&a| Val::Int(a)).collect(),
            ) {
                Ok(wq) => wq,
                Err(e) => {
                    return SeedOutcome::Finding {
                        kind: FindingKind::LinkMismatch,
                        detail: format!("query {qi}: whole-program query: {e}"),
                    }
                }
            };
            match run_asm_stage(&w.unit.asm, &w.symtab, &w.lib, &wq, &budget) {
                StageOutcome::Ok(wobs) => {
                    if wobs != *obs {
                        return SeedOutcome::Finding {
                            kind: FindingKind::LinkMismatch,
                            detail: format!(
                                "query {qi} args {args:?}: link-then-compile observed \
                                 [{wobs}] but compile-then-link observed [{obs}]"
                            ),
                        };
                    }
                }
                StageOutcome::Budget(_) => {}
                StageOutcome::Stuck(d) | StageOutcome::EnvRefused(d) | StageOutcome::Transport(d) => {
                    return SeedOutcome::Finding {
                        kind: FindingKind::LinkMismatch,
                        detail: format!("query {qi}: whole-program asm: {d}"),
                    }
                }
            }
            // Metamorphic check 2 (two-unit programs): `Asm(p1) ⊕ Asm(p2)`
            // simulates the syntactically linked Asm (Thm 3.5).
            if units.len() == 2 {
                if let Some((_w, qa)) = Ca::new(symtab.len() as u32).transport_query(&q) {
                    match check_thm35_budgeted(
                        &units[0].asm,
                        &units[1].asm,
                        &symtab,
                        &lib,
                        &qa,
                        &budget,
                    ) {
                        Ok(_) => {}
                        Err(e) if is_budget_sim_err(&e) => {}
                        Err(e) => {
                            return SeedOutcome::Finding {
                                kind: FindingKind::LinkMismatch,
                                detail: format!("query {qi} args {args:?}: thm35: {e}"),
                            }
                        }
                    }
                }
            }
        }
    }
    if queries_run == 0 {
        SeedOutcome::Skipped(format!("all {queries_skipped} queries budget-limited"))
    } else {
        SeedOutcome::Agree {
            queries_run,
            queries_skipped,
        }
    }
}

/// Generate the program for `seed`, run the oracle, and — on a finding —
/// shrink to a minimal reproducer whose failure has the same
/// [`FindingKind::tag`].
pub fn run_seed(seed: u64, cfg: &DifftestCfg) -> SeedReport {
    let prog = generate(seed, &cfg.gen);
    let outcome = check_program(&prog, cfg);
    let mut reproducer = None;
    if let SeedOutcome::Finding { kind, .. } = &outcome {
        if cfg.reduce {
            let tag = kind.tag();
            let (min, stats) = reduce(
                &prog,
                |p| matches!(check_program(p, cfg), SeedOutcome::Finding { kind: k, .. } if k.tag() == tag),
                cfg.reduce_checks,
            );
            reproducer = Some(Reproducer {
                source: min.to_annotated_source(),
                stmts: min.stmt_count(),
                stats,
            });
        }
    }
    SeedReport {
        seed,
        outcome,
        reproducer,
    }
}

// ---------------------------------------------------------------------------
// Observed seed runs: coverage, stage pairs, and deterministic counters
// ---------------------------------------------------------------------------

/// What one observed seed run ([`run_seed_obs`]) contributes to a campaign's
/// observability section, beyond the verdict itself.
///
/// Everything here is a pure function of `(seed, DifftestCfg)`:
///
/// * [`coverage`](SeedObs::coverage) is computed from the generated program
///   alone;
/// * [`stages_compared`](SeedObs::stages_compared) records which of the six
///   non-baseline stages were actually compared against Clight on at least
///   one query;
/// * [`counters`](SeedObs::counters) is the [`ObsSnapshot`] delta around the
///   whole run (generation, compilation, every stage execution, and any
///   reduction). The entire seed runs on one thread, so the delta is exact
///   and — because campaign aggregation is a commutative sum in seed order —
///   jobs-invariant.
///
/// [`ObsSnapshot`]: crate::obs::ObsSnapshot
#[derive(Debug, Clone)]
pub struct SeedObs {
    /// Grammar-constructor coverage of the generated program.
    pub coverage: compcerto_gen::Coverage,
    /// Stage names (subset of [`STAGES`] minus `"clight"`) compared against
    /// the baseline on at least one query.
    pub stages_compared: BTreeSet<&'static str>,
    /// Deterministic counter deltas for the whole seed run.
    pub counters: crate::obs::Counters,
}

/// [`run_seed`] plus observability: the same [`SeedReport`] (byte-identical
/// verdicts), bundled with the seed's [`SeedObs`].
pub fn run_seed_obs(seed: u64, cfg: &DifftestCfg) -> (SeedReport, SeedObs) {
    let snap = crate::obs::ObsSnapshot::take();
    let prog = generate(seed, &cfg.gen);
    let coverage = compcerto_gen::Coverage::of_program(&prog);
    let mut stages = BTreeSet::new();
    let outcome = check_program_rec(&prog, cfg, Some(&mut stages));
    let mut reproducer = None;
    if let SeedOutcome::Finding { kind, .. } = &outcome {
        if cfg.reduce {
            let tag = kind.tag();
            let (min, stats) = reduce(
                &prog,
                |p| matches!(check_program(p, cfg), SeedOutcome::Finding { kind: k, .. } if k.tag() == tag),
                cfg.reduce_checks,
            );
            reproducer = Some(Reproducer {
                source: min.to_annotated_source(),
                stmts: min.stmt_count(),
                stats,
            });
        }
    }
    let counters = snap.delta();
    (
        SeedReport {
            seed,
            outcome,
            reproducer,
        },
        SeedObs {
            coverage,
            stages_compared: stages,
            counters,
        },
    )
}

// ---------------------------------------------------------------------------
// Fault-injection escape rates under generated programs
// ---------------------------------------------------------------------------

/// Escape tallies for one mutation class probed with generated inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeRow {
    /// The mutation operator.
    pub class: MutationClass,
    /// Mutants with an applicable site in the entry function.
    pub generated: usize,
    /// Mutants the Thm 3.8 checker rejected on at least one generated query.
    pub detected: usize,
}

impl EscapeRow {
    /// Mutants every probe accepted.
    pub fn escapes(&self) -> usize {
        self.generated - self.detected
    }
}

/// Re-run the fault-injection mutation classes against the *generated*
/// program for `seed` (linked at the Clight level and compiled as one unit,
/// so every internal call resolves), probing each mutant with the generated
/// queries through [`check_thm38_budgeted`].
///
/// # Errors
/// Reports compilation failures and baselines that do not pass the checker
/// (such seeds carry no signal and are skipped by the campaign).
pub fn faultinj_escape_rates(
    seed: u64,
    cfg: &DifftestCfg,
    per_class: usize,
) -> Result<Vec<EscapeRow>, String> {
    let prog = generate(seed, &cfg.gen);
    let srcs = prog.render();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let (units, _) = compile_all(&refs, CompilerOptions::default()).map_err(|e| format!("{e}"))?;
    let mut linked = units
        .first()
        .ok_or("no units")?
        .clight
        .clone();
    for u in &units[1..] {
        linked = clight::link(&linked, &u.clight).map_err(|e| format!("clight link: {e:?}"))?;
    }
    let whole = build_whole(&linked, CompilerOptions::default())?;
    let (_, entry) = prog.entry();
    let entry_name = entry.name.clone();
    let queries = gen_queries(seed, entry.nparams as usize, cfg.queries.max(1));
    let budget = RunBudget::with_fuel(cfg.fuel).no_trace();

    // Keep only the probes the *baseline* passes within budget; a baseline
    // rejection is an error (it would poison every tally).
    let mut probes: Vec<Vec<Val>> = Vec::new();
    for args in &queries {
        let argv: Vec<Val> = args.iter().map(|&a| Val::Int(a)).collect();
        let q = try_c_query(&whole.symtab, &whole.unit, &entry_name, argv.clone())
            .map_err(|e| format!("baseline query: {e}"))?;
        match check_thm38_budgeted(&whole.unit, &whole.symtab, &whole.lib, &q, &budget) {
            Ok(_) => probes.push(argv),
            Err(e) if is_budget_sim_err(&e) => {}
            Err(e) => return Err(format!("baseline fails thm38: {e}")),
        }
    }
    if probes.is_empty() {
        return Err("all baseline probes budget-limited".into());
    }

    let mut master = SplitMix64::new(seed ^ 0x6d75_7461_6e74_7321);
    let mut rows = Vec::with_capacity(MUTATION_CLASSES.len());
    for &class in &MUTATION_CLASSES {
        let mut rng = master.split();
        let mut row = EscapeRow {
            class,
            generated: 0,
            detected: 0,
        };
        let mut attempts = 0usize;
        while row.generated < per_class && attempts < per_class * 4 {
            attempts += 1;
            let Some(m) = mutate(&whole.unit, &entry_name, class, &mut rng) else {
                continue;
            };
            row.generated += 1;
            let detected = probes.iter().any(|argv| {
                match try_c_query(&whole.symtab, &m.unit, &entry_name, argv.clone()) {
                    Ok(q) => {
                        check_thm38_budgeted(&m.unit, &whole.symtab, &whole.lib, &q, &budget)
                            .is_err()
                    }
                    Err(_) => true,
                }
            });
            if detected {
                row.detected += 1;
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> DifftestCfg {
        DifftestCfg {
            reduce: false,
            ..DifftestCfg::quick()
        }
    }

    #[test]
    fn oracle_agrees_on_a_seed_sweep() {
        let cfg = test_cfg();
        for seed in 0..8u64 {
            let report = run_seed(seed, &cfg);
            assert!(
                !matches!(report.outcome, SeedOutcome::Finding { .. }),
                "seed {seed}: unexpected finding: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let cfg = test_cfg();
        for seed in [3u64, 17] {
            let a = run_seed(seed, &cfg);
            let b = run_seed(seed, &cfg);
            assert_eq!(a.outcome, b.outcome, "seed {seed}");
        }
    }

    #[test]
    fn tiny_fuel_skips_instead_of_reporting() {
        // With a microscopic budget nothing completes: the verdict must be
        // Skipped, never a Finding — budget exhaustion is not a bug.
        let cfg = DifftestCfg {
            fuel: 10,
            reduce: false,
            ..DifftestCfg::quick()
        };
        for seed in 0..4u64 {
            let report = run_seed(seed, &cfg);
            assert!(
                matches!(report.outcome, SeedOutcome::Skipped(_)),
                "seed {seed}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn corrupted_asm_is_a_stage_disagreement() {
        // Mutate the linked whole program's Asm and feed it back through the
        // stage comparison: the oracle must localize the fault to `asm`.
        let cfg = test_cfg();
        let prog = generate(5, &cfg.gen);
        let srcs = prog.render();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let (units, _) = compile_all(&refs, CompilerOptions::default()).expect("compiles");
        let mut linked = units[0].clight.clone();
        for u in &units[1..] {
            linked = clight::link(&linked, &u.clight).expect("links");
        }
        let whole = build_whole(&linked, CompilerOptions::default()).expect("whole compiles");
        let (_, entry) = prog.entry();
        let mutant = mutate(
            &whole.unit,
            &entry.name,
            MutationClass::ResultCorruption,
            &mut SplitMix64::new(11),
        )
        .expect("entry has a Ret site");

        let mut sp = StagePrograms::build(std::slice::from_ref(&whole.unit)).expect("builds");
        sp.asm = mutant.unit.asm.clone();

        let queries = gen_queries(5, entry.nparams as usize, 3);
        let budget = RunBudget::with_fuel(2_000_000).no_trace();
        let init = whole.symtab.build_init_mem().unwrap();
        let sig = sp.clight.sig_of(&entry.name).unwrap();
        let vf = whole.symtab.func_ptr(&entry.name).unwrap();
        let mut found = false;
        for args in &queries {
            let q = CQuery {
                vf,
                sig: sig.clone(),
                args: args.iter().map(|&a| Val::Int(a)).collect(),
                mem: init.clone(),
            };
            match check_query(&sp, &whole.symtab, &whole.lib, &q, &budget) {
                QueryVerdict::Finding {
                    kind: FindingKind::Disagreement { stage },
                    ..
                } => {
                    assert_eq!(stage, "asm");
                    found = true;
                    break;
                }
                QueryVerdict::Finding { kind, detail } => {
                    panic!("wrong finding class {kind}: {detail}")
                }
                _ => {}
            }
        }
        assert!(found, "result corruption escaped the oracle");
    }

    #[test]
    fn findings_shrink_to_small_reproducers() {
        // Reduce under a *synthetic* predicate (program still calls an
        // external function) to exercise the reducer wiring end to end
        // without needing a real compiler bug.
        let cfg = DifftestCfg::quick();
        let prog = generate(2, &cfg.gen);
        let uses_ext = |p: &GProgram| p.render().concat().contains("inc(");
        if !uses_ext(&prog) {
            return; // seed without externals: nothing to exercise
        }
        let (min, stats) = reduce(&prog, |p| uses_ext(p), 400);
        assert!(uses_ext(&min));
        assert!(stats.to_stmts <= stats.from_stmts);
        assert!(min.stmt_count() <= 25, "reproducer too large: {}", min.stmt_count());
    }

    #[test]
    fn escape_rates_run_on_generated_programs() {
        let cfg = test_cfg();
        let rows = faultinj_escape_rates(1, &cfg, 2).expect("escape matrix runs");
        assert_eq!(rows.len(), MUTATION_CLASSES.len());
        // Result corruption always has a site (every function returns) and
        // must always be detected: the entry's result is directly observed.
        let rc = rows
            .iter()
            .find(|r| r.class == MutationClass::ResultCorruption)
            .unwrap();
        assert!(rc.generated > 0);
        assert_eq!(rc.escapes(), 0, "result corruption escaped");
    }
}

