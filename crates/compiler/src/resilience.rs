//! Panic-isolated, gracefully degrading batch compilation (DESIGN.md §11).
//!
//! The strict pipeline ([`crate::driver::compile_all_jobs`]) has serial
//! error semantics: the first failing unit aborts the batch. That is the
//! right contract for a one-shot CLI, and exactly the wrong one for the
//! long-lived compile service of ROADMAP item 1, where one poisoned unit
//! must never take the batch (or the process) down. This module provides
//! the resilient alternative:
//!
//! * [`contain`] / [`contain_unwind`] — the crate's single `catch_unwind`
//!   wrapper. It installs (once) a panic hook that *suppresses* the default
//!   stderr backtrace for panics unwinding into a containment region and
//!   records the panic site instead, so contained faults are data, not
//!   console noise; panics outside any containment region print exactly as
//!   before.
//! * [`UnitOutcome`] — the per-unit result taxonomy: `Ok`, `Degraded`
//!   (compiled, but only after the degradation ladder stepped in),
//!   `Failed` (a typed [`CompileError`] rendered per stage), `Poisoned`
//!   (a contained panic, attributed to the pass that was running).
//! * the **degradation ladder** — a panic inside an *optional* RTL
//!   optimization pass, or a validator rejection, triggers exactly one
//!   retry of the unit with RTL-opt disabled; success downgrades the unit
//!   to [`UnitOutcome::Degraded`] with a structured diagnostic instead of
//!   losing it. (The unoptimized pipeline compiles the same semantics — the
//!   difftest oracle accepts degraded units, see
//!   `compiler/tests/resilience.rs`.)
//! * [`compile_all_resilient`] — batch compilation where every unit gets an
//!   outcome, in input order, deterministically, no matter what any single
//!   unit does.
//!
//! Pass attribution works through [`pass_boundary`]: the driver calls it at
//! the start of every pass, recording the pass name in a thread-local. When
//! a contained panic unwinds out of a unit, the recorded name tells the
//! taxonomy *which* pass poisoned the unit — without wrapping every pass in
//! its own `catch_unwind` (which the per-pass value flow would not allow).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use compcerto_core::symtab::SymbolTable;

use crate::driver::{front_end, CompileError, CompiledUnit, CompilerOptions};
use crate::par::{self, Jobs};

// ---------------------------------------------------------------------------
// Containment: catch_unwind with quiet, attributed panics
// ---------------------------------------------------------------------------

thread_local! {
    /// Depth of nested containment regions on this thread (the panic hook
    /// suppresses printing whenever it is non-zero).
    static CONTAINING: Cell<u32> = const { Cell::new(0) };
    /// The `"panicked at <site>: <msg>"` rendering of the most recent
    /// contained panic on this thread.
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
    /// The driver pass that was running when the last contained panic
    /// unwound (set by [`pass_boundary`]).
    static CURRENT_PASS: Cell<&'static str> = const { Cell::new("") };
}

static HOOK: Once = Once::new();

fn ensure_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAINING.with(Cell::get) > 0 {
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
            } else {
                previous(info);
            }
        }));
    });
}

/// Render a caught panic payload as a message string, preferring the
/// `&str`/`String` payload of an ordinary `panic!`.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, containing any panic. On panic, returns the payload together
/// with its rendered message. The default panic output is suppressed for
/// the duration (the caller owns reporting).
///
/// # Errors
/// The panic payload and its message, when `f` panicked.
pub fn contain_unwind<R>(f: impl FnOnce() -> R) -> Result<R, (Box<dyn Any + Send>, String)> {
    ensure_hook();
    CONTAINING.with(|c| c.set(c.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINING.with(|c| c.set(c.get() - 1));
    result.map_err(|payload| {
        let msg = panic_message(payload.as_ref());
        (payload, msg)
    })
}

/// [`contain_unwind`] for callers that only want the message.
///
/// # Errors
/// The rendered panic message, when `f` panicked.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    contain_unwind(f).map_err(|(_, msg)| msg)
}

/// Driver hook: called at the boundary of every pass (before the pass
/// runs), recording the pass name for panic attribution, and giving the
/// pass-panic envfault its injection point.
pub(crate) fn pass_boundary(pass: &'static str) {
    CURRENT_PASS.with(|p| p.set(pass));
    crate::envfault::maybe_pass_panic(pass);
}

/// The pass recorded by the most recent [`pass_boundary`] on this thread.
fn current_pass() -> &'static str {
    CURRENT_PASS.with(Cell::get)
}

// ---------------------------------------------------------------------------
// The per-unit outcome taxonomy
// ---------------------------------------------------------------------------

/// Why a unit was degraded rather than compiled at full strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// An optional RTL optimization pass panicked; the retry skipped the
    /// whole optional-optimization tier.
    OptimizerPanic,
    /// The static validation layer rejected the optimized unit; the retry
    /// compiled (and validated) without the optional optimizations.
    ValidatorRejected,
}

impl DegradeReason {
    /// Stable report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::OptimizerPanic => "optimizer-panic",
            DegradeReason::ValidatorRejected => "validator-rejected",
        }
    }
}

/// The outcome of one unit under resilient compilation. Exactly one
/// variant per unit, in input order, deterministically.
#[derive(Debug)]
pub enum UnitOutcome {
    /// Compiled at full strength.
    Ok(Box<CompiledUnit>),
    /// Compiled only after the degradation ladder retried with RTL-opt
    /// disabled; the unit is usable but unoptimized.
    Degraded {
        /// The (degraded) compiled unit.
        unit: Box<CompiledUnit>,
        /// The pass at fault in the first attempt.
        pass: String,
        /// What went wrong in the first attempt.
        reason: DegradeReason,
        /// Human-readable detail (panic message or first diagnostic).
        detail: String,
    },
    /// A typed pipeline error ([`CompileError`], rendered with its stage).
    Failed {
        /// The pipeline stage that rejected the unit.
        stage: &'static str,
        /// The rendered error.
        error: String,
    },
    /// A panic the ladder could not absorb (a mandatory pass panicked, or
    /// the retry panicked too). The batch continues without this unit.
    Poisoned {
        /// The pass that was running when the panic unwound.
        pass: String,
        /// The rendered panic message.
        panic_msg: String,
    },
}

impl UnitOutcome {
    /// The compiled unit, when one exists (full-strength or degraded).
    #[must_use]
    pub fn unit(&self) -> Option<&CompiledUnit> {
        match self {
            UnitOutcome::Ok(u) => Some(u),
            UnitOutcome::Degraded { unit, .. } => Some(unit),
            UnitOutcome::Failed { .. } | UnitOutcome::Poisoned { .. } => None,
        }
    }

    /// Stable one-word label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            UnitOutcome::Ok(_) => "ok",
            UnitOutcome::Degraded { .. } => "degraded",
            UnitOutcome::Failed { .. } => "failed",
            UnitOutcome::Poisoned { .. } => "poisoned",
        }
    }
}

fn stage_of(e: &CompileError) -> &'static str {
    match e {
        CompileError::Parse(_) => "parse",
        CompileError::Type(_) => "typecheck",
        CompileError::Link(_) => "link",
        CompileError::Cshmgen(_) => "cshmgen",
        CompileError::Cminorgen(_) => "cminorgen",
        CompileError::Stacking(_) => "stacking",
    }
}

fn failed(e: &CompileError) -> UnitOutcome {
    UnitOutcome::Failed {
        stage: stage_of(e),
        error: e.to_string(),
    }
}

/// The optional RTL optimization passes — the tier the degradation ladder
/// disables on retry. Must match the driver's `CompilerOptions` flags.
const OPTIONAL_OPT_PASSES: [&str; 7] = [
    "tailcall", "inlining", "constprop", "cse", "deadcode", "vprop", "ndce",
];

fn without_rtl_opt(opts: CompilerOptions) -> CompilerOptions {
    CompilerOptions {
        tailcall: false,
        inlining: false,
        constprop: false,
        cse: false,
        deadcode: false,
        vprop: false,
        ndce: false,
        ..opts
    }
}

/// Compile one already-typed unit with panic isolation and the degradation
/// ladder. Never panics, never aborts: every input maps to exactly one
/// [`UnitOutcome`].
pub fn compile_program_isolated(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
) -> UnitOutcome {
    pass_boundary("front-end");
    match contain(|| crate::driver::compile_program(typed, symtab, opts)) {
        Ok(Ok(unit)) => {
            if opts.validate && !unit.diagnostics.is_empty() {
                // Validator rejection: step down the ladder.
                let detail = unit.diagnostics[0].to_string();
                retry_degraded(typed, symtab, opts, "validate", DegradeReason::ValidatorRejected, detail)
            } else {
                UnitOutcome::Ok(Box::new(unit))
            }
        }
        Ok(Err(e)) => failed(&e),
        Err(panic_msg) => {
            let pass = current_pass();
            if OPTIONAL_OPT_PASSES.contains(&pass) {
                retry_degraded(
                    typed,
                    symtab,
                    opts,
                    pass,
                    DegradeReason::OptimizerPanic,
                    panic_msg,
                )
            } else {
                UnitOutcome::Poisoned {
                    pass: pass.to_string(),
                    panic_msg,
                }
            }
        }
    }
}

/// The second rung of the ladder: one retry with the optional RTL
/// optimizations disabled. Success degrades the unit; anything else is
/// final.
fn retry_degraded(
    typed: &clight::Program,
    symtab: &SymbolTable,
    opts: CompilerOptions,
    pass: &str,
    reason: DegradeReason,
    detail: String,
) -> UnitOutcome {
    let fallback = without_rtl_opt(opts);
    pass_boundary("front-end");
    match contain(|| crate::driver::compile_program(typed, symtab, fallback)) {
        Ok(Ok(unit)) => {
            if fallback.validate && !unit.diagnostics.is_empty() {
                UnitOutcome::Failed {
                    stage: "validate",
                    error: format!(
                        "validator rejected the unit even with RTL-opt disabled: {}",
                        unit.diagnostics[0]
                    ),
                }
            } else {
                UnitOutcome::Degraded {
                    unit: Box::new(unit),
                    pass: pass.to_string(),
                    reason,
                    detail,
                }
            }
        }
        Ok(Err(e)) => failed(&e),
        Err(panic_msg) => UnitOutcome::Poisoned {
            pass: current_pass().to_string(),
            panic_msg,
        },
    }
}

/// The result of a resilient batch compilation.
#[derive(Debug)]
pub struct ResilientBatch {
    /// One outcome per input source, in input order.
    pub outcomes: Vec<UnitOutcome>,
    /// The shared symbol table, built from the units whose front end
    /// succeeded. `None` only when symbol-table construction itself failed
    /// (every parsed unit is then reported `Failed` at stage `link`).
    pub symtab: Option<SymbolTable>,
}

impl ResilientBatch {
    /// Count of outcomes with the given label.
    #[must_use]
    pub fn count(&self, label: &str) -> usize {
        self.outcomes.iter().filter(|o| o.label() == label).count()
    }
}

/// Batch compilation that never gives up on the batch: each unit's front
/// end and back end run under [`contain`], the symbol table is built from
/// whatever parsed, and every unit gets a deterministic [`UnitOutcome`].
///
/// This is the entry point the CLI (and, later, the `serve` daemon) uses;
/// campaigns that *want* strict first-error semantics keep calling
/// [`crate::driver::compile_all_jobs`].
pub fn compile_all_resilient(
    sources: &[&str],
    opts: CompilerOptions,
    jobs: Jobs,
) -> ResilientBatch {
    // Front-end fan-out, isolated per unit: a panicking or failing unit
    // parses to an outcome, not an abort.
    let fronts: Vec<Result<clight::Program, UnitOutcome>> =
        par::par_map(jobs, sources, |_, src| {
            pass_boundary("front-end");
            match contain(|| front_end(src)) {
                Ok(Ok(typed)) => Ok(typed),
                Ok(Err(e)) => Err(failed(&e)),
                Err(panic_msg) => Err(UnitOutcome::Poisoned {
                    pass: current_pass().to_string(),
                    panic_msg,
                }),
            }
        });

    // Shared barrier: the symbol table spans every unit that parsed.
    let parsed: Vec<&clight::Program> = fronts.iter().filter_map(|r| r.as_ref().ok()).collect();
    let symtab = match clight::build_symtab(&parsed) {
        Ok(t) => t,
        Err(e) => {
            // A link error poisons linking, not parsing: every unit that
            // parsed is reported failed at the link stage; front-end
            // failures keep their own outcome.
            let link_err = CompileError::Link(e);
            let outcomes = fronts
                .into_iter()
                .map(|r| match r {
                    Ok(_) => failed(&link_err),
                    Err(o) => o,
                })
                .collect();
            return ResilientBatch {
                outcomes,
                symtab: None,
            };
        }
    };

    // Back-end fan-out, isolated per unit, against the shared table. Units
    // whose front end already produced an outcome keep it verbatim.
    let backs: Vec<Option<UnitOutcome>> = par::par_map(jobs, &fronts, |_, front| match front {
        Ok(typed) => Some(compile_program_isolated(typed, &symtab, opts)),
        Err(_) => None,
    });
    let outcomes = fronts
        .into_iter()
        .zip(backs)
        .map(|(front, back)| match front {
            Err(o) => o,
            Ok(_) => back.unwrap_or(UnitOutcome::Failed {
                stage: "internal",
                error: "missing back-end outcome".to_string(),
            }),
        })
        .collect();

    ResilientBatch {
        outcomes,
        symtab: Some(symtab),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_returns_value_and_catches_panic() {
        assert_eq!(contain(|| 41 + 1), Ok(42));
        let r = contain(|| panic!("boom {}", 7));
        assert_eq!(r, Err("boom 7".to_string()));
    }

    #[test]
    fn contain_nests() {
        let r = contain(|| {
            let inner = contain(|| -> u32 { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            5u32
        });
        assert_eq!(r, Ok(5));
    }

    #[test]
    fn clean_batch_is_all_ok() {
        let srcs = ["int f(int a) { return a + 1; }", "int g(int b) { return b * 2; }"];
        let batch = compile_all_resilient(&srcs, CompilerOptions::default(), Jobs::N(1));
        assert_eq!(batch.outcomes.len(), 2);
        assert!(batch.outcomes.iter().all(|o| o.label() == "ok"));
        assert!(batch.symtab.is_some());
    }

    #[test]
    fn parse_failure_is_isolated_to_its_unit() {
        let srcs = [
            "int f(int a) { return a + 1; }",
            "int broken(int { return 0; }",
            "int g(int b) { return b - 3; }",
        ];
        let batch = compile_all_resilient(&srcs, CompilerOptions::default(), Jobs::N(1));
        assert_eq!(batch.outcomes[0].label(), "ok");
        assert_eq!(batch.outcomes[1].label(), "failed");
        assert_eq!(batch.outcomes[2].label(), "ok");
        match &batch.outcomes[1] {
            UnitOutcome::Failed { stage, .. } => assert_eq!(*stage, "parse"),
            o => panic!("expected Failed, got {}", o.label()),
        }
    }
}
