//! The cross-cutting observability layer (DESIGN.md §10, schema
//! `compcerto-obs/1`).
//!
//! Two strictly separated artifact families:
//!
//! * **Deterministic counters** ([`Counters`], [`ObsSnapshot`]) — pure
//!   functions of the work performed: IR sizes per pipeline stage,
//!   dataflow-solver iterations (`rtl::analysis` and the untrusted
//!   `compcerto_validate::dataflow` separately), memory-model operation
//!   counts, and LTS run/step/outcome tallies. Counters are *seed- and
//!   jobs-invariant by construction*: every underlying counter is
//!   thread-local, each work item (translation unit, campaign seed,
//!   fault-injection probe) runs entirely on one worker thread, deltas are
//!   captured around the item on that thread, and `u64` sums commute — so
//!   the per-item deltas and their input-order sum are byte-identical
//!   across `--jobs 1/4/16`. CI gates on them.
//! * **Wall-clock timings** ([`UnitMetrics::pass_ms`],
//!   [`MetricsReport::timings`]) and parallel-pool occupancy
//!   ([`crate::par::pool_stats`]) — reported for humans, never gated, and
//!   stripped by [`normalize_metrics_json`] before any byte comparison.
//!
//! The JSON report emitted by [`MetricsReport::to_json`] keeps the
//! deterministic `counters` object first and the volatile `pool` /
//! `timings_ms` objects last, so the schema-aware normalizer can remove the
//! volatile tail and compare the rest byte-for-byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use compcerto_core::obs::LtsCounters;
use mem::MemCounters;

/// The schema identifier of every metrics report and JSON trace event.
pub const OBS_SCHEMA: &str = "compcerto-obs/1";

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Every counter key [`ObsSnapshot::delta`] emits. The checkpoint reader
/// interns parsed counter names through this table to rebuild a
/// `&'static str`-keyed [`Counters`] bag after a campaign resume.
pub const DELTA_COUNTER_KEYS: [&str; 23] = [
    "lts.runs",
    "lts.steps",
    "lts.sim_steps",
    "lts.external_calls",
    "lts.events",
    "lts.completes",
    "lts.wrongs",
    "lts.env_refused",
    "lts.out_of_fuel",
    "lts.out_of_memory",
    "lts.depth_exceeded",
    "lts.timed_out",
    "mem.allocs",
    "mem.alloc_bytes",
    "mem.frees",
    "mem.loads",
    "mem.stores",
    "mem.demotes",
    "mem.promotes",
    "solver.rtl_iterations",
    "solver.validate_iterations",
    "solver.value.iters",
    "solver.needed.iters",
];

/// Map a counter name back to its interned `&'static str` key (used when
/// resuming a campaign from a checkpoint).
#[must_use]
pub fn intern_counter_key(name: &str) -> Option<&'static str> {
    DELTA_COUNTER_KEYS.iter().copied().find(|k| *k == name)
}

/// An ordered bag of deterministic counters, keyed by the dotted taxonomy
/// of DESIGN.md §10 (`ir.*`, `lts.*`, `mem.*`, `solver.*`, `gen.*`).
/// `BTreeMap` keeps JSON emission order stable by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters(pub BTreeMap<&'static str, u64>);

impl Counters {
    /// Value of `key` (0 when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.0.get(key).copied().unwrap_or(0)
    }

    /// Set `key` to `v` (inserting it).
    pub fn set(&mut self, key: &'static str, v: u64) {
        self.0.insert(key, v);
    }

    /// Add `v` to `key` (inserting it at `v` when absent).
    pub fn bump(&mut self, key: &'static str, v: u64) {
        *self.0.entry(key).or_insert(0) += v;
    }

    /// Field-wise sum with `other` (the commutative merge that makes
    /// campaign totals jobs-invariant).
    pub fn add(&mut self, other: &Counters) {
        for (k, v) in &other.0 {
            *self.0.entry(k).or_insert(0) += v;
        }
    }

    /// Render as an indented JSON object (keys in `BTreeMap` order).
    #[must_use]
    pub fn to_json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        if self.0.is_empty() {
            return "{}".to_string();
        }
        let mut s = String::from("{\n");
        let mut first = true;
        for (k, v) in &self.0 {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(s, "{inner}\"{k}\": {v}");
        }
        let _ = write!(s, "\n{pad}}}");
        s
    }
}

/// A point-in-time snapshot of every thread-local counter family feeding
/// the observability layer. Take one before a work item and call
/// [`ObsSnapshot::delta`] after: the result is the item's own effort,
/// independent of whatever ran earlier on this thread.
#[derive(Debug, Clone, Copy)]
pub struct ObsSnapshot {
    lts: LtsCounters,
    mem: MemCounters,
    rtl_solver: u64,
    validate_solver: u64,
    value_solver: u64,
    needed_solver: u64,
}

impl ObsSnapshot {
    /// Snapshot this thread's counters now.
    #[must_use]
    pub fn take() -> ObsSnapshot {
        ObsSnapshot {
            lts: compcerto_core::obs::counters(),
            mem: mem::obs::counters(),
            rtl_solver: rtl::solver_iterations(),
            validate_solver: compcerto_validate::solver_iterations(),
            value_solver: compcerto_validate::value_solver_iterations(),
            needed_solver: compcerto_validate::needed_solver_iterations(),
        }
    }

    /// The work performed on this thread since the snapshot, as a full
    /// [`Counters`] bag (every key present, zeros included — a stable key
    /// set is what makes reports byte-comparable).
    #[must_use]
    pub fn delta(&self) -> Counters {
        let now = ObsSnapshot::take();
        let l = now.lts.since(&self.lts);
        let m = now.mem.since(&self.mem);
        let mut c = Counters::default();
        c.set("lts.runs", l.runs);
        c.set("lts.steps", l.steps);
        c.set("lts.sim_steps", l.sim_steps);
        c.set("lts.external_calls", l.external_calls);
        c.set("lts.events", l.events);
        c.set("lts.completes", l.completes);
        c.set("lts.wrongs", l.wrongs);
        c.set("lts.env_refused", l.env_refused);
        c.set("lts.out_of_fuel", l.out_of_fuel);
        c.set("lts.out_of_memory", l.out_of_memory);
        c.set("lts.depth_exceeded", l.depth_exceeded);
        c.set("lts.timed_out", l.timed_out);
        c.set("mem.allocs", m.allocs);
        c.set("mem.alloc_bytes", m.alloc_bytes);
        c.set("mem.frees", m.frees);
        c.set("mem.loads", m.loads);
        c.set("mem.stores", m.stores);
        c.set("mem.demotes", m.demotes);
        c.set("mem.promotes", m.promotes);
        c.set(
            "solver.rtl_iterations",
            now.rtl_solver.saturating_sub(self.rtl_solver),
        );
        c.set(
            "solver.validate_iterations",
            now.validate_solver.saturating_sub(self.validate_solver),
        );
        c.set(
            "solver.value.iters",
            now.value_solver.saturating_sub(self.value_solver),
        );
        c.set(
            "solver.needed.iters",
            now.needed_solver.saturating_sub(self.needed_solver),
        );
        c
    }
}

/// Static IR-size counters of one compiled unit: node/instruction counts at
/// each retained pipeline stage (a pure function of the unit).
#[must_use]
pub fn ir_counters(unit: &crate::driver::CompiledUnit) -> Counters {
    let mut c = Counters::default();
    c.set("ir.functions", unit.asm.functions.len() as u64);
    c.set(
        "ir.clight_fns",
        unit.clight.functions.len() as u64,
    );
    c.set(
        "ir.rtl_nodes",
        unit.rtl.functions.iter().map(|f| f.code.len() as u64).sum(),
    );
    c.set(
        "ir.rtl_opt_nodes",
        unit.rtl_opt
            .functions
            .iter()
            .map(|f| f.code.len() as u64)
            .sum(),
    );
    c.set(
        "ir.ltl_nodes",
        unit.ltl_tunneled
            .functions
            .iter()
            .map(|f| f.code.len() as u64)
            .sum(),
    );
    c.set(
        "ir.linear_instrs",
        unit.linear
            .functions
            .iter()
            .map(|f| f.code.len() as u64)
            .sum(),
    );
    c.set(
        "ir.mach_instrs",
        unit.mach.functions.iter().map(|f| f.code.len() as u64).sum(),
    );
    c.set(
        "ir.asm_instrs",
        unit.asm.functions.iter().map(|f| f.code.len() as u64).sum(),
    );
    c.set("ir.diagnostics", unit.diagnostics.len() as u64);
    c.set(
        "ir.vprop_rewrites",
        nodes_differing(&unit.rtl_vprop_in, &unit.rtl_ndce_in),
    );
    c.set(
        "ir.ndce_eliminated",
        nodes_differing(&unit.rtl_ndce_in, &unit.rtl_opt),
    );
    c
}

/// Count the nodes an RTL pass rewrote: pairs functions by name and tallies
/// the nodes whose instruction differs between pass input and output (both
/// `Vprop` and `Ndce` preserve the node key set, so this is exactly the
/// rewrite count).
fn nodes_differing(input: &rtl::RtlProgram, output: &rtl::RtlProgram) -> u64 {
    let mut n = 0u64;
    for fi in &input.functions {
        let Some(fo) = output.functions.iter().find(|f| f.name == fi.name) else {
            continue;
        };
        n += fi
            .code
            .iter()
            .filter(|(k, inst)| fo.code.get(k) != Some(inst))
            .count() as u64;
    }
    n
}

// ---------------------------------------------------------------------------
// Per-unit and aggregate metrics
// ---------------------------------------------------------------------------

/// Metrics of a single compiled unit: the deterministic counter delta of
/// its pass pipeline plus (volatile, never gated) per-pass wall-clock
/// spans in pipeline order.
#[derive(Debug, Clone, Default)]
pub struct UnitMetrics {
    /// Deterministic counters (`ObsSnapshot` delta + [`ir_counters`]).
    pub counters: Counters,
    /// Per-pass wall-clock spans `(pass, milliseconds)`, pipeline order.
    pub pass_ms: Vec<(&'static str, f64)>,
}

/// Aggregate metrics report: the JSON/text artifact behind
/// `ccomp-o --metrics`, the campaign runners, and `obs_campaign`.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// What produced this report (`"compile"`, `"difftest"`, ...).
    pub kind: String,
    /// Number of work items (units, seeds) aggregated.
    pub items: u64,
    /// Sum of the per-item deterministic counters (input order).
    pub counters: Counters,
    /// Per-pass wall-clock totals, pipeline order of first appearance.
    pub timings: Vec<(&'static str, f64)>,
    /// Total wall-clock of the measured region, in milliseconds.
    pub total_ms: f64,
}

impl MetricsReport {
    /// Aggregate the per-unit metrics of a compiled program (units without
    /// metrics — compiled with `metrics: false` — contribute nothing).
    #[must_use]
    pub fn from_units(kind: &str, units: &[crate::driver::CompiledUnit]) -> MetricsReport {
        let mut r = MetricsReport {
            kind: kind.to_string(),
            ..MetricsReport::default()
        };
        for u in units {
            if let Some(m) = &u.metrics {
                r.absorb_unit(m);
            }
        }
        r
    }

    /// Fold one unit's metrics into the aggregate (counters summed,
    /// pass spans summed by name in first-appearance order).
    pub fn absorb_unit(&mut self, m: &UnitMetrics) {
        self.items += 1;
        self.counters.add(&m.counters);
        for (name, ms) in &m.pass_ms {
            match self.timings.iter_mut().find(|(n, _)| n == name) {
                Some((_, t)) => *t += ms,
                None => self.timings.push((name, *ms)),
            }
            self.total_ms += ms;
        }
    }

    /// Fold a bare counter bag (campaign seeds, probes) into the aggregate.
    pub fn absorb_counters(&mut self, c: &Counters) {
        self.items += 1;
        self.counters.add(c);
    }

    /// The `compcerto-obs/1` JSON document. Deterministic sections
    /// (`schema`, `kind`, `items`, `counters`) come first; the volatile
    /// `pool` and `timings_ms` objects come last so
    /// [`normalize_metrics_json`] can strip them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let pool = crate::par::pool_stats();
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{OBS_SCHEMA}\",");
        let _ = writeln!(s, "  \"kind\": \"{}\",", self.kind);
        let _ = writeln!(s, "  \"items\": {},", self.items);
        let _ = writeln!(s, "  \"counters\": {},", self.counters.to_json_object(2));
        let _ = writeln!(s, "  \"pool\": {{");
        let _ = writeln!(s, "    \"pools\": {},", pool.pools);
        let _ = writeln!(s, "    \"items\": {},", pool.items);
        let _ = writeln!(s, "    \"workers_max\": {},", pool.workers_max);
        let _ = writeln!(
            s,
            "    \"busiest_worker_items\": {}",
            pool.busiest_worker_items
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"timings_ms\": {{");
        let _ = writeln!(s, "    \"total\": {:.3},", self.total_ms);
        let _ = writeln!(s, "    \"passes\": {{");
        for (i, (name, ms)) in self.timings.iter().enumerate() {
            let comma = if i + 1 < self.timings.len() { "," } else { "" };
            let _ = writeln!(s, "      \"{name}\": {ms:.3}{comma}");
        }
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }

    /// Human-readable table (the `--metrics` text form).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== metrics ({}) ==", self.kind);
        let _ = writeln!(s, "items: {}", self.items);
        let _ = writeln!(s, "-- counters (deterministic) --");
        for (k, v) in &self.counters.0 {
            let _ = writeln!(s, "  {k:<28} {v}");
        }
        let _ = writeln!(s, "-- timings (wall-clock, not gated) --");
        for (name, ms) in &self.timings {
            let _ = writeln!(s, "  {name:<28} {ms:9.3} ms");
        }
        let _ = writeln!(s, "  {:<28} {:9.3} ms", "total", self.total_ms);
        s
    }
}

// ---------------------------------------------------------------------------
// Schema-aware normalizer
// ---------------------------------------------------------------------------

/// Net brace depth of a line, ignoring braces inside string literals.
fn brace_delta(line: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for ch in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Normalize a `compcerto-obs/1` metrics JSON document for byte
/// comparison: validate the schema marker, strip the volatile `pool` and
/// `timings_ms` objects (wall-clock and scheduling data, never gated), and
/// repair the trailing comma their removal can leave behind. The result is
/// a pure function of the deterministic counters — two runs (or two
/// `--jobs` settings) must produce byte-identical normalized documents.
///
/// The normalizer is line-based and brace-aware (string literals are
/// respected); it is itself pinned by unit tests below, as required by the
/// determinism test contract.
///
/// # Errors
/// A document without the `compcerto-obs/1` schema marker is rejected.
pub fn normalize_metrics_json(doc: &str) -> Result<String, String> {
    if !doc.contains("\"schema\": \"compcerto-obs/1\"")
        && !doc.contains("\"schema\":\"compcerto-obs/1\"")
    {
        return Err("normalize_metrics_json: missing compcerto-obs/1 schema marker".to_string());
    }
    let mut kept: Vec<&str> = Vec::new();
    let mut skip_depth: Option<i64> = None;
    for line in doc.lines() {
        if let Some(d) = skip_depth.as_mut() {
            *d += brace_delta(line);
            if *d <= 0 {
                skip_depth = None;
            }
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"pool\"") || trimmed.starts_with("\"timings_ms\"") {
            let d = brace_delta(line);
            if d > 0 {
                skip_depth = Some(d);
            }
            continue;
        }
        kept.push(line);
    }
    // Repair a trailing comma left when a stripped member was last in its
    // object: `...,` directly before a `}` / `]` closer.
    let mut out: Vec<String> = Vec::with_capacity(kept.len());
    for (i, line) in kept.iter().enumerate() {
        let next_closes = kept
            .get(i + 1)
            .map(|n| matches!(n.trim_start().chars().next(), Some('}' | ']')))
            .unwrap_or(false);
        if next_closes && line.trim_end().ends_with(',') {
            let t = line.trim_end();
            out.push(t[..t.len() - 1].to_string());
        } else {
            out.push((*line).to_string());
        }
    }
    let mut s = out.join("\n");
    s.push('\n');
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MetricsReport {
        let mut c = Counters::default();
        c.set("ir.asm_instrs", 10);
        c.set("lts.runs", 2);
        MetricsReport {
            kind: "compile".into(),
            items: 1,
            counters: c,
            timings: vec![("rtlgen", 0.5), ("allocation", 1.25)],
            total_ms: 1.75,
        }
    }

    #[test]
    fn normalizer_strips_pool_and_timings() {
        let json = sample_report().to_json();
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"timings_ms\""));
        let norm = normalize_metrics_json(&json).expect("valid schema");
        assert!(!norm.contains("pool"));
        assert!(!norm.contains("timings_ms"));
        assert!(!norm.contains("rtlgen"), "pass timings must be stripped");
        assert!(norm.contains("\"counters\""));
        assert!(norm.contains("\"ir.asm_instrs\": 10"));
        assert!(norm.contains("\"schema\": \"compcerto-obs/1\""));
    }

    #[test]
    fn normalizer_output_is_well_formed_and_idempotent() {
        let json = sample_report().to_json();
        let once = normalize_metrics_json(&json).expect("valid");
        // Balanced braces after stripping + comma repair.
        assert_eq!(brace_delta(&once.replace('\n', " ")), 0);
        // No trailing-comma artifacts.
        for (line, next) in once.lines().zip(once.lines().skip(1)) {
            if matches!(next.trim_start().chars().next(), Some('}' | ']')) {
                assert!(
                    !line.trim_end().ends_with(','),
                    "dangling comma before closer: {line:?}"
                );
            }
        }
        let twice = normalize_metrics_json(&once).expect("still has schema");
        assert_eq!(once, twice, "normalization must be idempotent");
    }

    #[test]
    fn normalizer_rejects_foreign_documents() {
        assert!(normalize_metrics_json("{}").is_err());
        assert!(normalize_metrics_json("{\"schema\": \"compcerto-perf/1\"}").is_err());
    }

    #[test]
    fn normalizer_ignores_braces_inside_strings() {
        let doc = "{\n  \"schema\": \"compcerto-obs/1\",\n  \"note\": \"{pool}\",\n  \"pool\": {\n    \"x\": 1\n  }\n}\n";
        let norm = normalize_metrics_json(doc).expect("valid");
        assert!(norm.contains("{pool}"), "string content survives");
        assert!(!norm.contains("\"x\": 1"), "pool object stripped");
    }

    #[test]
    fn counters_merge_is_commutative() {
        let mut a = Counters::default();
        a.set("x", 1);
        a.set("y", 2);
        let mut b = Counters::default();
        b.set("y", 40);
        b.set("z", 5);
        let mut ab = a.clone();
        ab.add(&b);
        let mut ba = b.clone();
        ba.add(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("y"), 42);
    }

    #[test]
    fn report_json_has_deterministic_sections_first() {
        let json = sample_report().to_json();
        let c = json.find("\"counters\"").expect("counters section");
        let p = json.find("\"pool\"").expect("pool section");
        let t = json.find("\"timings_ms\"").expect("timings section");
        assert!(c < p && p < t, "volatile sections must come last");
    }
}
