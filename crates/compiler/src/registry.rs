//! The pass registry: paper Table 3 as data.
//!
//! Each entry records a pass's source and target languages, its outgoing and
//! incoming simulation conventions as symbolic [`Chain`]s (feeding the
//! algebra engine that derives the whole-compiler convention, paper
//! Figs. 10/11), whether the pass is optional, and the source module
//! implementing it (feeding the SLOC accounting of Tables 3/5).

use compcerto_core::algebra::{Atom, Chain, CklrTag, IfaceTag};

/// One row of paper Table 3.
#[derive(Debug, Clone)]
pub struct PassInfo {
    /// Pass name.
    pub name: &'static str,
    /// Source language.
    pub source: &'static str,
    /// Target language.
    pub target: &'static str,
    /// Outgoing simulation convention.
    pub outgoing: Chain,
    /// Incoming simulation convention.
    pub incoming: Chain,
    /// Is the pass an optional optimization (†)?
    pub optional: bool,
    /// Repository-relative path of the implementing module.
    pub module: &'static str,
}

/// The registry, in pipeline order (paper Table 3).
pub fn pass_registry() -> Vec<PassInfo> {
    use Atom::*;
    use CklrTag::*;
    use IfaceTag::*;
    let c = |atoms: &[Atom]| Chain::of(atoms.to_vec());
    vec![
        PassInfo {
            name: "SimplLocals",
            source: "Clight",
            target: "Clight",
            outgoing: c(&[Cklr(Injp, C)]),
            incoming: c(&[Cklr(Inj, C)]),
            optional: false,
            module: "crates/clight/src/simpl_locals.rs",
        },
        PassInfo {
            name: "Cshmgen",
            source: "Clight",
            target: "Csharpminor",
            outgoing: c(&[Id(C)]),
            incoming: c(&[Id(C)]),
            optional: false,
            module: "crates/minor/src/cshmgen.rs",
        },
        PassInfo {
            name: "Cminorgen",
            source: "Csharpminor",
            target: "Cminor",
            outgoing: c(&[Cklr(Injp, C)]),
            incoming: c(&[Cklr(Inj, C)]),
            optional: false,
            module: "crates/minor/src/cminorgen.rs",
        },
        PassInfo {
            name: "Selection",
            source: "Cminor",
            target: "CminorSel",
            outgoing: c(&[Wt, Cklr(Ext, C)]),
            incoming: c(&[Wt, Cklr(Ext, C)]),
            optional: false,
            module: "crates/minor/src/selection.rs",
        },
        PassInfo {
            name: "RTLgen",
            source: "CminorSel",
            target: "RTL",
            outgoing: c(&[Cklr(Ext, C)]),
            incoming: c(&[Cklr(Ext, C)]),
            optional: false,
            module: "crates/rtl/src/gen.rs",
        },
        PassInfo {
            name: "Tailcall",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Cklr(Ext, C)]),
            incoming: c(&[Cklr(Ext, C)]),
            optional: true,
            module: "crates/rtl/src/tailcall.rs",
        },
        PassInfo {
            name: "Inlining",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Cklr(Injp, C)]),
            incoming: c(&[Cklr(Inj, C)]),
            optional: false,
            module: "crates/rtl/src/inlining.rs",
        },
        PassInfo {
            name: "Renumber",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Id(C)]),
            incoming: c(&[Id(C)]),
            optional: false,
            module: "crates/rtl/src/renumber.rs",
        },
        PassInfo {
            name: "Constprop",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Va, Cklr(Ext, C)]),
            incoming: c(&[Va, Cklr(Ext, C)]),
            optional: true,
            module: "crates/rtl/src/constprop.rs",
        },
        PassInfo {
            name: "CSE",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Va, Cklr(Ext, C)]),
            incoming: c(&[Va, Cklr(Ext, C)]),
            optional: true,
            module: "crates/rtl/src/cse.rs",
        },
        PassInfo {
            name: "Deadcode",
            source: "RTL",
            target: "RTL",
            outgoing: c(&[Va, Cklr(Ext, C)]),
            incoming: c(&[Va, Cklr(Ext, C)]),
            optional: true,
            module: "crates/rtl/src/deadcode.rs",
        },
        PassInfo {
            name: "Allocation",
            source: "RTL",
            target: "LTL",
            outgoing: c(&[Wt, Cklr(Ext, C), Cl]),
            incoming: c(&[Wt, Cklr(Ext, C), Cl]),
            optional: false,
            module: "crates/backend/src/alloc.rs",
        },
        PassInfo {
            name: "Tunneling",
            source: "LTL",
            target: "LTL",
            outgoing: c(&[Cklr(Ext, L)]),
            incoming: c(&[Cklr(Ext, L)]),
            optional: false,
            module: "crates/backend/src/tunneling.rs",
        },
        PassInfo {
            name: "Linearize",
            source: "LTL",
            target: "Linear",
            outgoing: c(&[Id(L)]),
            incoming: c(&[Id(L)]),
            optional: false,
            module: "crates/backend/src/linearize.rs",
        },
        PassInfo {
            name: "CleanupLabels",
            source: "Linear",
            target: "Linear",
            outgoing: c(&[Id(L)]),
            incoming: c(&[Id(L)]),
            optional: false,
            module: "crates/backend/src/cleanup.rs",
        },
        PassInfo {
            name: "Debugvar",
            source: "Linear",
            target: "Linear",
            outgoing: c(&[Id(L)]),
            incoming: c(&[Id(L)]),
            optional: false,
            module: "crates/backend/src/debugvar.rs",
        },
        PassInfo {
            name: "Stacking",
            source: "Linear",
            target: "Mach",
            outgoing: c(&[Cklr(Injp, L), Lm]),
            incoming: c(&[Lm, Cklr(Inj, M)]),
            optional: false,
            module: "crates/backend/src/stacking.rs",
        },
        PassInfo {
            name: "Asmgen",
            source: "Mach",
            target: "Asm",
            outgoing: c(&[Cklr(Ext, M), Ma]),
            incoming: c(&[Cklr(Ext, M), Ma]),
            optional: false,
            module: "crates/backend/src/asmgen.rs",
        },
    ]
}

/// The language rows of paper Table 3 (self-simulation / semantics entries),
/// mapping each language to its interface and implementing module.
pub fn language_registry() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("Clight", "C ↠ C", "crates/clight/src/sem.rs"),
        ("Csharpminor", "C ↠ C", "crates/minor/src/csharp.rs"),
        ("Cminor", "C ↠ C", "crates/minor/src/cminor.rs"),
        ("CminorSel", "C ↠ C", "crates/minor/src/cminorsel.rs"),
        ("RTL", "C ↠ C", "crates/rtl/src/sem.rs"),
        ("LTL", "L ↠ L", "crates/backend/src/ltl.rs"),
        ("Linear", "L ↠ L", "crates/backend/src/linear.rs"),
        ("Mach", "M ↠ M", "crates/backend/src/mach.rs"),
        ("Asm", "A ↠ A", "crates/backend/src/asm.rs"),
    ]
}

/// Concatenate the per-pass incoming conventions, in pipeline order — the
/// chain the algebra engine normalizes to `C` (paper Fig. 10).
pub fn composed_incoming() -> Chain {
    pass_registry()
        .into_iter()
        .map(|p| p.incoming)
        .fold(Chain::id(), Chain::then)
}

/// Concatenate the per-pass outgoing conventions, in pipeline order.
pub fn composed_outgoing() -> Chain {
    pass_registry()
        .into_iter()
        .map(|p| p.outgoing)
        .fold(Chain::id(), Chain::then)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::algebra::{derive, goal_convention};

    #[test]
    fn registry_matches_table3_shape() {
        let reg = pass_registry();
        assert_eq!(reg.len(), 18);
        assert_eq!(reg.iter().filter(|p| p.optional).count(), 4);
        // The pipeline is type-correct end to end.
        assert_eq!(composed_incoming().typing(), Ok((IfaceTag::C, IfaceTag::A)));
        assert_eq!(composed_outgoing().typing(), Ok((IfaceTag::C, IfaceTag::A)));
    }

    #[test]
    fn registry_chains_derive_to_goal() {
        // The headline derivation (paper Thm 3.8 via Figs. 10/11): both the
        // incoming and outgoing composed conventions normalize to
        // `R* · wt · CA · vainj`.
        let d_in = derive(composed_incoming()).expect("incoming derivation");
        assert_eq!(*d_in.current(), goal_convention());
        d_in.verify().expect("incoming derivation verifies");

        let d_out = derive(composed_outgoing()).expect("outgoing derivation");
        assert_eq!(*d_out.current(), goal_convention());
        d_out.verify().expect("outgoing derivation verifies");
    }

    #[test]
    fn modules_exist_on_disk() {
        let root = crate::sloc::repo_root();
        for p in pass_registry() {
            assert!(
                root.join(p.module).exists(),
                "missing module {} for pass {}",
                p.module,
                p.name
            );
        }
        for (lang, _, module) in language_registry() {
            assert!(
                root.join(module).exists(),
                "missing module {module} for language {lang}"
            );
        }
    }
}
