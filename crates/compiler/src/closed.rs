//! Closing open components: the whole-program semantics `1 ↠ W`
//! (paper §2.2 and §3.1).
//!
//! The original CompCert model runs a program as a *process*: loaded, `main`
//! invoked conventionally, external functions fixed by a parameter `χ`, and
//! the observable behaviour an event trace plus an exit status. [`Closed`]
//! reconstructs that model on top of any open `C ↠ C` component: the single
//! trivial question `*` loads the initial memory and calls `main`; outgoing
//! questions are answered by the `χ` parameter (an [`ExtLib`]), each
//! answered call surfacing as a syscall [`Event`]; the final answer is the
//! `int` exit status.
//!
//! This is the (Sep)CompCert row of paper Table 4, expressed inside
//! CompCertO's framework — closing is a *construction on open semantics*,
//! not a separate theory.

use compcerto_core::iface::{CQuery, One, Signature, Void, C, W};
use compcerto_core::lts::{Event, Lts, Step, Stuck};
use compcerto_core::symtab::SymbolTable;
use mem::{Typ, Val};

use crate::extlib::ExtLib;

/// A closed process built from an open `C ↠ C` component.
#[derive(Debug, Clone)]
pub struct Closed<L> {
    inner: L,
    symtab: SymbolTable,
    /// The conventional entry point.
    main: String,
    /// The external-function parameter χ.
    chi: ExtLib,
}

/// State of a closed process: the inner component's state, plus the phase.
#[derive(Debug, Clone)]
pub enum ClosedState<S> {
    /// Not yet loaded.
    Boot,
    /// Running the inner component.
    Running(S),
}

impl<L> Closed<L>
where
    L: Lts<I = C, O = C>,
{
    /// Close `inner` over `chi`, entering at `main`.
    pub fn new(inner: L, symtab: SymbolTable, main: impl Into<String>, chi: ExtLib) -> Closed<L> {
        Closed {
            inner,
            symtab,
            main: main.into(),
            chi,
        }
    }

    fn main_query(&self) -> Result<CQuery, Stuck> {
        let vf = self
            .symtab
            .func_ptr(&self.main)
            .ok_or_else(|| Stuck::new(format!("no `{}` in the symbol table", self.main)))?;
        let mem = self
            .symtab
            .build_init_mem()
            .map_err(|e| Stuck::new(format!("loader: {e}")))?;
        Ok(CQuery {
            vf,
            sig: Signature::new(vec![], Some(Typ::I32)),
            args: vec![],
            mem,
        })
    }
}

impl<L> Lts for Closed<L>
where
    L: Lts<I = C, O = C>,
{
    type I = W;
    type O = One;
    type State = ClosedState<L::State>;

    fn name(&self) -> String {
        format!("[{}]", self.inner.name())
    }

    fn accepts(&self, _q: &()) -> bool {
        true
    }

    fn initial(&self, _q: &()) -> Result<Self::State, Stuck> {
        Ok(ClosedState::Boot)
    }

    fn step(&self, s: &Self::State) -> Step<Self::State, Void, i32> {
        match s {
            ClosedState::Boot => {
                let q = match self.main_query() {
                    Ok(q) => q,
                    Err(stuck) => return Step::Stuck(stuck),
                };
                if !self.inner.accepts(&q) {
                    return Step::Stuck(Stuck::new(format!(
                        "`{}` is not defined by the component",
                        self.main
                    )));
                }
                match self.inner.initial(&q) {
                    Ok(st) => Step::Internal(ClosedState::Running(st), vec![]),
                    Err(stuck) => Step::Stuck(stuck),
                }
            }
            ClosedState::Running(st) => match self.inner.step(st) {
                Step::Internal(st2, evs) => Step::Internal(ClosedState::Running(st2), evs),
                Step::Final(reply) => match reply.retval {
                    Val::Int(code) => Step::Final(code),
                    other => Step::Stuck(Stuck::new(format!(
                        "main returned a non-int exit status: {other}"
                    ))),
                },
                // χ answers every external call; the call becomes a syscall
                // event in the trace (paper §2.2: interaction with the
                // environment is a sequence of events).
                Step::External(q) => match self.chi.answer_c(&q) {
                    Some(reply) => {
                        let name = match q.vf {
                            Val::Ptr(b, 0) => {
                                self.symtab.ident_of(b).unwrap_or("<unknown>").to_string()
                            }
                            _ => "<indirect>".into(),
                        };
                        let ev = Event::Syscall {
                            name,
                            args: q.args.clone(),
                            result: reply.retval,
                        };
                        match self.inner.resume(st, reply) {
                            Ok(st2) => Step::Internal(ClosedState::Running(st2), vec![ev]),
                            Err(stuck) => Step::Stuck(stuck),
                        }
                    }
                    None => Step::Stuck(Stuck::new(format!(
                        "χ does not define the external function {:?}",
                        q.vf
                    ))),
                },
                Step::Stuck(stuck) => Step::Stuck(stuck),
            },
        }
    }

    fn resume(&self, _s: &Self::State, a: Void) -> Result<Self::State, Stuck> {
        match a {} // One has no answers: closed processes are never resumed
    }

    fn measure(&self, s: &Self::State) -> compcerto_core::lts::StateMeasure {
        match s {
            ClosedState::Boot => compcerto_core::lts::StateMeasure::default(),
            ClosedState::Running(st) => self.inner.measure(st),
        }
    }
}

/// Run a closed process to completion, returning the exit status and the
/// event trace (the observable behaviour of paper §3.1).
///
/// # Errors
/// Returns the inner [`Stuck`] on undefined behaviour.
pub fn run_closed<L>(closed: &Closed<L>, fuel: u64) -> Result<(i32, Vec<Event>), Stuck>
where
    L: Lts<I = C, O = C>,
{
    run_closed_budgeted(closed, &compcerto_core::lts::RunBudget::with_fuel(fuel))
}

/// Like [`run_closed`], but under a full [`RunBudget`] (memory / call-depth /
/// deadline quotas in addition to fuel).
///
/// # Errors
/// Returns the inner [`Stuck`] on undefined behaviour; budget violations are
/// reported as `Stuck` values describing the exceeded quota.
pub fn run_closed_budgeted<L>(
    closed: &Closed<L>,
    budget: &compcerto_core::lts::RunBudget,
) -> Result<(i32, Vec<Event>), Stuck>
where
    L: Lts<I = C, O = C>,
{
    match compcerto_core::lts::run_budgeted(closed, &(), &mut |q: &Void| match *q {}, budget) {
        compcerto_core::lts::RunOutcome::Complete { answer, trace, .. } => Ok((answer, trace)),
        // Every failing outcome (wrong, refused, budget) maps to a `Stuck`
        // describing the failure — `run_closed` must never panic.
        other => match other.into_answer() {
            Err(e) => Err(Stuck::new(e.to_string())),
            Ok(_) => Err(Stuck::new("unreachable: Complete handled above")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all, CompilerOptions};
    use compcerto_core::hcomp::HComp;

    const MAIN: &str = "
        extern int inc(int);
        int work(int n) {
            int i; int s;
            s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        }
        int main() {
            int a; int b;
            a = work(10);
            b = inc(a);
            return b;
        }";

    #[test]
    fn closed_clight_process() {
        let (units, tbl) = compile_all(&[MAIN], CompilerOptions::default()).unwrap();
        let chi = ExtLib::demo(tbl.clone());
        let closed = Closed::new(units[0].clight_sem(&tbl), tbl, "main", chi);
        let (code, trace) = run_closed(&closed, 1_000_000).unwrap();
        assert_eq!(code, 46); // sum 0..9 = 45, inc -> 46
                              // The external call shows up as a syscall event (paper §2.2).
        assert_eq!(trace.len(), 1);
        assert!(matches!(&trace[0], Event::Syscall { name, .. } if name == "inc"));
    }

    #[test]
    fn closed_composition_of_units() {
        // SepCompCert's model: the closed semantics of linked units equals
        // the closed semantics of their ⊕-composition.
        let a = "extern int helper(int); int main() { int r; r = helper(20); return r; }";
        let b = "int helper(int x) { return x + 2; }";
        let (units, tbl) = compile_all(&[a, b], CompilerOptions::default()).unwrap();
        let chi = ExtLib::demo(tbl.clone());
        let composed = HComp::new(units[0].clight_sem(&tbl), units[1].clight_sem(&tbl));
        let closed = Closed::new(composed, tbl.clone(), "main", chi.clone());
        let (code, trace) = run_closed(&closed, 1_000_000).unwrap();
        assert_eq!(code, 22);
        assert!(
            trace.is_empty(),
            "cross-unit calls are internal, not events"
        );

        // And the linked source gives the same behaviour.
        let linked = clight::link(&units[0].clight, &units[1].clight).unwrap();
        let whole = clight::ClightSem::new(linked, tbl.clone());
        let closed2 = Closed::new(whole, tbl, "main", chi);
        assert_eq!(run_closed(&closed2, 1_000_000).unwrap().0, 22);
    }

    #[test]
    fn missing_chi_function_goes_wrong() {
        let src = "extern int nosuch(int); int main() { int r; r = nosuch(1); return r; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let chi = ExtLib::demo(tbl.clone()); // does not define `nosuch`
        let closed = Closed::new(units[0].clight_sem(&tbl), tbl, "main", chi);
        assert!(run_closed(&closed, 1_000_000).is_err());
    }

    #[test]
    fn non_int_exit_status_rejected() {
        let src = "long main() { return 7L; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let chi = ExtLib::demo(tbl.clone());
        let closed = Closed::new(units[0].clight_sem(&tbl), tbl, "main", chi);
        // `main` has the wrong signature: the component rejects the query.
        assert!(run_closed(&closed, 1_000_000).is_err());
    }
}
