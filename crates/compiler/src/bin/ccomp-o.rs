//! `ccomp-o`: the command-line front end of CompCertO-rs.
//!
//! ```text
//! ccomp-o [OPTIONS] FILE.c [FILE.c ...]
//! ccomp-o serve --cache-dir DIR [serve options]
//!
//!   --dump-asm           print the generated Asm-O code
//!   --dump-rtl           print the optimized RTL
//!   --run FN ARGS...     run FN on integer arguments (Clight semantics;
//!                        multiple files are linked, paper App. A.3)
//!   --check FN ARGS...   additionally check Thm 3.8 on the execution
//!                        (with two files: Cor 3.9, separate compilation)
//!   --validate           run the static validation layer (IR lints +
//!                        per-pass translation validators); any finding is
//!                        printed and the exit code is nonzero
//!   --validate-json      like --validate, but findings are emitted as one
//!                        JSON object per line
//!   --analyze-json       emit the abstract-interpretation facts driving
//!                        the Vprop/Ndce passes (per-function value facts
//!                        and neededness sets) as a deterministic
//!                        `compcerto-analysis/1` JSON document
//!   --jobs N             compile translation units on N worker threads
//!                        (`auto`/`0` = all hardware threads, the default;
//!                        `1` = today's exact serial pipeline; output is
//!                        byte-identical for every setting)
//!   --metrics            print the observability report (deterministic
//!                        counters first, wall-clock spans after) as text
//!   --metrics-json       like --metrics, but as a `compcerto-obs/1` JSON
//!                        document on stdout
//!   --trace-json         with --run/--check: emit the execution's
//!                        JSON-lines event trace (run-start/step/external/
//!                        terminal) on stdout before the result
//!   -O0                  disable the optional optimizations
//! ```
//!
//! # The compile server
//!
//! `ccomp-o serve` starts a persistent daemon speaking newline-framed JSON
//! (`compcerto-serve/1`, see [`compiler::serve`]) on stdin/stdout — or on
//! a Unix socket with `--socket PATH` — backed by a content-addressed
//! artifact cache:
//!
//! ```text
//!   --cache-dir DIR      artifact cache directory (required; created)
//!   --socket PATH        listen on a Unix socket instead of stdin/stdout
//!   --jobs N|auto        worker-pool width for the function-level fan-out
//!   -O0                  disable the optional optimizations
//!   --no-validate        skip the static validation layer
//!   --no-metrics         skip the per-unit metrics counters
//! ```
//!
//! The server defaults to validation + metrics on (cached artifacts carry
//! both). Its exit codes follow the same contract: 0 on EOF or a
//! `shutdown` op, 1 on I/O failure, 2 on usage errors, never 101.
//!
//! # Exit codes
//!
//! The driver's exit code is a contract (scripts and CI build on it):
//!
//! * `0` — every unit compiled clean; all requested runs/checks passed.
//! * `1` — findings: a unit failed, was poisoned by a contained panic, or
//!   was **degraded** (compiled with the optional RTL optimizations
//!   skipped after an optimizer panic or validator rejection — output is
//!   still produced, but the degradation is reported and the exit code
//!   says so); also execution/check failures and unreadable inputs.
//! * `2` — usage errors (bad flags, no input files).
//! * `101` — never. The pipeline is panic-isolated
//!   ([`compiler::resilience`]): a panicking pass poisons its unit and is
//!   reported under exit code 1 instead of aborting the process.

use std::process::ExitCode;

use compiler::{
    c_query, check_thm38, compile_all_resilient, CompilerOptions, ExtLib, Jobs, MetricsReport,
    UnitOutcome,
};
use mem::Val;

struct Cli {
    files: Vec<String>,
    dump_asm: bool,
    dump_rtl: bool,
    validate: bool,
    validate_json: bool,
    analyze_json: bool,
    metrics: bool,
    metrics_json: bool,
    trace_json: bool,
    run: Option<(String, Vec<i32>, bool)>,
    opts: CompilerOptions,
    jobs: Jobs,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut cli = Cli {
        files: Vec::new(),
        dump_asm: false,
        dump_rtl: false,
        validate: false,
        validate_json: false,
        analyze_json: false,
        metrics: false,
        metrics_json: false,
        trace_json: false,
        run: None,
        opts: CompilerOptions::default(),
        jobs: Jobs::Auto,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dump-asm" => cli.dump_asm = true,
            "--dump-rtl" => cli.dump_rtl = true,
            "--validate" => cli.validate = true,
            "--validate-json" => {
                cli.validate = true;
                cli.validate_json = true;
            }
            "--analyze-json" => cli.analyze_json = true,
            "--metrics" => cli.metrics = true,
            "--metrics-json" => {
                cli.metrics = true;
                cli.metrics_json = true;
            }
            "--trace-json" => cli.trace_json = true,
            "-O0" => cli.opts = CompilerOptions::none(),
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                cli.jobs = Jobs::parse(&v)?;
            }
            "--run" | "--check" => {
                let f = args
                    .next()
                    .ok_or_else(|| format!("{a} requires a function name"))?;
                let mut vals = Vec::new();
                while let Some(n) = args.peek() {
                    match n.parse::<i32>() {
                        Ok(v) => {
                            vals.push(v);
                            args.next();
                        }
                        Err(_) => break,
                    }
                }
                cli.run = Some((f, vals, a == "--check"));
            }
            "-h" | "--help" => return Err("help".into()),
            f if !f.starts_with('-') => cli.files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if cli.files.is_empty() {
        return Err("no input files".into());
    }
    // `-O0` rebuilds `opts`, so transfer the flags at the end.
    cli.opts.validate = cli.validate;
    cli.opts.metrics = cli.metrics;
    Ok(cli)
}

const SERVE_USAGE: &str = "usage: ccomp-o serve --cache-dir DIR [--socket PATH] \
     [--jobs N|auto] [-O0] [--no-validate] [--no-metrics]";

/// The `ccomp-o serve` subcommand: parse the serve flags, then hand the
/// process over to the framing loop ([`compiler::serve`]).
fn serve_main(args: &[String]) -> ExitCode {
    let mut cache_dir: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut jobs = Jobs::Auto;
    let mut opts = CompilerOptions::validated().with_metrics();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(d.clone()),
                None => {
                    eprintln!("error: --cache-dir requires a value\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => {
                    eprintln!("error: --socket requires a value\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().map(|v| Jobs::parse(v)) {
                Some(Ok(j)) => jobs = j,
                Some(Err(e)) => {
                    eprintln!("error: {e}\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --jobs requires a value\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-O0" => {
                // Preserve the validate/metrics toggles across the rebuild.
                let (v, m) = (opts.validate, opts.metrics);
                opts = CompilerOptions::none();
                opts.validate = v;
                opts.metrics = m;
            }
            "--no-validate" => opts.validate = false,
            "--no-metrics" => opts.metrics = false,
            "-h" | "--help" => {
                eprintln!("{SERVE_USAGE}");
                return ExitCode::from(2);
            }
            other => {
                eprintln!("error: unknown serve option `{other}`\n{SERVE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cache_dir) = cache_dir else {
        eprintln!("error: serve requires --cache-dir\n{SERVE_USAGE}");
        return ExitCode::from(2);
    };
    let cfg = compiler::ServeConfig {
        opts,
        jobs,
        cache_dir,
    };
    let code = match socket {
        Some(path) => compiler::run_unix(cfg, &path),
        None => compiler::run_stdio(cfg),
    };
    ExitCode::from(code)
}

fn main() -> ExitCode {
    // The server has its own flag grammar; dispatch before the batch
    // compiler's parse sees `serve` as an input file.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }

    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: ccomp-o [--dump-asm] [--dump-rtl] [--validate] [--validate-json] \
                 [--analyze-json] [--metrics] [--metrics-json] [--trace-json] \
                 [--jobs N|auto] [-O0] [--run FN ARGS... | --check FN ARGS...] FILE.c ...\n\
                 \x20      ccomp-o serve --cache-dir DIR [--socket PATH] [--jobs N|auto] [-O0] \
                 [--no-validate] [--no-metrics]"
            );
            return ExitCode::from(2);
        }
    };

    let mut sources = Vec::new();
    for f in &cli.files {
        match std::fs::read_to_string(f) {
            Ok(s) => sources.push(s),
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    // The panic-isolated pipeline: a unit that fails, panics, or degrades
    // never takes the batch (or the process) down with it.
    let batch = compile_all_resilient(&refs, cli.opts, cli.jobs);
    let mut units = Vec::with_capacity(batch.outcomes.len());
    let mut degraded = 0usize;
    let mut fatal = 0usize;
    for (file, outcome) in cli.files.iter().zip(batch.outcomes) {
        match outcome {
            UnitOutcome::Ok(unit) => units.push(*unit),
            UnitOutcome::Degraded {
                unit,
                pass,
                reason,
                detail,
            } => {
                degraded += 1;
                eprintln!(
                    "warning: {file}: degraded — {} in `{pass}` ({detail}); \
                     recompiled with the optional RTL optimizations skipped",
                    reason.name()
                );
                units.push(*unit);
            }
            UnitOutcome::Failed { stage, error } => {
                fatal += 1;
                eprintln!("error: {file}: {stage}: {error}");
            }
            UnitOutcome::Poisoned { pass, panic_msg } => {
                fatal += 1;
                eprintln!(
                    "error: {file}: internal panic in `{pass}` (contained): {panic_msg}"
                );
            }
        }
    }
    if fatal > 0 {
        eprintln!("error: {fatal} unit(s) failed to compile");
        return ExitCode::from(1);
    }
    let symtab = match batch.symtab {
        Some(t) => t,
        None => {
            eprintln!("error: the units do not link");
            return ExitCode::from(1);
        }
    };

    if cli.validate {
        let mut findings = 0usize;
        for (file, unit) in cli.files.iter().zip(&units) {
            for d in &unit.diagnostics {
                findings += 1;
                if cli.validate_json {
                    println!("{}", d.to_json());
                } else {
                    println!("{file}: {d}");
                }
            }
        }
        if findings > 0 {
            eprintln!("error: static validation produced {findings} finding(s)");
            return ExitCode::from(1);
        }
        if !cli.validate_json {
            println!("static validation: clean ({} unit(s))", units.len());
        }
    }

    if cli.analyze_json {
        print!(
            "{}",
            compiler::analysis_json(&cli.files, &units, &symtab)
        );
    }

    for (file, unit) in cli.files.iter().zip(&units) {
        if cli.dump_rtl {
            println!("; RTL for {file}");
            for f in &unit.rtl_opt.functions {
                print!("{}", f.dump());
            }
        }
        if cli.dump_asm {
            println!("; Asm-O for {file}");
            for f in &unit.asm.functions {
                print!("{}", f.dump());
            }
        }
    }

    // Everything executed from here on (the Clight run and the Thm 3.8 /
    // Cor 3.9 checks) contributes its deterministic counter delta to the
    // `--metrics` report; the compile-phase counters live in the per-unit
    // metrics absorbed by `from_units` below.
    let run_snap = cli.metrics.then(compiler::ObsSnapshot::take);

    if let Some((fname, args, check)) = cli.run {
        let unit = match units.iter().find(|u| u.clight.function(&fname).is_some()) {
            Some(u) => u,
            None => {
                eprintln!("error: no unit defines `{fname}`");
                return ExitCode::from(1);
            }
        };
        let vals: Vec<Val> = args.iter().map(|n| Val::Int(*n)).collect();
        let q = c_query(&symtab, unit, &fname, vals);
        let lib = ExtLib::demo(symtab.clone());
        // Link all translation units at the Clight level (App. A.3), so
        // cross-unit calls resolve internally rather than escaping.
        let mut whole = units[0].clight.clone();
        for u in &units[1..] {
            whole = match clight::link(&whole, &u.clight) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: linking failed: {e}");
                    return ExitCode::from(1);
                }
            };
        }
        let sem = clight::ClightSem::new(whole, symtab.clone());
        let budget = if cli.trace_json {
            compcerto_core::lts::RunBudget::with_fuel(100_000_000).json_trace()
        } else {
            compcerto_core::lts::RunBudget::with_fuel(100_000_000).no_trace()
        };
        let out =
            compcerto_core::lts::run_budgeted(&sem, &q, &mut |m| lib.answer_c(m), &budget);
        if cli.trace_json {
            for line in compcerto_core::obs::take_trace() {
                println!("{line}");
            }
        }
        match out {
            compcerto_core::lts::RunOutcome::Complete { answer, .. } => {
                println!("{fname}({args:?}) = {}", answer.retval);
            }
            other => {
                eprintln!("error: execution did not complete: {other:?}");
                return ExitCode::from(1);
            }
        }
        if check {
            match units.as_slice() {
                [u] => match check_thm38(u, &symtab, &lib, &q) {
                    Ok(report) => println!(
                        "Thm 3.8 ✓  (source {} steps, target {} steps, {} external boundaries)",
                        report.source_steps, report.target_steps, report.external_calls
                    ),
                    Err(e) => {
                        eprintln!("Thm 3.8 ✗: {e}");
                        return ExitCode::from(1);
                    }
                },
                [u1, u2] => match compiler::check_cor39(u1, u2, &symtab, &lib, &q) {
                    Ok(report) => println!(
                        "Cor 3.9 ✓  (source {} steps, target {} steps, {} external boundaries)",
                        report.source_steps, report.target_steps, report.external_calls
                    ),
                    Err(e) => {
                        eprintln!("Cor 3.9 ✗: {e}");
                        return ExitCode::from(1);
                    }
                },
                _ => {
                    eprintln!("error: --check supports one file (Thm 3.8) or two (Cor 3.9)");
                    return ExitCode::from(1);
                }
            }
        }
    }

    if cli.metrics {
        let mut report = MetricsReport::from_units("ccomp-o", &units);
        if let Some(snap) = run_snap {
            let delta = snap.delta();
            if !delta.0.is_empty() {
                report.absorb_counters(&delta);
            }
        }
        if cli.metrics_json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
    }
    // Degraded output is usable output, but the exit code must say so.
    if degraded > 0 {
        eprintln!("warning: {degraded} unit(s) compiled degraded");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
