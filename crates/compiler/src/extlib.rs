//! A model external library implemented at every language interface.
//!
//! Real environments are compiled code too: the same service answers a
//! C-level question at the C level and an assembly-level question at the
//! assembly level, *respecting the calling convention*. [`ExtLib`] models
//! this: a table of pure functions exposed as environment oracles for the
//! `C`, `L`, `M` and `A` interfaces. The differential simulation checker
//! ([`compcerto_core::sim::EnvMode::Dual`]) runs one oracle per side and
//! verifies the convention relates their answers — exercising the
//! rely/guarantee reading of simulation conventions (paper §2.1).

use std::collections::BTreeMap;

use compcerto_core::iface::{abi, ARegs, CQuery, CReply, LQuery, LReply, MQuery, MReply};
use compcerto_core::regs::{Loc, Locset, Mreg};
use compcerto_core::symtab::SymbolTable;
use mem::{Chunk, Mem, Val};

/// A pure external function: argument values to result value.
pub type PureFn = fn(&[Val]) -> Val;

/// An external function that may *read* memory (through pointer arguments):
/// the uniform-behaviour assumption of paper §4.5 made executable — the same
/// reads happen at whatever level the function is called.
pub type MemFn = fn(&[Val], &Mem) -> Val;

/// A library of pure external functions, callable at any language interface.
#[derive(Clone)]
pub struct ExtLib {
    symtab: SymbolTable,
    fns: BTreeMap<String, PureFn>,
    mem_fns: BTreeMap<String, MemFn>,
}

impl std::fmt::Debug for ExtLib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtLib")
            .field("fns", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// The behaviour of one external function.
#[derive(Clone, Copy)]
enum Behaviour {
    Pure(PureFn),
    Mem(MemFn),
}

impl Behaviour {
    fn apply(&self, args: &[Val], m: &Mem) -> Val {
        match self {
            Behaviour::Pure(f) => f(args),
            Behaviour::Mem(f) => f(args, m),
        }
    }
}

impl ExtLib {
    /// An empty library bound to a symbol table.
    pub fn new(symtab: SymbolTable) -> ExtLib {
        ExtLib {
            symtab,
            fns: BTreeMap::new(),
            mem_fns: BTreeMap::new(),
        }
    }

    /// Register a pure function under a symbol name.
    pub fn define(mut self, name: impl Into<String>, f: PureFn) -> ExtLib {
        self.fns.insert(name.into(), f);
        self
    }

    /// Register a memory-reading function under a symbol name.
    pub fn define_memfn(mut self, name: impl Into<String>, f: MemFn) -> ExtLib {
        self.mem_fns.insert(name.into(), f);
        self
    }

    /// The standard demonstration library: `osc(x) = x + 1`,
    /// `mystery(x) = 2x`, `twice(x) = 2x`, `ext(x) = x`.
    pub fn demo(symtab: SymbolTable) -> ExtLib {
        fn inc(args: &[Val]) -> Val {
            args.first()
                .copied()
                .unwrap_or(Val::Int(0))
                .add(Val::Int(1))
        }
        fn dbl(args: &[Val]) -> Val {
            args.first()
                .copied()
                .unwrap_or(Val::Int(0))
                .mul(Val::Int(2))
        }
        fn idf(args: &[Val]) -> Val {
            args.first().copied().unwrap_or(Val::Int(0))
        }
        /// Sum two longs read through the pointer argument (the canonical
        /// memory-reading external: exercises pointer marshaling and the
        /// injection machinery end to end).
        fn sum2(args: &[Val], m: &Mem) -> Val {
            let Some(p) = args.first() else {
                return Val::Long(0);
            };
            let a = m.loadv(Chunk::I64, *p).unwrap_or(Val::Undef);
            let b = m
                .loadv(Chunk::I64, p.add(Val::Long(8)))
                .unwrap_or(Val::Undef);
            a.add(b)
        }
        ExtLib::new(symtab)
            .define("osc", inc)
            .define("inc", inc)
            .define("mystery", dbl)
            .define("twice", dbl)
            .define("ext", idf)
            // The threaded scheduler's explicit interleaving point: a
            // semantically inert identity whose only effect is suspending
            // the calling thread at the open boundary.
            .define("yield", idf)
            .define_memfn("sum2", sum2)
    }

    /// The behaviour bound to a function-pointer value, if any.
    fn lookup(&self, vf: &Val) -> Option<Behaviour> {
        let Val::Ptr(b, 0) = vf else { return None };
        let name = self.symtab.ident_of(*b)?;
        if let Some(f) = self.fns.get(name) {
            return Some(Behaviour::Pure(*f));
        }
        self.mem_fns.get(name).map(|f| Behaviour::Mem(*f))
    }

    /// Answer a C-level question.
    pub fn answer_c(&self, q: &CQuery) -> Option<CReply> {
        let f = self.lookup(&q.vf)?;
        Some(CReply {
            retval: f.apply(&q.args, &q.mem),
            mem: q.mem.clone(),
        })
    }

    /// Answer an L-level question: arguments from ABI locations, result into
    /// the result register, callee-save locations preserved.
    pub fn answer_l(&self, q: &LQuery) -> Option<LReply> {
        let f = self.lookup(&q.vf)?;
        let args: Vec<Val> = abi::loc_arguments(&q.sig)
            .into_iter()
            .map(|l| q.ls.get(l))
            .collect();
        let mut ls = Locset::new();
        for r in Mreg::all() {
            if abi::is_callee_save(r) {
                ls.set(Loc::Reg(r), q.ls.get(Loc::Reg(r)));
            } else {
                ls.set(Loc::Reg(r), Val::Undef);
            }
        }
        ls.set(Loc::Reg(abi::RESULT_REG), f.apply(&args, &q.mem));
        Some(LReply {
            ls,
            mem: q.mem.clone(),
        })
    }

    /// Answer an M-level question: register arguments from `r0..r3`, stack
    /// arguments loaded from the argument region at `sp`.
    pub fn answer_m(&self, q: &MQuery) -> Option<MReply> {
        let f = self.lookup(&q.vf)?;
        let sig = self.symtab.sig_of_ptr(&q.vf)?;
        let mut args = Vec::with_capacity(sig.params.len());
        for (i, _) in sig.params.iter().enumerate() {
            if i < abi::PARAM_REGS.len() {
                args.push(q.rs[abi::PARAM_REGS[i].index()]);
            } else {
                let ofs = ((i - abi::PARAM_REGS.len()) as i64) * 8;
                args.push(q.mem.loadv(Chunk::Any64, q.sp.add(Val::Long(ofs))).ok()?);
            }
        }
        let mut rs = q.rs;
        for r in Mreg::all() {
            if !abi::is_callee_save(r) {
                rs[r.index()] = Val::Undef;
            }
        }
        rs[abi::RESULT_REG.index()] = f.apply(&args, &q.mem);
        Some(MReply {
            rs,
            mem: q.mem.clone(),
        })
    }

    /// Answer an A-level question: like [`ExtLib::answer_m`], and additionally
    /// return control through `ra` with the stack pointer restored —
    /// a well-behaved assembly-level service per the `CA` convention.
    pub fn answer_a(&self, q: &ARegs) -> Option<ARegs> {
        let f = self.lookup(&q.rs.pc)?;
        let sig = self.symtab.sig_of_ptr(&q.rs.pc)?;
        let mut args = Vec::with_capacity(sig.params.len());
        for (i, _) in sig.params.iter().enumerate() {
            if i < abi::PARAM_REGS.len() {
                args.push(q.rs.get(abi::PARAM_REGS[i]));
            } else {
                let ofs = ((i - abi::PARAM_REGS.len()) as i64) * 8;
                args.push(
                    q.mem
                        .loadv(Chunk::Any64, q.rs.sp.add(Val::Long(ofs)))
                        .ok()?,
                );
            }
        }
        let mut rs = q.rs.clone();
        for r in Mreg::all() {
            if !abi::is_callee_save(r) {
                rs.set(r, Val::Undef);
            }
        }
        rs.set(abi::RESULT_REG, f.apply(&args, &q.mem));
        rs.pc = q.rs.ra; // return
        Some(ARegs {
            rs,
            mem: q.mem.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compcerto_core::cc::Ca;
    use compcerto_core::conv::SimConv;
    use compcerto_core::iface::Signature;
    use compcerto_core::symtab::GlobKind;
    use mem::Mem;

    fn setup() -> (ExtLib, SymbolTable) {
        let mut tbl = SymbolTable::new();
        tbl.define("inc".into(), GlobKind::Func(Signature::int_fn(1)));
        (ExtLib::demo(tbl.clone()), tbl)
    }

    #[test]
    fn c_level_answers() {
        let (lib, tbl) = setup();
        let q = CQuery {
            vf: tbl.func_ptr("inc").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(41)],
            mem: Mem::new(),
        };
        let r = lib.answer_c(&q).unwrap();
        assert_eq!(r.retval, Val::Int(42));
    }

    #[test]
    fn c_and_a_answers_are_ca_related() {
        // The same service answered at C and at A must produce CA-related
        // replies — the environment side of Thm 3.8.
        let (lib, tbl) = setup();
        let mem = tbl.build_init_mem().unwrap();
        let qc = CQuery {
            vf: tbl.func_ptr("inc").unwrap(),
            sig: Signature::int_fn(1),
            args: vec![Val::Int(9)],
            mem,
        };
        let ca = Ca::new(tbl.len() as u32);
        let (w, qa) = ca.transport_query(&qc).unwrap();
        let rc = lib.answer_c(&qc).unwrap();
        let ra = lib.answer_a(&qa).unwrap();
        assert!(ca.match_reply(&w, &rc, &ra), "external service broke CA");
    }

    #[test]
    fn unknown_functions_are_refused() {
        let (lib, _) = setup();
        let q = CQuery {
            vf: Val::Ptr(999, 0),
            sig: Signature::int_fn(0),
            args: vec![],
            mem: Mem::new(),
        };
        assert!(lib.answer_c(&q).is_none());
    }
}
