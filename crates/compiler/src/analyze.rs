//! The `--analyze-json` report: per-function abstract-interpretation facts
//! (DESIGN.md §12) as a deterministic JSON document, schema
//! `compcerto-analysis/1`.
//!
//! The report shows exactly the facts the optimization tier consumed: the
//! forward value analysis solved on the `Vprop` input snapshot and the
//! backward neededness analysis solved on the `Ndce` input snapshot. Every
//! map in the pipeline is a `BTreeMap` and every abstract value renders
//! through its canonical `Display`, so the document is byte-deterministic —
//! a pure function of the compiled units.

use std::fmt::Write as _;

use compcerto_core::symtab::SymbolTable;
use rtl::Romem;

use crate::driver::CompiledUnit;

/// The schema identifier of the analysis report.
pub const ANALYSIS_SCHEMA: &str = "compcerto-analysis/1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the abstract-interpretation facts of `units` (paired with their
/// file names) as the `compcerto-analysis/1` JSON document.
///
/// Per function: `value` maps each CFG node to the abstract environment
/// *before* the node (registers bound to interval / pointer values), and
/// `needed` maps each node to the needed-*after* environment (registers to
/// bit-level neededness). Registers absent from a `value` environment are
/// `Bot` (unwritten on every path); registers absent from a `needed`
/// environment are dead.
#[must_use]
pub fn analysis_json(files: &[String], units: &[CompiledUnit], symtab: &SymbolTable) -> String {
    let romem = Romem::new(symtab);
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"{ANALYSIS_SCHEMA}\",");
    let _ = writeln!(s, "  \"units\": [");
    for (ui, (file, unit)) in files.iter().zip(units).enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"file\": \"{}\",", json_escape(file));
        let _ = writeln!(s, "      \"functions\": [");
        let value = compcerto_validate::value_facts_program(&unit.rtl_vprop_in, &romem);
        let needed = compcerto_validate::needed_facts_program(&unit.rtl_ndce_in);
        let nfuns = unit.rtl_vprop_in.functions.len();
        for (fi, f) in unit.rtl_vprop_in.functions.iter().enumerate() {
            let _ = writeln!(s, "        {{");
            let _ = writeln!(s, "          \"name\": \"{}\",", json_escape(&f.name));
            let _ = writeln!(s, "          \"value\": {{");
            if let Some(envs) = value.get(&f.name) {
                let n_envs = envs.len();
                for (ei, (node, env)) in envs.iter().enumerate() {
                    let binds: Vec<String> = env
                        .iter()
                        .map(|(r, v)| format!("\"r{r}\": \"{}\"", json_escape(&v.to_string())))
                        .collect();
                    let comma = if ei + 1 < n_envs { "," } else { "" };
                    let _ = writeln!(s, "            \"{node}\": {{{}}}{comma}", binds.join(", "));
                }
            }
            let _ = writeln!(s, "          }},");
            let _ = writeln!(s, "          \"needed\": {{");
            if let Some(envs) = needed.get(&f.name) {
                let n_envs = envs.len();
                for (ei, (node, env)) in envs.iter().enumerate() {
                    let binds: Vec<String> = env
                        .iter()
                        .map(|(r, nv)| format!("\"r{r}\": \"{}\"", json_escape(&nv.to_string())))
                        .collect();
                    let comma = if ei + 1 < n_envs { "," } else { "" };
                    let _ = writeln!(s, "            \"{node}\": {{{}}}{comma}", binds.join(", "));
                }
            }
            let _ = writeln!(s, "          }}");
            let comma = if fi + 1 < nfuns { "," } else { "" };
            let _ = writeln!(s, "        }}{comma}");
        }
        let _ = writeln!(s, "      ]");
        let comma = if ui + 1 < units.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all, CompilerOptions};

    #[test]
    fn report_is_deterministic_and_schema_tagged() {
        let src = "int f(int a) { int i; int s; s = 0; i = 0; \
                   while (i < 8) { s = s + i; i = i + 1; } return s; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).expect("compiles");
        let files = vec!["f.c".to_string()];
        let a = analysis_json(&files, &units, &tbl);
        let b = analysis_json(&files, &units, &tbl);
        assert_eq!(a, b, "report must be byte-deterministic");
        assert!(a.contains("\"schema\": \"compcerto-analysis/1\""));
        assert!(a.contains("\"value\""));
        assert!(a.contains("\"needed\""));
        // The loop counter is a genuine interval/defined fact somewhere.
        assert!(a.contains("i32"), "expected at least one i32 value fact");
    }

    #[test]
    fn facts_reflect_the_pass_inputs() {
        // With the optimizations off, the snapshots still exist and the
        // report is well-formed (facts solved on the unoptimized RTL).
        let src = "int g(int a) { return a + 1; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::none()).expect("compiles");
        let files = vec!["g.c".to_string()];
        let a = analysis_json(&files, &units, &tbl);
        assert!(a.contains("\"name\": \"g\""));
    }
}
