//! Correctness harnesses: the executable analogs of paper Thm. 3.5,
//! Thm. 3.8 and Cor. 3.9.
//!
//! Each harness instantiates the differential forward-simulation checker
//! (paper Fig. 6) at the appropriate conventions:
//!
//! * [`check_thm38`] — `Clight(p) ≤_{C↠C} Asm(p')` with the end-to-end
//!   convention `C` (its executable core, [`compcerto_core::cc::Ca`]);
//! * [`check_thm35`] — `Asm(p1) ⊕ Asm(p2) ≤_{id↠id} Asm(p1 + p2)`;
//! * [`check_cor39`] — `Clight(M1) ⊕ … ⊕ Clight(Mn) ≤_{C↠C} Asm(M.s)`.
//!
//! Every harness has a `_budgeted` variant taking a full
//! [`RunBudget`] (memory / call-depth / deadline quotas in addition to
//! fuel); the plain variants run under [`default_budget`]. All entry points
//! are panic-free: linking failures and unknown entry points surface as
//! [`SimCheckError::Precondition`], budget violations as
//! [`SimCheckError::OutOfFuel`] / [`SimCheckError::BudgetExceeded`].

use backend::{link_asm, AsmProgram, AsmSem};
use clight::ClightSem;
use compcerto_core::cconv::CConv;
use compcerto_core::conv::IdConv;
use compcerto_core::hcomp::HComp;
use compcerto_core::iface::{ARegs, CQuery, A};
use compcerto_core::lts::RunBudget;
use compcerto_core::sim::{check_fwd_sim_budgeted, EnvMode, SimCheckError, SimCheckReport};
use compcerto_core::symtab::SymbolTable;

use crate::driver::CompiledUnit;
use crate::extlib::ExtLib;

/// Default fuel for harness executions.
pub const FUEL: u64 = 10_000_000;

/// The budget the plain (non-`_budgeted`) harness entry points run under:
/// [`FUEL`] steps per side, no other quotas.
pub fn default_budget() -> RunBudget {
    RunBudget::with_fuel(FUEL)
}

/// Check Theorem 3.8 on one execution: run the source component at the C
/// level and the compiled component at the assembly level on `C`-related
/// questions, with the external library answering both sides, and verify the
/// final answers are related by the calling convention.
///
/// # Errors
/// Reports the violated simulation edge.
pub fn check_thm38(
    unit: &CompiledUnit,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &CQuery,
) -> Result<SimCheckReport, SimCheckError> {
    check_thm38_budgeted(unit, symtab, lib, query, &default_budget())
}

/// [`check_thm38`] under an explicit [`RunBudget`].
///
/// # Errors
/// Reports the violated simulation edge or the exceeded quota.
pub fn check_thm38_budgeted(
    unit: &CompiledUnit,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &CQuery,
    budget: &RunBudget,
) -> Result<SimCheckReport, SimCheckError> {
    let src = unit.clight_sem(symtab);
    let tgt = unit.asm_sem(symtab);
    // The full convention C = R*·wt·CA·vainj (paper §5).
    let c = CConv::new(symtab.clone());
    let mut env_c = |q: &CQuery| lib.answer_c(q);
    let mut env_a = |q: &ARegs| lib.answer_a(q);
    check_fwd_sim_budgeted(
        &src,
        &tgt,
        &c,
        &c,
        query,
        EnvMode::Dual(&mut env_c, &mut env_a),
        budget,
    )
}

/// Check the Theorem 3.5 analog on one execution: the horizontal composition
/// of two Asm components simulates (at `id ↠ id`) the syntactically linked
/// program.
///
/// # Errors
/// Reports the violated simulation edge; a linking failure is reported as
/// [`SimCheckError::Precondition`].
pub fn check_thm35(
    p1: &AsmProgram,
    p2: &AsmProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &ARegs,
) -> Result<SimCheckReport, SimCheckError> {
    check_thm35_budgeted(p1, p2, symtab, lib, query, &default_budget())
}

/// [`check_thm35`] under an explicit [`RunBudget`].
///
/// # Errors
/// Reports the violated simulation edge, a linking failure, or the exceeded
/// quota.
pub fn check_thm35_budgeted(
    p1: &AsmProgram,
    p2: &AsmProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &ARegs,
    budget: &RunBudget,
) -> Result<SimCheckReport, SimCheckError> {
    let linked = link_asm(p1, p2)
        .map_err(|e| SimCheckError::Precondition(format!("programs do not link: {e}")))?;
    let composite = HComp::new(
        AsmSem::new(p1.clone(), symtab.clone()),
        AsmSem::new(p2.clone(), symtab.clone()),
    );
    let whole = AsmSem::new(linked, symtab.clone());
    let mut env1 = |q: &ARegs| lib.answer_a(q);
    let mut env2 = |q: &ARegs| lib.answer_a(q);
    check_fwd_sim_budgeted(
        &composite,
        &whole,
        &IdConv::<A>::new(),
        &IdConv::<A>::new(),
        query,
        EnvMode::Dual(&mut env1, &mut env2),
        budget,
    )
}

/// Check the Corollary 3.9 analog on one execution: the horizontal
/// composition of two source components' Clight semantics is simulated (at
/// the convention `C`) by the Asm semantics of the compiled-and-linked
/// program.
///
/// # Errors
/// Reports the violated simulation edge; a linking failure is reported as
/// [`SimCheckError::Precondition`].
pub fn check_cor39(
    u1: &CompiledUnit,
    u2: &CompiledUnit,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &CQuery,
) -> Result<SimCheckReport, SimCheckError> {
    check_cor39_budgeted(u1, u2, symtab, lib, query, &default_budget())
}

/// [`check_cor39`] under an explicit [`RunBudget`].
///
/// # Errors
/// Reports the violated simulation edge, a linking failure, or the exceeded
/// quota.
pub fn check_cor39_budgeted(
    u1: &CompiledUnit,
    u2: &CompiledUnit,
    symtab: &SymbolTable,
    lib: &ExtLib,
    query: &CQuery,
    budget: &RunBudget,
) -> Result<SimCheckReport, SimCheckError> {
    let linked = link_asm(&u1.asm, &u2.asm)
        .map_err(|e| SimCheckError::Precondition(format!("programs do not link: {e}")))?;
    let composite = HComp::new(
        ClightSem::new(u1.clight.clone(), symtab.clone()).with_label("Clight#1"),
        ClightSem::new(u2.clight.clone(), symtab.clone()).with_label("Clight#2"),
    );
    let whole = AsmSem::new(linked, symtab.clone());
    let c = CConv::new(symtab.clone());
    let mut env_c = |q: &CQuery| lib.answer_c(q);
    let mut env_a = |q: &ARegs| lib.answer_a(q);
    check_fwd_sim_budgeted(
        &composite,
        &whole,
        &c,
        &c,
        query,
        EnvMode::Dual(&mut env_c, &mut env_a),
        budget,
    )
}

/// Build a C-level query for a function of a compiled program.
///
/// # Errors
/// Fails when the function is unknown to the unit or the symbol table, or
/// when the initial memory cannot be built.
pub fn try_c_query(
    symtab: &SymbolTable,
    unit: &CompiledUnit,
    fname: &str,
    args: Vec<mem::Val>,
) -> Result<CQuery, String> {
    let sig = unit
        .clight
        .sig_of(fname)
        .ok_or_else(|| format!("unknown function `{fname}`"))?;
    let vf = symtab
        .func_ptr(fname)
        .ok_or_else(|| format!("`{fname}` not in the symbol table"))?;
    let mem = symtab
        .build_init_mem()
        .map_err(|e| format!("initial memory: {e}"))?;
    Ok(CQuery {
        vf,
        sig,
        args,
        mem,
    })
}

/// Build a C-level query for a function of a compiled program.
///
/// # Panics
/// Panics when the function is unknown (harness misuse); library code goes
/// through [`try_c_query`].
pub fn c_query(
    symtab: &SymbolTable,
    unit: &CompiledUnit,
    fname: &str,
    args: Vec<mem::Val>,
) -> CQuery {
    match try_c_query(symtab, unit, fname, args) {
        Ok(q) => q,
        Err(e) => panic!("c_query: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all, CompilerOptions};
    use mem::Val;

    #[test]
    fn thm38_simple_arithmetic() {
        let src = "int f(int a, int b) { return (a + b) * (a - b); }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "f", vec![Val::Int(9), Val::Int(4)]);
        let report = check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 holds");
        assert_eq!(report.external_calls, 0);
    }

    #[test]
    fn thm38_with_memory_and_calls() {
        let src = "
            int counter = 0;
            int helper(int x) { counter = counter + x; return counter; }
            int f(int a) {
                int r1; int r2;
                r1 = helper(a);
                r2 = helper(a * 2);
                return r1 + r2;
            }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "f", vec![Val::Int(3)]);
        check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 holds");
    }

    #[test]
    fn thm38_with_external_calls() {
        let src = "
            extern int inc(int);
            int f(int a) { int r; r = inc(a); return r * 2; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "f", vec![Val::Int(20)]);
        let report = check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 holds");
        assert_eq!(report.external_calls, 1);
    }

    #[test]
    fn thm38_with_stack_arguments() {
        let src = "
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }
            int g(int x) { int r; r = sum6(x, x, x, x, x, x); return r; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "g", vec![Val::Int(7)]);
        check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 holds");
    }

    #[test]
    fn thm35_and_cor39_mutual_recursion() {
        // Fig. 1 of the paper: sqr calls mult across translation units.
        let a = "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }";
        let b = "int mult(int n, int p) { return n * p; }";
        let (units, tbl) = compile_all(&[a, b], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());

        // Cor. 3.9: composed sources vs linked target.
        let q = c_query(&tbl, &units[0], "sqr", vec![Val::Int(12)]);
        check_cor39(&units[0], &units[1], &tbl, &lib, &q).expect("Cor 3.9 holds");

        // Thm 3.5: composed Asm vs linked Asm.
        let (_, qa) = compcerto_core::conv::SimConv::transport_query(
            &compcerto_core::cc::Ca::new(tbl.len() as u32),
            &q,
        )
        .unwrap();
        check_thm35(&units[0].asm, &units[1].asm, &tbl, &lib, &qa).expect("Thm 3.5 holds");
    }

    #[test]
    fn try_c_query_rejects_unknown_function() {
        let src = "int f(int a) { return a; }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        assert!(try_c_query(&tbl, &units[0], "nope", vec![]).is_err());
    }

    #[test]
    fn thm38_budgeted_fuel_violation_is_reported() {
        let src = "
            int spin(int n) {
                int i; int s;
                s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i; }
                return s;
            }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "spin", vec![Val::Int(100000)]);
        let budget = RunBudget::with_fuel(50);
        let err =
            check_thm38_budgeted(&units[0], &tbl, &lib, &q, &budget).expect_err("fuel too small");
        assert!(matches!(err, SimCheckError::OutOfFuel { .. }), "got {err}");
        assert!(err.step_trace().is_some_and(|t| !t.is_empty()));
    }
}
