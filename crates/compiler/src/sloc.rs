//! Significant-lines-of-code accounting (paper Tables 3 and 5).
//!
//! The paper measures proof overhead with `coqwc`; our analog counts
//! non-blank, non-comment Rust lines per module, so the regenerated tables
//! report the size of each pass's implementation-plus-checking code in this
//! repository.

use std::path::{Path, PathBuf};

/// The repository root (resolved from this crate's manifest directory).
pub fn repo_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    // crates/compiler is two levels below the root; fall back to the manifest
    // dir itself if the layout ever changes (sloc queries then report 0).
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Count significant lines in a Rust source string: non-blank lines that are
/// not pure comments (`//`, `///`, `//!`).
pub fn significant_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Significant lines of a repository-relative file; 0 when unreadable.
pub fn sloc_of(rel_path: &str) -> usize {
    match std::fs::read_to_string(repo_root().join(rel_path)) {
        Ok(src) => significant_lines(&src),
        Err(_) => 0,
    }
}

/// Sum the significant lines of every `.rs` file under a repository-relative
/// directory.
pub fn sloc_of_dir(rel_dir: &str) -> usize {
    fn walk(dir: &Path, acc: &mut usize) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, acc);
            } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
                if let Ok(src) = std::fs::read_to_string(&p) {
                    *acc += significant_lines(&src);
                }
            }
        }
    }
    let mut acc = 0;
    walk(&repo_root().join(rel_dir), &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_skip_comments_and_blanks() {
        let src = "// comment\n\nfn f() {\n    // inner\n    1 + 1;\n}\n";
        assert_eq!(significant_lines(src), 3);
    }

    #[test]
    fn this_file_has_lines() {
        assert!(sloc_of("crates/compiler/src/sloc.rs") > 20);
        assert!(sloc_of_dir("crates/core/src") > 500);
        assert_eq!(sloc_of("does/not/exist.rs"), 0);
    }
}
