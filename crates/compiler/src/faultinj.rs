//! Fault injection: seeded, deterministic mutation operators over compiled
//! code, keyed by the calling-convention clause they violate, plus a
//! campaign runner that measures the *sensitivity* of the Theorem 3.8
//! checker.
//!
//! The value of a translation-validation harness is that it catches
//! miscompilation; each [`MutationClass`] here models one family of
//! convention violations (corrupted result registers, clobbered
//! callee-saves, skipped external calls, leaked stack frames, …). The
//! campaign runner ([`run_campaign`]) compiles a fixed workload once,
//! generates `N` seeded mutants per class, pushes every mutant through
//! [`check_thm38_budgeted`] under an explicit [`RunBudget`], and reports a
//! sensitivity matrix: how many mutants were detected, with which error
//! class, and whether that class matches the clause the mutation violates.
//!
//! Everything is deterministic given the campaign seed: mutation sites and
//! payloads come from [`SplitMix64`], budgets are fuel-based (no
//! wall-clock), and all tallies use ordered maps.

use std::collections::BTreeMap;
use std::fmt;

use backend::{
    allocation, asmgen, cleanup_labels, debugvar, linearize, stacking, tunneling, AsmInst,
};
use compcerto_core::lts::RunBudget;
use compcerto_core::regs::Mreg;
use compcerto_core::rng::SplitMix64;
use compcerto_core::sim::SimCheckError;
use compcerto_core::symtab::SymbolTable;
use mem::Val;
use minor::MBinop;
use rtl::{renumber, Inst as RtlInst, RtlOp};

use crate::driver::{compile_all_jobs, CompiledUnit, CompilerOptions};
use crate::extlib::ExtLib;
use crate::harness::{check_thm38_budgeted, try_c_query, FUEL};
use crate::par::{par_map, Jobs};

/// The mutation operators, each keyed to the convention clause it violates
/// (paper §4–5: the `C` convention's result, callee-save, argument, memory
/// and control clauses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationClass {
    /// Corrupt the result register `r0` just before a `Ret` (violates the
    /// result clause of `CA`).
    ResultCorruption,
    /// Overwrite a callee-save register (`r8`–`r13`) without saving it
    /// (violates the callee-save clause).
    CalleeSaveClobber,
    /// Corrupt the first argument register just before an external call
    /// (violates the outgoing-argument clause, Fig. 6c).
    ExternalArgCorruption,
    /// Replace an external call with a constant move (the interaction
    /// structures of source and target diverge).
    ExternalCallSkip,
    /// Skip `FreeFrame`: `sp` is not restored and the frame block leaks
    /// (violates the stack-pointer/memory clause).
    StackFrameLeak,
    /// Skip `RestoreRa`: the return address is left clobbered (violates the
    /// return-address clause).
    RaClobber,
    /// Corrupt the value stored to a global variable (the final memories
    /// are no longer related by the injection).
    GlobalStoreCorruption,
    /// Drift an immediate operand (models a "wrong constant" compiler bug).
    ConstantDrift,
    /// Turn a conditional branch unconditional (models a branch-polarity
    /// compiler bug).
    ControlFlowInversion,
    /// RTL-level constant drift: patch an immediate in the optimized RTL
    /// and re-run the backend (Allocation → … → Asmgen), modeling a bug in
    /// an RTL optimization pass.
    RtlConstantDrift,
}

/// All mutation classes, in campaign order.
pub const MUTATION_CLASSES: [MutationClass; 10] = [
    MutationClass::ResultCorruption,
    MutationClass::CalleeSaveClobber,
    MutationClass::ExternalArgCorruption,
    MutationClass::ExternalCallSkip,
    MutationClass::StackFrameLeak,
    MutationClass::RaClobber,
    MutationClass::GlobalStoreCorruption,
    MutationClass::ConstantDrift,
    MutationClass::ControlFlowInversion,
    MutationClass::RtlConstantDrift,
];

impl MutationClass {
    /// Stable kebab-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::ResultCorruption => "result-corruption",
            MutationClass::CalleeSaveClobber => "callee-save-clobber",
            MutationClass::ExternalArgCorruption => "external-arg-corruption",
            MutationClass::ExternalCallSkip => "external-call-skip",
            MutationClass::StackFrameLeak => "stack-frame-leak",
            MutationClass::RaClobber => "ra-clobber",
            MutationClass::GlobalStoreCorruption => "global-store-corruption",
            MutationClass::ConstantDrift => "constant-drift",
            MutationClass::ControlFlowInversion => "control-flow-inversion",
            MutationClass::RtlConstantDrift => "rtl-constant-drift",
        }
    }

    /// The convention clause the class violates (for the report).
    pub fn clause(self) -> &'static str {
        match self {
            MutationClass::ResultCorruption => "result register",
            MutationClass::CalleeSaveClobber => "callee-save registers",
            MutationClass::ExternalArgCorruption => "outgoing arguments",
            MutationClass::ExternalCallSkip => "interaction structure",
            MutationClass::StackFrameLeak => "stack pointer / memory",
            MutationClass::RaClobber => "return address",
            MutationClass::GlobalStoreCorruption => "memory injection",
            MutationClass::ConstantDrift => "value relation",
            MutationClass::ControlFlowInversion => "control flow",
            MutationClass::RtlConstantDrift => "value relation (RTL)",
        }
    }

    /// Does `err` belong to the error class(es) this mutation is expected
    /// to trigger?
    pub fn matches_expected(self, err: &SimCheckError) -> bool {
        use SimCheckError as E;
        match self {
            MutationClass::ResultCorruption | MutationClass::CalleeSaveClobber => {
                matches!(err, E::FinalNotRelated)
            }
            MutationClass::ExternalArgCorruption => {
                matches!(err, E::ExternalNotRelated { .. })
            }
            // A corrupted store is observed at the first boundary where the
            // memories are compared: the next external call if one follows,
            // otherwise the final answer.
            MutationClass::GlobalStoreCorruption => matches!(
                err,
                E::FinalNotRelated | E::ExternalNotRelated { .. }
            ),
            MutationClass::ExternalCallSkip => matches!(
                err,
                E::InteractionMismatch { .. } | E::FinalNotRelated
            ),
            MutationClass::StackFrameLeak => {
                matches!(err, E::FinalNotRelated | E::Wrong { .. })
            }
            MutationClass::RaClobber => matches!(
                err,
                E::Wrong { .. }
                    | E::OutOfFuel { .. }
                    | E::InteractionMismatch { .. }
                    | E::FinalNotRelated
            ),
            MutationClass::ConstantDrift | MutationClass::RtlConstantDrift => matches!(
                err,
                E::FinalNotRelated | E::ExternalNotRelated { .. }
            ),
            // Inverting a branch can derail execution in any observable
            // way; every checker error class is an expected detection.
            MutationClass::ControlFlowInversion => !matches!(err, E::Precondition(_)),
        }
    }
}

impl fmt::Display for MutationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A description of one applied mutation.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The operator that produced it.
    pub class: MutationClass,
    /// Human-readable description of the edit (function, site, payload).
    pub desc: String,
}

/// A mutated compilation unit.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The unit with the mutated Asm (and, for RTL-level classes, the
    /// re-run backend).
    pub unit: CompiledUnit,
    /// What was changed.
    pub mutation: Mutation,
}

/// Positions of instructions in `code` matching `pred`.
fn sites(code: &[AsmInst], pred: impl Fn(&AsmInst) -> bool) -> Vec<usize> {
    code.iter()
        .enumerate()
        .filter(|(_, i)| pred(i))
        .map(|(p, _)| p)
        .collect()
}

/// Apply one seeded mutation of `class` to `fname` in a clone of `unit`.
///
/// Returns `None` when the class has no applicable site in the function
/// (e.g. no external call to skip).
pub fn mutate(
    unit: &CompiledUnit,
    fname: &str,
    class: MutationClass,
    rng: &mut SplitMix64,
) -> Option<Mutant> {
    if class == MutationClass::RtlConstantDrift {
        return mutate_rtl(unit, fname, rng);
    }
    let mut unit = unit.clone();
    let externs: Vec<String> = unit.asm.externs.iter().map(|(n, _)| n.clone()).collect();
    let f = unit.asm.functions.iter_mut().find(|f| f.name == fname)?;
    let code = &mut f.code;
    let desc: String = match class {
        MutationClass::ResultCorruption => {
            let rets = sites(code, |i| matches!(i, AsmInst::Ret));
            let at = *rng.pick(&rets)?;
            let k = rng.range_i32(1, 100);
            code.insert(at, AsmInst::BinopImm(MBinop::Add32, Mreg(0), Mreg(0), Val::Int(k)));
            format!("{fname}: r0 += {k} before Ret@{at}")
        }
        MutationClass::CalleeSaveClobber => {
            let rets = sites(code, |i| matches!(i, AsmInst::Ret));
            let at = *rng.pick(&rets)?;
            let r = rng.range_i32(8, 13) as u8;
            let v = rng.next_u32() as i64;
            code.insert(at, AsmInst::MovImm64(Mreg(r), v));
            format!("{fname}: clobber callee-save r{r} before Ret@{at}")
        }
        MutationClass::ExternalArgCorruption => {
            let calls = sites(code, |i| {
                matches!(i, AsmInst::Call(g) if externs.iter().any(|e| e == g))
            });
            let at = *rng.pick(&calls)?;
            let k = rng.range_i32(1, 100);
            code.insert(at, AsmInst::BinopImm(MBinop::Add32, Mreg(0), Mreg(0), Val::Int(k)));
            format!("{fname}: arg r0 += {k} before external Call@{at}")
        }
        MutationClass::ExternalCallSkip => {
            let calls = sites(code, |i| {
                matches!(i, AsmInst::Call(g) if externs.iter().any(|e| e == g))
            });
            let at = *rng.pick(&calls)?;
            let k = rng.range_i32(-100, 100);
            code[at] = AsmInst::MovImm32(Mreg(0), k);
            format!("{fname}: external Call@{at} replaced by r0 := {k}")
        }
        MutationClass::StackFrameLeak => {
            let ffs = sites(code, |i| matches!(i, AsmInst::FreeFrame(_)));
            let at = *rng.pick(&ffs)?;
            code[at] = AsmInst::AddSp(0);
            format!("{fname}: FreeFrame@{at} skipped")
        }
        MutationClass::RaClobber => {
            let ras = sites(code, |i| matches!(i, AsmInst::RestoreRa(_)));
            let at = *rng.pick(&ras)?;
            code[at] = AsmInst::AddSp(0);
            format!("{fname}: RestoreRa@{at} skipped")
        }
        MutationClass::GlobalStoreCorruption => {
            let stores = sites(code, |i| matches!(i, AsmInst::Store(_, _, _, _)));
            let at = *rng.pick(&stores)?;
            let AsmInst::Store(_, src, _, _) = code[at] else {
                return None;
            };
            let k = rng.range_i32(1, 100);
            code.insert(at, AsmInst::BinopImm(MBinop::Add32, src, src, Val::Int(k)));
            format!("{fname}: stored value r{} += {k} before Store@{at}", src.0)
        }
        MutationClass::ConstantDrift => {
            let imms = sites(code, |i| {
                matches!(
                    i,
                    AsmInst::BinopImm(_, _, _, Val::Int(_)) | AsmInst::MovImm32(_, _)
                )
            });
            let at = *rng.pick(&imms)?;
            let d = rng.range_i32(1, 5);
            match &mut code[at] {
                AsmInst::BinopImm(_, _, _, Val::Int(n)) | AsmInst::MovImm32(_, n) => {
                    *n = n.wrapping_add(d);
                }
                _ => return None,
            }
            format!("{fname}: immediate@{at} drifted by {d}")
        }
        MutationClass::ControlFlowInversion => {
            let jccs = sites(code, |i| matches!(i, AsmInst::Jcc(_, _)));
            let at = *rng.pick(&jccs)?;
            let AsmInst::Jcc(_, l) = code[at].clone() else {
                return None;
            };
            code[at] = AsmInst::Jmp(l);
            format!("{fname}: Jcc@{at} made unconditional")
        }
        MutationClass::RtlConstantDrift => unreachable!("handled above"),
    };
    Some(Mutant {
        unit,
        mutation: Mutation { class, desc },
    })
}

/// RTL-level mutation: drift one immediate in the optimized RTL of `fname`
/// and re-run the backend tail so the fault propagates through Allocation,
/// Tunneling, Linearize, CleanupLabels, Debugvar, Stacking and Asmgen.
fn mutate_rtl(unit: &CompiledUnit, fname: &str, rng: &mut SplitMix64) -> Option<Mutant> {
    let mut unit = unit.clone();
    let f = unit.rtl_opt.functions.iter_mut().find(|f| f.name == fname)?;
    let imm_nodes: Vec<u32> = f
        .code
        .iter()
        .filter(|(_, i)| {
            matches!(
                i,
                RtlInst::Op(RtlOp::Int(_), _, _)
                    | RtlInst::Op(RtlOp::BinopImm(_, _, Val::Int(_)), _, _)
            )
        })
        .map(|(n, _)| *n)
        .collect();
    let node = *rng.pick(&imm_nodes)?;
    let d = rng.range_i32(1, 5);
    match f.code.get_mut(&node)? {
        RtlInst::Op(RtlOp::Int(n), _, _)
        | RtlInst::Op(RtlOp::BinopImm(_, _, Val::Int(n)), _, _) => {
            *n = n.wrapping_add(d);
        }
        _ => return None,
    }
    // Re-run the backend tail on the mutated RTL.
    let r = renumber(&unit.rtl_opt);
    let ltl = allocation(&r);
    let ltl_tunneled = tunneling(&ltl);
    let linear_raw = linearize(&ltl_tunneled);
    let linear = debugvar(&cleanup_labels(&linear_raw));
    let mach = stacking(&linear).ok()?;
    let (asm, ra_map) = asmgen(&mach);
    unit.rtl_opt = r;
    unit.ltl = ltl;
    unit.ltl_tunneled = ltl_tunneled;
    unit.linear_raw = linear_raw;
    unit.linear = linear;
    unit.mach = mach;
    unit.asm = asm;
    unit.ra_map = ra_map;
    Some(Mutant {
        unit,
        mutation: Mutation {
            class: MutationClass::RtlConstantDrift,
            desc: format!("{fname}: RTL immediate@node{node} drifted by {d}"),
        },
    })
}

/// Every name [`classify`] can produce, in declaration order. The
/// checkpoint reader interns parsed histogram keys through this table to
/// rebuild the `&'static str`-keyed [`ClassStats::errors`] maps.
pub const ERROR_CLASSES: [&str; 13] = [
    "CannotTransportQuery",
    "QueryNotRelated",
    "NotAccepted",
    "Wrong",
    "OutOfFuel",
    "BudgetExceeded",
    "Precondition",
    "InteractionMismatch",
    "ExternalNotRelated",
    "EnvRefused",
    "CannotTransportReply",
    "EnvRepliesNotRelated",
    "FinalNotRelated",
];

/// Map an error-class name back to its interned `&'static str` (used when
/// resuming a campaign from a checkpoint).
#[must_use]
pub fn intern_error_class(name: &str) -> Option<&'static str> {
    ERROR_CLASSES.iter().copied().find(|c| *c == name)
}

/// Stable name of the error class a checker outcome falls into.
pub fn classify(err: &SimCheckError) -> &'static str {
    match err {
        SimCheckError::CannotTransportQuery => "CannotTransportQuery",
        SimCheckError::QueryNotRelated => "QueryNotRelated",
        SimCheckError::NotAccepted { .. } => "NotAccepted",
        SimCheckError::Wrong { .. } => "Wrong",
        SimCheckError::OutOfFuel { .. } => "OutOfFuel",
        SimCheckError::BudgetExceeded { .. } => "BudgetExceeded",
        SimCheckError::Precondition(_) => "Precondition",
        SimCheckError::InteractionMismatch { .. } => "InteractionMismatch",
        SimCheckError::ExternalNotRelated { .. } => "ExternalNotRelated",
        SimCheckError::EnvRefused => "EnvRefused",
        SimCheckError::CannotTransportReply => "CannotTransportReply",
        SimCheckError::EnvRepliesNotRelated { .. } => "EnvRepliesNotRelated",
        SimCheckError::FinalNotRelated => "FinalNotRelated",
    }
}

/// The fixed campaign workload: calls an external, reads and writes a
/// global, loops (so the Asm has a conditional branch), and computes with
/// constants — every mutation class has at least one applicable site.
pub const CAMPAIGN_SRC: &str = "
    extern int inc(int);
    int shared = 11;
    int helper(int x) { return x * 3; }
    int entry(int a) {
        int b; int c; int i; int acc;
        acc = 0;
        i = 0;
        while (i < a) { acc = acc + i; i = i + 1; }
        shared = shared + a;
        b = helper(a + 1);
        c = inc(b + acc);
        return b + c + shared;
    }";

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignCfg {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Mutants generated per class.
    pub per_class: usize,
    /// Fuel per checker side (the only budget axis used — wall-clock
    /// deadlines would break output determinism).
    pub fuel: u64,
    /// Arguments probed per mutant; a mutant is *detected* if the checker
    /// rejects it for at least one probe.
    pub probe_args: Vec<i64>,
    /// Worker-pool width for the probe fan-out. Mutant *generation* stays
    /// serial (it threads one RNG), so the report is byte-identical for
    /// every setting; probes are independent and run on the pool.
    pub jobs: Jobs,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        CampaignCfg {
            seed: 42,
            per_class: 25,
            // Far above what any honest probe run needs (~10^3 steps), far
            // below the harness default: divergent mutants (e.g. inverted
            // branches) are detected as OutOfFuel without burning minutes.
            fuel: FUEL / 50,
            probe_args: vec![0, 3, 7],
            jobs: Jobs::Auto,
        }
    }
}

/// Per-class sensitivity tallies.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// The operator.
    pub class: MutationClass,
    /// Mutants generated (applicable sites found).
    pub generated: usize,
    /// Mutants rejected by the checker on at least one probe.
    pub detected: usize,
    /// Mutants flagged by the static validation layer
    /// ([`crate::validate::validate_unit`]) without running anything.
    pub static_caught: usize,
    /// Mutants caught by *both* the static layer and the dynamic checker.
    pub caught_both: usize,
    /// Of the detected, how many triggered the error class expected for
    /// this clause.
    pub expected_class: usize,
    /// Histogram of first-error classes over the detected mutants.
    pub errors: BTreeMap<&'static str, usize>,
}

impl ClassStats {
    /// Mutants the dynamic checker accepted on every probe (dynamic
    /// escapes).
    pub fn escapes(&self) -> usize {
        self.generated - self.detected
    }

    /// Mutants neither layer caught (fully silent escapes).
    pub fn escapes_both(&self) -> usize {
        // |caught by either| = static + dynamic - both (inclusion-exclusion).
        let either = self.static_caught + self.detected - self.caught_both;
        self.generated.saturating_sub(either)
    }
}

/// The campaign result: one row per mutation class.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration that produced it.
    pub cfg: CampaignCfg,
    /// Per-class tallies, in [`MUTATION_CLASSES`] order.
    pub stats: Vec<ClassStats>,
    /// Deterministic observability counters summed over every mutant check
    /// (static validation + dynamic probes). Each mutant's delta is captured
    /// on the worker thread that ran it and the fold is a commutative `u64`
    /// sum in mutant order, so the bag is byte-identical for every
    /// `cfg.jobs` setting.
    pub counters: crate::obs::Counters,
}

impl CampaignReport {
    /// Total mutants generated.
    pub fn total_generated(&self) -> usize {
        self.stats.iter().map(|s| s.generated).sum()
    }

    /// Total dynamic escapes across all classes.
    pub fn total_escapes(&self) -> usize {
        self.stats.iter().map(|s| s.escapes()).sum()
    }

    /// Mutation classes *statically caught*: every generated mutant of the
    /// class was flagged by the validation layer without running anything.
    pub fn statically_caught_classes(&self) -> usize {
        self.stats
            .iter()
            .filter(|s| s.generated > 0 && s.static_caught == s.generated)
            .count()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault-injection campaign: seed={} per-class={} fuel={} probes={:?}",
            self.cfg.seed, self.cfg.per_class, self.cfg.fuel, self.cfg.probe_args
        )?;
        writeln!(
            f,
            "{:<24} {:>8} {:>8} {:>7} {:>7} {:>9}  error classes",
            "class", "mutants", "detected", "static", "escaped", "expected"
        )?;
        for s in &self.stats {
            let hist = s
                .errors
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(
                f,
                "{:<24} {:>8} {:>8} {:>7} {:>7} {:>9}  {}",
                s.class.name(),
                s.generated,
                s.detected,
                s.static_caught,
                s.escapes(),
                format!("{}/{}", s.expected_class, s.detected),
                hist
            )?;
        }
        write!(
            f,
            "total: {} mutants, {} escapes",
            self.total_generated(),
            self.total_escapes()
        )
    }
}

/// Check one mutant against every probe argument; returns the first
/// rejection, or `None` if the checker accepted all probes (an escape).
fn probe_mutant(
    mutant: &Mutant,
    symtab: &SymbolTable,
    lib: &ExtLib,
    cfg: &CampaignCfg,
) -> Option<SimCheckError> {
    // The tallies only use the error *class*, never the diagnostic step
    // trace — disable the ring buffer so the probe inner loop does not
    // clone interpreter states.
    let budget = RunBudget::with_fuel(cfg.fuel).no_trace();
    for &x in &cfg.probe_args {
        let q = match try_c_query(symtab, &mutant.unit, "entry", vec![Val::Int(x as i32)]) {
            Ok(q) => q,
            Err(e) => return Some(SimCheckError::Precondition(e)),
        };
        if let Err(e) = check_thm38_budgeted(&mutant.unit, symtab, lib, &q, &budget) {
            return Some(e);
        }
    }
    None
}

/// The compiled campaign workload plus everything the checker needs,
/// prepared once and shared by the per-class runs (the campaign's
/// checkpoint/resume granularity is one mutation class).
pub struct CampaignBase {
    baseline: CompiledUnit,
    symtab: SymbolTable,
    lib: ExtLib,
}

impl CampaignBase {
    /// Compile [`CAMPAIGN_SRC`] and sanity-check that the unmutated
    /// program passes both the dynamic checker and static validation —
    /// otherwise every tally downstream is noise.
    ///
    /// # Errors
    /// Reports a compilation or baseline-sanity failure as a string.
    pub fn prepare(cfg: &CampaignCfg) -> Result<CampaignBase, String> {
        let (mut units, symtab) =
            compile_all_jobs(&[CAMPAIGN_SRC], CompilerOptions::default(), cfg.jobs)
                .map_err(|e| format!("campaign workload failed to compile: {e:?}"))?;
        let baseline = units.remove(0);
        let lib = ExtLib::demo(symtab.clone());
        let base_mutant = Mutant {
            unit: baseline.clone(),
            mutation: Mutation {
                class: MutationClass::ResultCorruption,
                desc: "baseline".into(),
            },
        };
        if let Some(e) = probe_mutant(&base_mutant, &symtab, &lib, cfg) {
            return Err(format!("baseline program fails the checker: {e}"));
        }
        let base_diags = crate::validate::validate_unit(&baseline, &symtab);
        if !base_diags.is_empty() {
            return Err(format!(
                "baseline program fails static validation: {}",
                base_diags[0]
            ));
        }
        Ok(CampaignBase {
            baseline,
            symtab,
            lib,
        })
    }
}

/// Run one mutation class (`MUTATION_CLASSES[ci]`) of the campaign: the
/// resumable unit of work. A pure function of `(cfg, ci)` — the class's
/// RNG stream is reconstructed by replaying the master RNG's splits, so
/// running classes 0..k, checkpointing, and resuming at k+1 in a fresh
/// process produces exactly the tallies of the uninterrupted run.
///
/// Three phases, split so the expensive one parallelizes without touching
/// determinism:
///
/// 1. **Generate** (serial): mutation sites and payloads thread one
///    [`SplitMix64`] per class — the mutant stream is a pure function of
///    `cfg.seed` and `ci`.
/// 2. **Check** (parallel): every mutant's static validation + dynamic
///    probes are independent; they fan out over `cfg.jobs` workers
///    ([`par_map`] returns results in input order).
/// 3. **Tally** (serial): fold the ordered results into the class row.
///
/// # Panics
/// Panics when `ci` is out of range for [`MUTATION_CLASSES`].
#[must_use]
pub fn run_campaign_class(
    cfg: &CampaignCfg,
    base: &CampaignBase,
    ci: usize,
) -> (ClassStats, crate::obs::Counters) {
    let class = MUTATION_CLASSES[ci];

    // Phase 1 — generate (serial, seed-deterministic). `split()` draws
    // once from the master per class, so class `ci` owns the (ci+1)-th
    // split stream regardless of which classes ran in this process.
    let mut master = SplitMix64::new(cfg.seed);
    let mut rng = master.split();
    for _ in 0..ci {
        rng = master.split();
    }
    let mut mutants: Vec<Mutant> = Vec::new();
    let mut generated = 0usize;
    let mut attempts = 0usize;
    while generated < cfg.per_class && attempts < cfg.per_class * 4 {
        attempts += 1;
        let Some(mutant) = mutate(&base.baseline, "entry", class, &mut rng) else {
            continue;
        };
        generated += 1;
        mutants.push(mutant);
    }

    // Phase 2 — check (parallel; results come back in input order). Each
    // mutant's observability delta is captured entirely on the worker thread
    // that checks it, so the per-mutant bags are schedule-invariant.
    let outcomes: Vec<(bool, Option<SimCheckError>, crate::obs::Counters)> =
        par_map(cfg.jobs, &mutants, |_, m| {
            let snap = crate::obs::ObsSnapshot::take();
            let statically = !crate::validate::validate_unit(&m.unit, &base.symtab).is_empty();
            let dynamic = probe_mutant(m, &base.symtab, &base.lib, cfg);
            (statically, dynamic, snap.delta())
        });

    // Phase 3 — tally (serial fold over the ordered outcomes).
    let mut st = ClassStats {
        class,
        generated,
        detected: 0,
        static_caught: 0,
        caught_both: 0,
        expected_class: 0,
        errors: BTreeMap::new(),
    };
    let mut counters = crate::obs::Counters::default();
    for (mutant, (statically, dynamic, delta)) in mutants.iter().zip(&outcomes) {
        if *statically {
            st.static_caught += 1;
        }
        if let Some(err) = dynamic {
            st.detected += 1;
            if *statically {
                st.caught_both += 1;
            }
            *st.errors.entry(classify(err)).or_insert(0) += 1;
            if mutant.mutation.class.matches_expected(err) {
                st.expected_class += 1;
            }
        }
        counters.add(delta);
    }
    (st, counters)
}

/// Run a full campaign: [`CampaignBase::prepare`] once, then
/// [`run_campaign_class`] for every class in [`MUTATION_CLASSES`] order.
/// The report is byte-identical for every `jobs` setting, and — because
/// each class is a pure function of `(cfg, ci)` — identical whether the
/// classes ran in one process or across a checkpoint/resume boundary.
///
/// # Errors
/// Reports a compilation failure of the campaign workload as a string.
pub fn run_campaign(cfg: &CampaignCfg) -> Result<CampaignReport, String> {
    let base = CampaignBase::prepare(cfg)?;
    let mut stats: Vec<ClassStats> = Vec::with_capacity(MUTATION_CLASSES.len());
    let mut counters = crate::obs::Counters::default();
    for ci in 0..MUTATION_CLASSES.len() {
        let (st, c) = run_campaign_class(cfg, &base, ci);
        stats.push(st);
        counters.add(&c);
    }
    Ok(CampaignReport {
        cfg: cfg.clone(),
        stats,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_all;

    #[test]
    fn every_class_has_a_site_in_the_campaign_program() {
        let (mut units, _symtab) =
            compile_all(&[CAMPAIGN_SRC], CompilerOptions::default()).expect("compiles");
        let baseline = units.remove(0);
        for &class in &MUTATION_CLASSES {
            let mut rng = SplitMix64::new(7);
            assert!(
                mutate(&baseline, "entry", class, &mut rng).is_some(),
                "no applicable site for {class}"
            );
        }
    }

    #[test]
    fn mutation_is_seed_deterministic() {
        let (mut units, _symtab) =
            compile_all(&[CAMPAIGN_SRC], CompilerOptions::default()).expect("compiles");
        let baseline = units.remove(0);
        for &class in &MUTATION_CLASSES {
            let m1 = mutate(&baseline, "entry", class, &mut SplitMix64::new(99)).unwrap();
            let m2 = mutate(&baseline, "entry", class, &mut SplitMix64::new(99)).unwrap();
            assert_eq!(m1.mutation.desc, m2.mutation.desc);
            assert_eq!(m1.unit.asm, m2.unit.asm, "{class}: asm differs");
        }
    }

    #[test]
    fn static_layer_catches_asm_level_classes() {
        let cfg = CampaignCfg {
            seed: 42,
            per_class: 2,
            fuel: 2_000_000,
            probe_args: vec![0, 3],
            jobs: Jobs::Auto,
        };
        let report = run_campaign(&cfg).expect("campaign runs");
        assert_eq!(
            report.statically_caught_classes(),
            report.stats.len(),
            "every mutation class must be caught statically"
        );
        for s in &report.stats {
            // RtlConstantDrift used to be the principled static escape: a
            // consistent backend re-run faithfully implements the (wrong)
            // RTL, so no backend validator can flag it. The abstract-
            // interpretation validators close it by checking the final RTL
            // against the per-unit `rtl_ndce_in` snapshot, which the drift
            // does not (and cannot) patch.
            assert_eq!(
                s.static_caught, s.generated,
                "{}: tampering must be caught statically",
                s.class
            );
        }
    }

    #[test]
    fn small_campaign_detects_all_classes() {
        let cfg = CampaignCfg {
            seed: 42,
            per_class: 3,
            fuel: 2_000_000,
            probe_args: vec![0, 3, 7],
            jobs: Jobs::Auto,
        };
        let report = run_campaign(&cfg).expect("campaign runs");
        assert_eq!(report.stats.len(), MUTATION_CLASSES.len());
        for s in &report.stats {
            assert!(s.generated > 0, "{}: no mutants generated", s.class);
            assert_eq!(
                s.escapes(),
                0,
                "{}: {} silent escapes",
                s.class,
                s.escapes()
            );
            assert_eq!(
                s.expected_class, s.detected,
                "{}: unexpected error classes {:?}",
                s.class, s.errors
            );
        }
    }
}
