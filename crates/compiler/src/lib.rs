//! # The CompCertO-rs compiler driver and correctness harnesses
//!
//! * [`driver`] — the Table 3 pass pipeline ([`driver::compile_all`]);
//! * [`closed`] — closing open components into whole-program processes
//!   `1 ↠ W` (the (Sep)CompCert model of paper Table 4, §3.1);
//! * [`registry`] — the pass registry: per-pass simulation conventions as
//!   symbolic expressions (feeding the algebra derivation, paper Figs. 10/11)
//!   and source-module mapping (feeding the SLOC tables);
//! * [`extlib`] — a model external library implemented at every language
//!   interface (the well-behaved environment of Thm 3.8);
//! * [`harness`] — the Thm 3.5 / Thm 3.8 / Cor 3.9 differential checks;
//! * [`workload`] — a seeded random generator of well-defined Clight-mini
//!   programs and queries for the experiment sweeps;
//! * [`sloc`] — significant-lines-of-code accounting for Tables 3 and 5.

pub mod analyze;
pub mod closed;
pub mod difftest;
pub mod driver;
pub mod envfault;
pub mod json;
pub mod extlib;
pub mod faultinj;
pub mod harness;
pub mod obs;
pub mod par;
pub mod registry;
pub mod resilience;
pub mod sched;
pub mod serve;
pub mod sloc;
pub mod validate;
pub mod workload;

pub use analyze::{analysis_json, ANALYSIS_SCHEMA};
pub use closed::{run_closed, Closed, ClosedState};
pub use difftest::{
    check_program, check_query, faultinj_escape_rates, run_seed, run_seed_obs, run_stage,
    DifftestCfg, EscapeRow, FindingKind, Obs, ObsVal, QueryVerdict, Reproducer, SeedObs,
    SeedOutcome, SeedReport, StageOutcome, StagePrograms, STAGES,
};
pub use driver::{
    compile_all, compile_all_jobs, compile_unit, front_end, CompileError, CompiledUnit,
    CompilerOptions,
};
pub use obs::{
    intern_counter_key, ir_counters, normalize_metrics_json, Counters, MetricsReport, ObsSnapshot,
    UnitMetrics, DELTA_COUNTER_KEYS, OBS_SCHEMA,
};
pub use par::{available_parallelism, par_map, pool_stats, try_par_map, Jobs, PoolStats};
pub use extlib::ExtLib;
pub use faultinj::{
    intern_error_class, mutate, run_campaign, run_campaign_class, CampaignBase, CampaignCfg,
    CampaignReport, ClassStats, Mutant, Mutation, MutationClass, ERROR_CLASSES, MUTATION_CLASSES,
};
pub use harness::{
    c_query, check_cor39, check_cor39_budgeted, check_thm35, check_thm35_budgeted, check_thm38,
    check_thm38_budgeted, default_budget, try_c_query,
};
pub use registry::{pass_registry, PassInfo};
pub use resilience::{
    compile_all_resilient, contain, DegradeReason, ResilientBatch, UnitOutcome,
};
pub use sched::{
    check_query_sched, intern_sched_counter_key, run_seed_sched, run_seed_sched_obs, SchedCfg,
    SchedObs, SchedSeedOutcome, SchedSeedReport, SchedStageOutcome, SchedVerdict,
    SCHED_AUX_SALT, SCHED_COUNTER_KEYS,
};
pub use serve::{
    run_stdio, run_unix, ServeConfig, Server, CACHE_SCHEMA, MAX_FRAME_BYTES, SERVE_SCHEMA,
};
pub use validate::validate_unit;
pub use workload::{WorkloadCfg, WorkloadGen};
