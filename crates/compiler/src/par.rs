//! A deterministic scoped-thread worker pool (the throughput layer's
//! execution engine).
//!
//! The CompCertO pipeline makes translation *units* independent once the
//! shared symbol table is built (paper §3.4, App. A.3): every per-unit pass
//! chain, every fault-injection probe and every validation compile is a pure
//! function of its inputs. That independence is what legitimizes fanning the
//! work out over threads **without touching the semantics** — and what makes
//! it easy to keep the output *byte-identical* to the serial run:
//!
//! * work items are distributed by an atomic index counter (no work list
//!   locking, no per-item channel traffic);
//! * each worker tags every result with the item's original index;
//! * the pool reassembles results **in index order** before returning.
//!
//! The only nondeterminism in a parallel run is *which worker* computed a
//! result, and that never escapes this module. `jobs = 1` (or a single-item
//! input) bypasses the pool entirely and runs the exact serial loop.
//!
//! # Self-healing (resilience layer, DESIGN.md §11)
//!
//! The pool contains worker panics instead of letting them unwind out of
//! the dispatch loop. Every item runs under
//! [`crate::resilience::contain_unwind`]; an item whose closure panics is
//! retried **exactly once**, immediately, on the same (surviving) worker.
//! A transient panic — an injected environment fault, a poisoned cache line
//! of infrastructure state — therefore heals invisibly: the output is
//! byte-identical to the panic-free run. An item that panics twice is
//! treated as deterministically poisoned; the pool finishes every other
//! item, then re-raises the panic of the *lowest-indexed* twice-panicking
//! item (exactly the one the serial loop would have died on). Containment
//! also means a panic can never strand the atomic dispatch index mid-batch:
//! workers always run their loop to completion, so every `join` returns and
//! the pool cannot hang (regression-tested below).
//!
//! Everything here is `std`-only (`std::thread::scope`); the workspace stays
//! offline and dependency-free.

use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::resilience::contain_unwind;

// ---------------------------------------------------------------------------
// Pool occupancy stats (observability layer, DESIGN.md §10)
// ---------------------------------------------------------------------------

static POOL_POOLS: AtomicU64 = AtomicU64::new(0);
static POOL_ITEMS: AtomicU64 = AtomicU64::new(0);
static POOL_WORKERS_MAX: AtomicU64 = AtomicU64::new(0);
static POOL_BUSIEST: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide pool statistics.
///
/// These are *scheduling* observations — `busiest_worker_items` depends on
/// which worker won the atomic-index race — so the metrics reports place
/// them in the volatile `pool` section that
/// [`crate::obs::normalize_metrics_json`] strips before any byte
/// comparison. They are reported for humans, never gated.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Pooled map invocations ([`par_map`] + [`try_par_map`]).
    pub pools: u64,
    /// Total items dispatched across all pools.
    pub items: u64,
    /// Largest worker count any pool resolved to.
    pub workers_max: u64,
    /// Most items any single worker processed in one pool (occupancy
    /// skew; equals the pool's item count in a serial run).
    pub busiest_worker_items: u64,
}

/// Read the cumulative process-wide [`PoolStats`].
#[must_use]
pub fn pool_stats() -> PoolStats {
    PoolStats {
        pools: POOL_POOLS.load(Ordering::Relaxed),
        items: POOL_ITEMS.load(Ordering::Relaxed),
        workers_max: POOL_WORKERS_MAX.load(Ordering::Relaxed),
        busiest_worker_items: POOL_BUSIEST.load(Ordering::Relaxed),
    }
}

fn note_pool(workers: usize, items: usize) {
    POOL_POOLS.fetch_add(1, Ordering::Relaxed);
    POOL_ITEMS.fetch_add(items as u64, Ordering::Relaxed);
    POOL_WORKERS_MAX.fetch_max(workers as u64, Ordering::Relaxed);
}

fn note_worker_items(n: usize) {
    POOL_BUSIEST.fetch_max(n as u64, Ordering::Relaxed);
}

/// Degree of parallelism for a pooled operation.
///
/// `Auto` resolves to [`available_parallelism`] at the call site; `N(1)`
/// preserves today's exact serial behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jobs {
    /// Use every hardware thread the host reports.
    Auto,
    /// Use exactly this many workers (`0` is treated as `Auto`).
    N(usize),
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::Auto
    }
}

impl Jobs {
    /// Resolve to a concrete worker count (≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Jobs::Auto | Jobs::N(0) => available_parallelism(),
            Jobs::N(n) => n,
        }
    }

    /// Parse a `--jobs` command-line value (`0` or `auto` = [`Jobs::Auto`]).
    ///
    /// # Errors
    /// Reports a value that is neither `auto` nor a natural number.
    pub fn parse(s: &str) -> Result<Jobs, String> {
        if s == "auto" {
            return Ok(Jobs::Auto);
        }
        s.parse::<usize>()
            .map(|n| if n == 0 { Jobs::Auto } else { Jobs::N(n) })
            .map_err(|e| format!("--jobs: {e}"))
    }
}

/// The number of hardware threads available to this process (≥ 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A contained panic: the payload (for faithful re-raising) plus its
/// rendered message (for diagnostics).
type PanicRecord = (Box<dyn Any + Send>, String);

/// Run item `i` through the worker-panic injection point and `run`,
/// containing any panic and retrying **exactly once** on the same
/// (surviving) worker. `Err` carries the second, deterministic panic.
fn run_healed<R>(i: usize, run: impl Fn() -> R) -> Result<R, PanicRecord> {
    match contain_unwind(|| {
        crate::envfault::maybe_worker_panic(i);
        run()
    }) {
        Ok(r) => Ok(r),
        // First panic: contained; the item is requeued once, immediately.
        // (The injection point is one-shot, so an injected fault cannot
        // re-fire here; a genuine deterministic panic will.)
        Err(_first) => contain_unwind(run),
    }
}

/// Re-raise the lowest-indexed twice-panicking item — the panic the serial
/// loop would have surfaced — after printing the contained message (the
/// quiet panic hook suppressed it when it first fired).
fn reraise(i: usize, record: PanicRecord) -> ! {
    let (payload, msg) = record;
    eprintln!("par: item {i} panicked twice (not healable): {msg}");
    std::panic::resume_unwind(payload)
}

/// Map `f` over `items` on a pool of `jobs` workers, returning the results
/// **in input order** (byte-identical to the serial map; see the module
/// docs for the determinism argument).
///
/// `f` receives the item's index alongside the item, so callers can key
/// per-item context (seeds, labels) off the input position rather than off
/// scheduling order.
pub fn par_map<T, R, F>(jobs: Jobs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.resolve().min(items.len().max(1));
    note_pool(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        // Exact serial behavior: same loop, same order, no threads — with
        // the same single-retry healing as the pooled path.
        note_worker_items(items.len());
        let mut out = Vec::with_capacity(items.len());
        for (i, t) in items.iter().enumerate() {
            match run_healed(i, || f(i, t)) {
                Ok(r) => out.push(r),
                Err(record) => reraise(i, record),
            }
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let poisoned: Mutex<Vec<(usize, PanicRecord)>> = Mutex::new(Vec::new());
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let poisoned = &poisoned;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match run_healed(i, || f(i, &items[i])) {
                        Ok(r) => local.push((i, r)),
                        // A twice-panicking item is recorded, never
                        // unwound: the dispatch loop always completes, so
                        // no join can hang on a stranded index.
                        Err(record) => {
                            if let Ok(mut p) = poisoned.lock() {
                                p.push((i, record));
                            }
                        }
                    }
                }
                note_worker_items(local.len());
                local
            }));
        }
        for h in handles {
            // Workers contain every item panic, so `join` cannot fail; a
            // poisoned join (unreachable) simply contributes no results.
            if let Ok(local) = h.join() {
                tagged.extend(local);
            }
        }
    });
    let poisoned = poisoned
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Selection by index, not arrival: the panic the serial loop would
    // have surfaced first wins, regardless of worker scheduling.
    if let Some((i, record)) = poisoned.into_iter().min_by_key(|(i, _)| *i) {
        reraise(i, record);
    }
    // Reassemble in input order: scheduling order never escapes.
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] for fallible item functions, with serial error semantics:
/// the returned error is the one the *serial* loop would have hit first
/// (the failing item with the smallest index), regardless of which worker
/// saw its error first or how items were batched across workers.
///
/// Two failures in the same dispatch batch therefore race only on *who
/// records first*, never on *which error is returned*: every worker
/// publishes the lowest failing index it has seen, items above the current
/// lowest failure are skipped (the serial loop would never have reached
/// them), and the final selection takes the minimum index across all
/// workers. This also means a panic in an item *after* the first failing
/// index cannot mask the error the serial loop would have reported —
/// previously the whole input was mapped eagerly and such a panic won.
///
/// # Errors
/// The error of the lowest-indexed failing item.
pub fn try_par_map<T, R, E, F>(jobs: Jobs, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = jobs.resolve().min(items.len().max(1));
    note_pool(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        // Exact serial behavior: stop at the first error — with the same
        // single-retry healing as the pooled path.
        note_worker_items(items.len());
        let mut out = Vec::with_capacity(items.len());
        for (i, t) in items.iter().enumerate() {
            match run_healed(i, || f(i, t)) {
                Ok(r) => out.push(r?),
                Err(record) => reraise(i, record),
            }
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    // Lowest failing index seen so far, across all workers.
    let first_err = AtomicUsize::new(usize::MAX);
    let poisoned: Mutex<Vec<(usize, PanicRecord)>> = Mutex::new(Vec::new());
    let mut oks: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let mut errs: Vec<(usize, E)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let first_err = &first_err;
            let poisoned = &poisoned;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut ok: Vec<(usize, R)> = Vec::new();
                let mut err: Vec<(usize, E)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // Items past the lowest known failure cannot change the
                    // result (the serial loop would already have returned);
                    // skip them. Items *below* it must still run — one of
                    // them may fail with an even lower index.
                    if i > first_err.load(Ordering::Relaxed) {
                        continue;
                    }
                    match run_healed(i, || f(i, &items[i])) {
                        Ok(Ok(r)) => ok.push((i, r)),
                        Ok(Err(e)) => {
                            first_err.fetch_min(i, Ordering::Relaxed);
                            err.push((i, e));
                        }
                        // A twice-panicking item is recorded, never
                        // unwound: the dispatch loop always completes, so
                        // no join can hang on a stranded index. (A healed
                        // single panic records nothing — and does not touch
                        // `first_err`, since the item succeeded.)
                        Err(record) => {
                            if let Ok(mut p) = poisoned.lock() {
                                p.push((i, record));
                            }
                        }
                    }
                }
                note_worker_items(ok.len() + err.len());
                (ok, err)
            }));
        }
        for h in handles {
            // Workers contain every item panic, so `join` cannot fail.
            if let Ok((ok, err)) = h.join() {
                oks.extend(ok);
                errs.extend(err);
            }
        }
    });
    let poisoned = poisoned
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Selection is by index, not by arrival, for errors *and* panics: the
    // serial loop surfaces whichever failing index is lowest, so the pool
    // must too — a panic after the first failing error index never wins,
    // and vice versa.
    let min_panic = poisoned.into_iter().min_by_key(|(i, _)| *i);
    let min_err = errs.into_iter().min_by_key(|(i, _)| *i);
    match (min_panic, min_err) {
        (Some((pi, record)), Some((ei, _))) if pi < ei => reraise(pi, record),
        (Some((pi, record)), None) => reraise(pi, record),
        (_, Some((_, e))) => Err(e),
        (None, None) => {
            debug_assert_eq!(oks.len(), items.len(), "no error implies full coverage");
            oks.sort_by_key(|(i, _)| *i);
            Ok(oks.into_iter().map(|(_, r)| r).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [Jobs::N(1), Jobs::N(2), Jobs::N(7), Jobs::Auto] {
            let out = par_map(jobs, &items, |i, x| {
                assert_eq!(i as u64, *x);
                x * 3 + 1
            });
            let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            assert_eq!(out, serial, "jobs={jobs:?}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map(Jobs::Auto, &none, |_, x| *x).is_empty());
        assert_eq!(par_map(Jobs::N(8), &[5u32], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn error_is_first_by_index_not_by_schedule() {
        let items: Vec<u32> = (0..100).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let r: Result<Vec<u32>, u32> = try_par_map(jobs, &items, |_, x| {
                if *x % 7 == 3 {
                    Err(*x)
                } else {
                    Ok(*x)
                }
            });
            // Serial loop hits item 3 first (3 % 7 == 3).
            assert_eq!(r.unwrap_err(), 3, "jobs={jobs:?}");
        }
    }

    /// Two failures in the *same dispatch batch*: with `jobs = 4` the first
    /// four items are claimed simultaneously, and whichever worker errors
    /// first must not decide the result. Run many rounds to give the race
    /// every chance to pick the wrong one, across jobs 1/4/16.
    #[test]
    fn adjacent_failures_in_one_batch_pick_lowest_index() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            for round in 0..50 {
                let r: Result<Vec<u32>, u32> = try_par_map(jobs, &items, |i, x| {
                    // Items 1 and 2 both fail; item 2 does so *instantly*
                    // while item 1 spins first, so arrival order is
                    // routinely 2-before-1 on a real scheduler.
                    match i {
                        1 => {
                            for _ in 0..(round * 200) {
                                std::hint::black_box(());
                            }
                            Err(*x)
                        }
                        2 => Err(*x),
                        _ => Ok(*x),
                    }
                });
                assert_eq!(r.unwrap_err(), 1, "jobs={jobs:?} round={round}");
            }
        }
    }

    /// The all-`Ok` path returns the full result vector in input order for
    /// every worker count (same contract as `par_map`).
    #[test]
    fn try_par_map_ok_path_matches_serial() {
        let items: Vec<u64> = (0..101).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 2 + 1).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let r: Result<Vec<u64>, ()> = try_par_map(jobs, &items, |_, x| Ok(x * 2 + 1));
            assert_eq!(r.unwrap(), serial, "jobs={jobs:?}");
        }
    }

    /// Once a low-index failure is known, items past it are skipped — the
    /// serial loop would never have run them, and their errors must never
    /// win. Item 0 fails immediately; a high item records whether it ran
    /// after the failure was published.
    #[test]
    fn errors_after_the_first_failing_index_never_win() {
        let items: Vec<u32> = (0..64).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let r: Result<Vec<u32>, u32> = try_par_map(jobs, &items, |i, x| {
                if i == 0 || i >= 32 {
                    Err(*x)
                } else {
                    Ok(*x)
                }
            });
            assert_eq!(r.unwrap_err(), 0, "jobs={jobs:?}");
        }
    }

    /// A transient panic (fires exactly once, then the retry succeeds)
    /// must heal invisibly: the output is byte-identical to the panic-free
    /// run, across jobs 1/4/16.
    #[test]
    fn transient_panic_heals_with_identical_output() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 5 + 2).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let fired = AtomicBool::new(false);
            let out = par_map(jobs, &items, |i, x| {
                if i == 13 && !fired.swap(true, Ordering::SeqCst) {
                    panic!("transient infrastructure fault");
                }
                x * 5 + 2
            });
            assert_eq!(out, serial, "jobs={jobs:?}");
            assert!(fired.load(Ordering::SeqCst));
        }
    }

    /// A deterministic (twice-panicking) item re-raises its panic after the
    /// rest of the batch completes — and the *lowest* poisoned index wins,
    /// whatever the schedule.
    #[test]
    fn deterministic_panic_propagates_lowest_index() {
        let items: Vec<u64> = (0..48).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let r = crate::resilience::contain(|| {
                par_map(jobs, &items, |i, x| {
                    if i == 7 || i == 29 {
                        panic!("poisoned item {i}");
                    }
                    x + 1
                })
            });
            assert_eq!(r, Err("poisoned item 7".to_string()), "jobs={jobs:?}");
        }
    }

    /// try_par_map: a deterministic panic below the first failing error
    /// index wins; a panic above it loses to the error — serial semantics
    /// either way, across jobs 1/4/16.
    #[test]
    fn try_par_map_ranks_panics_and_errors_by_index() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            // Panic at 2, error at 5: the panic is first in serial order.
            let r = crate::resilience::contain(|| {
                try_par_map(jobs, &items, |i, x| match i {
                    2 => panic!("poisoned item 2"),
                    5 => Err(*x),
                    _ => Ok(*x),
                })
            });
            assert_eq!(r, Err("poisoned item 2".to_string()), "jobs={jobs:?}");
            // Error at 3, panic at 20: the error is first in serial order.
            let r = crate::resilience::contain(|| {
                try_par_map(jobs, &items, |i, x| match i {
                    3 => Err(*x),
                    20 => panic!("poisoned item 20"),
                    _ => Ok(*x),
                })
            });
            assert_eq!(r, Ok(Err(3)), "jobs={jobs:?}");
        }
    }

    /// Regression (ISSUE 6 satellite): a panicking worker must not strand
    /// the dispatch index or hang the remaining joins. Many items, several
    /// deterministic panics, a full worker complement — the call must
    /// return (with the lowest panic) rather than deadlock.
    #[test]
    fn panicking_workers_cannot_hang_the_pool() {
        let items: Vec<u32> = (0..256).collect();
        let r = crate::resilience::contain(|| {
            try_par_map(Jobs::N(16), &items, |i, x| {
                if i % 61 == 17 {
                    panic!("poisoned item {i}");
                }
                Ok::<u32, u32>(*x)
            })
        });
        assert_eq!(r, Err("poisoned item 17".to_string()));
    }

    /// A transient panic in try_par_map heals and the error semantics are
    /// untouched: the healed item contributes its value, the batch agrees
    /// with the serial result.
    #[test]
    fn try_par_map_transient_panic_heals() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            let fired = AtomicBool::new(false);
            let r: Result<Vec<u64>, ()> = try_par_map(jobs, &items, |i, x| {
                if i == 9 && !fired.swap(true, Ordering::SeqCst) {
                    panic!("transient fault");
                }
                Ok(x * 3)
            });
            assert_eq!(r, Ok(serial.clone()), "jobs={jobs:?}");
        }
    }

    /// The envfault worker-panic injection is contained, the item requeued
    /// once, and the output identical to the unfaulted run.
    #[test]
    fn injected_worker_panic_is_healed() {
        let items: Vec<u64> = (0..32).collect();
        let expected: Vec<u64> = items.iter().map(|x| x ^ 0xAB).collect();
        for jobs in [Jobs::N(1), Jobs::N(4), Jobs::N(16)] {
            crate::envfault::arm_worker_panic(11);
            let out = par_map(jobs, &items, |_, x| x ^ 0xAB);
            assert_eq!(out, expected, "jobs={jobs:?}");
            assert!(
                !crate::envfault::worker_panic_pending(),
                "the armed fault must have fired (jobs={jobs:?})"
            );
        }
    }

    #[test]
    fn jobs_parse_and_resolve() {
        assert_eq!(Jobs::parse("auto"), Ok(Jobs::Auto));
        assert_eq!(Jobs::parse("0"), Ok(Jobs::Auto));
        assert_eq!(Jobs::parse("3"), Ok(Jobs::N(3)));
        assert!(Jobs::parse("three").is_err());
        assert!(Jobs::Auto.resolve() >= 1);
        assert_eq!(Jobs::N(5).resolve(), 5);
    }
}
