//! N×M schedule-exploration differential testing: the threaded oracle.
//!
//! [`crate::difftest`] compares what every pipeline stage observes for one
//! *sequential* query. This module generalizes the oracle to the threaded
//! open semantics of [`compcerto_core::threaded`]: per seed, `t` instances
//! of the generated program's entry function run over one shared global
//! memory, interleaving at external calls (including the generator's
//! `yield` sites) under an explicit deterministic [`Schedule`] — and all
//! seven stage interpreters must observe the *same* behaviour per schedule:
//!
//! * the final answer of thread 0 (normalized to an [`ObsVal`]);
//! * the interleaved outgoing-question trace (callee name and returned
//!   value, recorded inside the environment closure at each level's own
//!   interface — external-call order *is* the interleaving);
//! * the schedule trace (`sched:k` / `exit:k=…` annotations emitted by
//!   [`ThreadedLts`], with exit values rendered stage-invariantly);
//! * the final contents of every mutable global in the shared memory.
//!
//! Interleaving happens only at the open-semantics seams (external calls
//! and completions), so every slice is atomic and locally sequential; the
//! schedule's decision sequence depends only on how the runnable set
//! evolves, which compiled code preserves stage-for-stage. That is what
//! makes a bitwise cross-stage comparison of threaded runs meaningful at
//! all (see the `core::threaded` module docs).
//!
//! Everything here is a pure function of `(seed, SchedCfg)` — the
//! `sched_campaign` bench fans seeds out across jobs and still reports
//! byte-identical verdicts and FNV checksums.

use std::fmt;

use backend::asmgen::RaMap;
use backend::{AsmProgram, AsmSem, LinProgram, LinearSem, MachProgram, MachSem};
use clight::ClightSem;
use compcerto_core::cc::{Ca, Cl};
use compcerto_core::conv::SimConv;
use compcerto_core::iface::{abi, ARegs, CQuery, CReply, LQuery, LReply, MQuery, MReply, SharedMem};
use compcerto_core::lts::{run_budgeted, Event, RunBudget, RunOutcome};
use compcerto_core::regs::Loc;
use compcerto_core::symtab::SymbolTable;
use compcerto_core::threaded::{schedules, Schedule, ThreadedLts};
use compcerto_gen::generate::gen_queries;
use compcerto_gen::{generate, GProgram, GenCfg};
use mem::Val;
use rtl::{RtlProgram, RtlSem};

use crate::difftest::{
    m_query, name_of, obs_val, read_globals, FindingKind, Obs, ObsVal, StagePrograms, STAGES,
};
use crate::driver::{compile_all, CompilerOptions};
use crate::extlib::ExtLib;
use crate::obs::Counters;

/// Domain-separation salt for deriving the auxiliary threads' argument sets
/// from a campaign seed (keeps them distinct from the main query stream of
/// [`gen_queries`]).
pub const SCHED_AUX_SALT: u64 = 0x5448_5245_4144_5321; // "THREADS!"

/// Counter keys the schedule oracle emits on top of the standard
/// [`crate::obs::DELTA_COUNTER_KEYS`] — the `sched_campaign` checkpoint
/// reader interns through both tables.
pub const SCHED_COUNTER_KEYS: [&str; 4] = [
    "lts.sched.agreed",
    "lts.sched.schedules",
    "lts.sched.skipped",
    "lts.sched.threads",
];

/// Map a counter name back to its interned `&'static str` key, covering
/// both the schedule-oracle keys and the standard delta keys.
#[must_use]
pub fn intern_sched_counter_key(name: &str) -> Option<&'static str> {
    SCHED_COUNTER_KEYS
        .iter()
        .copied()
        .find(|k| *k == name)
        .or_else(|| crate::obs::intern_counter_key(name))
}

/// Threaded-oracle configuration.
#[derive(Debug, Clone)]
pub struct SchedCfg {
    /// Shape of the generated programs (yield sites enabled).
    pub gen: GenCfg,
    /// Total thread count per run: thread 0 answers the main query, threads
    /// `1..` answer auxiliary queries against the same entry function.
    pub threads: usize,
    /// Schedules explored per seed (schedule 0 is round-robin, the rest are
    /// seeded draws; see [`compcerto_core::threaded::schedules`]).
    pub schedules: usize,
    /// Fuel per stage execution (the only budget axis, as in difftest).
    pub fuel: u64,
}

impl Default for SchedCfg {
    fn default() -> Self {
        SchedCfg {
            gen: GenCfg {
                yield_calls: true,
                ..GenCfg::default()
            },
            threads: 3,
            schedules: 8,
            fuel: 2_000_000,
        }
    }
}

impl SchedCfg {
    /// A smaller profile for unit tests and CI smoke runs.
    pub fn quick() -> SchedCfg {
        SchedCfg {
            gen: GenCfg {
                yield_calls: true,
                ..GenCfg::quick()
            },
            threads: 2,
            schedules: 4,
            fuel: 1_000_000,
        }
    }
}

/// Everything one stage observed while answering one threaded query under
/// one schedule: the sequential observation ([`Obs`]) plus the schedule
/// trace (the `sched:`/`exit:` annotation stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedObs {
    /// Result, interleaved external-call record, and final mutable globals.
    pub obs: Obs,
    /// The annotation stream of the threaded run — dispatch decisions and
    /// thread exits with stage-invariantly rendered exit values.
    pub trace: Vec<String>,
}

impl fmt::Display for SchedObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} trace=[", self.obs)?;
        for (i, t) in self.trace.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Outcome of running one stage on one threaded query (mirrors
/// [`crate::difftest::StageOutcome`]).
#[derive(Debug, Clone)]
pub enum SchedStageOutcome {
    /// The stage completed; here is what it observed.
    Ok(SchedObs),
    /// A budget quota was exhausted — not a verdict, the schedule is
    /// skipped.
    Budget(String),
    /// The interpreter got stuck (a finding).
    Stuck(String),
    /// The environment refused an outgoing question (a finding).
    EnvRefused(String),
    /// The query could not be transported to this stage's interface.
    Transport(String),
}

/// Verdict of the threaded oracle on one `(query set, schedule)` pair.
#[derive(Debug, Clone)]
pub enum SchedVerdict {
    /// Every stage completed and observed the same threaded behaviour.
    Agree(Box<SchedObs>),
    /// A stage was budget-limited; the schedule is skipped without a
    /// verdict.
    Skipped {
        /// The budget-limited stage.
        stage: &'static str,
    },
    /// A finding at some stage.
    Finding {
        /// The failure class.
        kind: FindingKind,
        /// Human-readable context.
        detail: String,
    },
}

impl SchedVerdict {
    /// A stable one-line rendering of the verdict under `schedule` — the
    /// unit the campaign's FNV checksum is computed over.
    #[must_use]
    pub fn line(&self, schedule: Schedule) -> String {
        match self {
            SchedVerdict::Agree(obs) => format!("{schedule} agree {obs}"),
            SchedVerdict::Skipped { stage } => format!("{schedule} skipped@{stage}"),
            SchedVerdict::Finding { kind, detail } => {
                format!("{schedule} finding {kind}: {detail}")
            }
        }
    }
}

/// The annotation stream of a completed threaded run.
fn annots(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Annot(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Fold a threaded [`RunOutcome`] into a [`SchedStageOutcome`], normalizing
/// the final answer through `result_of`.
fn finish<IA: SharedMem>(
    outcome: RunOutcome<IA>,
    ext: Vec<(String, ObsVal)>,
    symtab: &SymbolTable,
    result_of: impl Fn(&IA) -> ObsVal,
) -> SchedStageOutcome {
    match outcome {
        RunOutcome::OutOfFuel { .. } => SchedStageOutcome::Budget("out of fuel".into()),
        RunOutcome::OutOfMemory { used, limit, .. } => {
            SchedStageOutcome::Budget(format!("out of memory: {used} > {limit}"))
        }
        RunOutcome::DepthExceeded { depth, limit, .. } => {
            SchedStageOutcome::Budget(format!("depth exceeded: {depth} > {limit}"))
        }
        RunOutcome::TimedOut { elapsed, .. } => {
            SchedStageOutcome::Budget(format!("timed out after {elapsed:?}"))
        }
        RunOutcome::Complete { answer, trace, .. } => SchedStageOutcome::Ok(SchedObs {
            obs: Obs {
                result: result_of(&answer),
                ext,
                globals: read_globals(symtab, answer.mem()),
            },
            trace: annots(&trace),
        }),
        RunOutcome::Wrong { stuck, .. } => SchedStageOutcome::Stuck(format!("{stuck}")),
        RunOutcome::EnvRefused(q) => SchedStageOutcome::EnvRefused(q),
    }
}

/// Run a C-interface semantics (Clight or RTL) threaded.
macro_rules! run_c_sched {
    ($sem:expr, $symtab:expr, $lib:expr, $q:expr, $aux:expr, $schedule:expr, $budget:expr) => {{
        let tsem = ThreadedLts::new($sem, $aux.to_vec(), $schedule)
            .with_exit_renderer(Box::new(|a: &CReply| obs_val(&a.retval).to_string()));
        let mut ext: Vec<(String, ObsVal)> = Vec::new();
        let outcome = {
            let mut env = |oq: &CQuery| {
                let r = $lib.answer_c(oq)?;
                ext.push((name_of($symtab, &oq.vf), obs_val(&r.retval)));
                Some(r)
            };
            run_budgeted(&tsem, $q, &mut env, $budget)
        };
        finish(outcome, ext, $symtab, |a: &CReply| obs_val(&a.retval))
    }};
}

fn run_clight_sched(
    prog: &clight::Program,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    let sem = ClightSem::new(prog.clone(), symtab.clone());
    run_c_sched!(sem, symtab, lib, q, aux, schedule, budget)
}

fn run_rtl_sched(
    prog: &RtlProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    let sem = RtlSem::new(prog.clone(), symtab.clone());
    run_c_sched!(sem, symtab, lib, q, aux, schedule, budget)
}

fn run_linear_sched(
    prog: &LinProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    // CL transport clones the memory without allocating, so each query can
    // be transported independently (the threaded dispatch replaces every
    // question's memory with the shared one anyway).
    let Some((_sig, lq)) = Cl.transport_query(q) else {
        return SchedStageOutcome::Transport("CL transport failed".into());
    };
    let mut laux = Vec::with_capacity(aux.len());
    for aq in aux {
        match Cl.transport_query(aq) {
            Some((_s, l)) => laux.push(l),
            None => return SchedStageOutcome::Transport("CL transport failed (aux)".into()),
        }
    }
    let sem = LinearSem::new(prog.clone(), symtab.clone());
    let tsem = ThreadedLts::new(sem, laux, schedule).with_exit_renderer(Box::new(|a: &LReply| {
        obs_val(&a.ls.get(Loc::Reg(abi::RESULT_REG))).to_string()
    }));
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &LQuery| {
            let r = lib.answer_l(oq)?;
            ext.push((
                name_of(symtab, &oq.vf),
                obs_val(&r.ls.get(Loc::Reg(abi::RESULT_REG))),
            ));
            Some(r)
        };
        run_budgeted(&tsem, &lq, &mut env, budget)
    };
    finish(outcome, ext, symtab, |a: &LReply| {
        obs_val(&a.ls.get(Loc::Reg(abi::RESULT_REG)))
    })
}

#[allow(clippy::too_many_arguments)]
fn run_mach_sched(
    prog: &MachProgram,
    ra_map: &RaMap,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    // The M transport allocates each thread's argument region, so the
    // queries must be transported over one *evolving* memory — auxiliaries
    // first, the main query last: the threaded state adopts the main
    // query's memory as the shared memory, which then contains every
    // thread's argument region.
    let mut cur = q.mem.clone();
    let mut maux = Vec::with_capacity(aux.len());
    for aq in aux {
        let chained = CQuery {
            mem: cur.clone(),
            ..aq.clone()
        };
        let Some(mq) = m_query(&chained) else {
            return SchedStageOutcome::Transport("CM transport failed (aux)".into());
        };
        cur = mq.mem.clone();
        maux.push(mq);
    }
    let Some(mq) = m_query(&CQuery {
        mem: cur,
        ..q.clone()
    }) else {
        return SchedStageOutcome::Transport("CM transport failed".into());
    };
    let sem = MachSem::new(prog.clone(), symtab.clone())
        .with_ra_oracle(backend::asmgen::make_ra_oracle(ra_map.clone(), symtab.clone()));
    let tsem = ThreadedLts::new(sem, maux, schedule).with_exit_renderer(Box::new(|a: &MReply| {
        obs_val(&a.rs[abi::RESULT_REG.index()]).to_string()
    }));
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &MQuery| {
            let r = lib.answer_m(oq)?;
            ext.push((
                name_of(symtab, &oq.vf),
                obs_val(&r.rs[abi::RESULT_REG.index()]),
            ));
            Some(r)
        };
        run_budgeted(&tsem, &mq, &mut env, budget)
    };
    finish(outcome, ext, symtab, |a: &MReply| {
        obs_val(&a.rs[abi::RESULT_REG.index()])
    })
}

fn run_asm_sched(
    prog: &AsmProgram,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    // Same evolving-memory chaining as the M level: the CA transport
    // allocates each thread's argument region and return-address sentinel.
    let ca = Ca::new(symtab.len() as u32);
    let mut cur = q.mem.clone();
    let mut aaux = Vec::with_capacity(aux.len());
    for aq in aux {
        let chained = CQuery {
            mem: cur.clone(),
            ..aq.clone()
        };
        let Some((_w, qa)) = ca.transport_query(&chained) else {
            return SchedStageOutcome::Transport("CA transport failed (aux)".into());
        };
        cur = qa.mem.clone();
        aaux.push(qa);
    }
    let Some((_w, qa)) = ca.transport_query(&CQuery {
        mem: cur,
        ..q.clone()
    }) else {
        return SchedStageOutcome::Transport("CA transport failed".into());
    };
    let sem = AsmSem::new(prog.clone(), symtab.clone());
    let tsem = ThreadedLts::new(sem, aaux, schedule).with_exit_renderer(Box::new(|a: &ARegs| {
        obs_val(&a.rs.get(abi::RESULT_REG)).to_string()
    }));
    let mut ext: Vec<(String, ObsVal)> = Vec::new();
    let outcome = {
        let mut env = |oq: &ARegs| {
            let r = lib.answer_a(oq)?;
            ext.push((
                name_of(symtab, &oq.rs.pc),
                obs_val(&r.rs.get(abi::RESULT_REG)),
            ));
            Some(r)
        };
        run_budgeted(&tsem, &qa, &mut env, budget)
    };
    finish(outcome, ext, symtab, |a: &ARegs| {
        obs_val(&a.rs.get(abi::RESULT_REG))
    })
}

/// Run one named stage (one of [`STAGES`]) threaded.
#[allow(clippy::too_many_arguments)]
fn run_stage_sched(
    sp: &StagePrograms,
    symtab: &SymbolTable,
    lib: &ExtLib,
    stage: &str,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedStageOutcome {
    match stage {
        "clight" => run_clight_sched(&sp.clight, symtab, lib, q, aux, schedule, budget),
        "simpl-locals" => run_clight_sched(&sp.clight_simpl, symtab, lib, q, aux, schedule, budget),
        "rtl" => run_rtl_sched(&sp.rtl, symtab, lib, q, aux, schedule, budget),
        "rtl-opt" => run_rtl_sched(&sp.rtl_opt, symtab, lib, q, aux, schedule, budget),
        "linear" => run_linear_sched(&sp.linear, symtab, lib, q, aux, schedule, budget),
        "mach" => run_mach_sched(&sp.mach, &sp.ra_map, symtab, lib, q, aux, schedule, budget),
        "asm" => run_asm_sched(&sp.asm, symtab, lib, q, aux, schedule, budget),
        other => SchedStageOutcome::Transport(format!("unknown stage `{other}`")),
    }
}

fn compare_sched(
    stage: &'static str,
    run: SchedStageOutcome,
    base: &SchedObs,
) -> Option<SchedVerdict> {
    match run {
        SchedStageOutcome::Ok(obs) => {
            if obs == *base {
                None
            } else {
                Some(SchedVerdict::Finding {
                    kind: FindingKind::Disagreement { stage },
                    detail: format!("clight observed [{base}] but {stage} observed [{obs}]"),
                })
            }
        }
        SchedStageOutcome::Budget(_) => Some(SchedVerdict::Skipped { stage }),
        SchedStageOutcome::Stuck(d) => Some(SchedVerdict::Finding {
            kind: FindingKind::Stuck { stage },
            detail: d,
        }),
        SchedStageOutcome::EnvRefused(d) => Some(SchedVerdict::Finding {
            kind: FindingKind::EnvRefused { stage },
            detail: d,
        }),
        SchedStageOutcome::Transport(d) => Some(SchedVerdict::Finding {
            kind: FindingKind::Transport { stage },
            detail: d,
        }),
    }
}

/// Run one threaded query set under one schedule through every stage and
/// compare observations against the Clight baseline — the threaded analog
/// of [`crate::difftest::check_query`].
pub fn check_query_sched(
    sp: &StagePrograms,
    symtab: &SymbolTable,
    lib: &ExtLib,
    q: &CQuery,
    aux: &[CQuery],
    schedule: Schedule,
    budget: &RunBudget,
) -> SchedVerdict {
    let base = match run_clight_sched(&sp.clight, symtab, lib, q, aux, schedule, budget) {
        SchedStageOutcome::Ok(obs) => obs,
        SchedStageOutcome::Budget(_) => return SchedVerdict::Skipped { stage: "clight" },
        SchedStageOutcome::Stuck(d) => {
            return SchedVerdict::Finding {
                kind: FindingKind::Stuck { stage: "clight" },
                detail: d,
            }
        }
        SchedStageOutcome::EnvRefused(d) => {
            return SchedVerdict::Finding {
                kind: FindingKind::EnvRefused { stage: "clight" },
                detail: d,
            }
        }
        SchedStageOutcome::Transport(d) => {
            return SchedVerdict::Finding {
                kind: FindingKind::Transport { stage: "clight" },
                detail: d,
            }
        }
    };
    for stage in &STAGES[1..] {
        if let Some(v) = compare_sched(
            stage,
            run_stage_sched(sp, symtab, lib, stage, q, aux, schedule, budget),
            &base,
        ) {
            return v;
        }
    }
    SchedVerdict::Agree(Box::new(base))
}

/// Verdict of the threaded oracle on one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedSeedOutcome {
    /// Every (non-skipped) schedule agreed at every stage.
    Agree {
        /// Schedules fully compared.
        schedules_run: usize,
        /// Schedules skipped for budget exhaustion at some stage.
        schedules_skipped: usize,
    },
    /// Every schedule was budget-limited — no verdict for this seed.
    Skipped(String),
    /// A bug (or a bug in this harness): see the kind and detail.
    Finding {
        /// The failure class.
        kind: FindingKind,
        /// Human-readable context.
        detail: String,
    },
}

/// The full per-seed report of [`run_seed_sched`].
#[derive(Debug, Clone)]
pub struct SchedSeedReport {
    /// The seed.
    pub seed: u64,
    /// The oracle verdict.
    pub outcome: SchedSeedOutcome,
    /// One stable verdict line per schedule explored before the run ended
    /// (all of them on agreement, the prefix up to and including the
    /// finding otherwise) — the campaign's FNV checksum input.
    pub verdicts: Vec<String>,
}

/// Generate the program for `seed`, compile it, and run the threaded
/// oracle over the seed's whole schedule family.
pub fn run_seed_sched(seed: u64, cfg: &SchedCfg) -> SchedSeedReport {
    let prog = generate(seed, &cfg.gen);
    let (outcome, verdicts) = check_program_sched(&prog, cfg);
    SchedSeedReport {
        seed,
        outcome,
        verdicts,
    }
}

/// [`run_seed_sched`] plus observability: the seed's deterministic counter
/// delta with the `lts.sched.*` tallies folded in.
pub fn run_seed_sched_obs(seed: u64, cfg: &SchedCfg) -> (SchedSeedReport, Counters) {
    let snap = crate::obs::ObsSnapshot::take();
    let report = run_seed_sched(seed, cfg);
    let mut counters = snap.delta();
    let (run, skipped) = match &report.outcome {
        SchedSeedOutcome::Agree {
            schedules_run,
            schedules_skipped,
        } => (*schedules_run, *schedules_skipped),
        SchedSeedOutcome::Skipped(_) => (0, cfg.schedules),
        SchedSeedOutcome::Finding { .. } => (0, 0),
    };
    counters.bump("lts.sched.agreed", run as u64);
    counters.bump("lts.sched.schedules", (run + skipped) as u64);
    counters.bump("lts.sched.skipped", skipped as u64);
    counters.bump("lts.sched.threads", cfg.threads as u64);
    (report, counters)
}

/// Run the threaded oracle on one generated program: compile, build the
/// per-stage whole programs, derive the query set and schedule family, and
/// compare all seven stages per schedule.
fn check_program_sched(prog: &GProgram, cfg: &SchedCfg) -> (SchedSeedOutcome, Vec<String>) {
    let srcs = prog.render();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let opts = CompilerOptions::validated();
    let (units, symtab) = match compile_all(&refs, opts) {
        Ok(x) => x,
        Err(e) => {
            return (
                SchedSeedOutcome::Finding {
                    kind: FindingKind::Compile,
                    detail: format!("{e}"),
                },
                Vec::new(),
            )
        }
    };
    for (i, u) in units.iter().enumerate() {
        if let Some(d) = u.diagnostics.first() {
            return (
                SchedSeedOutcome::Finding {
                    kind: FindingKind::ValidatorRejected,
                    detail: format!("unit {i}: {d}"),
                },
                Vec::new(),
            );
        }
    }
    let sp = match StagePrograms::build(&units) {
        Ok(sp) => sp,
        Err(e) => {
            return (
                SchedSeedOutcome::Finding {
                    kind: FindingKind::Compile,
                    detail: e,
                },
                Vec::new(),
            )
        }
    };
    let lib = ExtLib::demo(symtab.clone());
    let (_, entry) = prog.entry();
    let entry_name = entry.name.clone();
    let nparams = entry.nparams as usize;
    let budget = RunBudget::with_fuel(cfg.fuel).no_trace();
    let init = match symtab.build_init_mem() {
        Ok(m) => m,
        Err(e) => {
            return (
                SchedSeedOutcome::Finding {
                    kind: FindingKind::Compile,
                    detail: format!("initial memory: {e:?}"),
                },
                Vec::new(),
            )
        }
    };
    let (Some(vf), Some(sig)) = (symtab.func_ptr(&entry_name), sp.clight.sig_of(&entry_name))
    else {
        return (
            SchedSeedOutcome::Finding {
                kind: FindingKind::Compile,
                detail: format!("entry `{entry_name}` missing from the linked program"),
            },
            Vec::new(),
        );
    };
    // Every thread runs the entry function: thread 0 with the main argument
    // set, threads 1.. with domain-separated auxiliary sets.
    let main_args = gen_queries(prog.seed, nparams, 1);
    let aux_args = gen_queries(prog.seed ^ SCHED_AUX_SALT, nparams, cfg.threads.saturating_sub(1));
    let mk_query = |args: &[i32]| CQuery {
        vf,
        sig: sig.clone(),
        args: args.iter().map(|&a| Val::Int(a)).collect(),
        mem: init.clone(),
    };
    let q = mk_query(&main_args[0]);
    let aux: Vec<CQuery> = aux_args.iter().map(|a| mk_query(a)).collect();

    let mut verdicts = Vec::with_capacity(cfg.schedules);
    let mut run = 0usize;
    let mut skipped = 0usize;
    for schedule in schedules(cfg.schedules, prog.seed) {
        let v = check_query_sched(&sp, &symtab, &lib, &q, &aux, schedule, &budget);
        verdicts.push(v.line(schedule));
        match v {
            SchedVerdict::Agree(_) => run += 1,
            SchedVerdict::Skipped { .. } => skipped += 1,
            SchedVerdict::Finding { kind, detail } => {
                return (
                    SchedSeedOutcome::Finding {
                        kind,
                        detail: format!("schedule {schedule} args {:?}: {detail}", q.args),
                    },
                    verdicts,
                );
            }
        }
    }
    let outcome = if run == 0 {
        SchedSeedOutcome::Skipped(format!("all {skipped} schedules budget-limited"))
    } else {
        SchedSeedOutcome::Agree {
            schedules_run: run,
            schedules_skipped: skipped,
        }
    };
    (outcome, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_seeds_agree_across_stages_and_schedules() {
        let cfg = SchedCfg::quick();
        for seed in 0..6u64 {
            let r = run_seed_sched(seed, &cfg);
            match &r.outcome {
                SchedSeedOutcome::Agree { schedules_run, .. } => {
                    assert!(*schedules_run > 0, "seed {seed}: nothing compared");
                    assert_eq!(r.verdicts.len(), cfg.schedules, "seed {seed}");
                }
                SchedSeedOutcome::Skipped(_) => {}
                SchedSeedOutcome::Finding { kind, detail } => {
                    panic!("seed {seed}: {kind}: {detail}")
                }
            }
        }
    }

    #[test]
    fn verdict_lines_are_deterministic() {
        let cfg = SchedCfg::quick();
        let a = run_seed_sched(3, &cfg);
        let b = run_seed_sched(3, &cfg);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn schedules_actually_interleave() {
        // Over a handful of seeds, at least one threaded run must show an
        // auxiliary thread scheduled before thread 0 finishes — otherwise
        // the whole oracle degenerates to sequential difftest.
        let cfg = SchedCfg::quick();
        let mut interleaved = false;
        for seed in 0..8u64 {
            let r = run_seed_sched(seed, &cfg);
            for line in &r.verdicts {
                if let Some(tr) = line.split("trace=[").nth(1) {
                    let toks: Vec<&str> = tr.trim_end_matches(']').split(' ').collect();
                    let first_exit0 = toks.iter().position(|t| t.starts_with("exit:0"));
                    let first_sched1 = toks.iter().position(|t| *t == "sched:1");
                    if let (Some(e0), Some(s1)) = (first_exit0, first_sched1) {
                        if s1 < e0 {
                            interleaved = true;
                        }
                    }
                }
            }
        }
        assert!(interleaved, "no schedule ever interleaved threads");
    }

    #[test]
    fn counter_interning_covers_sched_keys() {
        for k in SCHED_COUNTER_KEYS {
            assert_eq!(intern_sched_counter_key(k), Some(k));
        }
        assert_eq!(intern_sched_counter_key("lts.steps"), Some("lts.steps"));
        assert_eq!(intern_sched_counter_key("nope"), None);
    }
}
