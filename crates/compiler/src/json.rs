//! A minimal hand-rolled JSON reader (resilience layer, DESIGN.md §11).
//!
//! The workspace emits all of its reports with hand-formatted JSON; the
//! checkpoint/resume machinery is the first consumer that must *read* some
//! of it back. This is a small recursive-descent parser over the subset the
//! reports use — objects, arrays, strings (with the escapes our own
//! emitters produce), integers, floats, booleans, null. Numbers are kept as
//! their raw source text and parsed on demand ([`Json::as_u64`] /
//! [`Json::as_i64`]), so 64-bit counters round-trip exactly (an `f64`
//! intermediate would corrupt values above 2^53).
//!
//! No serde, no dependencies — the workspace stays offline by design.

/// A parsed JSON value. Object member order is preserved (the reports are
/// emitted with deterministic member order, and checkpoints byte-compare).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, when this is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`, when this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, when this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// A human-readable message with the byte offset of the failure.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}",
            char::from(ch),
            *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected a number at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid UTF-8 in number at byte {start}"))?;
    // Validate by parsing as f64 (accepts every JSON number form).
    raw.parse::<f64>()
        .map_err(|_| format!("malformed number `{raw}` at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        // The emitters only produce control-character
                        // escapes (< 0x20), never surrogate pairs.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "unterminated string".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Minimal JSON string escaping — the exact inverse of what [`parse`]
/// unescapes. Every emitter in the workspace that embeds untrusted text in
/// a JSON string goes through this.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("\\u{:04x}", c as u32),
                );
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse("true"), Ok(Json::Bool(true)));
        assert_eq!(parse(" false "), Ok(Json::Bool(false)));
        assert_eq!(parse("42").and_then(|j| j.as_u64().ok_or_else(String::new)), Ok(42));
        assert_eq!(
            parse("-7").and_then(|j| j.as_i64().ok_or_else(String::new)),
            Ok(-7)
        );
        assert_eq!(parse("\"hi\\n\\\"there\\\"\""), Ok(Json::Str("hi\n\"there\"".into())));
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX - 3;
        let j = parse(&big.to_string()).expect("parses");
        assert_eq!(j.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_structures() {
        let src = r#"{"schema":"compcerto-ckpt/1","n":3,"rows":[{"k":"a","v":1},{"k":"b","v":2}],"ok":true}"#;
        let j = parse(src).expect("parses");
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("compcerto-ckpt/1"));
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        let rows = j.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("k").and_then(Json::as_str), Some("b"));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn control_escapes_round_trip() {
        let j = parse("\"a\\u0007b\"").expect("parses");
        assert_eq!(j.as_str(), Some("a\u{7}b"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
