//! Seeded environment-fault orchestration (resilience layer, DESIGN.md §11).
//!
//! The injection *points* live next to their victims — allocator exhaustion
//! in [`mem::envfault`], trace-sink write errors and deadline jitter in
//! [`compcerto_core::envfault`], worker panics and pass panics here — but
//! campaigns want one vocabulary and one switchboard. This module provides
//! both: [`FaultClass`] names the four injectable environment-fault classes,
//! and [`FaultPlan`] is a single armable description (class + 1-based site
//! index) that the `resilience_campaign` bin derives from a SplitMix64
//! stream. Arming is deterministic: a plan plus a fixed workload yields a
//! byte-identical outcome on every run and every `--jobs` setting, because
//! the thread-local fault classes are armed *inside* the pool work item
//! (which runs entirely on one worker) and the process-global worker-panic
//! class is consumed exactly once by a compare-exchange.
//!
//! The pass-panic hook is the degradation ladder's test harness: arming
//! `arm_pass_panic("constprop")` makes the driver's next `constprop` pass
//! boundary panic, which the resilience layer must catch, retry without
//! RTL-opt and report as `Degraded`.

use std::sync::atomic::{AtomicUsize, Ordering};

use compcerto_core::rng::SplitMix64;

/// The four injectable environment-fault classes (EXPERIMENTS.md B10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The n-th `Mem::alloc` on the arming thread panics (allocator
    /// exhaustion; contained per unit by the resilience layer).
    MemAlloc,
    /// The n-th JSON trace-sink append on the arming thread is dropped
    /// (sink degrades gracefully, run continues).
    SinkWrite,
    /// The pool worker processing item n panics once (contained and
    /// requeued by the self-healing pool).
    WorkerPanic,
    /// The n-th strided deadline check reports the deadline exceeded
    /// (forces a deterministic `TimedOut`).
    DeadlineJitter,
}

/// All fault classes, in report order.
pub const FAULT_CLASSES: [FaultClass; 4] = [
    FaultClass::MemAlloc,
    FaultClass::SinkWrite,
    FaultClass::WorkerPanic,
    FaultClass::DeadlineJitter,
];

impl FaultClass {
    /// Stable report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::MemAlloc => "mem-alloc",
            FaultClass::SinkWrite => "sink-write",
            FaultClass::WorkerPanic => "worker-panic",
            FaultClass::DeadlineJitter => "deadline-jitter",
        }
    }
}

/// One armable fault: a class plus its 1-based site index (which alloc,
/// which sink append, which pool item, which deadline check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to break.
    pub class: FaultClass,
    /// When to break it (1-based occurrence count; for `WorkerPanic`, the
    /// 0-based pool item index).
    pub site: u64,
}

impl FaultPlan {
    /// Derive a plan from a seeded stream: uniform class, site in
    /// `1..=max_site`. Consumes exactly two draws.
    pub fn derive(rng: &mut SplitMix64, max_site: u64) -> FaultPlan {
        let class = FAULT_CLASSES[rng.below(FAULT_CLASSES.len() as u64) as usize];
        let site = 1 + rng.below(max_site.max(1));
        FaultPlan { class, site }
    }

    /// Arm this fault. Thread-local classes must be armed on the thread
    /// that will run the faulted workload; `WorkerPanic` is process-global.
    pub fn arm(self) {
        match self.class {
            FaultClass::MemAlloc => mem::envfault::arm_alloc_fault(self.site),
            FaultClass::SinkWrite => compcerto_core::envfault::arm_sink_fault(self.site),
            FaultClass::WorkerPanic => arm_worker_panic(self.site as usize),
            FaultClass::DeadlineJitter => {
                compcerto_core::envfault::arm_deadline_jitter(self.site);
            }
        }
    }
}

/// Disarm every fault class this thread can see (thread-local classes on
/// this thread, plus the process-global worker-panic arm).
pub fn disarm_all() {
    mem::envfault::disarm();
    compcerto_core::envfault::disarm();
    WORKER_PANIC_ITEM.store(usize::MAX, Ordering::SeqCst);
    PASS_PANIC.with(|p| p.set(None));
}

// ---------------------------------------------------------------------------
// Worker-panic injection (process-global: the pool's workers are anonymous)
// ---------------------------------------------------------------------------

static WORKER_PANIC_ITEM: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Arm a one-shot worker panic: the pool worker that claims item `item`
/// panics before running it. Consumed by the first claim, so the pool's
/// single retry of the item succeeds.
pub fn arm_worker_panic(item: usize) {
    WORKER_PANIC_ITEM.store(item, Ordering::SeqCst);
}

/// True while a worker-panic arm has not fired yet.
#[must_use]
pub fn worker_panic_pending() -> bool {
    WORKER_PANIC_ITEM.load(Ordering::SeqCst) != usize::MAX
}

/// Hook called by the pool before each item. One-shot via compare-exchange:
/// exactly one claim of the armed item panics, every retry proceeds.
pub(crate) fn maybe_worker_panic(item: usize) {
    if WORKER_PANIC_ITEM
        .compare_exchange(item, usize::MAX, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        panic!("envfault: injected worker panic on item {item}");
    }
}

// ---------------------------------------------------------------------------
// Pass-panic injection (thread-local: the driver runs a unit on one thread)
// ---------------------------------------------------------------------------

thread_local! {
    static PASS_PANIC: std::cell::Cell<Option<&'static str>> =
        const { std::cell::Cell::new(None) };
}

/// Arm a one-shot panic at the next boundary of the named driver pass on
/// this thread (e.g. `"constprop"`). Used by the degradation-ladder tests;
/// pair with `Jobs::N(1)` so the unit compiles on the arming thread.
pub fn arm_pass_panic(pass: &'static str) {
    PASS_PANIC.with(|p| p.set(Some(pass)));
}

/// Hook called by the driver at every pass boundary.
pub(crate) fn maybe_pass_panic(pass: &str) {
    let fire = PASS_PANIC.with(|p| match p.get() {
        Some(armed) if armed == pass => {
            p.set(None);
            true
        }
        _ => false,
    });
    if fire {
        panic!("envfault: injected pass panic in {pass}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_panic_is_one_shot() {
        disarm_all();
        arm_worker_panic(3);
        assert!(worker_panic_pending());
        // Non-matching items pass through.
        maybe_worker_panic(2);
        let r = std::panic::catch_unwind(|| maybe_worker_panic(3));
        assert!(r.is_err());
        assert!(!worker_panic_pending());
        // Second claim of the same item (the retry) proceeds.
        maybe_worker_panic(3);
    }

    #[test]
    fn fault_plan_derivation_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..32 {
            let pa = FaultPlan::derive(&mut a, 100);
            let pb = FaultPlan::derive(&mut b, 100);
            assert_eq!(pa, pb);
            assert!((1..=100).contains(&pa.site));
        }
    }
}
