//! Seeded random generation of well-defined Clight-mini programs and query
//! workloads.
//!
//! The generator only emits programs whose executions are defined for every
//! generated query (no division by variables, bounded loops, in-bounds array
//! indices, initialized locals), so a simulation-check failure always
//! indicates a compiler bug, never source-level undefined behaviour.

use compcerto_core::rng::SplitMix64;
use mem::Val;

/// Shape parameters for generated programs.
#[derive(Debug, Clone)]
pub struct WorkloadCfg {
    /// Number of functions per program.
    pub functions: usize,
    /// Statements per function body.
    pub stmts_per_fn: usize,
    /// Maximum parameters per function (1..=6).
    pub max_params: usize,
    /// Allow calls to earlier-defined functions.
    pub internal_calls: bool,
    /// Declare and call the external `inc`.
    pub external_calls: bool,
    /// Use global variables and arrays.
    pub use_memory: bool,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            functions: 3,
            stmts_per_fn: 8,
            max_params: 4,
            internal_calls: true,
            external_calls: true,
            use_memory: true,
        }
    }
}

/// A deterministic random program/query generator.
///
/// Randomness comes from the in-repo [`SplitMix64`], so the generated
/// program stream is a pure function of the seed — stable across platforms
/// and independent of any external crate.
#[derive(Debug)]
pub struct WorkloadGen {
    rng: SplitMix64,
}

impl WorkloadGen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> WorkloadGen {
        WorkloadGen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Generate a self-contained translation unit. The last function is named
    /// `entry` and is the intended query target; its parameter count is
    /// returned alongside the source.
    pub fn gen_program(&mut self, cfg: &WorkloadCfg) -> (String, usize) {
        let mut out = String::new();
        if cfg.external_calls {
            out.push_str("extern int inc(int);\n");
            if cfg.use_memory {
                out.push_str("extern long sum2(long*);\n");
            }
        }
        if cfg.use_memory {
            out.push_str("const int lim = 17;\n");
            out.push_str("int acc = 0;\n");
            out.push_str("long buf[8];\n");
        }
        let mut fn_names: Vec<(String, usize)> = Vec::new();
        for i in 0..cfg.functions {
            let nparams = 1 + self.rng.range_usize(0, cfg.max_params.clamp(1, 6));
            let name = if i + 1 == cfg.functions {
                "entry".to_string()
            } else {
                format!("fn{i}")
            };
            let body = self.gen_function(&name, nparams, cfg, &fn_names);
            out.push_str(&body);
            fn_names.push((name, nparams));
        }
        let entry_params = fn_names.last().map(|(_, n)| *n).unwrap_or(0);
        (out, entry_params)
    }

    fn gen_function(
        &mut self,
        name: &str,
        nparams: usize,
        cfg: &WorkloadCfg,
        callees: &[(String, usize)],
    ) -> String {
        let params: Vec<String> = (0..nparams).map(|i| format!("int p{i}")).collect();
        let mut body = String::new();
        // Locals, all initialized immediately.
        let nlocals = 3;
        for i in 0..nlocals {
            body.push_str(&format!("  int v{i};\n"));
        }
        if cfg.external_calls && cfg.use_memory {
            // Scratch array + temp for the pointer-passing statement
            // (declarations are C89-style, at the top of the body).
            body.push_str("  long w[2];\n  long ws;\n");
        }
        for i in 0..nlocals {
            let e = self.gen_expr(nparams, i, 2);
            body.push_str(&format!("  v{i} = {e};\n"));
        }
        for _ in 0..cfg.stmts_per_fn {
            body.push_str(&self.gen_stmt(nparams, nlocals, cfg, callees));
        }
        let ret = self.gen_expr(nparams, nlocals, 2);
        body.push_str(&format!("  return {ret};\n"));
        format!("int {name}({}) {{\n{body}}}\n", params.join(", "))
    }

    fn gen_stmt(
        &mut self,
        nparams: usize,
        nlocals: usize,
        cfg: &WorkloadCfg,
        callees: &[(String, usize)],
    ) -> String {
        let v = self.rng.range_usize(0, nlocals);
        match self.rng.below(10) as u32 {
            0..=2 => {
                let e = self.gen_expr(nparams, nlocals, 3);
                format!("  v{v} = {e};\n")
            }
            3 => {
                let c = self.gen_expr(nparams, nlocals, 2);
                let a = self.gen_expr(nparams, nlocals, 2);
                let b = self.gen_expr(nparams, nlocals, 2);
                format!("  if ({c} > 0) {{ v{v} = {a}; }} else {{ v{v} = {b}; }}\n")
            }
            4 => {
                // A bounded loop over a dedicated counter expression.
                let body = self.gen_expr(nparams, nlocals, 2);
                let n = self.rng.range_i64(1, 6);
                let w = (v + 1) % nlocals;
                format!(
                    "  v{w} = 0;\n  while (v{w} < {n}) {{ v{v} = v{v} + ({body}); v{w} = v{w} + 1; }}\n"
                )
            }
            5 if cfg.use_memory => {
                let idx = self.rng.range_i64(0, 8);
                let e = self.gen_expr(nparams, nlocals, 2);
                format!("  buf[{idx}] = (long) ({e});\n  v{v} = (int) buf[{idx}];\n")
            }
            6 if cfg.use_memory => {
                let e = self.gen_expr(nparams, nlocals, 1);
                format!("  acc = acc + ({e});\n  v{v} = acc;\n")
            }
            7 if cfg.internal_calls && !callees.is_empty() => {
                let (callee, k) = &callees[self.rng.range_usize(0, callees.len())];
                let args: Vec<String> = (0..*k)
                    .map(|_| self.gen_expr(nparams, nlocals, 1))
                    .collect();
                format!("  v{v} = {callee}({});\n", args.join(", "))
            }
            8 if cfg.external_calls => {
                let e = self.gen_expr(nparams, nlocals, 1);
                format!("  v{v} = inc({e});\n")
            }
            9 if cfg.external_calls && cfg.use_memory => {
                // Pass a pointer to a stack array across the boundary: the
                // hardest calling-convention corner (non-trivial injection).
                let a = self.gen_expr(nparams, nlocals, 1);
                let b = self.gen_expr(nparams, nlocals, 1);
                format!(
                    "  w[0] = (long) ({a});\n  w[1] = (long) ({b});\n  ws = sum2(w);\n  v{v} = (int) ws;\n"
                )
            }
            _ => {
                let e = self.gen_expr(nparams, nlocals, 2);
                format!("  v{v} = {e} ^ v{v};\n")
            }
        }
    }

    /// A well-defined integer expression over `p0..`, `v0..` and literals.
    fn gen_expr(&mut self, nparams: usize, nlocals: usize, depth: u32) -> String {
        if depth == 0 {
            return match self.rng.below(3) as u32 {
                0 if nparams > 0 => format!("p{}", self.rng.range_usize(0, nparams)),
                1 if nlocals > 0 => format!("v{}", self.rng.range_usize(0, nlocals)),
                _ => format!("{}", self.rng.range_i64(-20, 40)),
            };
        }
        let a = self.gen_expr(nparams, nlocals, depth - 1);
        let b = self.gen_expr(nparams, nlocals, depth - 1);
        match self.rng.below(8) as u32 {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            // Division and remainder only by non-zero constants.
            3 => format!("({a} / {})", self.rng.range_i64(1, 9)),
            4 => format!("({a} % {})", self.rng.range_i64(1, 9)),
            5 => format!("({a} & {b})"),
            6 => format!("({a} << {})", self.rng.range_i64(0, 5)),
            _ => format!("(({a} < {b}) + {a})"),
        }
    }

    /// Generate `n` argument vectors of `arity` small ints.
    pub fn gen_queries(&mut self, arity: usize, n: usize) -> Vec<Vec<Val>> {
        (0..n)
            .map(|_| {
                (0..arity)
                    .map(|_| Val::Int(self.rng.range_i32(-50, 100)))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all, CompilerOptions};
    use crate::extlib::ExtLib;
    use crate::harness::{c_query, check_thm38};

    #[test]
    fn generated_programs_compile() {
        let mut g = WorkloadGen::new(42);
        for seed_round in 0..5 {
            let (src, _) = g.gen_program(&WorkloadCfg::default());
            let r = compile_all(&[&src], CompilerOptions::default());
            assert!(r.is_ok(), "round {seed_round}: {src}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = WorkloadGen::new(7).gen_program(&WorkloadCfg::default());
        let (b, _) = WorkloadGen::new(7).gen_program(&WorkloadCfg::default());
        assert_eq!(a, b);
    }

    #[test]
    fn random_sweep_satisfies_thm38() {
        // The headline experiment in miniature: random programs × random
        // queries, all checked against the end-to-end convention.
        let mut g = WorkloadGen::new(2026);
        for round in 0..4 {
            let (src, arity) = g.gen_program(&WorkloadCfg::default());
            let (units, tbl) = compile_all(&[&src], CompilerOptions::default()).expect("compiles");
            let lib = ExtLib::demo(tbl.clone());
            for args in g.gen_queries(arity, 3) {
                let q = c_query(&tbl, &units[0], "entry", args.clone());
                check_thm38(&units[0], &tbl, &lib, &q).unwrap_or_else(|e| {
                    panic!("round {round}, args {args:?}: {e}\nsource:\n{src}")
                });
            }
        }
    }
}

#[cfg(test)]
mod regression_tests {
    use crate::driver::{compile_all, CompilerOptions};
    use crate::extlib::ExtLib;
    use crate::harness::{c_query, check_thm38};
    use mem::Val;

    /// Regression: the local value numbering of `CSE` once reused a register
    /// whose value had been overwritten since the equation was recorded
    /// (found by the random Thm 3.8 sweep, seed 2026 round 1).
    #[test]
    fn cse_does_not_reuse_overwritten_holders() {
        let src = "
            extern int inc(int);
            int entry(int p0) {
                int a; int b; int r;
                a = p0 + 1;   // x := p0+1 (recorded)
                a = 7;        // holder overwritten
                b = p0 + 1;   // must NOT become move(a)
                r = inc(b);
                return r + a;
            }";
        let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
        let lib = ExtLib::demo(tbl.clone());
        let q = c_query(&tbl, &units[0], "entry", vec![Val::Int(10)]);
        check_thm38(&units[0], &tbl, &lib, &q).expect("Thm 3.8 holds after the CSE fix");
    }
}
