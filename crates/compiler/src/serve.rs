//! `ccomp-o serve` — a persistent compile server with a content-addressed
//! incremental artifact cache (DESIGN.md §14, ROADMAP item 1).
//!
//! # Protocol (`compcerto-serve/1`)
//!
//! Newline-framed JSON: one request object per line on stdin (or a Unix
//! socket connection), one response object per line back. Request ops:
//!
//! * `{"schema":"compcerto-serve/1","op":"ping","id":N}` → `pong`
//! * `{"schema":"compcerto-serve/1","op":"compile","id":N,
//!    "units":[{"source":"int f..."}, {"file":"path.c"}]}` →
//!   `compile-result` with one entry per unit, in request order
//! * `{"schema":"compcerto-serve/1","op":"stats","id":N}` → cumulative
//!   server counters (`serve.cache.hit` / `serve.cache.miss` /
//!   `serve.cache.evict` / `serve.units` / …)
//! * `{"schema":"compcerto-serve/1","op":"shutdown","id":N}` → ack, then
//!   the server exits cleanly (exit code 0)
//!
//! Malformed input never kills the server: unparsable frames, unknown
//! schemas/ops, oversized requests and non-UTF-8 bytes are all answered
//! with a typed `error` frame and the loop continues. The process honors
//! the driver-wide exit contract — 0 (clean shutdown / EOF), 1 (I/O
//! failure), 2 (usage) and **never** 101.
//!
//! # Cache (`compcerto-cache/1`)
//!
//! Each unit is keyed by an FNV-1a content hash over its source bytes, the
//! [`CompilerOptions`] fingerprint, the compiler fingerprint (the pass
//! registry + crate version) and the *batch symbol-table* fingerprint —
//! a unit's code depends on the shared symbol table, so an edit that
//! changes another unit's globals correctly invalidates it, while an edit
//! confined to a function body leaves sibling units hitting. Entries are
//! one JSON file per key (`<dir>/<key>.json`), written atomically
//! (temp file + rename, the [`bench::ckpt`] discipline), carrying the
//! serialized artifact (asm + deterministic metrics + validation
//! diagnostics) plus its own FNV checksum. Every read re-derives the
//! checksum: truncated, bit-flipped or wrong-key entries are evicted
//! (counted under `serve.cache.evict`) and recompiled transparently —
//! a corrupt cache can cost time, never correctness.
//!
//! # Scheduling
//!
//! Cache lookups run serially in batch order (so hit/miss counters are
//! `--jobs`-invariant); the misses then fan out through the function-level
//! scheduler ([`crate::driver::compile_typed_jobs`]): front end per unit →
//! symbol-table barrier → per-function back ends → reassembly. A unit that
//! fails or panics degrades *its own* response through the resilience
//! ladder ([`crate::resilience`]); the server and the rest of the batch
//! keep going.

use std::io::{BufRead, Write};

use clight::build_symtab;
use compcerto_core::symtab::SymbolTable;

use crate::driver::{compile_typed_jobs, front_end, CompiledUnit, CompilerOptions};
use crate::json::{self, Json};
use crate::obs::Counters;
use crate::par::Jobs;
use crate::resilience::{compile_program_isolated, contain_unwind, UnitOutcome};

/// Protocol schema stamped on every request and response frame.
pub const SERVE_SCHEMA: &str = "compcerto-serve/1";
/// Schema stamped on every on-disk cache entry.
pub const CACHE_SCHEMA: &str = "compcerto-cache/1";
/// Hard cap on one request frame. Anything longer is discarded and
/// answered with a typed `error` frame (the line is consumed, the
/// connection survives).
pub const MAX_FRAME_BYTES: usize = 4 << 20;

// ---------------------------------------------------------------------------
// Fingerprints and cache keys
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64 over `bytes`, rendered as 16 hex digits.
#[must_use]
pub fn fnv_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(FNV_OFFSET, bytes))
}

/// Fingerprint of the compiler itself: the pass registry (names, kinds and
/// simulation conventions — paper Table 3 as data) plus the crate version.
/// Any change to the pipeline's shape changes every cache key.
#[must_use]
pub fn compiler_fingerprint() -> String {
    let mut h = fnv1a(FNV_OFFSET, env!("CARGO_PKG_VERSION").as_bytes());
    for p in crate::registry::pass_registry() {
        h = fnv1a(h, format!("{p:?}").as_bytes());
    }
    format!("{h:016x}")
}

/// Fingerprint of a [`CompilerOptions`] value (every field participates:
/// two servers differing in any flag never share artifacts).
#[must_use]
pub fn options_fingerprint(opts: CompilerOptions) -> String {
    fnv_hex(format!("{opts:?}").as_bytes())
}

/// Fingerprint of the batch symbol table. [`SymbolTable`] is plain ordered
/// data (a `Vec` of idents/kinds plus a `BTreeMap` index), so its `Debug`
/// rendering is deterministic across runs and across server restarts.
#[must_use]
pub fn symtab_fingerprint(symtab: &SymbolTable) -> String {
    fnv_hex(format!("{symtab:?}").as_bytes())
}

/// The content-addressed cache key of one unit in one batch.
#[must_use]
pub fn cache_key(source: &str, opts_fp: &str, compiler_fp: &str, symtab_fp: &str) -> String {
    let mut h = fnv1a(FNV_OFFSET, CACHE_SCHEMA.as_bytes());
    for part in [source, opts_fp, compiler_fp, symtab_fp] {
        h = fnv1a(h, part.as_bytes());
        h = fnv1a(h, b"\0");
    }
    format!("{h:016x}")
}

/// Invert [`json::escape`] for a cache entry's payload. Returns `None` on
/// any sequence `escape` never produces — such an entry was not written by
/// [`Cache::store`] and must be evicted.
fn unescape(escaped: &str) -> Option<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'u' => {
                let mut code = 0u32;
                for _ in 0..4 {
                    code = code * 16 + chars.next()?.to_digit(16)?;
                }
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------------

/// Outcome of one cache probe.
enum Probe {
    /// Valid entry: the verbatim artifact payload string.
    Hit(String),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation (checksum, schema or key
    /// mismatch, or unreadable payload); it has been removed.
    Evicted,
}

struct Cache {
    dir: String,
}

impl Cache {
    fn entry_path(&self, key: &str) -> String {
        format!("{}/{key}.json", self.dir)
    }

    /// Probe `key`, re-deriving the payload checksum on every read. An
    /// entry that fails any check is deleted — it will be transparently
    /// recompiled and rewritten by the caller.
    ///
    /// Entries are only ever written by [`Cache::store`], so the probe
    /// validates the fixed layout with a single prefix match over the file
    /// instead of a full JSON parse (the probe is the warm-path hot loop;
    /// the checksum over the unescaped payload is what guarantees payload
    /// integrity). Every field `store` emits participates: the `compiler`
    /// and `options` fingerprints are already folded into the key, so for
    /// an untampered entry they can only hold the caller's values — a
    /// mismatch proves corruption and evicts, same as a bad checksum.
    fn probe(&self, key: &str, compiler_fp: &str, opts_fp: &str) -> Probe {
        let path = self.entry_path(key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Probe::Miss,
            // Unreadable (permissions, encoding): treat as corrupt.
            Err(_) => return self.evict(&path),
        };
        let header = format!(
            "{{\"schema\":\"{CACHE_SCHEMA}\",\"key\":\"{key}\",\"compiler\":\"{compiler_fp}\",\
             \"options\":\"{opts_fp}\",\"payload_fnv\":\""
        );
        let Some(rest) = raw.strip_prefix(&header) else {
            return self.evict(&path);
        };
        let (Some(want_fnv), Some(escaped)) = (
            rest.get(..16),
            rest.get(16..)
                .and_then(|r| r.strip_prefix("\",\"payload\":\""))
                .and_then(|r| r.strip_suffix("\"}\n").or_else(|| r.strip_suffix("\"}"))),
        ) else {
            return self.evict(&path);
        };
        let Some(payload) = unescape(escaped) else {
            return self.evict(&path);
        };
        if fnv_hex(payload.as_bytes()) != want_fnv {
            return self.evict(&path);
        }
        Probe::Hit(payload)
    }

    fn evict(&self, path: &str) -> Probe {
        // Best-effort: a cache that cannot be cleaned still cannot serve
        // the corrupt entry (the caller recompiles either way).
        let _ = std::fs::remove_file(path);
        Probe::Evicted
    }

    /// Store `payload` under `key` atomically (temp file + rename): a kill
    /// mid-write leaves either no entry or a complete one, never a torn
    /// file — the restart test relies on this.
    fn store(&self, key: &str, payload: &str, compiler_fp: &str, opts_fp: &str) {
        let doc = format!(
            "{{\"schema\":\"{CACHE_SCHEMA}\",\"key\":\"{key}\",\"compiler\":\"{compiler_fp}\",\
             \"options\":\"{opts_fp}\",\"payload_fnv\":\"{}\",\"payload\":\"{}\"}}\n",
            fnv_hex(payload.as_bytes()),
            json::escape(payload),
        );
        let path = self.entry_path(key);
        let tmp = format!("{path}.tmp");
        // Cache writes are best-effort: a full disk degrades the server to
        // a cold compiler, never to a wrong answer.
        if std::fs::write(&tmp, &doc).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Configuration of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Options applied to every unit of every batch.
    pub opts: CompilerOptions,
    /// Worker-pool width for the function-level fan-out.
    pub jobs: Jobs,
    /// Artifact cache directory (created on startup).
    pub cache_dir: String,
}

/// A compile server: the protocol state machine plus its artifact cache.
///
/// [`handle_line`](Server::handle_line) is the testable core — the
/// stdin/stdout and Unix-socket front ends ([`run_stdio`], [`run_unix`])
/// are thin framing loops around it.
pub struct Server {
    cfg: ServeConfig,
    cache: Cache,
    compiler_fp: String,
    opts_fp: String,
    stats: Counters,
    shutdown: bool,
}

impl Server {
    /// Create a server, creating the cache directory if needed.
    ///
    /// # Errors
    /// Reports an uncreatable cache directory (exit-1 material).
    pub fn new(cfg: ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&cfg.cache_dir)
            .map_err(|e| format!("cannot create cache dir `{}`: {e}", cfg.cache_dir))?;
        let compiler_fp = compiler_fingerprint();
        let opts_fp = options_fingerprint(cfg.opts);
        let cache = Cache {
            dir: cfg.cache_dir.clone(),
        };
        Ok(Server {
            cfg,
            cache,
            compiler_fp,
            opts_fp,
            stats: Counters::default(),
            shutdown: false,
        })
    }

    /// True once a `shutdown` frame was acknowledged; the framing loop
    /// exits cleanly.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Cumulative server counters (the `stats` op renders these).
    #[must_use]
    pub fn stats(&self) -> &Counters {
        &self.stats
    }

    /// Handle one request frame; returns the response frame (no trailing
    /// newline). Blank lines get no response (`None`). This function never
    /// panics on malformed input — every failure mode is a typed `error`
    /// frame.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        if line.trim().is_empty() {
            return None;
        }
        self.stats.bump("serve.requests", 1);
        if line.len() > MAX_FRAME_BYTES {
            self.stats.bump("serve.errors", 1);
            return Some(error_frame(
                None,
                "oversized-frame",
                &format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap", line.len()),
            ));
        }
        let req = match json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                self.stats.bump("serve.errors", 1);
                return Some(error_frame(None, "parse-error", &e));
            }
        };
        let id = req.get("id").and_then(Json::as_u64);
        let schema = req.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SERVE_SCHEMA {
            self.stats.bump("serve.errors", 1);
            return Some(error_frame(
                id,
                "unknown-schema",
                &format!("schema `{schema}` is not `{SERVE_SCHEMA}`"),
            ));
        }
        match req.get("op").and_then(Json::as_str) {
            Some("ping") => Some(format!(
                "{{\"schema\":\"{SERVE_SCHEMA}\",\"op\":\"pong\"{}}}",
                id_member(id)
            )),
            Some("stats") => Some(format!(
                "{{\"schema\":\"{SERVE_SCHEMA}\",\"op\":\"stats-result\"{},\"counters\":{}}}",
                id_member(id),
                counters_inline(&self.stats)
            )),
            Some("shutdown") => {
                self.shutdown = true;
                Some(format!(
                    "{{\"schema\":\"{SERVE_SCHEMA}\",\"op\":\"shutdown-ok\"{}}}",
                    id_member(id)
                ))
            }
            Some("compile") => Some(self.handle_compile(id, &req)),
            Some(other) => {
                self.stats.bump("serve.errors", 1);
                Some(error_frame(
                    id,
                    "unknown-op",
                    &format!("op `{other}` is not one of ping/compile/stats/shutdown"),
                ))
            }
            None => {
                self.stats.bump("serve.errors", 1);
                Some(error_frame(id, "missing-op", "request has no `op` member"))
            }
        }
    }

    fn handle_compile(&mut self, id: Option<u64>, req: &Json) -> String {
        let Some(entries) = req.get("units").and_then(Json::as_arr) else {
            self.stats.bump("serve.errors", 1);
            return error_frame(id, "bad-request", "`compile` needs a `units` array");
        };
        if entries.is_empty() {
            self.stats.bump("serve.errors", 1);
            return error_frame(id, "bad-request", "`units` is empty");
        }
        self.stats.bump("serve.units", entries.len() as u64);

        // Resolve each entry to source text; an unreadable `file` entry
        // fails that unit alone.
        let sources: Vec<Result<String, String>> = entries
            .iter()
            .map(|e| {
                if let Some(src) = e.get("source").and_then(Json::as_str) {
                    Ok(src.to_string())
                } else if let Some(path) = e.get("file").and_then(Json::as_str) {
                    std::fs::read_to_string(path)
                        .map_err(|err| format!("cannot read `{path}`: {err}"))
                } else {
                    Err("unit needs a `source` or `file` member".to_string())
                }
            })
            .collect();

        // Front end every readable unit (contained: a parser panic fails
        // its unit, not the batch) — the symbol table must span the whole
        // batch, hits included.
        let typed: Vec<Result<clight::Program, String>> = sources
            .iter()
            .map(|s| match s {
                Err(e) => Err(e.clone()),
                Ok(src) => match contain_unwind(|| front_end(src)) {
                    Ok(Ok(p)) => Ok(p),
                    Ok(Err(e)) => Err(format!("front-end: {e}")),
                    Err((_, msg)) => Err(format!("front-end panicked (contained): {msg}")),
                },
            })
            .collect();
        let parsed: Vec<&clight::Program> = typed.iter().filter_map(|t| t.as_ref().ok()).collect();
        let symtab = match build_symtab(&parsed) {
            Ok(t) => t,
            Err(e) => {
                // Mirror `compile_all_resilient`: a link error fails every
                // parsed unit (the broken-unit responses keep their own
                // front-end detail).
                let units: Vec<String> = typed
                    .iter()
                    .enumerate()
                    .map(|(i, t)| match t {
                        Ok(_) => unit_failed(i, "none", &format!("link: {e}")),
                        Err(detail) => unit_failed(i, "none", detail),
                    })
                    .collect();
                return self.compile_result(id, &units, 0, 0, 0);
            }
        };
        let symtab_fp = symtab_fingerprint(&symtab);

        // Serial cache probe in batch order: the hit/miss/evict tallies
        // are `--jobs`-invariant by construction.
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut evictions = 0u64;
        let mut probes: Vec<Option<Probe>> = Vec::with_capacity(sources.len());
        let mut keys: Vec<Option<String>> = Vec::with_capacity(sources.len());
        for (src, t) in sources.iter().zip(&typed) {
            match (src, t) {
                (Ok(src), Ok(_)) => {
                    let key = cache_key(src, &self.opts_fp, &self.compiler_fp, &symtab_fp);
                    let probe = self.cache.probe(&key, &self.compiler_fp, &self.opts_fp);
                    match probe {
                        Probe::Hit(_) => hits += 1,
                        Probe::Miss => misses += 1,
                        Probe::Evicted => {
                            evictions += 1;
                            misses += 1;
                        }
                    }
                    probes.push(Some(probe));
                    keys.push(Some(key));
                }
                _ => {
                    probes.push(None);
                    keys.push(None);
                }
            }
        }
        self.stats.bump("serve.cache.hit", hits);
        self.stats.bump("serve.cache.miss", misses);
        self.stats.bump("serve.cache.evict", evictions);

        // Compile the misses through the function-level scheduler; if the
        // fast path reports any error (or a pass panics out of the pool),
        // fall back to the per-unit isolated pipeline so each miss gets
        // its own degradation ladder.
        let miss_idx: Vec<usize> = probes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Some(Probe::Miss | Probe::Evicted)))
            .map(|(i, _)| i)
            .collect();
        let miss_typed: Vec<clight::Program> = miss_idx
            .iter()
            .map(|&i| match &typed[i] {
                Ok(p) => p.clone(),
                // miss_idx only selects probed (hence parsed) units.
                Err(_) => clight::Program::default(),
            })
            .collect();
        let mut outcomes: Vec<Option<UnitOutcome>> = (0..sources.len()).map(|_| None).collect();
        if !miss_typed.is_empty() {
            self.stats.bump("serve.compiled", miss_typed.len() as u64);
            let fast = contain_unwind(|| {
                compile_typed_jobs(&miss_typed, &symtab, self.cfg.opts, self.cfg.jobs)
            });
            match fast {
                Ok(Ok(units)) => {
                    for (&i, u) in miss_idx.iter().zip(units) {
                        outcomes[i] = Some(UnitOutcome::Ok(Box::new(u)));
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    self.stats.bump("serve.fallbacks", 1);
                    for (&i, t) in miss_idx.iter().zip(&miss_typed) {
                        outcomes[i] =
                            Some(compile_program_isolated(t, &symtab, self.cfg.opts));
                    }
                }
            }
        }

        // Render per-unit responses; clean artifacts are written back to
        // the cache (atomically) as they are rendered.
        let units: Vec<String> = (0..sources.len())
            .map(|i| match (&typed[i], &probes[i]) {
                (Err(detail), _) => unit_failed(i, "none", detail),
                (Ok(_), Some(Probe::Hit(payload))) => unit_frame(i, "hit", payload),
                (Ok(_), Some(probe)) => {
                    let cache_tag = match probe {
                        Probe::Evicted => "evict-miss",
                        _ => "miss",
                    };
                    match outcomes[i].take() {
                        Some(UnitOutcome::Ok(unit)) => {
                            let payload = render_artifact(&unit, "ok", None);
                            if let Some(key) = &keys[i] {
                                self.cache.store(key, &payload, &self.compiler_fp, &self.opts_fp);
                            }
                            unit_frame(i, cache_tag, &payload)
                        }
                        Some(UnitOutcome::Degraded {
                            unit,
                            pass,
                            reason,
                            detail,
                        }) => {
                            // Degraded artifacts are served but never
                            // cached: the ladder must re-run (and be
                            // re-reported) on the next request.
                            let note = format!(
                                "degraded: {} in `{pass}` ({detail})",
                                reason.name()
                            );
                            let payload = render_artifact(&unit, "degraded", Some(&note));
                            unit_frame(i, cache_tag, &payload)
                        }
                        Some(UnitOutcome::Failed { stage, error }) => {
                            unit_failed(i, cache_tag, &format!("{stage}: {error}"))
                        }
                        Some(UnitOutcome::Poisoned { pass, panic_msg }) => unit_failed(
                            i,
                            cache_tag,
                            &format!("internal panic in `{pass}` (contained): {panic_msg}"),
                        ),
                        None => unit_failed(i, cache_tag, "unit was not compiled (internal)"),
                    }
                }
                (Ok(_), None) => unit_failed(i, "none", "unit was not probed (internal)"),
            })
            .collect();
        self.compile_result(id, &units, hits, misses, evictions)
    }

    fn compile_result(
        &self,
        id: Option<u64>,
        units: &[String],
        hits: u64,
        misses: u64,
        evictions: u64,
    ) -> String {
        format!(
            "{{\"schema\":\"{SERVE_SCHEMA}\",\"op\":\"compile-result\"{},\"units\":[{}],\
             \"cache\":{{\"hit\":{hits},\"miss\":{misses},\"evict\":{evictions}}}}}",
            id_member(id),
            units.join(",")
        )
    }
}

/// Render one compiled unit's cacheable artifact: a single-line JSON
/// object holding the Asm-O text, the *deterministic* half of the metrics
/// (counters only — wall-clock spans are volatile and would break the
/// cold/warm byte-identity gate) and the validation diagnostics.
fn render_artifact(unit: &CompiledUnit, status: &str, note: Option<&str>) -> String {
    let asm: String = unit.asm.functions.iter().map(|f| f.dump()).collect();
    let metrics = match &unit.metrics {
        None => "null".to_string(),
        Some(m) => {
            let members: Vec<String> = m
                .counters
                .0
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect();
            format!("{{{}}}", members.join(","))
        }
    };
    let diags: Vec<String> = unit.diagnostics.iter().map(|d| d.to_json()).collect();
    let note = match note {
        Some(n) => format!(",\"note\":\"{}\"", json::escape(n)),
        None => String::new(),
    };
    format!(
        "{{\"status\":\"{status}\"{note},\"asm\":\"{}\",\"metrics\":{metrics},\"diagnostics\":[{}]}}",
        json::escape(&asm),
        diags.join(",")
    )
}

fn unit_frame(i: usize, cache: &str, payload: &str) -> String {
    format!("{{\"unit\":{i},\"cache\":\"{cache}\",\"artifact\":{payload}}}")
}

fn unit_failed(i: usize, cache: &str, detail: &str) -> String {
    format!(
        "{{\"unit\":{i},\"cache\":\"{cache}\",\"artifact\":{{\"status\":\"failed\",\
         \"detail\":\"{}\"}}}}",
        json::escape(detail)
    )
}

fn id_member(id: Option<u64>) -> String {
    match id {
        Some(n) => format!(",\"id\":{n}"),
        None => String::new(),
    }
}

fn counters_inline(c: &Counters) -> String {
    let members: Vec<String> = c.0.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", members.join(","))
}

fn error_frame(id: Option<u64>, kind: &str, detail: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"op\":\"error\"{},\"error\":\"{}\",\"detail\":\"{}\"}}",
        id_member(id),
        json::escape(kind),
        json::escape(detail)
    )
}

// ---------------------------------------------------------------------------
// Framing loops
// ---------------------------------------------------------------------------

enum Frame {
    Eof,
    Line(String),
    Oversized(usize),
}

/// Read one newline-terminated frame with the [`MAX_FRAME_BYTES`] cap
/// enforced *while reading* — an attacker-sized line is drained and
/// reported without ever being buffered whole.
fn read_frame(r: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<Frame> {
    buf.clear();
    let mut dropped = 0usize;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a final unterminated frame still gets parsed (and, if
            // truncated mid-frame, answered with a parse error).
            return Ok(if buf.is_empty() && dropped == 0 {
                Frame::Eof
            } else if dropped > 0 {
                Frame::Oversized(buf.len() + dropped)
            } else {
                Frame::Line(String::from_utf8_lossy(buf).into_owned())
            });
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map_or(chunk.len(), |p| p);
        if dropped == 0 && buf.len() + take <= MAX_FRAME_BYTES {
            buf.extend_from_slice(&chunk[..take]);
        } else {
            dropped += take.saturating_sub(MAX_FRAME_BYTES.saturating_sub(buf.len()));
            let keep = MAX_FRAME_BYTES - buf.len();
            buf.extend_from_slice(&chunk[..keep.min(take)]);
        }
        let consumed = nl.map_or(chunk.len(), |p| p + 1);
        r.consume(consumed);
        if nl.is_some() {
            return Ok(if dropped > 0 {
                Frame::Oversized(buf.len() + dropped)
            } else {
                Frame::Line(String::from_utf8_lossy(buf).into_owned())
            });
        }
    }
}

fn serve_connection(
    server: &mut Server,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    loop {
        let resp = match read_frame(reader, &mut buf)? {
            Frame::Eof => break,
            Frame::Line(line) => server.handle_line(&line),
            Frame::Oversized(n) => {
                server.stats.bump("serve.requests", 1);
                server.stats.bump("serve.errors", 1);
                Some(error_frame(
                    None,
                    "oversized-frame",
                    &format!("frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
                ))
            }
        };
        if let Some(resp) = resp {
            writer.write_all(resp.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        if server.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Serve frames on stdin/stdout until EOF or a `shutdown` op. Returns the
/// process exit code (0 clean, 1 on I/O failure).
#[must_use]
pub fn run_stdio(cfg: ServeConfig) -> u8 {
    let mut server = match Server::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_connection(&mut server, &mut stdin.lock(), &mut stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: serve I/O: {e}");
            1
        }
    }
}

/// Serve frames on a Unix socket: connections are accepted sequentially
/// (each handled to EOF), the shared cache and counters persisting across
/// them, until a `shutdown` op arrives. Returns the process exit code.
#[must_use]
pub fn run_unix(cfg: ServeConfig, socket_path: &str) -> u8 {
    let mut server = match Server::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    // A stale socket file from a killed predecessor would make bind fail.
    let _ = std::fs::remove_file(socket_path);
    let listener = match std::os::unix::net::UnixListener::bind(socket_path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{socket_path}`: {e}");
            return 1;
        }
    };
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: accept on `{socket_path}`: {e}");
                return 1;
            }
        };
        let mut reader = std::io::BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: socket clone: {e}");
                return 1;
            }
        });
        let mut writer = std::io::BufWriter::new(stream);
        if let Err(e) = serve_connection(&mut server, &mut reader, &mut writer) {
            // One broken connection (client gone mid-reply) does not take
            // the daemon down.
            eprintln!("warning: connection on `{socket_path}`: {e}");
        }
        if server.shutdown_requested() {
            break;
        }
    }
    let _ = std::fs::remove_file(socket_path);
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(dir: &str) -> Server {
        Server::new(ServeConfig {
            opts: CompilerOptions::validated().with_metrics(),
            jobs: Jobs::N(1),
            cache_dir: dir.to_string(),
        })
        .expect("server")
    }

    fn tmpdir(tag: &str) -> String {
        let d = std::env::temp_dir().join(format!("ccomp-serve-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("tmpdir");
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn ping_and_unknown_op() {
        let dir = tmpdir("ping");
        let mut s = test_server(&dir);
        let r = s
            .handle_line(r#"{"schema":"compcerto-serve/1","op":"ping","id":7}"#)
            .expect("response");
        assert!(r.contains("\"op\":\"pong\"") && r.contains("\"id\":7"), "{r}");
        let r = s
            .handle_line(r#"{"schema":"compcerto-serve/1","op":"frobnicate"}"#)
            .expect("response");
        assert!(r.contains("\"op\":\"error\"") && r.contains("unknown-op"), "{r}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compile_miss_then_hit_is_byte_identical() {
        let dir = tmpdir("hit");
        let mut s = test_server(&dir);
        let req = r#"{"schema":"compcerto-serve/1","op":"compile","id":1,"units":[{"source":"int f(int x) { return x + 1; }"}]}"#;
        let cold = s.handle_line(req).expect("cold");
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        let warm = s.handle_line(req).expect("warm");
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // The artifact member must be byte-identical across the probe
        // states; only the per-unit tag and the request stats differ.
        let strip = |r: &str| {
            let r = r.replace("\"cache\":\"miss\"", "").replace("\"cache\":\"hit\"", "");
            r[..r.rfind(",\"cache\":{").expect("stats")].to_string()
        };
        assert_eq!(strip(&cold), strip(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_key_separates_sources_options_and_symtabs() {
        let a = cache_key("int f;", "o1", "c1", "s1");
        assert_ne!(a, cache_key("int g;", "o1", "c1", "s1"));
        assert_ne!(a, cache_key("int f;", "o2", "c1", "s1"));
        assert_ne!(a, cache_key("int f;", "o1", "c2", "s1"));
        assert_ne!(a, cache_key("int f;", "o1", "c1", "s2"));
        assert_eq!(a, cache_key("int f;", "o1", "c1", "s1"));
    }

    #[test]
    fn oversized_frame_is_drained_not_buffered() {
        let big = format!("{}\n{{\"x\":1}}", "a".repeat(MAX_FRAME_BYTES + 64));
        let mut r = std::io::BufReader::new(big.as_bytes());
        let mut buf = Vec::new();
        match read_frame(&mut r, &mut buf).expect("read") {
            Frame::Oversized(n) => assert!(n > MAX_FRAME_BYTES),
            _ => panic!("expected oversized"),
        }
        // The next frame is intact.
        match read_frame(&mut r, &mut buf).expect("read") {
            Frame::Line(l) => assert_eq!(l, "{\"x\":1}"),
            _ => panic!("expected line"),
        }
    }
}
